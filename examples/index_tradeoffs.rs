//! Throughput-versus-accuracy trade-offs across the three approximate
//! indexes (a miniature of the paper's Fig. 2 characterization).
//!
//! ```text
//! cargo run --release --example index_tradeoffs
//! ```

use std::time::Instant;

use ssam::datasets::{Benchmark, PaperDataset};
use ssam::knn::index::{SearchBudget, SearchIndex};
use ssam::knn::kdtree::{KdForest, KdTreeParams};
use ssam::knn::kmeans_tree::{KMeansTree, KMeansTreeParams};
use ssam::knn::mplsh::{MplshParams, MultiProbeLsh};
use ssam::knn::recall::recall_ids;
use ssam::knn::Metric;

fn main() {
    // A reduced GloVe stand-in (100-d word-embedding-like vectors).
    let bench = Benchmark::paper(PaperDataset::GloVe, 0.005);
    let k = bench.k();
    println!(
        "dataset: {} vectors x {} dims, {} queries, k = {k}\n",
        bench.train.len(),
        bench.train.dims(),
        bench.queries.len()
    );

    let kd = KdForest::build(
        &bench.train,
        Metric::Euclidean,
        KdTreeParams {
            trees: 4,
            leaf_size: 32,
            seed: 1,
        },
    );
    let km = KMeansTree::build(
        &bench.train,
        Metric::Euclidean,
        KMeansTreeParams {
            branching: 8,
            leaf_size: 32,
            max_height: 10,
            kmeans_iters: 6,
            seed: 1,
        },
    );
    let bits = ((bench.train.len() as f64 / 8.0).log2().ceil() as usize).clamp(8, 20);
    let lsh = MultiProbeLsh::build(
        &bench.train,
        Metric::Euclidean,
        MplshParams {
            tables: 8,
            hash_bits: bits,
            seed: 1,
        },
    );

    let indexes: [(&str, &dyn SearchIndex); 3] =
        [("kd-tree", &kd), ("k-means", &km), ("MPLSH", &lsh)];
    println!(
        "{:<10} {:>7} {:>12} {:>8} {:>10}",
        "index", "budget", "queries/s", "recall", "% scanned"
    );
    for (name, index) in indexes {
        for budget in [1usize, 4, 16, 64] {
            let start = Instant::now();
            let mut hits = 0.0;
            let mut scanned = 0usize;
            for (qi, q, gt) in bench.iter_queries() {
                let (res, stats) =
                    index.search_with_stats(&bench.train, q, k, SearchBudget::checks(budget));
                let ids: Vec<u32> = res.iter().map(|n| n.id).collect();
                hits += recall_ids(gt, &ids);
                scanned += stats.distance_evals;
                let _ = qi;
            }
            let secs = start.elapsed().as_secs_f64();
            let n = bench.queries.len() as f64;
            println!(
                "{:<10} {:>7} {:>12.0} {:>8.3} {:>9.1}%",
                name,
                budget,
                n / secs,
                hits / n,
                100.0 * scanned as f64 / (n * bench.train.len() as f64),
            );
        }
    }
    println!(
        "\nThe paper's Fig. 2 shape: recall climbs with budget while throughput\n\
         falls toward the linear-scan floor; past ~95-99% recall indexing\n\
         effectively degrades to linear search."
    );
}
