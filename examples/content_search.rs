//! Content-based search: the full software pipeline of the paper's Fig. 1.
//!
//! (a) feature extraction  — synthetic "image corpus" → descriptor vectors
//! (b) feature indexing    — hierarchical k-means tree (offline)
//! (c) query generation    — a query image runs the same extractor
//! (d) index traversal +
//! (e) k-nearest neighbors — budget-bounded approximate search
//! (f) reverse lookup      — ids map back to corpus entries
//!
//! ```text
//! cargo run --release --example content_search
//! ```

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use ssam::knn::index::{SearchBudget, SearchIndex};
use ssam::knn::kmeans_tree::{KMeansTree, KMeansTreeParams};
use ssam::knn::linear::knn_exact;
use ssam::knn::recall::recall;
use ssam::knn::{Metric, VectorStore};

/// A corpus entry: a synthetic "image" (its generating theme and a tag).
struct CorpusEntry {
    title: String,
    theme: usize,
}

/// Stand-in feature extractor: theme center + per-image detail noise.
/// (The paper treats extraction as an offline solved problem — AlexNet,
/// GIST; what matters here is that query and corpus share the extractor.)
fn extract_features(theme: usize, detail: u64, dims: usize) -> Vec<f32> {
    let mut center_rng = StdRng::seed_from_u64(theme as u64 * 7919);
    let mut detail_rng = StdRng::seed_from_u64(detail);
    (0..dims)
        .map(|_| {
            let c: f32 = center_rng.random_range(-1.0..1.0);
            let d: f32 = detail_rng.random_range(-0.15..0.15);
            c + d
        })
        .collect()
}

fn main() {
    let dims = 64;
    let themes = 12;
    let per_theme = 250;

    // (a) Feature extraction over the corpus (offline).
    println!("(a) extracting features for {} images…", themes * per_theme);
    let mut corpus = Vec::new();
    let mut features = VectorStore::new(dims);
    for theme in 0..themes {
        for i in 0..per_theme {
            corpus.push(CorpusEntry {
                title: format!("img-{theme:02}-{i:04}"),
                theme,
            });
            features.push(&extract_features(
                theme,
                (theme * per_theme + i) as u64,
                dims,
            ));
        }
    }

    // (b) Index construction (offline).
    println!("(b) building hierarchical k-means index…");
    let index = KMeansTree::build(
        &features,
        Metric::Euclidean,
        KMeansTreeParams {
            branching: 8,
            leaf_size: 32,
            max_height: 8,
            kmeans_iters: 8,
            seed: 42,
        },
    );
    println!("    {} leaves", index.num_leaves());

    // (c) Query generation: a new image of theme 7.
    println!("(c) generating query (an unseen theme-7 image)…");
    let query = extract_features(7, 999_999, dims);

    // (d)+(e) Index traversal and kNN under a leaf budget.
    let k = 8;
    for budget in [1usize, 4, 16] {
        let (approx, stats) =
            index.search_with_stats(&features, &query, k, SearchBudget::checks(budget));
        let exact = knn_exact(&features, &query, k, Metric::Euclidean);
        let r = recall(&exact, &approx);
        println!(
            "(d/e) budget {budget:>2}: scanned {:>5} of {} vectors, recall {:.2}",
            stats.distance_evals,
            features.len(),
            r
        );

        // (f) Reverse lookup at the largest budget.
        if budget == 16 {
            println!("(f) results map back to corpus entries:");
            let mut theme_hits = 0;
            for n in &approx {
                let entry = &corpus[n.id as usize];
                if entry.theme == 7 {
                    theme_hits += 1;
                }
                println!(
                    "      {}  (theme {:>2}, dist {:.3})",
                    entry.title, entry.theme, n.dist
                );
            }
            assert!(
                theme_hits >= k / 2,
                "most neighbors should share the query's theme"
            );
            println!("    {theme_hits}/{k} neighbors share the query's theme");
        }
    }
}
