//! Why near-data processing wins: the same scan costed on the host CPU
//! model, the GPU model, and the simulated SSAM device, with the
//! bandwidth ablation that explains the gap.
//!
//! ```text
//! cargo run --release --example near_data_advantage
//! ```

use ssam::baselines::normalize::area_normalized_throughput;
use ssam::baselines::{CpuPlatform, GpuPlatform, ScanWorkload};
use ssam::core::area::module_area;
use ssam::core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam::datasets::{Benchmark, PaperDataset};
use ssam::hmc::{DdrConfig, HmcConfig};

fn main() {
    let bench = Benchmark::paper(PaperDataset::Gist, 0.002);
    let w = ScanWorkload::dense(bench.train.len(), bench.train.dims());
    println!(
        "workload: exact linear search over {} x {}-d vectors ({:.1} MB/query)\n",
        w.vectors,
        w.dims,
        w.bytes_per_query() / 1e6
    );

    let cpu = CpuPlatform::xeon_e5_2620();
    let gpu = GpuPlatform::titan_x();

    let vl = 4;
    let mut dev = SsamDevice::new(SsamConfig {
        vector_length: vl,
        ..SsamConfig::default()
    });
    dev.load_vectors(&bench.train);
    let q: Vec<f32> = bench.queries.get(0).to_vec();
    let r = dev
        .query(&DeviceQuery::Euclidean(&q), bench.k())
        .expect("device runs");
    let ssam_qps = 1.0 / r.timing.seconds;

    println!(
        "{:<18} {:>12} {:>12} {:>14}",
        "platform", "queries/s", "mm^2@28nm", "q/s/mm^2"
    );
    let row = |name: &str, qps: f64, area: f64| {
        println!(
            "{:<18} {:>12.1} {:>12.1} {:>14.3}",
            name,
            qps,
            area,
            area_normalized_throughput(qps, area)
        );
    };
    row(
        "Xeon E5-2620",
        cpu.linear_throughput(&w),
        cpu.area_mm2_28nm(),
    );
    row("Titan X", gpu.linear_throughput(&w), gpu.area_mm2_28nm());
    row(
        &format!("SSAM-{vl} (sim)"),
        ssam_qps,
        module_area(vl).total(),
    );

    // Where does the SSAM advantage come from? Bandwidth, mostly.
    let hmc = HmcConfig::hmc2();
    let ddr = DdrConfig::ddr4_quad_channel();
    println!(
        "\nbandwidth ablation: the identical accelerator behind DDR would stream\n\
         {:.1} MB at {:.0} GB/s -> {:.2} ms/query, vs {:.2} ms behind HMC's vaults\n\
         ({:.0} GB/s internal) — a {:.1}x gap from memory technology alone.",
        w.bytes_per_query() / 1e6,
        ddr.bandwidth / 1e9,
        1e3 * w.bytes_per_query() / ddr.bandwidth,
        1e3 * w.bytes_per_query() / hmc.internal_bandwidth(),
        hmc.internal_bandwidth() / 1e9,
        hmc.internal_bandwidth() / ddr.bandwidth,
    );
    println!(
        "\ndevice detail: {} PU(s)/vault, {}-bound, {:.3} mJ/query",
        r.timing.pus_per_vault,
        if r.timing.compute_bound {
            "compute"
        } else {
            "bandwidth"
        },
        r.timing.energy_mj
    );
}
