//! A tour of the SSAM accelerator stack: kernel generation, assembly,
//! binary encoding, cycle-level simulation, and the energy/area models.
//!
//! ```text
//! cargo run --release --example accelerator_inspection
//! ```

use std::sync::Arc;

use ssam::core::area::module_area;
use ssam::core::asm::{assemble, disassemble};
use ssam::core::energy::{effective_power, kernel_energy_mj, Activity};
use ssam::core::isa::encoding::{decode, encode};
use ssam::core::isa::DRAM_BASE;
use ssam::core::kernels::linear;
use ssam::core::sim::pu::ProcessingUnit;
use ssam::knn::fixed::Fix32;

fn main() {
    let dims = 8;
    let vl = 4;

    // 1. Generate the hand-written Euclidean scan kernel for this shape.
    let kernel = linear::euclidean(dims, vl);
    println!(
        "=== kernel `{}` ({} instructions) ===",
        kernel.name,
        kernel.program.len()
    );
    println!("{}", kernel.source);

    // 2. Assemble ↔ disassemble ↔ binary-encode round trips.
    let reassembled = assemble(&kernel.source).expect("kernel assembles");
    assert_eq!(reassembled, kernel.program);
    let words: Vec<u64> = kernel.program.iter().map(encode).collect();
    let decoded: Vec<_> = words.iter().map(|&w| decode(w).expect("decodes")).collect();
    assert_eq!(decoded, kernel.program);
    println!(
        "=== binary image: {} x 64-bit words; disassembly ===",
        words.len()
    );
    println!("{}", disassemble(&kernel.program));

    // 3. Stage a 6-vector shard in DRAM and a query in the scratchpad.
    let database: Vec<[f32; 8]> = vec![
        [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        [0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5],
        [2.0, 0.0, 2.0, 0.0, 2.0, 0.0, 2.0, 0.0],
        [0.4, 0.6, 0.4, 0.6, 0.4, 0.6, 0.4, 0.6],
        [9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0],
    ];
    let words: Vec<i32> = database
        .iter()
        .flat_map(|v| v.iter().map(|&x| Fix32::from_f32(x).0))
        .collect();
    let shard_bytes = words.len() * 4;

    let mut pu = ProcessingUnit::new(vl, Arc::new(words));
    pu.load_program(kernel.program.clone());
    let query = [0.5f32; 8];
    let q: Vec<i32> = query.iter().map(|&x| Fix32::from_f32(x).0).collect();
    pu.scratchpad_mut()
        .write_block(0, &q)
        .expect("query staged");
    pu.set_sreg(1, DRAM_BASE as i32);
    pu.set_sreg(2, DRAM_BASE as i32 + shard_bytes as i32);

    // 4. Run and read the hardware priority queue.
    let stats = pu.run(100_000).expect("kernel halts");
    println!("=== hardware priority queue after the scan ===");
    for (pos, e) in pu.pqueue().entries().iter().enumerate() {
        println!(
            "  #{pos}: id {}  distance {:.4}",
            e.id,
            e.value as f64 / 65536.0
        );
    }
    assert_eq!(
        pu.pqueue().entries()[0].id,
        2,
        "vector 2 is the query itself"
    );

    // 5. Cycle/activity account and the calibrated models.
    println!("\n=== run statistics ===");
    println!("  cycles             {}", stats.cycles);
    println!("  instructions       {}", stats.instructions);
    println!(
        "  vector fraction    {:.1}%",
        100.0 * stats.vector_fraction()
    );
    println!("  DRAM bytes         {}", stats.dram.bytes_read);
    println!(
        "  prefetch hit rate  {:.0}%",
        100.0 * stats.dram.hits as f64 / (stats.dram.hits + stats.dram.misses).max(1) as f64
    );

    let act = Activity::from_stats(&stats);
    println!("\n=== calibrated models (paper Tables III/IV) ===");
    println!(
        "  effective PU power  {:.2} (Table III units)",
        effective_power(vl, &act)
    );
    println!(
        "  kernel energy       {:.6} mJ @ 1 GHz",
        kernel_energy_mj(vl, &stats, 1.0e9)
    );
    println!(
        "  accelerator area    {:.2} mm^2 at 28 nm",
        module_area(vl).total()
    );
}
