//! Quickstart for the online serving runtime: concurrent clients share
//! one SSAM device through a [`ssam::serve::Server`], which coalesces
//! their requests into device batches, bounds queue depth, and enforces
//! per-request deadlines — every outcome is a typed response, never a
//! hang.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use std::time::Duration;

use ssam::core::device::{SsamConfig, SsamDevice};
use ssam::core::telemetry::Telemetry;
use ssam::knn::VectorStore;
use ssam::serve::{OwnedQuery, Request, ServeConfig, ServeError, Server};

fn main() {
    // A small database of 16-d feature vectors.
    let mut db = VectorStore::new(16);
    for i in 0..512 {
        let t = i as f32 * 0.05;
        let v: Vec<f32> = (0..16).map(|j| (t + j as f32 * 0.37).sin()).collect();
        db.push(&v);
    }
    let mut device = SsamDevice::new(SsamConfig::default());
    device.load_vectors(&db);

    // Attach the self-checking telemetry sink *before* starting the
    // server: every worker's device clone shares it, so each served
    // batch leaves verified per-query records.
    let sink = Telemetry::new();
    device.attach_telemetry(&sink);

    // Dynamic batching: flush at 8 compatible requests or once the
    // oldest has waited 2 ms, whichever comes first.
    let server = Server::start(
        device,
        ServeConfig {
            max_batch: 8,
            max_linger: Duration::from_millis(2),
            workers: 2,
            ..ServeConfig::default()
        },
    );

    // Eight concurrent clients, three queries each. `ServerHandle` is
    // cheap to clone and thread-safe.
    let clients: Vec<_> = (0..8)
        .map(|c| {
            let handle = server.handle();
            std::thread::spawn(move || {
                let mut batches = Vec::new();
                for q in 0..3 {
                    let t = (c * 3 + q) as f32 * 0.21;
                    let query: Vec<f32> = (0..16).map(|j| (t + j as f32 * 0.37).sin()).collect();
                    let resp = handle
                        .query(Request::new(OwnedQuery::Euclidean(query), 5))
                        .expect("request served");
                    batches.push((resp.neighbors[0].id, resp.batch_size));
                }
                batches
            })
        })
        .collect();
    for (c, j) in clients.into_iter().enumerate() {
        for (best, batch) in j.join().expect("client thread") {
            println!("client {c}: nearest id {best:>3} (served in a batch of {batch})");
        }
    }

    // Deadlines are rejection bounds: an expired request gets a typed
    // error before it can stall a batch.
    let impossible =
        Request::new(OwnedQuery::Euclidean(vec![0.0; 16]), 5).with_timeout(Duration::from_nanos(1));
    match server.handle().query(impossible) {
        Err(ServeError::DeadlineExceeded { missed_by }) => {
            println!("deadline demo: rejected, missed by {missed_by:?}");
        }
        other => println!("deadline demo: {other:?}"),
    }

    // Shutdown drains in-flight work and returns the lifetime counters.
    let stats = server.shutdown();
    println!(
        "served {} requests in {} batches (mean batch {:.1}); telemetry: {} verified \
         records, {} violations",
        stats.served,
        stats.batches,
        stats.mean_batch(),
        sink.len(),
        sink.violations().len()
    );
    assert!(sink.violations().is_empty());
}
