//! The multi-tenant network front-end in one file: an SSAM device
//! behind a framed-TCP [`ssam::serve::net::NetServer`], two tenants
//! with different QoS policies querying it over real sockets, and the
//! typed admission errors a throttled tenant sees.
//!
//! ```text
//! cargo run --release --example tcp_serve
//! ```

use std::time::Duration;

use ssam::core::device::{SsamConfig, SsamDevice};
use ssam::knn::VectorStore;
use ssam::serve::net::{ClientError, NetClient, NetServer, RemoteError};
use ssam::serve::{OwnedQuery, QosConfig, Request, ServeConfig, Server, TenantId, TenantQos};

fn main() {
    // A small database of 16-d feature vectors.
    let mut db = VectorStore::new(16);
    for i in 0..512 {
        let t = i as f32 * 0.05;
        let v: Vec<f32> = (0..16).map(|j| (t + j as f32 * 0.37).sin()).collect();
        db.push(&v);
    }
    let mut device = SsamDevice::new(SsamConfig::default());
    device.load_vectors(&db);

    // Two tenants: "gold" is high-priority (tier 0, heavy fair-share
    // weight); "bronze" is best-effort and rate-limited to 5 requests
    // of burst, refilling at 2/s.
    let gold = TenantId(1);
    let bronze = TenantId(2);
    let qos = QosConfig::default()
        .with_tenant(
            gold,
            TenantQos {
                tier: 0,
                weight: 4.0,
                ..TenantQos::default()
            },
        )
        .with_tenant(
            bronze,
            TenantQos {
                rate: Some(2.0),
                burst: 5.0,
                ..TenantQos::default()
            },
        );
    let server = Server::start(
        device,
        ServeConfig {
            max_batch: 8,
            max_linger: Duration::from_millis(2),
            workers: 2,
            qos,
            ..ServeConfig::default()
        },
    );

    // Expose it on an ephemeral localhost port. The wire format is
    // std-only length-prefixed frames; any language can speak it.
    let net = NetServer::bind("127.0.0.1:0", server).expect("bind");
    let addr = net.local_addr();
    println!("serving on {addr}");

    // Each tenant is an ordinary blocking TCP client.
    let query: Vec<f32> = (0..16).map(|j| (0.9 + j as f32 * 0.37).sin()).collect();
    let mut gold_client = NetClient::connect(addr).expect("connect");
    let resp = gold_client
        .query(&Request::new(OwnedQuery::Euclidean(query.clone()), 5).with_tenant(gold))
        .expect("gold request served");
    println!(
        "gold: top-{} in {:.2} ms (batch of {}), nearest id {} at distance {:.4}",
        resp.neighbors.len(),
        (resp.queue_seconds + resp.service_seconds) * 1e3,
        resp.batch_size,
        resp.neighbors[0].id,
        resp.neighbors[0].dist,
    );

    // Bronze burns through its 5-token burst, then gets a typed
    // RateLimited error instead of degrading anyone else's service.
    let mut bronze_client = NetClient::connect(addr).expect("connect");
    let mut admitted = 0;
    for i in 0..8 {
        match bronze_client
            .query(&Request::new(OwnedQuery::Euclidean(query.clone()), 5).with_tenant(bronze))
        {
            Ok(_) => admitted += 1,
            Err(ClientError::Remote(RemoteError::RateLimited { tenant })) => {
                println!("bronze: request {i} throttled ({tenant} over its admission rate)");
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    println!("bronze: {admitted} of 8 admitted inside the burst");

    // Graceful drain: in-flight requests finish, then the inner server
    // reports its lifetime counters.
    let stats = net.shutdown();
    println!(
        "shutdown: {} served over {} batches, {} rate-limited",
        stats.served, stats.batches, stats.rejected_rate_limited
    );
}
