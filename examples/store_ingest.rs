//! Quickstart for the mutable dataset subsystem: ingest vectors while
//! serving queries, survive a crash, and recover bit-identically.
//!
//! The [`ssam::store::Store`] is a WAL-first LSM-lite vector store —
//! writes land in an append-only log and a host-scanned memtable; full
//! memtables seal into immutable segments staged onto vault shards;
//! background compaction folds segments down the levels while queries
//! keep serving a consistent view (memtable ∪ segments, tombstones
//! suppressed, latest version wins).
//!
//! ```text
//! cargo run --release --example store_ingest
//! ```

use std::time::Duration;

use ssam::core::device::DeviceMetric;
use ssam::core::telemetry::Telemetry;
use ssam::serve::{OwnedQuery, Request, ServeConfig, Server};
use ssam::store::{Store, StoreConfig};

fn vector(i: u32, dims: usize) -> Vec<f32> {
    (0..dims)
        .map(|d| ((i as f32 * 0.31) + d as f32 * 0.17).sin())
        .collect()
}

fn main() {
    let dims = 16;
    let mut config = StoreConfig::new(dims);
    config.memtable_capacity = 64; // seal every 64 inserts
    config.fanout = 4; // compact a level once it holds > 4 segments
    let sink = Telemetry::new();

    // ---- Offline ingest: WAL-first writes, auto-sealing memtable.
    let mut store = Store::create(config.clone());
    store.attach_telemetry(&sink);
    for i in 0..500 {
        store.insert(i, &vector(i, dims)).expect("insert");
    }
    for i in (0..500).step_by(7) {
        store.delete(i).expect("delete"); // tombstone, purged by compaction
    }
    while store.compact_step() {} // drain compaction debt
    let stats = store.stats();
    println!(
        "ingested 500, deleted {}: {} live across {} segments on {} levels \
         ({} seals, {} compactions, {} WAL records)",
        500 / 7 + 1,
        store.live_len(),
        stats.segments,
        stats.levels,
        stats.seals,
        stats.compactions,
        stats.wal_records,
    );

    // ---- Query the mutable store directly (Euclidean or Manhattan).
    let r = store
        .query(&vector(123, dims), DeviceMetric::Euclidean, 3)
        .expect("query");
    println!(
        "nearest to vector 123: {:?} ({} segments + {} memtable vectors scanned)",
        r.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
        r.segments_scanned,
        r.memtable_scanned,
    );

    // ---- Crash and recover: the WAL is the only durable state. A torn
    // tail (here: half the log) truncates to the last whole record and
    // replays to exactly the state those records describe.
    let wal = store.wal_bytes().to_vec();
    let (recovered, recovery) = Store::open(config.clone(), &wal).expect("recover");
    assert_eq!(recovered.snapshot(), store.snapshot());
    println!(
        "full recovery: {} records replayed, state bit-identical",
        recovery.replayed
    );
    let (partial, recovery) = Store::open(config, &wal[..wal.len() / 2]).expect("recover");
    println!(
        "torn-tail recovery at half the log: {} records replayed, {} bytes \
         truncated, {} live",
        recovery.replayed,
        recovery.truncated,
        partial.live_len(),
    );

    // ---- Serve it online: inserts/deletes/queries through the runtime,
    // with a maintenance thread compacting in the background.
    let server = Server::start_store(
        store,
        ServeConfig {
            workers: 2,
            max_linger: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    for i in 500..600 {
        handle.insert(i, &vector(i, dims)).expect("online insert");
    }
    handle.delete(123).expect("online delete");
    let resp = handle
        .query(Request::new(OwnedQuery::Euclidean(vector(123, dims)), 3))
        .expect("online query");
    assert!(
        resp.neighbors.iter().all(|n| n.id != 123),
        "tombstone hides 123"
    );
    println!(
        "online: neighbors of deleted 123 -> {:?}",
        resp.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
    );
    let stats = server.shutdown();
    println!(
        "served {} queries, {} inserts, {} deletes; {} telemetry records, {} violations",
        stats.served,
        stats.inserts,
        stats.deletes,
        sink.len(),
        sink.violations().len(),
    );
}
