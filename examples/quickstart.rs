//! Quickstart: exact k-nearest-neighbor search on the CPU reference path
//! and on the simulated SSAM device, via the paper's Fig. 4 memory-region
//! API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ssam::core::device::memregion::{IndexMode, SsamRegion};
use ssam::knn::linear::knn_exact;
use ssam::knn::{Metric, VectorStore};

fn main() {
    // A tiny database of 4-d feature vectors.
    let mut db = VectorStore::new(4);
    for i in 0..256 {
        let t = i as f32 * 0.1;
        db.push(&[t.sin(), t.cos(), (2.0 * t).sin(), (0.5 * t).cos()]);
    }
    let query = [0.6f32, 0.8, 0.95, 0.98];
    let k = 5;

    // Reference: exact linear search on the host.
    let exact = knn_exact(&db, &query, k, Metric::Euclidean);
    println!("host exact search:");
    for n in &exact {
        println!("  id {:>3}  squared-distance {:.4}", n.id, n.dist);
    }

    // The same query through a SSAM-enabled memory region (paper Fig. 4):
    // allocate, set mode, copy, build, write query, execute, read back.
    let mut nbuf = SsamRegion::nmalloc(db.len() * db.dims());
    nbuf.nmode(IndexMode::Linear);
    nbuf.nmemcpy(&db).expect("dataset fits the region");
    nbuf.nbuild_index(None).expect("index built");
    nbuf.nwrite_query(&query).expect("query staged");
    nbuf.nexec(k).expect("kNN kernel executed");
    let result = nbuf.nread_result().expect("results ready");

    println!("\nSSAM device (simulated kernels over HMC vaults):");
    for n in result {
        println!("  id {:>3}  fixed-point distance {:.1}", n.id, n.dist);
    }
    let timing = nbuf.last_timing().expect("timing recorded");
    println!(
        "\ndevice query time {:.2} us  ({} PU(s)/vault, {}-bound, {:.3} uJ)",
        timing.seconds * 1e6,
        timing.pus_per_vault,
        if timing.compute_bound {
            "compute"
        } else {
            "bandwidth"
        },
        timing.energy_mj * 1e3,
    );

    // The two platforms must agree on the neighbor set.
    let host_ids: Vec<u32> = exact.iter().map(|n| n.id).collect();
    let ssam_ids: Vec<u32> = result.iter().map(|n| n.id).collect();
    assert_eq!(host_ids, ssam_ids, "SSAM must reproduce exact search");
    println!("\nhost and SSAM neighbor sets match.");
    nbuf.nfree();
}
