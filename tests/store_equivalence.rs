//! Differential property: the mutable store answers queries exactly as
//! if the dataset had been loaded immutably.
//!
//! After any interleaving of inserts, deletes, seals, and compactions,
//! `Store::query()` must return the same neighbors — id for id, distance
//! bit for bit — as a fresh `SsamDevice` built from the store's live set
//! (latest version of every non-deleted uid). This pins the whole
//! visibility machinery at once: tombstone suppression across memtable
//! and segments, dedup-by-latest-version, the stale-aware per-segment
//! over-fetch, and the host memtable scan ranking identically to staged
//! vectors.
//!
//! Values are drawn from (-1, 1) so Q16.16 squared distances stay below
//! 2²⁴, the range where the raw fixed-point accumulator and its f32
//! image order identically — the same precondition the seed corpus's
//! differential tests rely on.

use proptest::prelude::*;

use ssam::core::device::{DeviceMetric, DeviceQuery, SsamConfig, SsamDevice};
use ssam::knn::VectorStore;
use ssam::store::{Store, StoreConfig};

const DIMS: usize = 6;
const UIDS: u32 = 40;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, Vec<f32>),
    Delete(u32),
    Seal,
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored proptest has no weighted `prop_oneof!`; duplicated
    // arms bias the mix toward inserts.
    let insert = || {
        (0u32..UIDS, prop::collection::vec(-1.0f32..1.0, DIMS))
            .prop_map(|(uid, v)| Op::Insert(uid, v))
    };
    prop_oneof![
        insert(),
        insert(),
        insert(),
        insert(),
        (0u32..UIDS).prop_map(Op::Delete),
        (0u32..UIDS).prop_map(Op::Delete),
        Just(Op::Seal),
        Just(Op::Compact),
    ]
}

/// Tiny memtable and fanout so short op sequences still cross every
/// lifecycle edge: auto-seals, multi-level trees, mid-compaction reads.
fn small_store() -> Store {
    let mut c = StoreConfig::new(DIMS);
    c.memtable_capacity = 5;
    c.fanout = 2;
    c.device.fast_path = true;
    Store::create(c)
}

/// An immutable device over exactly the live set; its neighbor ids are
/// positions in the uid-ascending `live` vector.
fn rebuild(live: &[(u32, Vec<f32>)]) -> SsamDevice {
    let mut flat = VectorStore::new(DIMS);
    for (_, v) in live {
        flat.push(v);
    }
    let mut dev = SsamDevice::new(SsamConfig {
        fast_path: true,
        ..SsamConfig::default()
    });
    dev.load_vectors(&flat);
    dev
}

fn check_against_rebuild(store: &mut Store, q: &[f32], metric: DeviceMetric, k: usize) {
    let live = store.live_set();
    let got = store.query(q, metric, k).expect("store query");
    if live.is_empty() {
        prop_assert!(got.neighbors.is_empty());
        return;
    }
    let mut dev = rebuild(&live);
    let dq = match metric {
        DeviceMetric::Euclidean => DeviceQuery::Euclidean(q),
        DeviceMetric::Manhattan => DeviceQuery::Manhattan(q),
        _ => unreachable!("linear metrics only"),
    };
    let want = dev.query(&dq, k).expect("rebuild query");
    prop_assert_eq!(got.neighbors.len(), want.neighbors.len());
    for (g, w) in got.neighbors.iter().zip(&want.neighbors) {
        prop_assert_eq!(g.id, live[w.id as usize].0, "neighbor identity diverged");
        prop_assert_eq!(
            g.dist.to_bits(),
            w.dist.to_bits(),
            "distance diverged for uid {}",
            g.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The store is queried after *every* op, so the equivalence holds at
    /// each intermediate lifecycle state, not just the settled end state.
    #[test]
    fn store_query_equals_immutable_rebuild(
        ops in prop::collection::vec(arb_op(), 1..40),
        q in prop::collection::vec(-1.0f32..1.0, DIMS),
        k in 1usize..8,
    ) {
        let mut store = small_store();
        for op in &ops {
            match op {
                Op::Insert(uid, v) => { store.insert(*uid, v).expect("insert"); }
                Op::Delete(uid) => { store.delete(*uid).expect("delete"); }
                Op::Seal => { store.seal(); }
                Op::Compact => { store.compact_step(); }
            }
            check_against_rebuild(&mut store, &q, DeviceMetric::Euclidean, k);
        }
        // The settled end state must also agree under the other linear
        // metric (a distinct kernel on both sides).
        while store.compact_step() {}
        check_against_rebuild(&mut store, &q, DeviceMetric::Manhattan, k);
    }
}
