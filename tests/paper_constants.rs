//! The paper's published numbers, enforced: Table III/IV calibrations,
//! HMC geometry, area comparisons, and the headline claims' direction.

use ssam::baselines::{CpuPlatform, FpgaPlatform, GpuPlatform, ScanWorkload};
use ssam::core::area::{hmc_die_area_28nm, module_area};
use ssam::core::energy::module_power;
use ssam::cost::{evaluate, TcoParams};
use ssam::hmc::HmcConfig;

#[test]
fn table_iii_power_calibration() {
    // Spot checks straight from the paper's Table III.
    assert_eq!(module_power(2).pqueue, 1.63);
    assert_eq!(module_power(4).regfiles, 3.24);
    assert_eq!(module_power(8).scratchpad, 2.58);
    assert_eq!(module_power(16).pipeline, 7.09);
}

#[test]
fn table_iv_area_calibration_and_totals() {
    let totals = [30.52, 38.34, 58.21, 97.48];
    for (vl, expect) in [2usize, 4, 8, 16].into_iter().zip(totals) {
        assert!(
            (module_area(vl).total() - expect).abs() < 1e-9,
            "Table IV total mismatch at VL={vl}"
        );
    }
}

#[test]
fn hmc2_bandwidth_matches_paper() {
    let h = HmcConfig::hmc2();
    assert_eq!(h.vaults, 32);
    assert_eq!(h.internal_bandwidth(), 320.0e9);
    assert_eq!(h.external_bandwidth, 240.0e9);
    assert_eq!(h.vault_bandwidth, 10.0e9);
}

#[test]
fn hmc_die_area_normalization_matches_section_v_a() {
    // "the die size for HMC 1.0 in a 90 nm process is 729 mm²;
    //  normalized to a 28 nm process … ≈ 70.6 mm²"
    assert!((hmc_die_area_28nm() - 70.6).abs() < 0.2);
}

#[test]
fn ssam_is_several_times_smaller_than_cpu_and_gpu() {
    // Section V-A: 6.23–15.62× smaller than the Xeon, 9.84–24.66× than
    // the Titan X. Our die constants differ slightly from the paper's
    // (they never publish theirs), so assert the magnitude band.
    let cpu = CpuPlatform::xeon_e5_2620().area_mm2_28nm();
    let gpu = GpuPlatform::titan_x().area_mm2_28nm();
    for vl in [2usize, 4, 8, 16] {
        let s = module_area(vl).total();
        assert!(cpu / s > 3.0, "CPU/SSAM-{vl} ratio {}", cpu / s);
        assert!(gpu / s > 6.0, "GPU/SSAM-{vl} ratio {}", gpu / s);
    }
}

#[test]
fn paper_scale_cpu_linear_search_is_slow() {
    // The motivating observation: full-scale exact search on a CPU is
    // single-digit qps for GIST-sized data.
    let cpu = CpuPlatform::xeon_e5_2620();
    let gist = ScanWorkload::dense(1_000_000, 960);
    assert!(cpu.linear_throughput(&gist) < 10.0);
}

#[test]
fn platform_ordering_matches_fig6() {
    // Raw throughput: GPU > FPGA ≳/≈ CPU for the big dense scans.
    let w = ScanWorkload::dense(1_000_000, 960);
    let cpu = CpuPlatform::xeon_e5_2620().linear_throughput(&w);
    let gpu = GpuPlatform::titan_x().linear_throughput(&w);
    let fpga = FpgaPlatform::kintex7(8).linear_throughput(&w);
    assert!(gpu > fpga);
    assert!(gpu > cpu);
}

#[test]
fn tco_fleet_sizing_matches_section_vi_a() {
    let r = evaluate(&TcoParams::paper_defaults());
    assert_eq!(r.unique_qps, 11_200.0);
    assert!((1700..1900).contains(&(r.cpu_servers as i64)));
    assert!((100.0..130.0).contains(&r.cpu_power_kw));
    assert!(r.cpu_energy_cost / r.ssam_energy_cost > 100.0);
}
