//! End-to-end integration: dataset generation → indexes → CPU baseline →
//! SSAM device, with cross-platform agreement on exact search.

use ssam::baselines::parallel::{batch_recall, batch_search};
use ssam::core::device::memregion::knn as ssam_knn_pipeline;
use ssam::core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam::datasets::{Benchmark, PaperDataset};
use ssam::knn::binary::HyperplaneBinarizer;
use ssam::knn::index::{SearchBudget, SearchIndex};
use ssam::knn::kdtree::{KdForest, KdTreeParams};
use ssam::knn::kmeans_tree::{KMeansTree, KMeansTreeParams};
use ssam::knn::linear::knn_exact;
use ssam::knn::mplsh::{MplshParams, MultiProbeLsh};
use ssam::knn::Metric;

fn tiny_benchmark() -> Benchmark {
    Benchmark::paper(PaperDataset::GloVe, 0.0005)
}

#[test]
fn ground_truth_matches_cpu_linear_batch() {
    let b = tiny_benchmark();
    let lin = ssam::knn::linear::LinearSearch::new(Metric::Euclidean);
    let out = batch_search(&lin, &b.train, &b.queries, b.k(), SearchBudget::unlimited());
    assert_eq!(batch_recall(&out, &b.ground_truth.ids), 1.0);
}

#[test]
fn ssam_device_reproduces_ground_truth_exactly() {
    let b = tiny_benchmark();
    let mut dev = SsamDevice::new(SsamConfig::default());
    dev.load_vectors(&b.train);
    for (qi, q, gt) in b.iter_queries().take(5) {
        let r = dev
            .query(&DeviceQuery::Euclidean(q), b.k())
            .expect("device runs");
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(got, gt, "query {qi}");
    }
}

#[test]
fn fig4_pipeline_matches_ground_truth() {
    let b = tiny_benchmark();
    let (qi, q, gt) = b.iter_queries().next().expect("has queries");
    let got = ssam_knn_pipeline(q, &b.train, b.k()).expect("pipeline runs");
    assert_eq!(got, gt, "query {qi}");
}

#[test]
fn all_indexes_reach_high_recall_with_generous_budget() {
    let b = tiny_benchmark();
    let kd = KdForest::build(
        &b.train,
        Metric::Euclidean,
        KdTreeParams {
            trees: 4,
            leaf_size: 16,
            seed: 1,
        },
    );
    let km = KMeansTree::build(
        &b.train,
        Metric::Euclidean,
        KMeansTreeParams {
            branching: 8,
            leaf_size: 32,
            max_height: 8,
            kmeans_iters: 5,
            seed: 1,
        },
    );
    let lsh = MultiProbeLsh::build(
        &b.train,
        Metric::Euclidean,
        MplshParams {
            tables: 8,
            hash_bits: 8,
            seed: 1,
        },
    );
    let indexes: [(&str, &(dyn SearchIndex + Sync), f64); 3] =
        [("kd", &kd, 0.95), ("km", &km, 0.95), ("lsh", &lsh, 0.6)];
    for (name, index, floor) in indexes {
        let out = batch_search(
            index,
            &b.train,
            &b.queries,
            b.k(),
            SearchBudget::checks(256),
        );
        let r = batch_recall(&out, &b.ground_truth.ids);
        assert!(r >= floor, "{name}: recall {r} below {floor}");
    }
}

#[test]
fn approximate_recall_increases_with_budget_on_real_data() {
    let b = Benchmark::paper(PaperDataset::GloVe, 0.001);
    let km = KMeansTree::build(
        &b.train,
        Metric::Euclidean,
        KMeansTreeParams {
            branching: 8,
            leaf_size: 32,
            max_height: 8,
            kmeans_iters: 5,
            seed: 2,
        },
    );
    let lo = batch_search(&km, &b.train, &b.queries, b.k(), SearchBudget::checks(1));
    let hi = batch_search(&km, &b.train, &b.queries, b.k(), SearchBudget::checks(64));
    let (rl, rh) = (
        batch_recall(&lo, &b.ground_truth.ids),
        batch_recall(&hi, &b.ground_truth.ids),
    );
    assert!(rh >= rl, "recall fell with budget: {rl} -> {rh}");
    assert!(hi.stats.distance_evals > lo.stats.distance_evals);
}

#[test]
fn hamming_device_agrees_with_host_hamming_search() {
    let b = tiny_benchmark();
    let bits = 128;
    let bin = HyperplaneBinarizer::new(b.train.dims(), bits, 3);
    let codes = bin.encode_store(&b.train);
    let mut dev = SsamDevice::new(SsamConfig::default());
    dev.load_binary(&codes);
    for (_, q, _) in b.iter_queries().take(3) {
        let code = bin.encode(q);
        let r = dev
            .query(&DeviceQuery::Hamming(&code), b.k())
            .expect("device runs");
        let host = ssam::knn::binary::knn_hamming(&codes, &code, b.k());
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        let expect: Vec<u32> = host.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
    }
}

#[test]
fn binarization_preserves_neighborhood_structure() {
    // The Section II-D claim behind Table V: Hamming codes are a usable
    // stand-in for Euclidean space.
    let b = Benchmark::paper(PaperDataset::GloVe, 0.001);
    let bin = HyperplaneBinarizer::new(b.train.dims(), 256, 5);
    let codes = bin.encode_store(&b.train);
    let mut total = 0.0;
    let n = 10usize;
    for (_, q, gt) in b.iter_queries().take(n) {
        let code = bin.encode(q);
        let got: Vec<u32> = ssam::knn::binary::knn_hamming(&codes, &code, b.k())
            .iter()
            .map(|x| x.id)
            .collect();
        total += ssam::knn::recall::recall_ids(gt, &got);
    }
    let recall = total / n as f64;
    // Random-hyperplane codes are the *weak* end of the paper's spectrum
    // ("carefully constructed Hamming codes" do much better); demand far
    // above chance (k / N ≈ 0.005) rather than near-exact recall.
    assert!(recall > 0.05, "binarized recall collapsed: {recall}");
}

#[test]
fn device_handles_all_paper_dataset_shapes() {
    // GloVe (100-d) reproduces float ground truth exactly; the 960-d and
    // 4096-d stand-ins have per-dimension magnitudes ~1/√dims, where the
    // PU's Q16.16 multiply truncation can flip near-ties — the Section
    // II-D "negligible accuracy loss" shows up as high-but-not-perfect
    // agreement, so assert recall.
    for dataset in PaperDataset::ALL {
        let b = Benchmark::paper(dataset, 0.0003);
        let mut dev = SsamDevice::new(SsamConfig::default());
        dev.load_vectors(&b.train);
        let (_, q, gt) = b.iter_queries().next().expect("has queries");
        let r = dev
            .query(&DeviceQuery::Euclidean(q), b.k())
            .expect("device runs");
        let got: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        match dataset {
            PaperDataset::GloVe => assert_eq!(got, gt, "{}", dataset.name()),
            _ => {
                let recall = ssam::knn::recall::recall_ids(gt, &got);
                assert!(
                    recall >= 0.7,
                    "{}: recall {recall} ({got:?} vs {gt:?})",
                    dataset.name()
                );
            }
        }
    }
}

#[test]
fn manhattan_and_euclidean_device_queries_differ_when_they_should() {
    let b = tiny_benchmark();
    let mut dev = SsamDevice::new(SsamConfig::default());
    dev.load_vectors(&b.train);
    let q = b.queries.get(0);
    let re = dev.query(&DeviceQuery::Euclidean(q), b.k()).expect("runs");
    let rm = dev.query(&DeviceQuery::Manhattan(q), b.k()).expect("runs");
    let em: Vec<u32> = knn_exact(&b.train, q, b.k(), Metric::Manhattan)
        .iter()
        .map(|n| n.id)
        .collect();
    let got_m: Vec<u32> = rm.neighbors.iter().map(|n| n.id).collect();
    assert_eq!(got_m, em);
    // Both are valid top-k sets; the nearest element should agree.
    assert_eq!(re.neighbors[0].id, rm.neighbors[0].id);
}
