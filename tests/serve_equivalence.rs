//! Property test: online serving is observationally identical to serial
//! queries, under any interleaving of concurrent submissions.
//!
//! The serving runtime coalesces concurrent requests into device batches
//! whose membership depends on thread scheduling — which requests land
//! in the queue before a flush trigger fires is nondeterministic. The
//! invariant is that none of that can show through: whatever batches
//! form, every request's neighbors must be bit-identical to running the
//! same query alone through `SsamDevice::query()`. (The device-batch
//! half of this property — `query_batch` vs the serial loop — is covered
//! by `batch_equivalence.rs`; this test covers the batcher + worker-pool
//! layer above it.)

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use ssam::core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam::knn::VectorStore;
use ssam::serve::{OwnedQuery, Request, ServeConfig, Server};

const DIMS: usize = 8;

fn float_device(use_hw_queue: bool, seed: u64, n: usize) -> SsamDevice {
    let mut store = VectorStore::with_capacity(DIMS, n);
    let mut x = seed | 1;
    for _ in 0..n {
        let v: Vec<f32> = (0..DIMS)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 40) as i32 % 1000) as f32 / 500.0
            })
            .collect();
        store.push(&v);
    }
    let mut dev = SsamDevice::new(SsamConfig {
        use_hw_queue,
        ..SsamConfig::default()
    });
    dev.load_vectors(&store);
    dev
}

fn make_query(seed: u64, i: usize) -> OwnedQuery {
    let v: Vec<f32> = (0..DIMS)
        .map(|j| ((seed as usize + i * 13 + j * 7) as f32 * 0.17).sin())
        .collect();
    // Mix metrics across clients so compatible requests coalesce while
    // incompatible ones must be kept apart.
    match i % 3 {
        0 => OwnedQuery::Euclidean(v),
        1 => OwnedQuery::Manhattan(v),
        _ => OwnedQuery::Cosine(v),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn concurrent_serving_matches_serial_queries(
        seed in 1u64..1000,
        use_hw in any::<bool>(),
        clients in 2usize..5,
        per_client in 1usize..4,
        max_batch in 1usize..6,
        workers in 1usize..4,
        k_idx in 0usize..3,
    ) {
        let k = [1usize, 7, 40][k_idx];
        let mut reference = float_device(use_hw, seed, 120);
        let server = Server::start(
            float_device(use_hw, seed, 120),
            ServeConfig {
                max_batch,
                max_linger: Duration::from_millis(2),
                workers,
                ..ServeConfig::default()
            },
        );
        let server = Arc::new(server);

        // Real client threads: submission order and batch membership are
        // up to the scheduler.
        let joins: Vec<_> = (0..clients)
            .map(|c| {
                let handle = server.handle();
                std::thread::spawn(move || {
                    (0..per_client)
                        .map(|i| {
                            let idx = c * 100 + i;
                            let q = make_query(seed, idx);
                            let resp = handle
                                .query(Request::new(q, k))
                                .expect("request served");
                            (idx, resp)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();

        let mut served = Vec::new();
        for j in joins {
            served.extend(j.join().expect("client thread"));
        }
        prop_assert_eq!(served.len(), clients * per_client);

        for (idx, resp) in served {
            let owned = make_query(seed, idx);
            let dq = owned.as_device_query();
            let serial = reference.query(&dq, k).expect("serial query");
            prop_assert_eq!(
                &resp.neighbors,
                &serial.neighbors,
                "query {} (metric {:?}, batch of {}) diverged from serial",
                idx,
                dq.metric(),
                resp.batch_size
            );
        }

        let stats = Arc::into_inner(server)
            .expect("sole owner")
            .shutdown();
        prop_assert_eq!(stats.served, (clients * per_client) as u64);
        prop_assert_eq!(stats.failed, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Multi-tenant traffic: tenants shape *scheduling* (tenant-keyed
    /// batches, weighted-fair dequeue, priority tiers) but must never
    /// shape *results* — every request's neighbors stay bit-identical
    /// to the same query run serially, regardless of which tenant sent
    /// it or what QoS policy governed it.
    #[test]
    fn multi_tenant_serving_matches_serial_per_tenant_queries(
        seed in 1u64..1000,
        tenants in 2usize..4,
        per_tenant in 1usize..4,
        max_batch in 1usize..6,
        workers in 1usize..3,
    ) {
        use ssam::serve::{QosConfig, TenantId, TenantQos};
        let k = 7usize;
        let mut reference = float_device(false, seed, 120);
        // Distinct weights and tiers per tenant so QoS actually
        // arbitrates; no rate limits (admission must not drop requests).
        let qos = (0..tenants).fold(QosConfig::default(), |cfg, t| {
            cfg.with_tenant(
                TenantId(t as u32),
                TenantQos {
                    weight: 1.0 + t as f64,
                    tier: (t % 2) as u8,
                    ..TenantQos::default()
                },
            )
        });
        let server = Arc::new(Server::start(
            float_device(false, seed, 120),
            ServeConfig {
                max_batch,
                max_linger: Duration::from_millis(2),
                workers,
                qos,
                ..ServeConfig::default()
            },
        ));
        let joins: Vec<_> = (0..tenants)
            .map(|t| {
                let handle = server.handle();
                std::thread::spawn(move || {
                    (0..per_tenant)
                        .map(|i| {
                            let idx = t * 100 + i;
                            let resp = handle
                                .query(
                                    Request::new(make_query(seed, idx), k)
                                        .with_tenant(TenantId(t as u32)),
                                )
                                .expect("request served");
                            (idx, resp)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut served = Vec::new();
        for j in joins {
            served.extend(j.join().expect("tenant thread"));
        }
        prop_assert_eq!(served.len(), tenants * per_tenant);
        for (idx, resp) in served {
            let owned = make_query(seed, idx);
            let serial = reference
                .query(&owned.as_device_query(), k)
                .expect("serial query");
            prop_assert_eq!(
                &resp.neighbors,
                &serial.neighbors,
                "tenant {} query {} diverged from serial",
                idx / 100,
                idx
            );
        }
        let stats = Arc::into_inner(server).expect("sole owner").shutdown();
        prop_assert_eq!(stats.served, (tenants * per_tenant) as u64);
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.rejected_rate_limited, 0);
    }
}

/// Hamming serving against a binary payload, concurrent clients.
#[test]
fn concurrent_hamming_serving_matches_serial() {
    use ssam::knn::binary::BinaryStore;

    let mut store = BinaryStore::new(64);
    let mut x = 77u64;
    let mut word = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 24) as u32
    };
    for _ in 0..100 {
        let code = [word(), word()];
        store.push(&code);
    }
    let mut dev = SsamDevice::new(SsamConfig::default());
    dev.load_binary(&store);
    let mut reference = dev.clone();

    let server = Arc::new(Server::start(
        dev,
        ServeConfig {
            max_batch: 4,
            max_linger: Duration::from_millis(2),
            workers: 2,
            ..ServeConfig::default()
        },
    ));
    let joins: Vec<_> = (0..3)
        .map(|c| {
            let handle = server.handle();
            std::thread::spawn(move || {
                let code = vec![0xA5A5_0000u32 ^ (c * 7), 0x0F0F_FFFFu32.rotate_left(c)];
                let resp = handle
                    .query(Request::new(OwnedQuery::Hamming(code.clone()), 8))
                    .expect("served");
                (code, resp)
            })
        })
        .collect();
    for j in joins {
        let (code, resp) = j.join().expect("client thread");
        let serial = reference
            .query(&DeviceQuery::Hamming(&code), 8)
            .expect("serial");
        assert_eq!(resp.neighbors, serial.neighbors);
    }
}
