//! The on-accelerator kd-tree traversal kernel: the hardware stack unit
//! driving real backtracking over a scratchpad-resident tree.

use std::sync::Arc;

use ssam::core::isa::DRAM_BASE;
use ssam::core::kernels::traversal::{
    build_tree_image, image_id_order, kdtree_euclidean, TREE_ADDR,
};
use ssam::core::sim::pu::ProcessingUnit;
use ssam::knn::fixed::Fix32;
use ssam::knn::linear::knn_exact;
use ssam::knn::{Metric, VectorStore};

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = VectorStore::with_capacity(dims, n);
    for _ in 0..n {
        let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
        s.push(&v);
    }
    s
}

/// Stages the tree + query on a PU and runs the traversal kernel.
fn run_traversal(
    store: &VectorStore,
    query: &[f32],
    k: usize,
    leaf_size: usize,
    vl: usize,
    budget: i32,
) -> (Vec<u32>, ssam::core::sim::pu::RunStats) {
    let img = build_tree_image(store, leaf_size, vl);
    let kernel = kdtree_euclidean(store.dims(), vl, leaf_size);
    let mut pu = ProcessingUnit::new(vl, Arc::new(img.dram_words.clone()));
    pu.chain_pqueue(k.div_ceil(16));
    pu.load_program(kernel.program.clone());

    let q: Vec<i32> = {
        let mut q: Vec<i32> = query.iter().map(|&x| Fix32::from_f32(x).0).collect();
        q.resize(img.vec_words, 0);
        q
    };
    pu.scratchpad_mut()
        .write_block(0, &q)
        .expect("query staged");
    pu.scratchpad_mut()
        .write_block(TREE_ADDR, &img.spad_words)
        .expect("tree staged");
    pu.set_sreg(20, budget);
    pu.set_sreg(21, img.root_addr as i32);
    // s1/s2 are set per leaf by the kernel itself from node records.
    pu.set_sreg(1, DRAM_BASE as i32);

    let stats = pu.run(10_000_000).expect("traversal halts");
    let order = image_id_order(store, leaf_size);
    let ids: Vec<u32> = pu
        .pqueue()
        .entries()
        .iter()
        .take(k)
        .map(|e| order[e.id as usize])
        .collect();
    (ids, stats)
}

#[test]
fn full_budget_traversal_matches_exact_search() {
    let store = random_store(120, 6, 1);
    let query: Vec<f32> = vec![0.1, -0.2, 0.3, 0.0, 0.25, -0.1];
    let k = 5;
    let (ids, stats) = run_traversal(&store, &query, k, 8, 4, 1_000);
    let expect: Vec<u32> = knn_exact(&store, &query, k, Metric::Euclidean)
        .iter()
        .map(|n| n.id)
        .collect();
    assert_eq!(ids, expect);
    assert!(
        stats.stack_ops > 0,
        "traversal must exercise the stack unit"
    );
}

#[test]
fn leaf_budget_bounds_work() {
    let store = random_store(256, 4, 2);
    let query = [0.0f32; 4];
    let (_, full) = run_traversal(&store, &query, 4, 8, 4, 1_000);
    let (_, capped) = run_traversal(&store, &query, 4, 8, 4, 3);
    assert!(capped.dram.bytes_read < full.dram.bytes_read / 4);
    assert!(capped.cycles < full.cycles);
}

#[test]
fn small_budget_still_finds_nearby_neighbors() {
    // Near-first descent: even one leaf should find decent neighbors.
    let store = random_store(200, 4, 3);
    let query: Vec<f32> = store.get(17).to_vec();
    let (ids, _) = run_traversal(&store, &query, 3, 16, 4, 1);
    assert!(
        ids.contains(&17),
        "query's own bucket must contain it: {ids:?}"
    );
}

#[test]
fn traversal_works_across_vector_lengths() {
    let store = random_store(90, 5, 4);
    let query = [0.2f32, 0.1, -0.3, 0.4, 0.0];
    let expect: Vec<u32> = knn_exact(&store, &query, 4, Metric::Euclidean)
        .iter()
        .map(|n| n.id)
        .collect();
    for vl in [2usize, 4, 8, 16] {
        let (ids, _) = run_traversal(&store, &query, 4, 8, vl, 1_000);
        assert_eq!(ids, expect, "VL={vl}");
    }
}

#[test]
fn duplicate_points_traverse_safely() {
    let mut store = VectorStore::new(3);
    for _ in 0..50 {
        store.push(&[1.0, 1.0, 1.0]);
    }
    for i in 0..10 {
        store.push(&[2.0 + i as f32 * 0.01, 0.0, 0.0]);
    }
    let (ids, _) = run_traversal(&store, &[1.0, 1.0, 1.0], 3, 8, 4, 1_000);
    assert_eq!(ids.len(), 3);
}
