//! Integration tests for the query-scoped telemetry layer: every
//! execution path (module device, on-device index, cluster) must emit
//! records that (a) pass every `verify_record` accounting invariant,
//! (b) reconcile with the `QueryTiming`/`BatchTiming` the device itself
//! reported, and (c) round-trip through the JSONL export. The corruption
//! tests take a *real* device-produced record, break exactly one account,
//! and assert the matching invariant fires.

use ssam::core::device::cluster::SsamCluster;
use ssam::core::device::indexed::IndexedSsamDevice;
use ssam::core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam::core::telemetry::{verify_record, AccountingError, QueryRecord, RecordKind, Telemetry};
use ssam::datasets::json;
use ssam::knn::VectorStore;

const DIMS: usize = 8;
const REL_TOL: f64 = 1e-9;

fn store(n: usize, seed: u64) -> VectorStore {
    let mut s = VectorStore::with_capacity(DIMS, n);
    let mut x = seed | 1;
    for _ in 0..n {
        let v: Vec<f32> = (0..DIMS)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 40) as i32 % 1000) as f32 / 500.0
            })
            .collect();
        s.push(&v);
    }
    s
}

fn queries(n: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..DIMS)
                .map(|j| ((i + 3 * j) as f32 * 0.37).sin())
                .collect()
        })
        .collect()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()) + 1e-18
}

/// Runs a batch through `SsamDevice` with a sink attached and returns
/// the collected records (all of which already survived collection-time
/// checking — a violation would have panicked in this debug build).
fn device_records(batch: usize) -> (Telemetry, Vec<QueryRecord>) {
    let mut dev = SsamDevice::new(SsamConfig::default());
    dev.load_vectors(&store(300, 17));
    let sink = Telemetry::default();
    dev.attach_telemetry(&sink);
    let qs = queries(batch);
    let dq: Vec<DeviceQuery<'_>> = qs.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
    let out = dev.query_batch(&dq, 5).expect("batch runs");

    let records = sink.records();
    assert_eq!(records.len(), batch + 1, "per-query records + batch record");
    assert!(sink.violations().is_empty(), "{:?}", sink.violations());

    // Per-query records reconcile with the serial-equivalent timings.
    for (r, res) in records.iter().zip(&out.results) {
        assert_eq!(r.kind, RecordKind::Query);
        assert!(close(r.seconds, res.timing.seconds));
        assert_eq!(r.total_cycles, res.timing.total_cycles);
        assert_eq!(r.total_bytes, res.timing.total_bytes);
        assert!(close(r.energy_mj, res.timing.energy_mj));
        assert_eq!(r.compute_bound, res.timing.compute_bound);
        assert_eq!(r.vaults.len(), res.vault_stats.len());
    }
    // The batch record reconciles with the pipelined BatchTiming.
    let b = records.last().expect("batch record");
    assert_eq!(b.kind, RecordKind::Batch);
    assert_eq!(b.batch, batch);
    assert!(close(b.seconds, out.timing.seconds));
    assert_eq!(b.total_cycles, out.timing.total_cycles);
    assert_eq!(b.total_bytes, out.timing.total_bytes);
    assert!(close(b.energy_mj, out.timing.energy_mj));
    (sink, records)
}

#[test]
fn device_records_verify_and_reconcile() {
    let (_, records) = device_records(3);
    for r in &records {
        verify_record(r).expect("every record passes verification");
    }
}

#[test]
fn indexed_records_verify_and_reconcile() {
    let mut dev = IndexedSsamDevice::build(SsamConfig::default(), &store(400, 23), 16);
    let sink = Telemetry::default();
    dev.attach_telemetry(&sink);
    let mut timings = Vec::new();
    for q in queries(3) {
        let (_, t, _) = dev.query(&q, 5, 8).expect("query runs");
        timings.push(t);
    }
    assert_eq!(sink.len(), 3);
    assert!(sink.violations().is_empty(), "{:?}", sink.violations());
    for (r, t) in sink.records().iter().zip(&timings) {
        assert_eq!(r.kind, RecordKind::Indexed);
        assert!(close(r.seconds, t.seconds));
        assert_eq!(r.total_cycles, t.total_cycles);
        assert_eq!(r.total_bytes, t.total_bytes);
        assert!(close(r.energy_mj, t.energy_mj));
        assert_eq!(r.compute_bound, t.compute_bound);
        verify_record(r).expect("record passes verification");
    }
}

#[test]
fn cluster_records_verify_and_reconcile() {
    let mut cluster = SsamCluster::build(SsamConfig::default(), 3, &store(450, 31));
    let sink = Telemetry::default();
    cluster.attach_telemetry(&sink);
    let qs = queries(2);
    let refs: Vec<&[f32]> = qs.iter().map(Vec::as_slice).collect();
    let out = cluster.query_batch(&refs, 4).expect("cluster runs");
    assert_eq!(sink.len(), 2);
    assert!(sink.violations().is_empty(), "{:?}", sink.violations());
    for (r, (_, t)) in sink.records().iter().zip(&out) {
        assert_eq!(r.kind, RecordKind::Cluster);
        assert_eq!(r.vaults.len(), 3, "one account per module");
        assert!(close(r.seconds, t.seconds));
        assert!(close(r.energy_mj, t.energy_mj));
        assert!(close(r.phases.simulate_seconds, t.module_seconds));
        verify_record(r).expect("record passes verification");
    }
}

#[test]
fn jsonl_export_parses_and_round_trips() {
    let (sink, records) = device_records(2);
    let jsonl = sink.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), records.len());
    for (line, r) in lines.iter().zip(&records) {
        let v = json::from_str(line).expect("line is valid JSON");
        let obj = v.as_object().expect("record is an object");
        assert_eq!(obj["seq"].as_f64().expect("seq") as u64, r.seq);
        assert_eq!(obj["kind"].as_str().expect("kind"), r.kind.name());
        assert_eq!(obj["label"].as_str().expect("label"), r.label);
        assert!(close(obj["seconds"].as_f64().expect("seconds"), r.seconds));
        assert_eq!(
            obj["total_cycles"].as_f64().expect("cycles") as u64,
            r.total_cycles
        );
        assert_eq!(
            obj["total_bytes"].as_f64().expect("bytes") as u64,
            r.total_bytes
        );
        let vaults = obj["vaults"].as_array().expect("vaults array");
        assert_eq!(vaults.len(), r.vaults.len());
        // Σ per-vault bytes in the *export* still equals the exported
        // total — the invariant survives serialization.
        let sum: u64 = vaults
            .iter()
            .map(|v| {
                v.as_object().expect("vault object")["bytes"]
                    .as_f64()
                    .expect("vault bytes") as u64
            })
            .sum();
        assert_eq!(sum, r.total_bytes);
    }
}

#[test]
fn corrupted_bytes_sum_fires_on_real_record() {
    let (_, records) = device_records(1);
    let mut r = records[0].clone();
    r.vaults[0].bytes += 1;
    assert!(matches!(
        verify_record(&r),
        Err(AccountingError::BytesMismatch { .. })
    ));
}

#[test]
fn corrupted_classification_fires_on_real_record() {
    let (_, records) = device_records(1);
    let mut r = records[0].clone();
    r.compute_bound = !r.compute_bound;
    assert!(matches!(
        verify_record(&r),
        Err(AccountingError::ClassificationMismatch { .. })
    ));
}

#[test]
fn corrupted_energy_sign_fires_on_real_record() {
    let (_, records) = device_records(1);
    let mut r = records[0].clone();
    r.energy_mj = -r.energy_mj;
    assert!(matches!(
        verify_record(&r),
        Err(AccountingError::BadEnergy { .. })
    ));
}

#[test]
fn corrupted_seconds_fires_on_real_record() {
    let (_, records) = device_records(1);
    let mut r = records[0].clone();
    r.seconds *= 1.5;
    assert!(matches!(
        verify_record(&r),
        Err(AccountingError::SecondsMismatch { .. })
    ));
}
