//! Differential property: scatter-gather over shards answers queries
//! exactly as a single-module store holding the same live set.
//!
//! After any interleaving of inserts, deletes, seals, and compactions,
//! [`ssam::store::ShardedStore::query`] must return the same neighbors —
//! id for id, distance bit for bit — as a fresh single-module
//! [`ssam::store::Store`] fed the identical op stream. This pins the
//! shard placement, the per-shard top-k gather, and the global
//! `(distance, id)` merge at once: every top-k that straddles a shard
//! boundary must interleave exactly as the unsharded scan would, and a
//! downed replica must change *nothing* about the answer as long as a
//! shard-mate survives.
//!
//! Values are drawn from (-1, 1) for the same fixed-point-ordering
//! precondition the other differential suites rely on.

use proptest::prelude::*;

use ssam::core::device::DeviceMetric;
use ssam::store::{ShardedStore, ShardedStoreConfig, Store, StoreConfig};

const DIMS: usize = 6;
const UIDS: u32 = 40;
const REPLICAS: usize = 2;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, Vec<f32>),
    Delete(u32),
    Seal,
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored proptest has no weighted `prop_oneof!`; duplicated
    // arms bias the mix toward inserts.
    let insert = || {
        (0u32..UIDS, prop::collection::vec(-1.0f32..1.0, DIMS))
            .prop_map(|(uid, v)| Op::Insert(uid, v))
    };
    prop_oneof![
        insert(),
        insert(),
        insert(),
        insert(),
        (0u32..UIDS).prop_map(Op::Delete),
        (0u32..UIDS).prop_map(Op::Delete),
        Just(Op::Seal),
        Just(Op::Compact),
    ]
}

/// Tiny memtable and fanout so short op sequences still cross every
/// lifecycle edge on every module.
fn store_config() -> StoreConfig {
    let mut c = StoreConfig::new(DIMS);
    c.memtable_capacity = 4;
    c.fanout = 2;
    c.device.fast_path = true;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded store and a single-module twin fed the same op
    /// stream answer every query bit-identically — healthy, and again
    /// with one replica module down (reads fail over to shard-mates).
    #[test]
    fn sharded_query_is_bit_identical_to_single_module(
        ops in prop::collection::vec(arb_op(), 1..48),
        shards in 2usize..5,
        seed in any::<u64>(),
    ) {
        let mut sharded = ShardedStore::create(ShardedStoreConfig::new(
            shards,
            REPLICAS,
            store_config(),
        ));
        let mut single = Store::create(store_config());
        for op in &ops {
            match op {
                Op::Insert(uid, v) => {
                    sharded.insert(*uid, v).expect("sharded insert");
                    single.insert(*uid, v).expect("single insert");
                }
                Op::Delete(uid) => {
                    sharded.delete(*uid).expect("sharded delete");
                    single.delete(*uid).expect("single delete");
                }
                Op::Seal => {
                    sharded.seal_all();
                    single.seal();
                }
                Op::Compact => {
                    sharded.compact_step();
                    single.compact_step();
                }
            }
        }
        prop_assert_eq!(sharded.live_len(), single.live_set().len());

        // k values chosen so the top-k regularly spans several shards:
        // k = live_len ranks the entire live set, so the merged order
        // must interleave across every shard boundary.
        let live = sharded.live_len();
        let ks = [1usize, 3, live.max(1), 2 * live.max(1)];
        let check = |sharded: &mut ShardedStore, single: &mut Store| {
            for qi in 0..3u32 {
                let q: Vec<f32> = (0..DIMS)
                    .map(|d| (((qi * 11 + d as u32 * 5) % 17) as f32 - 8.0) / 9.0)
                    .collect();
                for metric in [DeviceMetric::Euclidean, DeviceMetric::Manhattan] {
                    for &k in &ks {
                        let a = sharded.query(&q, metric, k).expect("sharded query");
                        let b = single.query(&q, metric, k).expect("single query");
                        assert_eq!(a.neighbors.len(), b.neighbors.len());
                        for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
                            assert_eq!(x.id, y.id);
                            assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                        }
                        // Replication means no coverage is ever lost.
                        assert_eq!(a.faults.covered_vectors, a.faults.total_vectors);
                        assert!(a.faults.lost_units.is_empty());
                    }
                }
            }
        };
        check(&mut sharded, &mut single);

        // One replica down: reads route to its shard-mate; the merged
        // answer must not move by a bit.
        sharded.kill_module((seed as usize) % (shards * REPLICAS));
        check(&mut sharded, &mut single);
    }
}
