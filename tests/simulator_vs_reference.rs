//! Simulator-vs-reference equivalence: the assembled kernels, executed by
//! the cycle-level PU simulator over real data, must reproduce the
//! `ssam-knn` reference algorithms — the correctness methodology of the
//! paper's Section IV ("validate the correctness of our design").

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

use ssam::core::isa::DRAM_BASE;
use ssam::core::kernels::linear;
use ssam::core::sim::pu::ProcessingUnit;
use ssam::knn::fixed::Fix32;
use ssam::knn::linear::knn_exact;
use ssam::knn::{Metric, VectorStore};

fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = VectorStore::with_capacity(dims, n);
    for _ in 0..n {
        let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
        s.push(&v);
    }
    s
}

/// Stages a store on one PU and runs a dense-metric kernel.
fn run_kernel(
    store: &VectorStore,
    query: &[f32],
    kernel: &ssam::core::kernels::Kernel,
    vl: usize,
    extra_setup: impl FnOnce(&mut ProcessingUnit),
) -> Vec<u32> {
    let vw = kernel.layout.vec_words;
    let mut words = Vec::with_capacity(store.len() * vw);
    for (_, v) in store.iter() {
        for &x in v {
            words.push(Fix32::from_f32(x).0);
        }
        words.resize(words.len() + (vw - v.len()), 0);
    }
    let shard_bytes = words.len() * 4;

    let mut pu = ProcessingUnit::new(vl, Arc::new(words));
    pu.load_program(kernel.program.clone());
    let mut q: Vec<i32> = query.iter().map(|&x| Fix32::from_f32(x).0).collect();
    q.resize(vw, 0);
    pu.scratchpad_mut()
        .write_block(0, &q)
        .expect("query staged");
    pu.set_sreg(1, DRAM_BASE as i32);
    pu.set_sreg(2, DRAM_BASE as i32 + shard_bytes as i32);
    extra_setup(&mut pu);
    pu.run(100_000_000).expect("kernel halts");
    pu.pqueue().entries().iter().map(|e| e.id as u32).collect()
}

#[test]
fn euclidean_kernel_matches_reference_across_shapes() {
    for (n, dims, vl, seed) in [
        (64, 7, 2, 1u64),
        (100, 16, 4, 2),
        (80, 33, 8, 3),
        (50, 100, 16, 4),
    ] {
        let store = random_store(n, dims, seed);
        let mut rng = StdRng::seed_from_u64(seed + 100);
        let query: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
        let kernel = linear::euclidean(dims, vl);
        let got = run_kernel(&store, &query, &kernel, vl, |_| {});
        let expect: Vec<u32> = knn_exact(&store, &query, 16.min(n), Metric::Euclidean)
            .iter()
            .map(|x| x.id)
            .collect();
        assert_eq!(
            &got[..expect.len().min(got.len())],
            &expect[..],
            "n={n} dims={dims} vl={vl}"
        );
    }
}

#[test]
fn manhattan_kernel_matches_reference() {
    let dims = 12;
    let store = random_store(90, dims, 5);
    let query: Vec<f32> = (0..dims).map(|i| (i as f32 * 0.37).sin()).collect();
    let kernel = linear::manhattan(dims, 4);
    let got = run_kernel(&store, &query, &kernel, 4, |_| {});
    let expect: Vec<u32> = knn_exact(&store, &query, 16, Metric::Manhattan)
        .iter()
        .map(|x| x.id)
        .collect();
    assert_eq!(&got[..], &expect[..]);
}

#[test]
fn cosine_kernel_top1_matches_reference() {
    let dims = 20;
    let store = random_store(120, dims, 6);
    let query: Vec<f32> = (0..dims).map(|i| (i as f32 * 0.17).cos()).collect();
    let kernel = linear::cosine(dims, 4);
    let norm = Fix32::from_f32(ssam::knn::distance::norm_sq(&query)).0;
    let got = run_kernel(&store, &query, &kernel, 4, |pu| pu.set_sreg(10, norm));
    let expect: Vec<u32> = knn_exact(&store, &query, 16, Metric::Cosine)
        .iter()
        .map(|x| x.id)
        .collect();
    assert_eq!(got[0], expect[0], "nearest cosine neighbor must agree");
    // cos² ranking may permute near-ties; demand strong overlap on top-8.
    let overlap = got[..8]
        .iter()
        .filter(|id| expect[..8].contains(id))
        .count();
    assert!(overlap >= 6, "got {got:?}\nexpect {expect:?}");
}

#[test]
fn swqueue_kernel_matches_hw_queue_kernel() {
    let dims = 10;
    let k = 9;
    let store = random_store(150, dims, 7);
    let query: Vec<f32> = (0..dims).map(|i| 0.05 * i as f32).collect();

    let hw = linear::euclidean(dims, 4);
    let hw_ids = run_kernel(&store, &query, &hw, 4, |_| {});

    let sw = linear::euclidean_swqueue(dims, 4, k);
    let vw = sw.layout.vec_words;
    let mut words = Vec::with_capacity(store.len() * vw);
    for (_, v) in store.iter() {
        for &x in v {
            words.push(Fix32::from_f32(x).0);
        }
        words.resize(words.len() + (vw - v.len()), 0);
    }
    let shard_bytes = words.len() * 4;
    let mut pu = ProcessingUnit::new(4, Arc::new(words));
    pu.load_program(sw.program.clone());
    let mut q: Vec<i32> = query.iter().map(|&x| Fix32::from_f32(x).0).collect();
    q.resize(vw, 0);
    pu.scratchpad_mut()
        .write_block(0, &q)
        .expect("query staged");
    let init: Vec<i32> = (0..k).flat_map(|_| [i32::MAX, -1]).collect();
    pu.scratchpad_mut()
        .write_block(sw.layout.swqueue_addr, &init)
        .expect("queue initialized");
    pu.set_sreg(1, DRAM_BASE as i32);
    pu.set_sreg(2, DRAM_BASE as i32 + shard_bytes as i32);
    pu.run(100_000_000).expect("kernel halts");
    let region = pu
        .scratchpad()
        .read_block(sw.layout.swqueue_addr, 2 * k)
        .expect("queue readable");
    let sw_ids: Vec<u32> = region.chunks_exact(2).map(|p| p[1] as u32).collect();

    assert_eq!(&sw_ids[..], &hw_ids[..k]);
}

#[test]
fn hamming_kernel_matches_reference() {
    use ssam::knn::binary::{knn_hamming, BinaryStore};
    let mut rng = StdRng::seed_from_u64(8);
    let words_per_code = 6;
    let mut codes = BinaryStore::new(words_per_code * 32);
    for _ in 0..130 {
        let w: Vec<u32> = (0..words_per_code).map(|_| rng.random()).collect();
        codes.push(&w);
    }
    let query: Vec<u32> = (0..words_per_code).map(|_| rng.random()).collect();

    let kernel = linear::hamming(words_per_code, 4);
    let vw = kernel.layout.vec_words;
    let mut words = Vec::with_capacity(codes.len() * vw);
    for id in 0..codes.len() as u32 {
        for &w in codes.get(id) {
            words.push(w as i32);
        }
        words.resize(words.len() + (vw - words_per_code), 0);
    }
    let shard_bytes = words.len() * 4;
    let mut pu = ProcessingUnit::new(4, Arc::new(words));
    pu.load_program(kernel.program.clone());
    let mut q: Vec<i32> = query.iter().map(|&w| w as i32).collect();
    q.resize(vw, 0);
    pu.scratchpad_mut()
        .write_block(0, &q)
        .expect("query staged");
    pu.set_sreg(1, DRAM_BASE as i32);
    pu.set_sreg(2, DRAM_BASE as i32 + shard_bytes as i32);
    pu.run(10_000_000).expect("kernel halts");

    let got: Vec<u32> = pu.pqueue().entries().iter().map(|e| e.id as u32).collect();
    let expect: Vec<u32> = knn_hamming(&codes, &query, 16)
        .iter()
        .map(|n| n.id)
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn prefetch_hits_dominate_in_generated_kernels() {
    // The kernels issue MEM_FETCH per vector; the stream buffer should
    // cover (nearly) every vector load.
    let dims = 24;
    let store = random_store(60, dims, 9);
    let kernel = linear::euclidean(dims, 8);
    let vw = kernel.layout.vec_words;
    let mut words = Vec::new();
    for (_, v) in store.iter() {
        for &x in v {
            words.push(Fix32::from_f32(x).0);
        }
        words.resize(words.len() + (vw - v.len()), 0);
    }
    let shard_bytes = words.len() * 4;
    let mut pu = ProcessingUnit::new(8, Arc::new(words));
    pu.load_program(kernel.program.clone());
    pu.scratchpad_mut()
        .write_block(0, &vec![0; vw])
        .expect("query");
    pu.set_sreg(1, DRAM_BASE as i32);
    pu.set_sreg(2, DRAM_BASE as i32 + shard_bytes as i32);
    let stats = pu.run(10_000_000).expect("runs");
    let hit_rate = stats.dram.hits as f64 / (stats.dram.hits + stats.dram.misses) as f64;
    assert!(hit_rate > 0.95, "hit rate {hit_rate}");
}
