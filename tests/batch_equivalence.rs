//! Property test: the batched device engine is observationally identical
//! to a serial `query()` loop.
//!
//! `SsamDevice::query_batch` recycles processing units across queries
//! (architectural-state reset + query rewrite) and shares instruction
//! images between (query, vault) runs; none of that may leak between
//! queries. Every (metric × k × queue-implementation) configuration must
//! return bit-identical neighbors, per-vault simulation statistics, and
//! serial-equivalent per-query timing.

use proptest::prelude::*;

use ssam::core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam::knn::binary::BinaryStore;
use ssam::knn::VectorStore;

const DIMS: usize = 8;
const CODE_WORDS: usize = 2;

fn float_device(use_hw_queue: bool, seed: u64, n: usize) -> SsamDevice {
    let mut store = VectorStore::with_capacity(DIMS, n);
    let mut x = seed | 1;
    for _ in 0..n {
        let v: Vec<f32> = (0..DIMS)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 40) as i32 % 1000) as f32 / 500.0
            })
            .collect();
        store.push(&v);
    }
    let mut dev = SsamDevice::new(SsamConfig {
        use_hw_queue,
        ..SsamConfig::default()
    });
    dev.load_vectors(&store);
    dev
}

fn binary_device(use_hw_queue: bool, seed: u64, n: usize) -> SsamDevice {
    let mut store = BinaryStore::new(CODE_WORDS * 32);
    let mut x = seed | 1;
    for _ in 0..n {
        let code: Vec<u32> = (0..CODE_WORDS)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 24) as u32
            })
            .collect();
        store.push(&code);
    }
    let mut dev = SsamDevice::new(SsamConfig {
        use_hw_queue,
        ..SsamConfig::default()
    });
    dev.load_binary(&store);
    dev
}

/// Asserts a batch against the serial loop on an already-loaded device.
fn assert_batch_equivalent(dev: &mut SsamDevice, queries: &[DeviceQuery<'_>], k: usize) {
    let batch = dev.query_batch(queries, k).expect("batch runs");
    assert_eq!(batch.results.len(), queries.len());
    for (q, batched) in queries.iter().zip(&batch.results) {
        let serial = dev.query(q, k).expect("serial runs");
        assert_eq!(serial.neighbors, batched.neighbors, "neighbors diverge");
        assert_eq!(serial.vault_stats, batched.vault_stats, "stats diverge");
        assert_eq!(serial.timing, batched.timing, "timing diverges");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn float_batches_match_serial_loop(
        seed in 1u64..1000,
        k_idx in 0usize..3,
        use_hw in any::<bool>(),
        batch in 2usize..5,
    ) {
        let k = [1usize, 8, 40][k_idx];
        let mut dev = float_device(use_hw, seed, 120);
        let qs: Vec<Vec<f32>> = (0..batch)
            .map(|i| {
                (0..DIMS)
                    .map(|j| ((seed as usize + i * 13 + j * 7) as f32 * 0.17).sin())
                    .collect()
            })
            .collect();
        // Alternate metrics inside one batch so recycled PUs must reload
        // kernels mid-tile.
        let queries: Vec<DeviceQuery<'_>> = qs
            .iter()
            .enumerate()
            .map(|(i, q)| match i % 3 {
                0 => DeviceQuery::Euclidean(q),
                1 => DeviceQuery::Manhattan(q),
                _ => DeviceQuery::Cosine(q),
            })
            .collect();
        assert_batch_equivalent(&mut dev, &queries, k);
    }

    #[test]
    fn hamming_batches_match_serial_loop(
        seed in 1u64..1000,
        k_idx in 0usize..3,
        use_hw in any::<bool>(),
    ) {
        let k = [1usize, 8, 40][k_idx];
        let mut dev = binary_device(use_hw, seed, 100);
        let codes: Vec<Vec<u32>> = (0..3u32)
            .map(|i| (0..CODE_WORDS as u32).map(|j| (seed as u32 ^ (i * 7 + j)).wrapping_mul(0x9E37_79B9)).collect())
            .collect();
        let queries: Vec<DeviceQuery<'_>> =
            codes.iter().map(|c| DeviceQuery::Hamming(c)).collect();
        assert_batch_equivalent(&mut dev, &queries, k);
    }
}
