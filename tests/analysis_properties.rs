//! Property tests tying the static verifier to the simulator.
//!
//! Two directions over randomized programs with control flow:
//!
//! * **Soundness** — a program the verifier passes with *zero*
//!   diagnostics cannot fault at runtime, even with the simulator's
//!   uninitialized-read trap enabled.
//! * **Fault coverage** — any runtime fault the simulator raises is
//!   anticipated by at least one diagnostic.
//!
//! The generator produces terminating programs (branches only jump
//! forward) with deliberate hazards mixed in: reads of registers the
//! prologue never initializes, unbalanced `POP`s, out-of-range lane
//! immediates, inserts with a randomly omitted `PQUEUE_RESET`, and
//! occasionally corrupted branch targets.

use std::sync::Arc;

use proptest::prelude::*;

use ssam::core::analysis::{verify_program, VerifyConfig};
use ssam::core::isa::inst::{AluOp, BranchCond, Instruction, PqField, UnaryOp};
use ssam::core::isa::reg::{SReg, VReg};
use ssam::core::isa::SCRATCHPAD_BYTES;
use ssam::core::sim::pu::{ProcessingUnit, SimError};
use ssam::core::sim::stack::STACK_DEPTH;

const VL: usize = 4;
/// Scalar registers the prologue initializes (`s1..=s12`); sources are
/// drawn from a wider range so some reads hit uninitialized registers.
const INIT_SREGS: u8 = 12;
const INIT_VREGS: u8 = 6;

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::And),
        Just(AluOp::Sl),
    ]
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Ne),
        Just(BranchCond::Eq),
        Just(BranchCond::Lt),
        Just(BranchCond::Gt),
    ]
}

/// Source registers: mostly initialized, sometimes not (s13..=s17).
fn arb_src() -> impl Strategy<Value = SReg> {
    (0u8..=INIT_SREGS + 5).prop_map(SReg)
}

/// Destination registers stay in the initialized band so later reads of a
/// written register remain clean.
fn arb_dst() -> impl Strategy<Value = SReg> {
    (1u8..=INIT_SREGS).prop_map(SReg)
}

fn arb_vsrc() -> impl Strategy<Value = VReg> {
    (0u8..8).prop_map(VReg)
}

fn arb_vdst() -> impl Strategy<Value = VReg> {
    (0u8..INIT_VREGS).prop_map(VReg)
}

fn arb_spad_offset() -> impl Strategy<Value = i32> {
    (0..(SCRATCHPAD_BYTES as i32 / 4 - VL as i32)).prop_map(|w| w * 4)
}

/// One body instruction. `Branch` targets are generated as small relative
/// skips and rewritten to absolute forward targets (clamped to the final
/// `HALT`) once the program is assembled, so loops are impossible and
/// every program terminates.
fn arb_body_inst() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_alu(), arb_dst(), arb_src(), arb_src())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::SAlu { op, rd, rs1, rs2 }),
        (arb_alu(), arb_dst(), arb_src(), -64i32..64)
            .prop_map(|(op, rd, rs1, imm)| Instruction::SAluImm { op, rd, rs1, imm }),
        (arb_dst(), arb_src()).prop_map(|(rd, rs1)| Instruction::SUnary {
            op: UnaryOp::Popcount,
            rd,
            rs1
        }),
        (arb_cond(), arb_src(), arb_src(), 0u32..6).prop_map(|(cond, rs1, rs2, target)| {
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                target,
            }
        }),
        arb_src().prop_map(|rs1| Instruction::Push { rs1 }),
        arb_dst().prop_map(|rd| Instruction::Pop { rd }),
        (arb_src(), arb_src())
            .prop_map(|(rs_id, rs_val)| Instruction::PqueueInsert { rs_id, rs_val }),
        (arb_dst(), arb_src()).prop_map(|(rd, rs_idx)| Instruction::PqueueLoad {
            rd,
            rs_idx,
            field: PqField::Value
        }),
        (arb_dst(), arb_src(), arb_src()).prop_map(|(rd, rs1, rs2)| Instruction::Sfxp {
            rd,
            rs1,
            rs2
        }),
        (arb_dst(), arb_spad_offset()).prop_map(|(rd, offset)| Instruction::Load {
            rd,
            rs_base: SReg(0),
            offset
        }),
        (arb_src(), arb_spad_offset()).prop_map(|(rs_val, offset)| Instruction::Store {
            rs_val,
            rs_base: SReg(0),
            offset
        }),
        // Lane range deliberately includes VL (an out-of-range lane).
        (arb_vdst(), arb_src(), -1i8..=VL as i8).prop_map(|(vd, rs1, lane)| Instruction::SvMove {
            vd,
            rs1,
            lane
        }),
        (arb_dst(), arb_vsrc(), 0u8..=VL as u8).prop_map(|(rd, vs1, lane)| Instruction::VsMove {
            rd,
            vs1,
            lane
        }),
        (arb_alu(), arb_vdst(), arb_vsrc(), arb_vsrc())
            .prop_map(|(op, vd, vs1, vs2)| Instruction::VAlu { op, vd, vs1, vs2 }),
        (arb_vdst(), arb_vsrc(), arb_vsrc()).prop_map(|(vd, vs1, vs2)| Instruction::Vfxp {
            vd,
            vs1,
            vs2
        }),
        (arb_vdst(), arb_spad_offset()).prop_map(|(vd, offset)| Instruction::VLoad {
            vd,
            rs_base: SReg(0),
            offset
        }),
        (arb_vsrc(), arb_spad_offset()).prop_map(|(vs, offset)| Instruction::VStore {
            vs,
            rs_base: SReg(0),
            offset
        }),
    ]
}

/// A full program: initialization prologue (with a possibly-omitted
/// `PQUEUE_RESET`), a random body with forward-only branches, `HALT`.
/// `corrupt_branch` retargets one branch past the end of the program.
fn build_program(
    body: Vec<Instruction>,
    with_reset: bool,
    corrupt_branch: bool,
) -> Vec<Instruction> {
    let mut program = Vec::new();
    if with_reset {
        program.push(Instruction::PqueueReset);
    }
    for r in 1..=INIT_SREGS {
        program.push(Instruction::SAluImm {
            op: AluOp::Add,
            rd: SReg(r),
            rs1: SReg(0),
            imm: r as i32 * 3,
        });
    }
    for v in 0..INIT_VREGS {
        program.push(Instruction::SvMove {
            vd: VReg(v),
            rs1: SReg(1),
            lane: -1,
        });
    }
    let body_start = program.len();
    program.extend(body);
    program.push(Instruction::Halt);
    let last = (program.len() - 1) as u32;

    // Rewrite branch skips into valid forward targets.
    let mut corruptible = None;
    for (pc, inst) in program.iter_mut().enumerate().skip(body_start) {
        if let Instruction::Branch { target, .. } = inst {
            *target = (pc as u32 + 1 + *target).min(last);
            corruptible = Some(pc);
        }
    }
    if corrupt_branch {
        if let Some(pc) = corruptible {
            if let Instruction::Branch { target, .. } = &mut program[pc] {
                *target = last + 13;
            }
        }
    }
    program
}

fn config() -> VerifyConfig {
    VerifyConfig {
        vl: VL,
        driver_sregs: 0,
        driver_vregs: 0,
        stack_depth: STACK_DEPTH,
        require_pqueue_reset: true,
        query_region: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness: zero diagnostics ⇒ no runtime fault (traps armed).
    /// Fault coverage: a runtime fault ⇒ at least one diagnostic.
    #[test]
    fn verifier_verdict_brackets_runtime_behavior(
        body in prop::collection::vec(arb_body_inst(), 0..40),
        with_reset in (0u8..10).prop_map(|x| x < 8),
        corrupt_branch in (0u8..10).prop_map(|x| x == 0),
    ) {
        let program = build_program(body, with_reset, corrupt_branch);
        let diags = verify_program(&program, &config());

        let mut pu = ProcessingUnit::new(VL, Arc::new(vec![0i32; 16]));
        pu.enable_uninit_trap();
        pu.load_program(program.clone());
        // Forward-only branches: every instruction executes at most once,
        // so the budget can never be the thing that stops the run.
        let result = pu.run(program.len() as u64 + 10);

        if diags.is_empty() {
            prop_assert!(
                result.is_ok(),
                "verifier passed the program but the simulator faulted: {:?}",
                result
            );
        }
        if let Err(e) = &result {
            prop_assert!(
                !matches!(e, SimError::InstructionLimit { .. }),
                "forward-only programs must terminate"
            );
            prop_assert!(
                !diags.is_empty(),
                "simulator faulted with `{e}` but the verifier found nothing"
            );
        }
    }

    /// No false alarms on hazard-free programs: an ALU-only body whose
    /// sources are all initialized verifies completely clean.
    #[test]
    fn alu_only_programs_with_initialized_sources_are_clean(
        body in prop::collection::vec(arb_body_inst(), 1..20),
    ) {
        // Strip the hazards: keep only ALU ops on initialized registers.
        let safe: Vec<Instruction> = body
            .into_iter()
            .filter(|i| matches!(i,
                Instruction::SAlu { .. } | Instruction::SAluImm { .. }))
            .collect();
        let program = build_program(safe, true, false);
        let diags = verify_program(&program, &config());
        // ALU-only bodies read at most s0..=s17; sources above INIT_SREGS
        // are flagged, so filter to programs using initialized sources.
        let uses_uninit = diags.iter().any(|d| {
            matches!(d.code,
                ssam::core::analysis::DiagCode::UninitScalarRead
                    | ssam::core::analysis::DiagCode::MaybeUninitScalarRead)
        });
        if !uses_uninit {
            prop_assert!(diags.is_empty(), "unexpected diagnostics: {:?}", diags);
        }
    }
}
