//! Property-based tests (proptest) over the core invariants that every
//! experiment depends on.

use proptest::prelude::*;

use ssam::core::isa::encoding::{decode, encode};
use ssam::core::isa::inst::{AluOp, BranchCond, Instruction, PqField, UnaryOp};
use ssam::core::isa::reg::{SReg, VReg};
use ssam::core::sim::pqueue::HardwarePriorityQueue;
use ssam::hmc::address::AddressMap;
use ssam::hmc::HmcConfig;
use ssam::knn::binary::hamming;
use ssam::knn::distance::{euclidean, manhattan, squared_euclidean};
use ssam::knn::fixed::{Fix32, SCALE};
use ssam::knn::recall::recall_ids;
use ssam::knn::topk::{topk_by_sort, Neighbor, TopK};

// ---- instruction encoding ----

fn arb_sreg() -> impl Strategy<Value = SReg> {
    (0u8..32).prop_map(SReg)
}
fn arb_vreg() -> impl Strategy<Value = VReg> {
    (0u8..8).prop_map(VReg)
}
fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mult),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Xor),
        Just(AluOp::Sl),
        Just(AluOp::Sr),
        Just(AluOp::Sra),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_alu(), arb_sreg(), arb_sreg(), arb_sreg())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::SAlu { op, rd, rs1, rs2 }),
        (arb_alu(), arb_sreg(), arb_sreg(), any::<i32>())
            .prop_map(|(op, rd, rs1, imm)| Instruction::SAluImm { op, rd, rs1, imm }),
        (arb_sreg(), arb_sreg()).prop_map(|(rd, rs1)| Instruction::SUnary {
            op: UnaryOp::Popcount,
            rd,
            rs1
        }),
        (arb_sreg(), arb_sreg(), any::<u32>()).prop_map(|(rs1, rs2, target)| {
            Instruction::Branch {
                cond: BranchCond::Lt,
                rs1,
                rs2,
                target,
            }
        }),
        any::<u32>().prop_map(|target| Instruction::Jump { target }),
        arb_sreg().prop_map(|rs1| Instruction::Push { rs1 }),
        arb_sreg().prop_map(|rd| Instruction::Pop { rd }),
        (arb_sreg(), arb_sreg())
            .prop_map(|(rs_id, rs_val)| Instruction::PqueueInsert { rs_id, rs_val }),
        (arb_sreg(), arb_sreg()).prop_map(|(rd, rs_idx)| Instruction::PqueueLoad {
            rd,
            rs_idx,
            field: PqField::Value
        }),
        Just(Instruction::PqueueReset),
        Just(Instruction::Halt),
        (arb_vreg(), arb_sreg(), any::<i32>()).prop_map(|(vd, rs_base, offset)| {
            Instruction::VLoad {
                vd,
                rs_base,
                offset,
            }
        }),
        (arb_alu(), arb_vreg(), arb_vreg(), arb_vreg())
            .prop_map(|(op, vd, vs1, vs2)| Instruction::VAlu { op, vd, vs1, vs2 }),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vs1, vs2)| Instruction::Vfxp {
            vd,
            vs1,
            vs2
        }),
    ]
}

proptest! {
    #[test]
    fn instruction_encoding_round_trips(inst in arb_instruction()) {
        let word = encode(&inst);
        prop_assert_eq!(decode(word).expect("decodes"), inst);
    }

    // ---- hardware priority queue == sorted truncation ----

    #[test]
    fn pqueue_equals_sorted_truncation(vals in prop::collection::vec(-1000i32..1000, 0..100)) {
        let mut q = HardwarePriorityQueue::new();
        for (i, &v) in vals.iter().enumerate() {
            q.insert(i as i32, v);
        }
        let mut expect: Vec<(i32, i32)> =
            vals.iter().enumerate().map(|(i, &v)| (v, i as i32)).collect();
        expect.sort_unstable();
        expect.truncate(16);
        let got: Vec<(i32, i32)> = q.entries().iter().map(|e| (e.value, e.id)).collect();
        prop_assert_eq!(got, expect);
    }

    // ---- software top-k == sorted truncation ----

    #[test]
    fn topk_equals_sorted_truncation(
        vals in prop::collection::vec(0.0f32..1e6, 1..200),
        k in 1usize..20,
    ) {
        let mut t = TopK::new(k);
        let cands: Vec<Neighbor> = vals
            .iter()
            .enumerate()
            .map(|(i, &d)| Neighbor::new(i as u32, d))
            .collect();
        for c in &cands {
            t.offer(c.id, c.dist);
        }
        prop_assert_eq!(t.into_sorted(), topk_by_sort(cands, k));
    }

    // ---- distance identities ----

    #[test]
    fn euclidean_is_a_metric_sample(
        a in prop::collection::vec(-100.0f32..100.0, 4),
        b in prop::collection::vec(-100.0f32..100.0, 4),
        c in prop::collection::vec(-100.0f32..100.0, 4),
    ) {
        let ab = euclidean(&a, &b);
        let ba = euclidean(&b, &a);
        prop_assert!((ab - ba).abs() <= 1e-3 * ab.abs().max(1.0));
        // Triangle inequality with float slack.
        prop_assert!(euclidean(&a, &c) <= ab + euclidean(&b, &c) + 1e-3);
        // Non-negativity and identity.
        prop_assert!(ab >= 0.0);
        prop_assert!(euclidean(&a, &a) < 1e-3);
    }

    #[test]
    fn manhattan_dominates_euclidean(
        a in prop::collection::vec(-50.0f32..50.0, 8),
        b in prop::collection::vec(-50.0f32..50.0, 8),
    ) {
        // ‖x‖₂ ≤ ‖x‖₁ for any vector.
        prop_assert!(euclidean(&a, &b) <= manhattan(&a, &b) + 1e-3);
    }

    #[test]
    fn hamming_bounds(a in any::<[u32; 4]>(), b in any::<[u32; 4]>()) {
        let d = hamming(&a, &b);
        prop_assert!(d <= 128);
        prop_assert_eq!(hamming(&a, &a), 0);
        prop_assert_eq!(d, hamming(&b, &a));
    }

    // ---- fixed point ----

    #[test]
    fn fixed_point_round_trip_error_is_bounded(x in -30000.0f32..30000.0) {
        let err = (Fix32::from_f32(x).to_f32() - x).abs();
        // Half an LSB of Q16.16, plus float slop proportional to |x|.
        prop_assert!(err <= 1.0 / SCALE as f32 + x.abs() * 1e-6);
    }

    #[test]
    fn fixed_distance_preserves_order(
        a in prop::collection::vec(-1.0f32..1.0, 8),
        b in prop::collection::vec(-1.0f32..1.0, 8),
        c in prop::collection::vec(-1.0f32..1.0, 8),
    ) {
        let f = |v: &[f32]| -> Vec<i32> { v.iter().map(|&x| Fix32::from_f32(x).0).collect() };
        let (fa, fb, fc) = (f(&a), f(&b), f(&c));
        let float_cmp = squared_euclidean(&a, &b).partial_cmp(&squared_euclidean(&a, &c));
        let fd_b = ssam::knn::fixed::squared_euclidean_fixed(&fa, &fb);
        let fd_c = ssam::knn::fixed::squared_euclidean_fixed(&fa, &fc);
        // Orders must agree unless the float distances are nearly tied.
        let float_gap =
            (squared_euclidean(&a, &b) - squared_euclidean(&a, &c)).abs();
        if float_gap > 1e-3 {
            match float_cmp {
                Some(std::cmp::Ordering::Less) => prop_assert!(fd_b <= fd_c),
                Some(std::cmp::Ordering::Greater) => prop_assert!(fd_b >= fd_c),
                _ => {}
            }
        }
    }

    // ---- recall ----

    #[test]
    fn recall_is_bounded_and_monotone(
        exact in prop::collection::vec(0u32..50, 1..10),
        approx in prop::collection::vec(0u32..50, 0..10),
        extra in 0u32..50,
    ) {
        let r = recall_ids(&exact, &approx);
        prop_assert!((0.0..=1.0).contains(&r));
        // Adding a result can only help.
        let mut more = approx.clone();
        more.push(extra);
        prop_assert!(recall_ids(&exact, &more) >= r);
    }

    // ---- HMC address map ----

    #[test]
    fn interleaved_split_conserves_bytes(addr in 0u64..1_000_000, len in 0u64..100_000) {
        let m = AddressMap::interleaved(&HmcConfig::hmc2());
        let total: u64 = m.split_range(addr, len).iter().map(|(_, b)| b).sum();
        prop_assert_eq!(total, len);
    }

    #[test]
    fn vault_assignment_is_stable_and_in_range(addr in 0u64..u64::MAX / 4) {
        let m = AddressMap::interleaved(&HmcConfig::hmc2());
        let v = m.vault_of(addr);
        prop_assert!(v < 32);
        prop_assert_eq!(v, m.vault_of(addr));
    }
}
