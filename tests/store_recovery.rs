//! Crash-recovery properties: WAL replay restores bit-identical state
//! after seeded outages, at every torn-tail cut point.
//!
//! Three layers of guarantee, each asserted at `to_bits` level:
//!
//! 1. **Full-image recovery**: `Store::open` over the complete WAL
//!    reproduces the original store exactly — same `Snapshot` (memtable,
//!    index, segment layout, sequence counter) and bit-identical query
//!    answers.
//! 2. **Torn-tail recovery**: for crash points drawn by
//!    [`ssam::faults::CrashSpec`] (uniform over the byte length of the
//!    log, so mid-frame tears and whole-record boundaries both occur),
//!    the recovered live set equals a record-level shadow model at
//!    exactly the number of records the recovery replayed — the
//!    "last unacknowledged write may vanish, nothing else changes"
//!    contract.
//! 3. **Recovery idempotence**: recovering the recovered store's own WAL
//!    is a fixed point.
//!
//! A fixed-seed smoke at the bottom drives the recovered store through
//! chaos fault injection and checks the fault ledger still closes — the
//! CI crash-recovery gate.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ssam::core::device::DeviceMetric;
use ssam::core::telemetry::Telemetry;
use ssam::faults::{CrashSpec, FaultPlan};
use ssam::store::{Store, StoreConfig};

const DIMS: usize = 4;
const UIDS: u32 = 24;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, Vec<f32>),
    Delete(u32),
    Seal,
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored proptest has no weighted `prop_oneof!`; duplicated
    // arms bias the mix toward inserts.
    let insert = || {
        (0u32..UIDS, prop::collection::vec(-1.0f32..1.0, DIMS))
            .prop_map(|(uid, v)| Op::Insert(uid, v))
    };
    prop_oneof![
        insert(),
        insert(),
        insert(),
        insert(),
        (0u32..UIDS).prop_map(Op::Delete),
        (0u32..UIDS).prop_map(Op::Delete),
        Just(Op::Seal),
        Just(Op::Compact),
    ]
}

fn config() -> StoreConfig {
    let mut c = StoreConfig::new(DIMS);
    c.memtable_capacity = 4;
    c.fanout = 2;
    c.device.fast_path = true;
    c
}

/// The live set as a comparable image: uid → f32 bit patterns.
type LiveModel = BTreeMap<u32, Vec<u32>>;

fn live_bits(store: &Store) -> LiveModel {
    store
        .live_set()
        .into_iter()
        .map(|(uid, v)| (uid, v.iter().map(|x| x.to_bits()).collect()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Build a store while shadowing, per WAL *record*, what the live set
    /// must be; then crash it at seeded torn-tail points and check the
    /// recovered store against the shadow at exactly the replayed record
    /// count. Visibility only changes on insert/delete records, so the
    /// shadow is exact even when a cut splits an insert from the
    /// auto-seal it triggered.
    #[test]
    fn torn_tail_recovery_matches_record_shadow(
        ops in prop::collection::vec(arb_op(), 1..40),
        seed in any::<u64>(),
    ) {
        let mut store = Store::create(config());
        // models[r] = live set after the first r WAL records.
        let mut model: LiveModel = BTreeMap::new();
        let mut models: Vec<LiveModel> = vec![model.clone()];
        for op in &ops {
            match op {
                Op::Insert(uid, v) => {
                    let ack = store.insert(*uid, v).expect("insert");
                    model.insert(*uid, v.iter().map(|x| x.to_bits()).collect());
                    models.push(model.clone());
                    if ack.sealed {
                        // The auto-seal appended a second record; the
                        // live set is unchanged by it.
                        models.push(model.clone());
                    }
                }
                Op::Delete(uid) => {
                    store.delete(*uid).expect("delete");
                    model.remove(uid);
                    models.push(model.clone());
                }
                Op::Seal => {
                    if store.seal() {
                        models.push(model.clone());
                    }
                }
                Op::Compact => {
                    if store.compact_step() {
                        models.push(model.clone());
                    }
                }
            }
        }
        let wal = store.wal_bytes().to_vec();
        prop_assert_eq!(models.len() as u64 - 1, store.stats().wal_records);

        // Full-image recovery: an untorn log is a perfect clone.
        let (full, rec) = Store::open(config(), &wal).expect("full recovery");
        prop_assert_eq!(rec.truncated, 0);
        prop_assert_eq!(rec.replayed + 1, models.len());
        prop_assert_eq!(full.snapshot(), store.snapshot());
        let q = [0.25f32, -0.5, 0.125, 0.75];
        let a = store.query(&q, DeviceMetric::Euclidean, 5).expect("query");
        let b = full.clone().query(&q, DeviceMetric::Euclidean, 5).expect("query");
        prop_assert_eq!(a.neighbors.len(), b.neighbors.len());
        for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.dist.to_bits(), y.dist.to_bits());
        }

        // Seeded torn tails: each crash event picks an independent cut.
        let crash = CrashSpec::new(seed);
        for event in 0..6u64 {
            let cut = crash.torn_tail(event, wal.len() as u64) as usize;
            let (recovered, rec) =
                Store::open(config(), &wal[..cut]).expect("torn recovery");
            prop_assert!(
                rec.replayed < models.len(),
                "replayed more records than were ever written"
            );
            prop_assert_eq!(
                live_bits(&recovered),
                models[rec.replayed].clone(),
                "live set diverged at cut {} (replayed {})",
                cut,
                rec.replayed
            );
            // Idempotence: recovering the recovered WAL is a fixed point.
            let (again, rec2) =
                Store::open(config(), recovered.wal_bytes()).expect("re-recovery");
            prop_assert_eq!(rec2.truncated, 0);
            prop_assert_eq!(again.snapshot(), recovered.snapshot());
        }
    }
}

/// Fixed-seed CI gate: crash a store mid-life, recover it, serve chaos-
/// faulted queries from the recovered segments, and require both a
/// bit-identical recovery and a closed fault ledger with zero telemetry
/// violations.
#[test]
fn crash_recovery_smoke_with_chaos_faults() {
    let mut store = Store::create(config());
    for i in 0..40u32 {
        let v: Vec<f32> = (0..DIMS)
            .map(|d| (((i * 7 + d as u32 * 3) % 19) as f32 - 9.0) / 10.0)
            .collect();
        store.insert(i % UIDS, &v).expect("insert");
        if i % 9 == 0 {
            store.delete((i * 5) % UIDS).expect("delete");
        }
        if i % 13 == 0 {
            store.compact_step();
        }
    }
    let wal = store.wal_bytes().to_vec();

    let crash = CrashSpec::new(0xC0FF_EE00);
    let cut = crash.torn_tail(1, wal.len() as u64) as usize;
    let (mut recovered, rec) = Store::open(config(), &wal[..cut]).expect("recovery");
    assert_eq!(rec.truncated as usize, cut - recovered.wal_bytes().len());

    // Bit-identical recovery of the same prefix, twice.
    let (twin, _) = Store::open(config(), &wal[..cut]).expect("twin recovery");
    assert_eq!(twin.snapshot(), recovered.snapshot());

    // Chaos-faulted queries over the recovered segments: the fault
    // ledger must close and the store account must verify.
    let sink = Telemetry::new();
    recovered.attach_telemetry(&sink);
    recovered.set_fault_plan(Some(std::sync::Arc::new(FaultPlan::chaos(7))));
    for s in 0..12 {
        let q: Vec<f32> = (0..DIMS).map(|d| ((s + d) as f32 * 0.37).sin()).collect();
        let r = recovered
            .query(&q, DeviceMetric::Euclidean, 4)
            .expect("chaos query");
        assert!(r.faults.coverage() > 0.0, "chaos lost every vault");
    }
    recovered.record_account("crash_recovery_smoke");
    let violations = sink.violations();
    assert!(violations.is_empty(), "violations: {violations:#?}");
    sink.fault_totals()
        .check_closure()
        .expect("fault ledger must close");
}
