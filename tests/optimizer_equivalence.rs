//! The kernel optimizer must be invisible to every observable result.
//!
//! `Kernel::build` runs the dataflow optimizer over each generated
//! program, and the device stages the optimized image by default with
//! `SsamConfig::optimize_kernels = false` as the A/B escape hatch. These
//! properties pin the contract:
//!
//! 1. **Bit-identical answers** — for every metric, queue
//!    implementation, and k, an optimized device returns exactly the
//!    neighbors (ids *and* raw distance bits) of a raw-program device,
//!    with identical fault accounting when a chaos plan is attached.
//! 2. **Never slower** — the optimized image retires no more
//!    instructions and no more cycles than the raw image on any vault.
//! 3. **Deterministic timing** — two optimized runs report bitwise-equal
//!    modeled `seconds`.
//! 4. **Honest static costs** — `analysis::cost::estimate` is *exact*
//!    (instructions, cycles, DRAM bytes) against the simulator for the
//!    linear Euclidean/Manhattan/Hamming kernels on every vault, brackets
//!    the branchy cosine kernel, and agrees with the telemetry roofline
//!    on memory- vs compute-bound whenever it commits to a class.

use std::sync::Arc;

use proptest::prelude::*;

use ssam::core::analysis::cost::{estimate, BoundClass, CostParams};
use ssam::core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam::core::kernels::linear;
use ssam::core::telemetry::{critical_path, VaultAccount};
use ssam::faults::FaultPlan;
use ssam::knn::binary::BinaryStore;
use ssam::knn::VectorStore;

const DIMS: usize = 8;
const CODE_WORDS: usize = 2;
const N: usize = 120;

fn float_store(seed: u64, n: usize) -> VectorStore {
    let mut store = VectorStore::with_capacity(DIMS, n);
    let mut x = seed | 1;
    for _ in 0..n {
        let v: Vec<f32> = (0..DIMS)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 40) as i32 % 1000) as f32 / 500.0
            })
            .collect();
        store.push(&v);
    }
    store
}

fn binary_store(seed: u64, n: usize) -> BinaryStore {
    let mut store = BinaryStore::new(CODE_WORDS * 32);
    let mut x = seed | 1;
    for _ in 0..n {
        let code: Vec<u32> = (0..CODE_WORDS)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 24) as u32
            })
            .collect();
        store.push(&code);
    }
    store
}

fn device(optimize: bool, use_hw: bool, float: bool, seed: u64, chaos: bool) -> SsamDevice {
    let mut dev = SsamDevice::new(SsamConfig {
        use_hw_queue: use_hw,
        optimize_kernels: optimize,
        ..SsamConfig::default()
    });
    if float {
        dev.load_vectors(&float_store(seed, N));
    } else {
        dev.load_binary(&binary_store(seed, N));
    }
    if chaos {
        dev.set_fault_plan(Some(Arc::new(FaultPlan::chaos(seed))));
    }
    dev
}

fn query_vec(seed: u64, i: usize) -> Vec<f32> {
    (0..DIMS)
        .map(|j| ((seed as usize + i * 13 + j * 7) as f32 * 0.17).sin())
        .collect()
}

/// Runs the same query on an optimized and a raw device and asserts the
/// observable contract: identical answers and fault accounting, fewer or
/// equal instructions and cycles.
fn assert_opt_invisible(opt: &mut SsamDevice, raw: &mut SsamDevice, q: &DeviceQuery<'_>, k: usize) {
    let a = opt.query(q, k).expect("optimized device runs");
    let b = raw.query(q, k).expect("raw device runs");
    assert_eq!(a.neighbors, b.neighbors, "optimization changed the answer");
    assert_eq!(a.faults, b.faults, "optimization changed fault accounting");
    let (ai, bi): (u64, u64) = (
        a.vault_stats.iter().map(|s| s.instructions).sum(),
        b.vault_stats.iter().map(|s| s.instructions).sum(),
    );
    let (ac, bc): (u64, u64) = (
        a.vault_stats.iter().map(|s| s.cycles).sum(),
        b.vault_stats.iter().map(|s| s.cycles).sum(),
    );
    assert!(
        ai <= bi,
        "optimized image retired more instructions: {ai} > {bi}"
    );
    assert!(ac <= bc, "optimized image took more cycles: {ac} > {bc}");
    // DRAM traffic is untouched: the optimizer only removes scratchpad
    // reloads, never vector streaming.
    assert_eq!(
        a.vault_stats.iter().map(|s| s.dram.bytes_read).sum::<u64>(),
        b.vault_stats.iter().map(|s| s.dram.bytes_read).sum::<u64>(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn optimized_float_devices_answer_bit_identically(
        seed in 1u64..1000,
        k_idx in 0usize..3,
        use_hw in any::<bool>(),
        chaos in any::<bool>(),
    ) {
        let k = [1usize, 8, 40][k_idx];
        let mut opt = device(true, use_hw, true, seed, chaos);
        let mut raw = device(false, use_hw, true, seed, chaos);
        for (i, q) in (0..3).map(|i| query_vec(seed, i)).enumerate() {
            match i % 3 {
                0 => assert_opt_invisible(&mut opt, &mut raw, &DeviceQuery::Euclidean(&q), k),
                1 => assert_opt_invisible(&mut opt, &mut raw, &DeviceQuery::Manhattan(&q), k),
                _ => assert_opt_invisible(&mut opt, &mut raw, &DeviceQuery::Cosine(&q), k),
            }
        }
    }

    #[test]
    fn optimized_hamming_devices_answer_bit_identically(
        seed in 1u64..1000,
        k_idx in 0usize..3,
        use_hw in any::<bool>(),
        chaos in any::<bool>(),
    ) {
        let k = [1usize, 8, 40][k_idx];
        let mut opt = device(true, use_hw, false, seed, chaos);
        let mut raw = device(false, use_hw, false, seed, chaos);
        let code: Vec<u32> = (0..CODE_WORDS as u32)
            .map(|j| (seed as u32 ^ (j * 7)).wrapping_mul(0x9E37_79B9))
            .collect();
        assert_opt_invisible(&mut opt, &mut raw, &DeviceQuery::Hamming(&code), k);
    }

    #[test]
    fn optimized_timing_is_bitwise_deterministic(
        seed in 1u64..1000,
        use_hw in any::<bool>(),
    ) {
        let mut a = device(true, use_hw, true, seed, false);
        let mut b = device(true, use_hw, true, seed, false);
        let q = query_vec(seed, 0);
        let ra = a.query(&DeviceQuery::Euclidean(&q), 8).expect("runs");
        let rb = b.query(&DeviceQuery::Euclidean(&q), 8).expect("runs");
        prop_assert_eq!(ra.timing.seconds.to_bits(), rb.timing.seconds.to_bits());
        prop_assert_eq!(ra.timing.energy_mj.to_bits(), rb.timing.energy_mj.to_bits());
    }
}

// ---------------------------------------------------------------------------
// Static cost model vs the cycle simulator, through the whole device.
// ---------------------------------------------------------------------------

/// Cost parameters matching what `SsamDevice` hands the telemetry layer.
fn device_params(dev_cfg: &SsamConfig, pus: usize) -> CostParams {
    CostParams {
        freq_hz: dev_cfg.freq_hz,
        vault_bandwidth: dev_cfg.hmc.vault_bandwidth,
        pus,
        ..CostParams::default()
    }
}

/// Checks one linear-scan query against `analysis::cost::estimate` on
/// every vault: exact when `expect_exact`, containment otherwise, and
/// roofline-classification agreement whenever the model commits.
fn assert_cost_matches(
    dev: &mut SsamDevice,
    q: &DeviceQuery<'_>,
    kernel: &ssam::core::kernels::Kernel,
    expect_exact: bool,
) {
    let cfg = SsamConfig::default();
    let r = dev.query(q, 8).expect("query runs");
    let bytes_per_vec = (kernel.layout.vec_words * 4) as u64;
    let mut accounts = Vec::new();
    let mut est_seconds = Vec::new();
    for (v, stats) in r.vault_stats.iter().enumerate() {
        // The linear kernels stream each database vector exactly once, so
        // the shard size is recoverable from the traffic counter.
        assert_eq!(stats.dram.bytes_read % bytes_per_vec, 0);
        let n = stats.dram.bytes_read / bytes_per_vec;
        let params = device_params(&cfg, r.timing.pus_per_vault);
        let e = ssam::core::analysis::cost::estimate_with(
            &kernel.program,
            kernel.layout.vl,
            n,
            &params,
        );
        if expect_exact {
            assert!(
                e.exact,
                "{} vault {v}: expected exact estimate, got {e:?}",
                kernel.name
            );
            assert_eq!(
                e.instructions.min, stats.instructions,
                "{} vault {v}",
                kernel.name
            );
            assert_eq!(e.cycles.min, stats.cycles, "{} vault {v}", kernel.name);
            assert_eq!(
                e.dram_bytes.min, stats.dram.bytes_read,
                "{} vault {v}",
                kernel.name
            );
        } else {
            assert!(
                e.instructions.min <= stats.instructions,
                "{} vault {v}",
                kernel.name
            );
            assert!(e.cycles.min <= stats.cycles, "{} vault {v}", kernel.name);
            assert!(
                e.dram_bytes.min <= stats.dram.bytes_read,
                "{} vault {v}",
                kernel.name
            );
            if let Some(max) = e.instructions.max {
                assert!(max >= stats.instructions, "{} vault {v}", kernel.name);
            }
            if let Some(max) = e.cycles.max {
                assert!(max >= stats.cycles, "{} vault {v}", kernel.name);
            }
            if let Some(max) = e.dram_bytes.max {
                assert!(max >= stats.dram.bytes_read, "{} vault {v}", kernel.name);
            }
        }
        let account = VaultAccount::from_stats(
            v,
            stats,
            cfg.hmc.vault_bandwidth,
            cfg.freq_hz,
            r.timing.pus_per_vault,
        );
        match e.bound {
            Some(BoundClass::Compute) => assert!(
                account.compute_bound,
                "{} vault {v}: model says compute-bound, telemetry disagrees",
                kernel.name
            ),
            Some(BoundClass::Memory) => assert!(
                !account.compute_bound,
                "{} vault {v}: model says memory-bound, telemetry disagrees",
                kernel.name
            ),
            None => {}
        }
        est_seconds.push(e.comp_seconds.max(e.mem_seconds));
        accounts.push(account);
    }
    // When every vault is exact, the statically-predicted critical vault
    // must be the one telemetry picks from the measured accounts.
    if expect_exact {
        let (critical, _, _) = critical_path(&accounts).expect("vaults exist");
        let predicted = est_seconds
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("vaults exist");
        // Ties resolve to the first index in both reductions.
        assert_eq!(
            est_seconds[critical], est_seconds[predicted],
            "{}: static critical path diverged from telemetry",
            kernel.name
        );
    }
}

#[test]
fn cost_model_is_exact_for_linear_kernels_on_every_vault() {
    let cfg = SsamConfig::default();
    let mut dev = device(true, true, true, 7, false);
    let q = query_vec(7, 0);
    assert_cost_matches(
        &mut dev,
        &DeviceQuery::Euclidean(&q),
        &linear::euclidean(DIMS, cfg.vector_length),
        true,
    );
    assert_cost_matches(
        &mut dev,
        &DeviceQuery::Manhattan(&q),
        &linear::manhattan(DIMS, cfg.vector_length),
        true,
    );
}

#[test]
fn cost_model_is_exact_for_hamming_on_every_vault() {
    let cfg = SsamConfig::default();
    let mut dev = device(true, true, false, 7, false);
    let code: Vec<u32> = (0..CODE_WORDS as u32)
        .map(|j| (7u32 ^ (j * 7)).wrapping_mul(0x9E37_79B9))
        .collect();
    assert_cost_matches(
        &mut dev,
        &DeviceQuery::Hamming(&code),
        &linear::hamming(CODE_WORDS, cfg.vector_length),
        true,
    );
}

#[test]
fn cost_model_brackets_the_cosine_kernel() {
    let cfg = SsamConfig::default();
    let mut dev = device(true, true, true, 7, false);
    let q = query_vec(7, 2);
    assert_cost_matches(
        &mut dev,
        &DeviceQuery::Cosine(&q),
        &linear::cosine(DIMS, cfg.vector_length),
        false,
    );
}

#[test]
fn cost_model_brackets_the_software_queue_kernels() {
    let cfg = SsamConfig::default();
    let mut dev = device(true, false, true, 7, false);
    let q = query_vec(7, 1);
    assert_cost_matches(
        &mut dev,
        &DeviceQuery::Euclidean(&q),
        &linear::euclidean_swqueue(DIMS, cfg.vector_length, 8),
        false,
    );
}

#[test]
fn cost_estimates_scale_linearly_in_n_for_exact_kernels() {
    let k = linear::euclidean(DIMS, 4);
    let e1 = estimate(&k, 4, 100);
    let e2 = estimate(&k, 4, 200);
    assert!(e1.exact && e2.exact);
    // Doubling the shard doubles traffic exactly; cycles/instructions
    // double up to the constant preamble/halt term.
    assert_eq!(e2.dram_bytes.min, 2 * e1.dram_bytes.min);
    let fixed = 2 * e1.cycles.min - e2.cycles.min;
    assert_eq!(estimate(&k, 4, 400).cycles.min, 2 * e2.cycles.min - fixed);
}
