//! Sharded crash-recovery properties: multi-WAL replay with per-module
//! torn tails and a module outage mid-stream restores a state that is
//! deterministic, idempotent, and per-shard prefix-consistent with the
//! acknowledged write history.
//!
//! The guarantees, each asserted at `to_bits` level:
//!
//! 1. **Full-image recovery**: [`ssam::store::ShardedStore::open`] over
//!    every module's complete WAL reproduces the acknowledged live set
//!    exactly — even when a replica is still missing writes it never saw
//!    (the anti-entropy pass merges them from its shard-mates).
//! 2. **Torn-tail prefix consistency**: with independent per-module cut
//!    points from [`ssam::faults::CrashSpec::torn_tail_for`], each
//!    shard's recovered live set equals the acknowledged state of that
//!    shard after *some* prefix of its write sequence — recovery never
//!    invents, reorders, or partially applies a record, and no shard's
//!    records bleed into another's.
//! 3. **Determinism + idempotence**: opening the same images twice gives
//!    bit-identical stores; re-opening a recovered store's own WALs is a
//!    fixed point with zero catch-up records.
//! 4. **Post-failover exactness**: with one module killed after
//!    recovery, queries remain bit-identical to a fresh single-module
//!    store over the same live set, at full coverage, with the ledger
//!    closed and zero telemetry violations.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ssam::core::device::DeviceMetric;
use ssam::core::telemetry::Telemetry;
use ssam::faults::CrashSpec;
use ssam::store::{ShardedStore, ShardedStoreConfig, Store, StoreConfig};

const DIMS: usize = 4;
const UIDS: u32 = 18;
const SHARDS: usize = 3;
const REPLICAS: usize = 2;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, Vec<f32>),
    Delete(u32),
    Seal,
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    // The vendored proptest has no weighted `prop_oneof!`; duplicated
    // arms bias the mix toward inserts.
    let insert = || {
        (0u32..UIDS, prop::collection::vec(-1.0f32..1.0, DIMS))
            .prop_map(|(uid, v)| Op::Insert(uid, v))
    };
    prop_oneof![
        insert(),
        insert(),
        insert(),
        insert(),
        (0u32..UIDS).prop_map(Op::Delete),
        (0u32..UIDS).prop_map(Op::Delete),
        Just(Op::Seal),
        Just(Op::Compact),
    ]
}

fn config() -> ShardedStoreConfig {
    let mut store = StoreConfig::new(DIMS);
    store.memtable_capacity = 3;
    store.fanout = 2;
    store.device.fast_path = true;
    ShardedStoreConfig::new(SHARDS, REPLICAS, store)
}

/// A live set as a comparable image: uid → f32 bit patterns.
type LiveModel = BTreeMap<u32, Vec<u32>>;

fn live_bits(store: &ShardedStore) -> LiveModel {
    store
        .live_set()
        .into_iter()
        .map(|(uid, v)| (uid, v.iter().map(|x| x.to_bits()).collect()))
        .collect()
}

fn shard_slice(model: &LiveModel, shard: usize) -> LiveModel {
    model
        .iter()
        .filter(|(uid, _)| (**uid as usize) % SHARDS == shard)
        .map(|(uid, bits)| (*uid, bits.clone()))
        .collect()
}

/// Asserts two query results agree on ids and distance bit patterns.
fn assert_bit_identical(a: &[ssam::knn::Neighbor], b: &[ssam::knn::Neighbor]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.dist.to_bits(), y.dist.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random op interleavings with a seeded module outage mid-stream,
    /// then per-module torn-tail crashes: recovery must be
    /// deterministic, idempotent, per-shard prefix-consistent, and the
    /// recovered store must answer queries exactly over the surviving
    /// replicas.
    #[test]
    fn sharded_torn_recovery_is_prefix_consistent_and_idempotent(
        ops in prop::collection::vec(arb_op(), 4..32),
        seed in any::<u64>(),
    ) {
        let mut st = ShardedStore::create(config());
        // Per-shard acknowledged history: shard_models[s][j] is shard
        // s's live set after its first j data records. Each replica's
        // WAL holds its shard's data records in ascending sequence
        // order (catch-up replays preserve it), so any torn prefix of
        // any replica — and the union across replicas — lands exactly
        // on one of these models.
        let mut model: Vec<LiveModel> = vec![BTreeMap::new(); SHARDS];
        let mut shard_models: Vec<Vec<LiveModel>> =
            (0..SHARDS).map(|s| vec![model[s].clone()]).collect();

        // Outage drill: one module down for the middle third of the
        // stream. Replication must keep every write acknowledged.
        let victim = (seed as usize) % (SHARDS * REPLICAS);
        let kill_at = ops.len() / 3;
        let revive_at = 2 * ops.len() / 3;

        for (i, op) in ops.iter().enumerate() {
            if i == kill_at {
                st.kill_module(victim);
            }
            if i == revive_at {
                st.revive_module(victim);
            }
            match op {
                Op::Insert(uid, v) => {
                    let ack = st.insert(*uid, v).expect("replicated insert");
                    prop_assert_eq!(ack.shard, (*uid as usize) % SHARDS);
                    model[ack.shard]
                        .insert(*uid, v.iter().map(|x| x.to_bits()).collect());
                    shard_models[ack.shard].push(model[ack.shard].clone());
                }
                Op::Delete(uid) => {
                    let ack = st.delete(*uid).expect("replicated delete");
                    model[ack.shard].remove(uid);
                    shard_models[ack.shard].push(model[ack.shard].clone());
                }
                Op::Seal => {
                    st.seal_all();
                }
                Op::Compact => {
                    st.compact_step();
                }
            }
        }
        let full_model: LiveModel = model
            .iter()
            .flat_map(|m| m.iter().map(|(u, b)| (*u, b.clone())))
            .collect();

        // Full-image recovery merges the diverged replica WALs back to
        // the acknowledged state — even though the victim module may
        // still be missing writes it never saw.
        let pending = st.pending_total() as u64;
        let images = st.wal_images();
        let (full, rec) = ShardedStore::open(config(), &images).expect("full recovery");
        prop_assert_eq!(live_bits(&full), full_model.clone());
        prop_assert_eq!(rec.total.truncated, 0);
        prop_assert!(
            rec.catch_up_records >= pending,
            "anti-entropy must replay at least the still-pending writes"
        );

        // Torn tails: independent per-module cut points.
        let crash = CrashSpec::new(seed);
        for event in 0..4u64 {
            let images = st.crash_images(&crash, event);
            let (recovered, _) =
                ShardedStore::open(config(), &images).expect("torn recovery");

            // Determinism: the same images recover bit-identically.
            let (twin, _) =
                ShardedStore::open(config(), &images).expect("twin recovery");
            prop_assert_eq!(twin.snapshot(), recovered.snapshot());

            // Idempotence: a recovered store's own WALs are a fixed
            // point — fully caught up, nothing truncated.
            let (again, rec2) = ShardedStore::open(config(), &recovered.wal_images())
                .expect("re-recovery");
            prop_assert_eq!(rec2.catch_up_records, 0);
            prop_assert_eq!(rec2.total.truncated, 0);
            prop_assert_eq!(again.snapshot(), recovered.snapshot());

            // Per-shard prefix consistency.
            let got = live_bits(&recovered);
            for (shard, models) in shard_models.iter().enumerate() {
                let got_shard = shard_slice(&got, shard);
                prop_assert!(
                    models.contains(&got_shard),
                    "shard {} recovered to a live set that was never \
                     acknowledged (event {})",
                    shard,
                    event
                );
            }
        }
    }

    /// A recovered sharded store with one module killed still answers
    /// bit-identically to a fresh single-module store over the same
    /// live set, at full coverage, with a closed ledger and clean
    /// telemetry.
    #[test]
    fn post_failover_queries_stay_exact_over_surviving_replicas(
        ops in prop::collection::vec(arb_op(), 4..24),
        seed in any::<u64>(),
    ) {
        let mut st = ShardedStore::create(config());
        for op in &ops {
            match op {
                Op::Insert(uid, v) => {
                    st.insert(*uid, v).expect("insert");
                }
                Op::Delete(uid) => {
                    st.delete(*uid).expect("delete");
                }
                Op::Seal => {
                    st.seal_all();
                }
                Op::Compact => {
                    st.compact_step();
                }
            }
        }
        let images = st.crash_images(&CrashSpec::new(seed), 1);
        let (mut recovered, _) =
            ShardedStore::open(config(), &images).expect("recovery");
        let sink = Telemetry::new();
        recovered.attach_telemetry(&sink);

        // Reference: a fresh single-module store over the recovered
        // live set.
        let mut single = Store::create(config().store);
        for (uid, v) in recovered.live_set() {
            single.insert(uid, &v).expect("reference insert");
        }

        recovered.kill_module((seed as usize) % (SHARDS * REPLICAS));
        for qi in 0..3u32 {
            let q: Vec<f32> = (0..DIMS)
                .map(|d| ((qi * 5 + d as u32) as f32 * 0.37).sin())
                .collect();
            for k in [1usize, 4, 16] {
                let a = recovered
                    .query(&q, DeviceMetric::Euclidean, k)
                    .expect("sharded query");
                let b = single
                    .query(&q, DeviceMetric::Euclidean, k)
                    .expect("reference query");
                assert_bit_identical(&a.neighbors, &b.neighbors);
                // Full coverage: the surviving replica serves every
                // shard; nothing is lost, nothing phantom-lost.
                prop_assert!(a.faults.lost_units.is_empty());
                prop_assert_eq!(a.faults.covered_vectors, a.faults.total_vectors);
            }
        }
        recovered.record_account("post_failover_proptest");
        prop_assert!(sink.violations().is_empty());
        recovered
            .check_write_ledger()
            .unwrap_or_else(|e| panic!("write ledger does not close: {e}"));
    }
}

/// Satellite drill: kill a shard's primary mid-insert-stream via the
/// seeded outage hook, verify writes land on the replica's WAL with
/// `failed_over` acks, then revive, catch up, and prove recovery merges
/// both WALs deterministically with a closed fault ledger.
#[test]
fn failover_ingest_lands_on_replica_and_recovery_merges_wals() {
    let mut st = ShardedStore::create(config());
    let vec_for = |i: u32| -> Vec<f32> {
        (0..DIMS)
            .map(|d| (((i * 7 + d as u32 * 3) % 19) as f32 - 9.0) / 10.0)
            .collect()
    };
    for i in 0..12u32 {
        st.insert(i, &vec_for(i)).expect("preload");
    }
    assert_eq!(st.pending_total(), 0);

    // Kill shard 0's primary (module 0), then keep ingesting.
    st.kill_module(0);
    let mut shard0_writes = 0u64;
    for i in 12..36u32 {
        let ack = st.insert(i, &vec_for(i)).expect("insert during outage");
        if ack.shard == 0 {
            shard0_writes += 1;
            assert!(ack.failed_over, "shard 0's primary is down");
            assert_eq!(ack.replicas_acked, 1, "only the standby can ack");
        } else {
            assert!(!ack.failed_over);
            assert_eq!(ack.replicas_acked, REPLICAS);
        }
    }
    assert!(shard0_writes > 0, "the uid walk must hit shard 0");
    let ledger = st.write_ledger().clone();
    assert_eq!(ledger.failed_over_writes, shard0_writes);
    assert_eq!(ledger.refused_writes, 0);
    assert_eq!(st.pending_depths()[0], shard0_writes as usize);

    // Every write during the outage is acknowledged and queryable.
    assert_eq!(st.live_len(), 36);

    // Recovery from the diverged WALs — before any catch-up — merges
    // the primary's stale log with the standby's complete one, twice,
    // bit-identically.
    let images = st.wal_images();
    let (merged_a, rec_a) = ShardedStore::open(config(), &images).expect("merge A");
    let (merged_b, rec_b) = ShardedStore::open(config(), &images).expect("merge B");
    assert_eq!(merged_a.snapshot(), merged_b.snapshot());
    assert_eq!(rec_a, rec_b);
    assert_eq!(merged_a.live_len(), 36);
    assert!(
        rec_a.catch_up_records >= shard0_writes,
        "anti-entropy must replay the writes module 0 missed"
    );

    // Revive: the next write to shard 0 drains the pending queue onto
    // the primary's WAL before appending.
    st.revive_module(0);
    st.insert(36, &vec_for(36)).expect("post-revive insert");
    assert_eq!(st.pending_total(), 0);
    let ledger = st.write_ledger();
    assert_eq!(ledger.catch_up_records, shard0_writes);
    st.check_write_ledger()
        .expect("ledger closes after catch-up");

    // With both WALs caught up, recovery is a pure replay: no
    // anti-entropy needed, and the live set is intact.
    let (clean, rec) = ShardedStore::open(config(), &st.wal_images()).expect("clean open");
    assert_eq!(rec.catch_up_records, 0);
    assert_eq!(clean.live_len(), 37);
    assert_eq!(live_bits(&clean), live_bits(&st));
}
