//! Property tests over the generated kernels: for random datasets,
//! queries, shapes, and vector lengths, the simulated Euclidean kernel
//! must reproduce — bit-exactly — an independent model of the PU's
//! fixed-point arithmetic, and the Hamming kernel must match the host
//! Hamming reference.

use std::sync::Arc;

use proptest::prelude::*;

use ssam::core::isa::inst::AluOp;
use ssam::core::isa::DRAM_BASE;
use ssam::core::kernels::linear;
use ssam::core::sim::pu::ProcessingUnit;
use ssam::knn::fixed::Fix32;

/// The PU's per-candidate Q16.16 squared-Euclidean arithmetic, written
/// independently of the kernel: per dimension `Mult(d, d)` (truncating)
/// accumulated with wrapping adds — exactly what `vsub/vmult/vadd` and
/// the lane reduction compute.
fn reference_distance(query: &[i32], cand: &[i32]) -> i32 {
    query
        .iter()
        .zip(cand)
        .map(|(&q, &c)| {
            let d = c.wrapping_sub(q);
            AluOp::Mult.eval(d, d)
        })
        .fold(0i32, |acc, x| acc.wrapping_add(x))
}

/// (queue contents, quantized query, quantized candidates).
type KernelRun = (Vec<(i32, i32)>, Vec<i32>, Vec<Vec<i32>>);

fn run_euclidean_kernel(vectors: &[Vec<f32>], query: &[f32], vl: usize) -> KernelRun {
    let dims = query.len();
    let kernel = linear::euclidean(dims, vl);
    let vw = kernel.layout.vec_words;
    let mut words = Vec::with_capacity(vectors.len() * vw);
    let mut quantized = Vec::with_capacity(vectors.len());
    for v in vectors {
        let mut q: Vec<i32> = v.iter().map(|&x| Fix32::from_f32(x).0).collect();
        q.resize(vw, 0);
        words.extend_from_slice(&q);
        quantized.push(q);
    }
    let mut qq: Vec<i32> = query.iter().map(|&x| Fix32::from_f32(x).0).collect();
    qq.resize(vw, 0);

    let mut pu = ProcessingUnit::new(vl, Arc::new(words));
    pu.load_program(kernel.program.clone());
    pu.scratchpad_mut().write_block(0, &qq).expect("query fits");
    pu.set_sreg(1, DRAM_BASE as i32);
    pu.set_sreg(2, DRAM_BASE as i32 + (vectors.len() * vw * 4) as i32);
    pu.run(10_000_000).expect("kernel halts");
    let queue: Vec<(i32, i32)> = pu
        .pqueue()
        .entries()
        .iter()
        .map(|e| (e.value, e.id))
        .collect();
    (queue, qq, quantized)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn euclidean_kernel_matches_fixed_point_reference(
        dims in 1usize..24,
        n in 1usize..40,
        vl_pick in 0usize..4,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::RngExt;
        use rand::SeedableRng;
        let vl = [2usize, 4, 8, 16][vl_pick];
        let mut rng = StdRng::seed_from_u64(seed);
        let vectors: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dims).map(|_| rng.random_range(-2.0f32..2.0)).collect())
            .collect();
        let query: Vec<f32> = (0..dims).map(|_| rng.random_range(-2.0f32..2.0)).collect();

        let (queue, qq, quantized) = run_euclidean_kernel(&vectors, &query, vl);

        // Independent model: reference distance per candidate, sorted by
        // (value, id), truncated to the queue depth.
        let mut expect: Vec<(i32, i32)> = quantized
            .iter()
            .enumerate()
            .map(|(i, cand)| (reference_distance(&qq, cand), i as i32))
            .collect();
        expect.sort_unstable();
        expect.truncate(16);
        prop_assert_eq!(queue, expect);
    }

    #[test]
    fn hamming_kernel_matches_host_reference(
        words in 1usize..10,
        n in 1usize..40,
        vl_pick in 0usize..4,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::RngExt;
        use rand::SeedableRng;
        use ssam::knn::binary::{knn_hamming, BinaryStore};
        let vl = [2usize, 4, 8, 16][vl_pick];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut codes = BinaryStore::new(words * 32);
        for _ in 0..n {
            let w: Vec<u32> = (0..words).map(|_| rng.random()).collect();
            codes.push(&w);
        }
        let query: Vec<u32> = (0..words).map(|_| rng.random()).collect();

        let kernel = linear::hamming(words, vl);
        let vw = kernel.layout.vec_words;
        let mut dram = Vec::with_capacity(n * vw);
        for id in 0..n as u32 {
            let mut row: Vec<i32> = codes.get(id).iter().map(|&w| w as i32).collect();
            row.resize(vw, 0);
            dram.extend_from_slice(&row);
        }
        let mut q: Vec<i32> = query.iter().map(|&w| w as i32).collect();
        q.resize(vw, 0);

        let mut pu = ProcessingUnit::new(vl, Arc::new(dram));
        pu.load_program(kernel.program.clone());
        pu.scratchpad_mut().write_block(0, &q).expect("query fits");
        pu.set_sreg(1, DRAM_BASE as i32);
        pu.set_sreg(2, DRAM_BASE as i32 + (n * vw * 4) as i32);
        pu.run(10_000_000).expect("kernel halts");

        let got: Vec<(i32, i32)> =
            pu.pqueue().entries().iter().map(|e| (e.value, e.id)).collect();
        let mut expect: Vec<(i32, i32)> = knn_hamming(&codes, &query, n)
            .iter()
            .map(|nb| (nb.dist as i32, nb.id as i32))
            .collect();
        expect.truncate(16);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn prefetch_never_changes_results(
        dims in 1usize..12,
        n in 1usize..20,
        seed in any::<u64>(),
    ) {
        // Drop every MEM_FETCH from the program: results must be
        // identical (prefetch is timing-only), cycles must not improve.
        use rand::rngs::StdRng;
        use rand::RngExt;
        use rand::SeedableRng;
        use ssam::core::isa::inst::Instruction;
        let mut rng = StdRng::seed_from_u64(seed);
        let vectors: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dims).map(|_| rng.random_range(-1.0f32..1.0)).collect())
            .collect();
        let query: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0f32..1.0)).collect();

        let kernel = linear::euclidean(dims, 4);
        let vw = kernel.layout.vec_words;
        let mut words = Vec::new();
        for v in &vectors {
            let mut q: Vec<i32> = v.iter().map(|&x| Fix32::from_f32(x).0).collect();
            q.resize(vw, 0);
            words.extend_from_slice(&q);
        }
        let words = Arc::new(words);
        let mut qq: Vec<i32> = query.iter().map(|&x| Fix32::from_f32(x).0).collect();
        qq.resize(vw, 0);

        let run = |program: Vec<Instruction>| {
            let mut pu = ProcessingUnit::new(4, Arc::clone(&words));
            pu.load_program(program);
            pu.scratchpad_mut().write_block(0, &qq).expect("query fits");
            pu.set_sreg(1, DRAM_BASE as i32);
            pu.set_sreg(2, DRAM_BASE as i32 + (n * vw * 4) as i32);
            let stats = pu.run(10_000_000).expect("halts");
            let ids: Vec<(i32, i32)> =
                pu.pqueue().entries().iter().map(|e| (e.value, e.id)).collect();
            (ids, stats.cycles)
        };

        let (with_pf, cycles_pf) = run(kernel.program.clone());
        let stripped: Vec<Instruction> = kernel
            .program
            .iter()
            .map(|&i| match i {
                // Keep pc layout identical: replace the prefetch with a nop
                // (an add of s0 into s0).
                Instruction::MemFetch { .. } => Instruction::SAlu {
                    op: AluOp::Add,
                    rd: ssam::core::isa::reg::SReg(0),
                    rs1: ssam::core::isa::reg::SReg(0),
                    rs2: ssam::core::isa::reg::SReg(0),
                },
                other => other,
            })
            .collect();
        let (without_pf, cycles_nopf) = run(stripped);
        prop_assert_eq!(with_pf, without_pf);
        prop_assert!(cycles_pf <= cycles_nopf);
    }
}
