//! Seeded chaos testing for the fault-injection framework.
//!
//! Three properties must hold under *any* fault plan:
//!
//! 1. **Exactness over the covered fraction** — the neighbors a faulted
//!    query returns are exactly the true top-k over the vectors that
//!    were actually scanned (the shards of non-lost vaults), under the
//!    device's own distance model and deterministic `(dist, id)` tie
//!    order. Faults may shrink the candidate pool; they may never
//!    corrupt the ranking of what survives.
//! 2. **Honest accounting** — every per-query `FaultRecord` closes
//!    (injected = corrected + retried + surfaced), the reported
//!    coverage equals the surviving-shard fraction, and the attached
//!    telemetry sink cross-checks it all via `verify_record`.
//! 3. **Zero-fault transparency** — attaching a plan that injects
//!    nothing is bit-identical to running with no plan at all: same
//!    neighbor ids, bitwise-equal distances and modeled seconds.

use std::sync::Arc;

use proptest::prelude::*;

use ssam::core::device::cluster::SsamCluster;
use ssam::core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam::core::telemetry::Telemetry;
use ssam::faults::FaultPlan;
use ssam::knn::VectorStore;

const DIMS: usize = 8;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

fn float_vec(x: &mut u64) -> Vec<f32> {
    (0..DIMS)
        .map(|_| ((lcg(x) >> 40) as i32 % 1000) as f32 / 500.0)
        .collect()
}

fn store(n: usize, seed: u64) -> VectorStore {
    let mut s = VectorStore::with_capacity(DIMS, n);
    let mut x = seed | 1;
    for _ in 0..n {
        s.push(&float_vec(&mut x));
    }
    s
}

fn device(store: &VectorStore) -> SsamDevice {
    let mut dev = SsamDevice::new(SsamConfig::default());
    dev.load_vectors(store);
    dev
}

/// The true top-k over an arbitrary covered id set, under the device's
/// own distance semantics: reload exactly the covered vectors into a
/// fresh (fault-free) device and map its ids back. Per-vector
/// quantization does not depend on shard placement, and the id remap is
/// monotone, so the `(dist, id)` merge order is preserved exactly.
fn reference_topk(
    full: &VectorStore,
    covered: &[u32],
    queries: &[Vec<f32>],
    k: usize,
) -> Vec<Vec<(u32, f32)>> {
    let mut sub = VectorStore::with_capacity(DIMS, covered.len());
    for &id in covered {
        sub.push(full.get(id));
    }
    let mut dev = device(&sub);
    let qs: Vec<DeviceQuery<'_>> = queries.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
    let batch = dev.query_batch(&qs, k).expect("reference batch");
    batch
        .results
        .iter()
        .map(|r| {
            r.neighbors
                .iter()
                .map(|n| (covered[n.id as usize], n.dist))
                .collect()
        })
        .collect()
}

fn chaos_plan(seed: u64, knobs: (f64, f64, f64, f64)) -> FaultPlan {
    let (bit_flip, crc, vault_out, straggle) = knobs;
    FaultPlan {
        seed,
        bit_flip_rate: bit_flip,
        double_bit_fraction: 0.3,
        crc_corruption_rate: crc,
        vault_outage_rate: vault_out,
        straggler_rate: straggle,
        straggler_slowdown: 3.0,
        ..FaultPlan::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under an arbitrary seeded fault plan, every query's neighbors are
    /// exactly the true top-k over its covered fraction, its coverage is
    /// the honest surviving-shard ratio, its fault record closes, and
    /// the telemetry sink's `verify_record` finds nothing to flag.
    #[test]
    fn chaos_results_are_exact_over_covered_fraction(
        seed in any::<u64>(),
        data_seed in any::<u64>(),
        bit_flip in 0.0f64..1.5,
        crc in 0.0f64..0.4,
        vault_out in 0.0f64..0.15,
        straggle in 0.0f64..0.3,
        nq in 1usize..4,
    ) {
        let n = 192;
        let k = 5;
        let full = store(n, data_seed);
        let mut dev = device(&full);
        let sink = Telemetry::default();
        dev.attach_telemetry(&sink);
        dev.set_fault_plan(Some(Arc::new(chaos_plan(
            seed,
            (bit_flip, crc, vault_out, straggle),
        ))));

        let mut x = seed ^ 0x9e3779b97f4a7c15;
        let queries: Vec<Vec<f32>> = (0..nq).map(|_| float_vec(&mut x)).collect();
        let qs: Vec<DeviceQuery<'_>> =
            queries.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
        let spans = dev.shard_spans();
        let batch = dev.query_batch(&qs, k).expect("chaos batch");

        for (qi, r) in batch.results.iter().enumerate() {
            // Accounting closes, per query and at batch scope.
            r.faults.check_closure().expect("per-query closure");

            // Coverage is the honest surviving-shard fraction.
            let lost: Vec<u32> = r.faults.lost_units.clone();
            let covered_vectors: usize = spans
                .iter()
                .enumerate()
                .filter(|(v, _)| !lost.contains(&(*v as u32)))
                .map(|(_, (_, len))| *len)
                .sum();
            prop_assert_eq!(r.faults.covered_vectors, covered_vectors as u64);
            prop_assert_eq!(r.faults.total_vectors, n as u64);
            prop_assert!((r.coverage() - covered_vectors as f64 / n as f64).abs() < 1e-12);

            // Returned neighbors are exactly the true top-k over the
            // covered ids (skip the degenerate all-lost case).
            if covered_vectors == 0 {
                prop_assert!(r.neighbors.is_empty());
                continue;
            }
            let covered_ids: Vec<u32> = spans
                .iter()
                .enumerate()
                .filter(|(v, _)| !lost.contains(&(*v as u32)))
                .flat_map(|(_, (first, len))| *first..*first + *len as u32)
                .collect();
            let expect =
                reference_topk(&full, &covered_ids, &queries[qi..qi + 1], k);
            let got: Vec<(u32, f32)> =
                r.neighbors.iter().map(|nb| (nb.id, nb.dist)).collect();
            prop_assert_eq!(&got, &expect[0], "query {} (lost vaults {:?})", qi, lost);
        }
        batch.faults.check_closure().expect("batch closure");
        prop_assert!(
            sink.violations().is_empty(),
            "telemetry violations under chaos: {:?}",
            sink.violations()
        );
    }

    /// A plan that injects nothing is indistinguishable — bitwise — from
    /// no plan at all. Neighbors, distances, and modeled seconds must
    /// all be identical; the fault machinery may not perturb a healthy
    /// run by even an ulp.
    #[test]
    fn zero_fault_plan_is_bit_identical(
        data_seed in any::<u64>(),
        seed in any::<u64>(),
        nq in 1usize..4,
    ) {
        let full = store(128, data_seed);
        let mut plain = device(&full);
        let mut gated = device(&full);
        gated.set_fault_plan(Some(Arc::new(FaultPlan {
            seed,
            ..FaultPlan::default()
        })));

        let mut x = seed | 1;
        let queries: Vec<Vec<f32>> = (0..nq).map(|_| float_vec(&mut x)).collect();
        let qs: Vec<DeviceQuery<'_>> =
            queries.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
        let a = plain.query_batch(&qs, 4).expect("plain");
        let b = gated.query_batch(&qs, 4).expect("gated");

        prop_assert_eq!(a.timing.seconds.to_bits(), b.timing.seconds.to_bits());
        prop_assert!(b.faults.is_trivial());
        for (ra, rb) in a.results.iter().zip(&b.results) {
            prop_assert_eq!(ra.timing.seconds.to_bits(), rb.timing.seconds.to_bits());
            prop_assert_eq!(ra.neighbors.len(), rb.neighbors.len());
            for (na, nb) in ra.neighbors.iter().zip(&rb.neighbors) {
                prop_assert_eq!(na.id, nb.id);
                prop_assert_eq!(na.dist.to_bits(), nb.dist.to_bits());
            }
            prop_assert!(rb.faults.is_trivial());
            prop_assert!((rb.coverage() - 1.0).abs() == 0.0);
        }
    }
}

/// Cluster-level chaos: module outages fail over to replicas (or are
/// surfaced as lost), the cluster-scope record closes, backoff shows up
/// as recovery time, and the telemetry sink stays clean.
#[test]
fn cluster_chaos_accounting_closes() {
    let full = store(256, 11);
    let mut cluster = SsamCluster::build(SsamConfig::default(), 4, &full);
    let sink = Telemetry::default();
    cluster.attach_telemetry(&sink);
    cluster.set_fault_plan(Some(Arc::new(FaultPlan {
        seed: 17,
        module_outage_rate: 0.35,
        bit_flip_rate: 0.5,
        crc_corruption_rate: 0.1,
        ..FaultPlan::default()
    })));

    let mut x = 23u64;
    let mut saw_failover = false;
    let mut saw_module_loss = false;
    for round in 0..12 {
        let queries: Vec<Vec<f32>> = (0..2).map(|_| float_vec(&mut x)).collect();
        let qs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        let per_query = cluster.query_batch(&qs, 4).expect("cluster chaos batch");
        for (neighbors, timing) in &per_query {
            timing.faults.check_closure().expect("cluster closure");
            assert!(timing.recovery_seconds >= 0.0);
            if timing.faults.failed_over > 0 {
                saw_failover = true;
                assert!(
                    timing.recovery_seconds > 0.0,
                    "failover without backoff charged (round {round})"
                );
            }
            if timing.faults.lost_module > 0 {
                saw_module_loss = true;
                assert!(timing.coverage() < 1.0);
            }
            assert!(neighbors.len() <= 4);
        }
    }
    assert!(
        saw_failover || saw_module_loss,
        "chaos rates never produced a module event in 12 batches — plan too weak"
    );
    assert!(
        sink.violations().is_empty(),
        "cluster telemetry violations: {:?}",
        sink.violations()
    );
}

/// Degraded modules stop receiving work and are probed back to health.
#[test]
fn cluster_degrades_and_recovers_modules() {
    let full = store(128, 5);
    let mut cluster = SsamCluster::build(SsamConfig::default(), 2, &full);
    // Module 1 permanently dead: every batch fails over and exhausts
    // retries, so after `degrade_after` consecutive faulted batches the
    // cluster marks it degraded and routes around it.
    cluster.set_fault_plan(Some(Arc::new(FaultPlan {
        seed: 3,
        dead_modules: vec![1],
        ..FaultPlan::default()
    })));

    let mut x = 31u64;
    let degrade_after = FaultPlan::default().policy.degrade_after as usize;
    for _ in 0..degrade_after {
        let q = float_vec(&mut x);
        let per_query = cluster.query_batch(&[&q], 4).expect("batch");
        let timing = &per_query[0].1;
        assert_eq!(timing.faults.lost_module, 1);
        assert!(timing.coverage() < 1.0);
    }
    assert_eq!(cluster.degraded_modules(), vec![false, true]);

    // While degraded, most batches skip the module entirely (still
    // partial coverage, but no retry storm); every probe_interval-th
    // batch re-probes it, fails again, and keeps it degraded.
    for _ in 0..4 {
        let q = float_vec(&mut x);
        let per_query = cluster.query_batch(&[&q], 4).expect("batch");
        assert!(per_query[0].1.coverage() < 1.0);
    }
    assert_eq!(cluster.degraded_modules(), vec![false, true]);
}
