//! Differential property tests: the analytic fast-path executor is
//! bit-identical to the cycle simulator.
//!
//! `SsamConfig::fast_path` replaces per-instruction interpretation with
//! host-side Q16.16 distances, the same hardware priority queue, and
//! counters synthesized by the static cost model. Nothing observable may
//! change: neighbors, per-vault `RunStats`, per-query and batch timing,
//! energy, fault records, and coverage must all match the simulator
//! exactly — including mixed batches where cosine queries fall back to
//! the simulator mid-tile, software-queue configurations where the fast
//! path must disable itself, and chaos fault plans where outage cells
//! and loss accounting interleave with fast-path runs.

use std::sync::Arc;

use proptest::prelude::*;

use ssam::core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam::core::telemetry::Telemetry;
use ssam::faults::FaultPlan;
use ssam::knn::binary::BinaryStore;
use ssam::knn::VectorStore;

const DIMS: usize = 8;
const CODE_WORDS: usize = 2;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

fn float_store(seed: u64, n: usize) -> VectorStore {
    let mut store = VectorStore::with_capacity(DIMS, n);
    let mut x = seed | 1;
    for _ in 0..n {
        let v: Vec<f32> = (0..DIMS)
            .map(|_| ((lcg(&mut x) >> 40) as i32 % 1000) as f32 / 500.0)
            .collect();
        store.push(&v);
    }
    store
}

fn binary_store(seed: u64, n: usize) -> BinaryStore {
    let mut store = BinaryStore::new(CODE_WORDS * 32);
    let mut x = seed | 1;
    for _ in 0..n {
        let code: Vec<u32> = (0..CODE_WORDS)
            .map(|_| (lcg(&mut x) >> 24) as u32)
            .collect();
        store.push(&code);
    }
    store
}

/// Runs the same batch through a simulator device and a fast-path device
/// and asserts every observable is bit-identical.
fn assert_fastpath_equivalent(
    mut config: SsamConfig,
    load: impl Fn(&mut SsamDevice),
    plan: Option<Arc<FaultPlan>>,
    queries: &[DeviceQuery<'_>],
    k: usize,
) {
    config.fast_path = false;
    let mut sim = SsamDevice::new(config);
    load(&mut sim);
    sim.set_fault_plan(plan.clone());

    config.fast_path = true;
    let mut fast = SsamDevice::new(config);
    load(&mut fast);
    fast.set_fault_plan(plan);
    let sink = Telemetry::default();
    fast.attach_telemetry(&sink);

    let a = sim.query_batch(queries, k).expect("sim batch");
    let b = fast.query_batch(queries, k).expect("fast batch");

    assert_eq!(a.results.len(), b.results.len());
    for (qa, qb) in a.results.iter().zip(&b.results) {
        assert_eq!(qa.neighbors, qb.neighbors, "neighbors diverge");
        assert_eq!(qa.vault_stats, qb.vault_stats, "vault stats diverge");
        assert_eq!(qa.timing, qb.timing, "query timing diverges");
        assert_eq!(qa.faults, qb.faults, "fault records diverge");
        qb.faults.check_closure().expect("fast-path fault closure");
    }
    assert_eq!(a.timing, b.timing, "batch timing diverges");
    assert_eq!(a.faults, b.faults, "batch fault records diverge");
    assert!(
        sink.violations().is_empty(),
        "fast-path telemetry violations: {:?}",
        sink.violations()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Mixed float batches: Euclidean and Manhattan take the fast path,
    /// cosine falls back to the simulator inside the same tile.
    #[test]
    fn float_batches_are_bit_identical(
        seed in 1u64..1000,
        k_idx in 0usize..3,
        batch in 2usize..6,
    ) {
        let k = [1usize, 8, 40][k_idx];
        let store = float_store(seed, 120);
        let qs: Vec<Vec<f32>> = (0..batch)
            .map(|i| {
                (0..DIMS)
                    .map(|j| ((seed as usize + i * 13 + j * 7) as f32 * 0.17).sin())
                    .collect()
            })
            .collect();
        let queries: Vec<DeviceQuery<'_>> = qs
            .iter()
            .enumerate()
            .map(|(i, q)| match i % 3 {
                0 => DeviceQuery::Euclidean(q),
                1 => DeviceQuery::Manhattan(q),
                _ => DeviceQuery::Cosine(q),
            })
            .collect();
        assert_fastpath_equivalent(
            SsamConfig::default(),
            |dev| dev.load_vectors(&store),
            None,
            &queries,
            k,
        );
    }

    /// Hamming batches over packed binary codes.
    #[test]
    fn hamming_batches_are_bit_identical(
        seed in 1u64..1000,
        k_idx in 0usize..3,
    ) {
        let k = [1usize, 8, 40][k_idx];
        let store = binary_store(seed, 100);
        let codes: Vec<Vec<u32>> = (0..4u32)
            .map(|i| {
                (0..CODE_WORDS as u32)
                    .map(|j| (seed as u32 ^ (i * 7 + j)).wrapping_mul(0x9E37_79B9))
                    .collect()
            })
            .collect();
        let queries: Vec<DeviceQuery<'_>> =
            codes.iter().map(|c| DeviceQuery::Hamming(c)).collect();
        assert_fastpath_equivalent(
            SsamConfig::default(),
            |dev| dev.load_binary(&store),
            None,
            &queries,
            k,
        );
    }

    /// With a software queue the fast path must disable itself — the
    /// insertion walk is data-dependent — and stay bit-identical.
    #[test]
    fn software_queue_config_is_bit_identical(
        seed in 1u64..1000,
        batch in 1usize..4,
    ) {
        let store = float_store(seed, 90);
        let qs: Vec<Vec<f32>> = (0..batch)
            .map(|i| (0..DIMS).map(|j| ((i * 5 + j) as f32 * 0.31).cos()).collect())
            .collect();
        let queries: Vec<DeviceQuery<'_>> =
            qs.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
        assert_fastpath_equivalent(
            SsamConfig { use_hw_queue: false, ..SsamConfig::default() },
            |dev| dev.load_vectors(&store),
            None,
            &queries,
            6,
        );
    }

    /// Chaos fault plans: outage cells, ECC/link loss, and stragglers
    /// must account identically whether the surviving runs were simulated
    /// or fast-pathed, and the fast path's fault ledger must close.
    #[test]
    fn chaos_fault_plans_are_bit_identical(
        seed in any::<u64>(),
        data_seed in 1u64..1000,
        bit_flip in 0.0f64..1.5,
        vault_out in 0.0f64..0.15,
        straggle in 0.0f64..0.3,
        nq in 1usize..4,
    ) {
        let store = float_store(data_seed, 160);
        let plan = Arc::new(FaultPlan {
            seed,
            bit_flip_rate: bit_flip,
            double_bit_fraction: 0.3,
            crc_corruption_rate: 0.2,
            vault_outage_rate: vault_out,
            straggler_rate: straggle,
            straggler_slowdown: 3.0,
            ..FaultPlan::default()
        });
        let mut x = seed ^ 0x9e3779b97f4a7c15;
        let qs: Vec<Vec<f32>> = (0..nq)
            .map(|_| {
                (0..DIMS)
                    .map(|_| ((lcg(&mut x) >> 40) as i32 % 1000) as f32 / 500.0)
                    .collect()
            })
            .collect();
        let queries: Vec<DeviceQuery<'_>> = qs
            .iter()
            .enumerate()
            .map(|(i, q)| if i % 2 == 0 {
                DeviceQuery::Euclidean(q)
            } else {
                DeviceQuery::Manhattan(q)
            })
            .collect();
        assert_fastpath_equivalent(
            SsamConfig::default(),
            |dev| dev.load_vectors(&store),
            Some(plan),
            &queries,
            5,
        );
    }
}
