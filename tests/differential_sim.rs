//! Differential testing: the PU simulator versus an independent reference
//! interpreter on randomized straight-line programs.
//!
//! The reference interpreter below is deliberately minimal — no timing,
//! no pipelines, no stream buffer — just the architectural semantics of
//! Table II, written independently of `ssam_core::sim`. Property tests
//! generate random (control-flow-free) programs and assert both engines
//! land in identical architectural state. This is the software analogue
//! of the paper's RTL-vs-model validation.

use std::sync::Arc;

use proptest::prelude::*;

use ssam::core::analysis::{verify_program, Severity, VerifyConfig};
use ssam::core::isa::inst::{AluOp, Instruction, UnaryOp};
use ssam::core::isa::reg::{SReg, VReg};
use ssam::core::isa::{DRAM_BASE, SCRATCHPAD_BYTES};
use ssam::core::sim::pu::ProcessingUnit;

const VL: usize = 4;
const DRAM_WORDS: usize = 64;

/// Minimal architectural reference model.
struct RefMachine {
    s: [i32; 32],
    v: [[i32; VL]; 8],
    spad: Vec<i32>,
    dram: Vec<i32>,
    pq: Vec<(i32, i32)>, // (value, id) sorted ascending
    stack: Vec<i32>,
}

impl RefMachine {
    fn new(dram: Vec<i32>) -> Self {
        Self {
            s: [0; 32],
            v: [[0; VL]; 8],
            spad: vec![0; SCRATCHPAD_BYTES / 4],
            dram,
            pq: Vec::new(),
            stack: Vec::new(),
        }
    }

    fn write_s(&mut self, r: usize, val: i32) {
        if r != 0 {
            self.s[r] = val;
        }
    }

    fn load_word(&self, addr: u32) -> i32 {
        if addr < DRAM_BASE {
            self.spad[(addr / 4) as usize]
        } else {
            self.dram[((addr - DRAM_BASE) / 4) as usize]
        }
    }

    fn exec(&mut self, program: &[Instruction]) {
        use Instruction::*;
        for inst in program {
            match *inst {
                SAlu { op, rd, rs1, rs2 } => {
                    let val = op.eval(self.s[rs1.index()], self.s[rs2.index()]);
                    self.write_s(rd.index(), val);
                }
                SAluImm { op, rd, rs1, imm } => {
                    let val = op.eval(self.s[rs1.index()], imm);
                    self.write_s(rd.index(), val);
                }
                SUnary { op, rd, rs1 } => {
                    let val = op.eval(self.s[rs1.index()]);
                    self.write_s(rd.index(), val);
                }
                Push { rs1 } => self.stack.push(self.s[rs1.index()]),
                Pop { rd } => {
                    let val = self.stack.pop().expect("generator balances stack ops");
                    self.write_s(rd.index(), val);
                }
                PqueueInsert { rs_id, rs_val } => {
                    let e = (self.s[rs_val.index()], self.s[rs_id.index()]);
                    let pos = self.pq.partition_point(|&x| x <= e);
                    self.pq.insert(pos, e);
                    self.pq.truncate(16);
                }
                PqueueLoad { rd, rs_idx, field } => {
                    use ssam::core::isa::inst::PqField;
                    let idx = self.s[rs_idx.index()].max(0) as usize;
                    let val = match field {
                        PqField::Id => self.pq.get(idx).map_or(-1, |e| e.1),
                        PqField::Value => self.pq.get(idx).map_or(i32::MAX, |e| e.0),
                        PqField::Size => self.pq.len() as i32,
                    };
                    self.write_s(rd.index(), val);
                }
                PqueueReset => self.pq.clear(),
                Sfxp { rd, rs1, rs2 } => {
                    let x = self.s[rs1.index()] ^ self.s[rs2.index()];
                    let val = self.s[rd.index()].wrapping_add(x.count_ones() as i32);
                    self.write_s(rd.index(), val);
                }
                Load {
                    rd,
                    rs_base,
                    offset,
                } => {
                    let addr = self.s[rs_base.index()].wrapping_add(offset) as u32;
                    let val = self.load_word(addr);
                    self.write_s(rd.index(), val);
                }
                Store {
                    rs_val,
                    rs_base,
                    offset,
                } => {
                    let addr = self.s[rs_base.index()].wrapping_add(offset) as u32;
                    self.spad[(addr / 4) as usize] = self.s[rs_val.index()];
                }
                MemFetch { .. } => {} // performance hint only
                SvMove { vd, rs1, lane } => {
                    let val = self.s[rs1.index()];
                    if lane < 0 {
                        self.v[vd.index()] = [val; VL];
                    } else {
                        self.v[vd.index()][lane as usize] = val;
                    }
                }
                VsMove { rd, vs1, lane } => {
                    let val = self.v[vs1.index()][lane as usize];
                    self.write_s(rd.index(), val);
                }
                VAlu { op, vd, vs1, vs2 } => {
                    for l in 0..VL {
                        self.v[vd.index()][l] =
                            op.eval(self.v[vs1.index()][l], self.v[vs2.index()][l]);
                    }
                }
                VAluImm { op, vd, vs1, imm } => {
                    for l in 0..VL {
                        self.v[vd.index()][l] = op.eval(self.v[vs1.index()][l], imm);
                    }
                }
                VUnary { op, vd, vs1 } => {
                    for l in 0..VL {
                        self.v[vd.index()][l] = op.eval(self.v[vs1.index()][l]);
                    }
                }
                Vfxp { vd, vs1, vs2 } => {
                    for l in 0..VL {
                        let x = self.v[vs1.index()][l] ^ self.v[vs2.index()][l];
                        self.v[vd.index()][l] =
                            self.v[vd.index()][l].wrapping_add(x.count_ones() as i32);
                    }
                }
                VLoad {
                    vd,
                    rs_base,
                    offset,
                } => {
                    let addr = self.s[rs_base.index()].wrapping_add(offset) as u32;
                    for l in 0..VL {
                        self.v[vd.index()][l] = self.load_word(addr + 4 * l as u32);
                    }
                }
                VStore {
                    vs,
                    rs_base,
                    offset,
                } => {
                    let addr = self.s[rs_base.index()].wrapping_add(offset) as u32;
                    for l in 0..VL {
                        self.spad[((addr + 4 * l as u32) / 4) as usize] = self.v[vs.index()][l];
                    }
                }
                Branch { .. } | Jump { .. } | Halt => unreachable!("straight-line only"),
            }
        }
    }
}

// ---- random straight-line program generation ----

/// Safe word-aligned scratchpad offsets (keep well inside bounds and away
/// from vector-load overruns).
fn arb_spad_offset() -> impl Strategy<Value = i32> {
    (0..(SCRATCHPAD_BYTES as i32 / 4 - VL as i32)).prop_map(|w| w * 4)
}

fn arb_dram_offset() -> impl Strategy<Value = i32> {
    (0..(DRAM_WORDS as i32 - VL as i32)).prop_map(|w| w * 4)
}

fn arb_sreg() -> impl Strategy<Value = SReg> {
    (0u8..32).prop_map(SReg)
}
fn arb_vreg() -> impl Strategy<Value = VReg> {
    (0u8..8).prop_map(VReg)
}
fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mult),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Xor),
        Just(AluOp::Sl),
        Just(AluOp::Sr),
        Just(AluOp::Sra),
    ]
}
fn arb_unary() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![Just(UnaryOp::Not), Just(UnaryOp::Popcount)]
}

/// One safe straight-line instruction. Loads/stores use `s0` (zero) as
/// the base with a bounded positive offset; DRAM loads add `s31`, which
/// the harness pins to `DRAM_BASE` and the generator never overwrites
/// (rd is drawn from s0–s30).
fn arb_safe_inst() -> impl Strategy<Value = Instruction> {
    let rd = || (0u8..31).prop_map(SReg);
    prop_oneof![
        (arb_alu(), rd(), arb_sreg(), arb_sreg())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::SAlu { op, rd, rs1, rs2 }),
        (arb_alu(), rd(), arb_sreg(), -1000i32..1000)
            .prop_map(|(op, rd, rs1, imm)| Instruction::SAluImm { op, rd, rs1, imm }),
        (arb_unary(), rd(), arb_sreg()).prop_map(|(op, rd, rs1)| Instruction::SUnary {
            op,
            rd,
            rs1
        }),
        (rd(), arb_sreg()).prop_map(|(rs_id, rs_val)| Instruction::PqueueInsert { rs_id, rs_val }),
        (rd(), arb_sreg()).prop_map(|(rd, rs_idx)| Instruction::PqueueLoad {
            rd,
            rs_idx,
            field: ssam::core::isa::inst::PqField::Value
        }),
        (rd(), arb_sreg(), arb_sreg()).prop_map(|(rd, rs1, rs2)| Instruction::Sfxp {
            rd,
            rs1,
            rs2
        }),
        (rd(), arb_spad_offset()).prop_map(|(rd, offset)| Instruction::Load {
            rd,
            rs_base: SReg(0),
            offset
        }),
        (arb_sreg(), arb_spad_offset()).prop_map(|(rs_val, offset)| Instruction::Store {
            rs_val,
            rs_base: SReg(0),
            offset
        }),
        (rd(), arb_dram_offset()).prop_map(|(rd, offset)| Instruction::Load {
            rd,
            rs_base: SReg(31),
            offset
        }),
        (arb_vreg(), arb_sreg(), (-1i8..VL as i8))
            .prop_map(|(vd, rs1, lane)| Instruction::SvMove { vd, rs1, lane }),
        (rd(), arb_vreg(), (0u8..VL as u8)).prop_map(|(rd, vs1, lane)| Instruction::VsMove {
            rd,
            vs1,
            lane
        }),
        (arb_alu(), arb_vreg(), arb_vreg(), arb_vreg())
            .prop_map(|(op, vd, vs1, vs2)| Instruction::VAlu { op, vd, vs1, vs2 }),
        (arb_alu(), arb_vreg(), arb_vreg(), -1000i32..1000)
            .prop_map(|(op, vd, vs1, imm)| Instruction::VAluImm { op, vd, vs1, imm }),
        (arb_unary(), arb_vreg(), arb_vreg()).prop_map(|(op, vd, vs1)| Instruction::VUnary {
            op,
            vd,
            vs1
        }),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vs1, vs2)| Instruction::Vfxp {
            vd,
            vs1,
            vs2
        }),
        (arb_vreg(), arb_spad_offset()).prop_map(|(vd, offset)| Instruction::VLoad {
            vd,
            rs_base: SReg(0),
            offset
        }),
        (arb_vreg(), arb_dram_offset()).prop_map(|(vd, offset)| Instruction::VLoad {
            vd,
            rs_base: SReg(31),
            offset
        }),
        (arb_vreg(), arb_spad_offset()).prop_map(|(vs, offset)| Instruction::VStore {
            vs,
            rs_base: SReg(0),
            offset
        }),
    ]
}

/// Balanced push/pop pairs are appended so the stack never underflows.
fn arb_program() -> impl Strategy<Value = Vec<Instruction>> {
    (
        prop::collection::vec(arb_safe_inst(), 1..60),
        prop::collection::vec((0u8..31, 0u8..32), 0..8),
    )
        .prop_map(|(mut body, pairs)| {
            for (rd, rs) in pairs {
                body.push(Instruction::Push { rs1: SReg(rs) });
                body.push(Instruction::Pop { rd: SReg(rd) });
            }
            body.push(Instruction::Halt);
            body
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simulator_matches_reference_interpreter(
        program in arb_program(),
        dram in prop::collection::vec(any::<i32>(), DRAM_WORDS),
        seeds in prop::collection::vec(any::<i32>(), 8),
    ) {
        // The generator's safety contract, checked by the static
        // verifier: straight-line, balanced, in-bounds programs carry no
        // error-severity diagnostics (warnings such as a constant
        // PQUEUE_LOAD index past the queue depth are architecturally
        // defined and modeled by the reference interpreter).
        let diags = verify_program(&program, &VerifyConfig::permissive(VL));
        prop_assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "generated program should verify error-free: {:?}",
            diags
        );

        // Simulator under test.
        let mut pu = ProcessingUnit::new(VL, Arc::new(dram.clone()));
        // Straight-line body (reference executes everything except Halt).
        let body: Vec<Instruction> =
            program.iter().copied().filter(|i| !matches!(i, Instruction::Halt)).collect();
        pu.load_program(program.clone());
        for (i, &v) in seeds.iter().enumerate() {
            pu.set_sreg(1 + i, v);
        }
        pu.set_sreg(31, DRAM_BASE as i32);
        pu.run(10_000).expect("straight-line programs cannot fault");

        // Independent reference.
        let mut m = RefMachine::new(dram);
        for (i, &v) in seeds.iter().enumerate() {
            m.write_s(1 + i, v);
        }
        m.write_s(31, DRAM_BASE as i32);
        m.exec(&body);

        // Architectural state must agree.
        for r in 0..32 {
            prop_assert_eq!(pu.sreg(r), m.s[r], "scalar register s{}", r);
        }
        let pq_sim: Vec<(i32, i32)> =
            pu.pqueue().entries().iter().map(|e| (e.value, e.id)).collect();
        prop_assert_eq!(pq_sim, m.pq, "priority queue");
        // Spot-check scratchpad words the programs may have touched.
        for w in (0..SCRATCHPAD_BYTES / 4).step_by(257) {
            prop_assert_eq!(
                pu.scratchpad().read_block((w * 4) as u32, 1).expect("in range")[0],
                m.spad[w],
                "scratchpad word {}", w
            );
        }
    }
}

/// Unit-consistency: the device engine reports distances in the same
/// float units as the CPU reference (`Fix32::to_f32` on the raw Q16.16
/// queue words, not a raw integer cast — the raw cast was 65536× off).
#[test]
fn device_distances_agree_with_cpu_reference_units() {
    use ssam::core::device::{DeviceQuery, SsamConfig, SsamDevice};
    use ssam::knn::linear::knn_exact;
    use ssam::knn::{Metric, VectorStore};

    let dims = 12usize;
    let mut store = VectorStore::with_capacity(dims, 150);
    for i in 0..150 {
        let v: Vec<f32> = (0..dims)
            .map(|j| ((i * 29 + j * 11) as f32 * 0.09).sin())
            .collect();
        store.push(&v);
    }
    let q: Vec<f32> = (0..dims).map(|j| (j as f32 * 0.23).cos()).collect();

    for use_hw_queue in [true, false] {
        let mut dev = SsamDevice::new(SsamConfig {
            use_hw_queue,
            ..SsamConfig::default()
        });
        dev.load_vectors(&store);
        for (query, metric) in [
            (DeviceQuery::Euclidean(&q), Metric::Euclidean),
            (DeviceQuery::Manhattan(&q), Metric::Manhattan),
        ] {
            let r = dev.query(&query, 6).expect("device runs");
            let reference = knn_exact(&store, &q, 6, metric);
            assert_eq!(r.neighbors.len(), reference.len());
            for (got, want) in r.neighbors.iter().zip(&reference) {
                assert!(
                    (got.dist - want.dist).abs() < 1e-2,
                    "{metric:?} hw_queue={use_hw_queue}: device {} vs reference {} (id {})",
                    got.dist,
                    want.dist,
                    want.id
                );
            }
        }
    }
}
