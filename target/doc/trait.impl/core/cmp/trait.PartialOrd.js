(function() {
    const implementors = Object.fromEntries([["ssam_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"enum\" href=\"ssam_core/analysis/enum.DiagCode.html\" title=\"enum ssam_core::analysis::DiagCode\">DiagCode</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"enum\" href=\"ssam_core/analysis/enum.Severity.html\" title=\"enum ssam_core::analysis::Severity\">Severity</a>",0]]],["ssam_knn",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"ssam_knn/fixed/struct.Fix32.html\" title=\"struct ssam_knn::fixed::Fix32\">Fix32</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"ssam_knn/topk/struct.Neighbor.html\" title=\"struct ssam_knn::topk::Neighbor\">Neighbor</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[581,566]}