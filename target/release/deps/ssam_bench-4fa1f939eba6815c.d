/root/repo/target/release/deps/ssam_bench-4fa1f939eba6815c.d: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

/root/repo/target/release/deps/libssam_bench-4fa1f939eba6815c.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
