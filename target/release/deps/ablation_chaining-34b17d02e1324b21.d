/root/repo/target/release/deps/ablation_chaining-34b17d02e1324b21.d: crates/bench/src/bin/ablation_chaining.rs

/root/repo/target/release/deps/ablation_chaining-34b17d02e1324b21: crates/bench/src/bin/ablation_chaining.rs

crates/bench/src/bin/ablation_chaining.rs:
