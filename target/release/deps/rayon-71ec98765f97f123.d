/root/repo/target/release/deps/rayon-71ec98765f97f123.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-71ec98765f97f123.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-71ec98765f97f123.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
