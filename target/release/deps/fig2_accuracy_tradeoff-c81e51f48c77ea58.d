/root/repo/target/release/deps/fig2_accuracy_tradeoff-c81e51f48c77ea58.d: crates/bench/src/bin/fig2_accuracy_tradeoff.rs

/root/repo/target/release/deps/fig2_accuracy_tradeoff-c81e51f48c77ea58: crates/bench/src/bin/fig2_accuracy_tradeoff.rs

crates/bench/src/bin/fig2_accuracy_tradeoff.rs:
