/root/repo/target/release/deps/ssam_lint-a6e53a5a92d2d214.d: crates/bench/src/bin/ssam_lint.rs Cargo.toml

/root/repo/target/release/deps/libssam_lint-a6e53a5a92d2d214.rmeta: crates/bench/src/bin/ssam_lint.rs Cargo.toml

crates/bench/src/bin/ssam_lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
