/root/repo/target/release/deps/serve_equivalence-b446edd6e87d51ba.d: tests/serve_equivalence.rs

/root/repo/target/release/deps/serve_equivalence-b446edd6e87d51ba: tests/serve_equivalence.rs

tests/serve_equivalence.rs:
