/root/repo/target/release/deps/rand-36c9795792a3000c.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-36c9795792a3000c.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-36c9795792a3000c.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
