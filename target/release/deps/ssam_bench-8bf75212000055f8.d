/root/repo/target/release/deps/ssam_bench-8bf75212000055f8.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/release/deps/libssam_bench-8bf75212000055f8.rlib: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/release/deps/libssam_bench-8bf75212000055f8.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
