/root/repo/target/release/deps/ablation_index_construction-3610625ef11363c7.d: crates/bench/src/bin/ablation_index_construction.rs

/root/repo/target/release/deps/ablation_index_construction-3610625ef11363c7: crates/bench/src/bin/ablation_index_construction.rs

crates/bench/src/bin/ablation_index_construction.rs:
