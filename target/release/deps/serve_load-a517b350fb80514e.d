/root/repo/target/release/deps/serve_load-a517b350fb80514e.d: crates/bench/src/bin/serve_load.rs

/root/repo/target/release/deps/serve_load-a517b350fb80514e: crates/bench/src/bin/serve_load.rs

crates/bench/src/bin/serve_load.rs:
