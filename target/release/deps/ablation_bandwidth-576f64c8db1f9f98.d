/root/repo/target/release/deps/ablation_bandwidth-576f64c8db1f9f98.d: crates/bench/src/bin/ablation_bandwidth.rs

/root/repo/target/release/deps/ablation_bandwidth-576f64c8db1f9f98: crates/bench/src/bin/ablation_bandwidth.rs

crates/bench/src/bin/ablation_bandwidth.rs:
