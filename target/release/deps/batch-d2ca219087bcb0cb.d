/root/repo/target/release/deps/batch-d2ca219087bcb0cb.d: crates/bench/benches/batch.rs

/root/repo/target/release/deps/batch-d2ca219087bcb0cb: crates/bench/benches/batch.rs

crates/bench/benches/batch.rs:
