/root/repo/target/release/deps/make_figures-c2335650d7d6fa40.d: crates/bench/src/bin/make_figures.rs

/root/repo/target/release/deps/make_figures-c2335650d7d6fa40: crates/bench/src/bin/make_figures.rs

crates/bench/src/bin/make_figures.rs:
