/root/repo/target/release/deps/table_tco-08a48bb54edc4e0e.d: crates/bench/src/bin/table_tco.rs

/root/repo/target/release/deps/table_tco-08a48bb54edc4e0e: crates/bench/src/bin/table_tco.rs

crates/bench/src/bin/table_tco.rs:
