/root/repo/target/release/deps/ssam_hmc-d809915255b26dc5.d: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs Cargo.toml

/root/repo/target/release/deps/libssam_hmc-d809915255b26dc5.rmeta: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs Cargo.toml

crates/hmc/src/lib.rs:
crates/hmc/src/address.rs:
crates/hmc/src/config.rs:
crates/hmc/src/dram.rs:
crates/hmc/src/module.rs:
crates/hmc/src/packet.rs:
crates/hmc/src/vault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
