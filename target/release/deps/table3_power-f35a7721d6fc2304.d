/root/repo/target/release/deps/table3_power-f35a7721d6fc2304.d: crates/bench/src/bin/table3_power.rs

/root/repo/target/release/deps/table3_power-f35a7721d6fc2304: crates/bench/src/bin/table3_power.rs

crates/bench/src/bin/table3_power.rs:
