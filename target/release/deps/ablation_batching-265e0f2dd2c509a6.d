/root/repo/target/release/deps/ablation_batching-265e0f2dd2c509a6.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/release/deps/ablation_batching-265e0f2dd2c509a6: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
