/root/repo/target/release/deps/fig6_linear_comparison-c973626bc992da7e.d: crates/bench/src/bin/fig6_linear_comparison.rs

/root/repo/target/release/deps/fig6_linear_comparison-c973626bc992da7e: crates/bench/src/bin/fig6_linear_comparison.rs

crates/bench/src/bin/fig6_linear_comparison.rs:
