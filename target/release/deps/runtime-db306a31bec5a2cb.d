/root/repo/target/release/deps/runtime-db306a31bec5a2cb.d: crates/serve/tests/runtime.rs

/root/repo/target/release/deps/runtime-db306a31bec5a2cb: crates/serve/tests/runtime.rs

crates/serve/tests/runtime.rs:
