/root/repo/target/release/deps/ssam_profiling-f03cb346cbcb69f6.d: crates/profiling/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libssam_profiling-f03cb346cbcb69f6.rmeta: crates/profiling/src/lib.rs Cargo.toml

crates/profiling/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
