/root/repo/target/release/deps/run_all-616b79a9a1bd8efb.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-616b79a9a1bd8efb: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
