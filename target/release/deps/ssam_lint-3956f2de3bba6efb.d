/root/repo/target/release/deps/ssam_lint-3956f2de3bba6efb.d: crates/bench/src/bin/ssam_lint.rs

/root/repo/target/release/deps/ssam_lint-3956f2de3bba6efb: crates/bench/src/bin/ssam_lint.rs

crates/bench/src/bin/ssam_lint.rs:
