/root/repo/target/release/deps/table5_distance_metrics-c309ef93c6041b1d.d: crates/bench/src/bin/table5_distance_metrics.rs

/root/repo/target/release/deps/table5_distance_metrics-c309ef93c6041b1d: crates/bench/src/bin/table5_distance_metrics.rs

crates/bench/src/bin/table5_distance_metrics.rs:
