/root/repo/target/release/deps/rayon-d994321e03b29951.d: vendor/rayon/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librayon-d994321e03b29951.rmeta: vendor/rayon/src/lib.rs Cargo.toml

vendor/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
