/root/repo/target/release/deps/proptest-cfabf5570673d34c.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-cfabf5570673d34c.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-cfabf5570673d34c.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
