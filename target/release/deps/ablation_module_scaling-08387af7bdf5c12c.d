/root/repo/target/release/deps/ablation_module_scaling-08387af7bdf5c12c.d: crates/bench/src/bin/ablation_module_scaling.rs

/root/repo/target/release/deps/ablation_module_scaling-08387af7bdf5c12c: crates/bench/src/bin/ablation_module_scaling.rs

crates/bench/src/bin/ablation_module_scaling.rs:
