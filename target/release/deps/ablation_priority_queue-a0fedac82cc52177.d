/root/repo/target/release/deps/ablation_priority_queue-a0fedac82cc52177.d: crates/bench/src/bin/ablation_priority_queue.rs

/root/repo/target/release/deps/ablation_priority_queue-a0fedac82cc52177: crates/bench/src/bin/ablation_priority_queue.rs

crates/bench/src/bin/ablation_priority_queue.rs:
