/root/repo/target/release/deps/ssam_serve-57cbb8ef26552bdf.d: crates/serve/src/lib.rs crates/serve/src/batcher.rs

/root/repo/target/release/deps/libssam_serve-57cbb8ef26552bdf.rlib: crates/serve/src/lib.rs crates/serve/src/batcher.rs

/root/repo/target/release/deps/libssam_serve-57cbb8ef26552bdf.rmeta: crates/serve/src/lib.rs crates/serve/src/batcher.rs

crates/serve/src/lib.rs:
crates/serve/src/batcher.rs:
