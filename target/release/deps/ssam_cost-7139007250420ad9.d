/root/repo/target/release/deps/ssam_cost-7139007250420ad9.d: crates/cost/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libssam_cost-7139007250420ad9.rmeta: crates/cost/src/lib.rs Cargo.toml

crates/cost/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
