/root/repo/target/release/deps/ablation_fixed_point-93d671e474be2ec0.d: crates/bench/src/bin/ablation_fixed_point.rs

/root/repo/target/release/deps/ablation_fixed_point-93d671e474be2ec0: crates/bench/src/bin/ablation_fixed_point.rs

crates/bench/src/bin/ablation_fixed_point.rs:
