/root/repo/target/release/deps/ablation_on_device_index-e31372f59f6b5ee4.d: crates/bench/src/bin/ablation_on_device_index.rs

/root/repo/target/release/deps/ablation_on_device_index-e31372f59f6b5ee4: crates/bench/src/bin/ablation_on_device_index.rs

crates/bench/src/bin/ablation_on_device_index.rs:
