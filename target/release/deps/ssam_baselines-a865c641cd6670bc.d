/root/repo/target/release/deps/ssam_baselines-a865c641cd6670bc.d: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

/root/repo/target/release/deps/libssam_baselines-a865c641cd6670bc.rlib: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

/root/repo/target/release/deps/libssam_baselines-a865c641cd6670bc.rmeta: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

crates/baselines/src/lib.rs:
crates/baselines/src/automata.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/fpga.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/normalize.rs:
crates/baselines/src/parallel.rs:
