/root/repo/target/release/deps/ssam_core-67d32144552c28f9.d: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/cfg.rs crates/core/src/analysis/memcheck.rs crates/core/src/analysis/pqueue.rs crates/core/src/analysis/regflow.rs crates/core/src/analysis/stackflow.rs crates/core/src/analysis/uses.rs crates/core/src/area.rs crates/core/src/asm/mod.rs crates/core/src/asm/parser.rs crates/core/src/device/mod.rs crates/core/src/device/cluster.rs crates/core/src/device/indexed.rs crates/core/src/device/memregion.rs crates/core/src/energy.rs crates/core/src/isa/mod.rs crates/core/src/isa/encoding.rs crates/core/src/isa/inst.rs crates/core/src/isa/reg.rs crates/core/src/kernels/mod.rs crates/core/src/kernels/kmeans_traversal.rs crates/core/src/kernels/linear.rs crates/core/src/kernels/lsh_traversal.rs crates/core/src/kernels/traversal.rs crates/core/src/sim/mod.rs crates/core/src/sim/memif.rs crates/core/src/sim/pqueue.rs crates/core/src/sim/pu.rs crates/core/src/sim/scratchpad.rs crates/core/src/sim/stack.rs crates/core/src/sim/trace.rs crates/core/src/telemetry.rs

/root/repo/target/release/deps/ssam_core-67d32144552c28f9: crates/core/src/lib.rs crates/core/src/analysis/mod.rs crates/core/src/analysis/cfg.rs crates/core/src/analysis/memcheck.rs crates/core/src/analysis/pqueue.rs crates/core/src/analysis/regflow.rs crates/core/src/analysis/stackflow.rs crates/core/src/analysis/uses.rs crates/core/src/area.rs crates/core/src/asm/mod.rs crates/core/src/asm/parser.rs crates/core/src/device/mod.rs crates/core/src/device/cluster.rs crates/core/src/device/indexed.rs crates/core/src/device/memregion.rs crates/core/src/energy.rs crates/core/src/isa/mod.rs crates/core/src/isa/encoding.rs crates/core/src/isa/inst.rs crates/core/src/isa/reg.rs crates/core/src/kernels/mod.rs crates/core/src/kernels/kmeans_traversal.rs crates/core/src/kernels/linear.rs crates/core/src/kernels/lsh_traversal.rs crates/core/src/kernels/traversal.rs crates/core/src/sim/mod.rs crates/core/src/sim/memif.rs crates/core/src/sim/pqueue.rs crates/core/src/sim/pu.rs crates/core/src/sim/scratchpad.rs crates/core/src/sim/stack.rs crates/core/src/sim/trace.rs crates/core/src/telemetry.rs

crates/core/src/lib.rs:
crates/core/src/analysis/mod.rs:
crates/core/src/analysis/cfg.rs:
crates/core/src/analysis/memcheck.rs:
crates/core/src/analysis/pqueue.rs:
crates/core/src/analysis/regflow.rs:
crates/core/src/analysis/stackflow.rs:
crates/core/src/analysis/uses.rs:
crates/core/src/area.rs:
crates/core/src/asm/mod.rs:
crates/core/src/asm/parser.rs:
crates/core/src/device/mod.rs:
crates/core/src/device/cluster.rs:
crates/core/src/device/indexed.rs:
crates/core/src/device/memregion.rs:
crates/core/src/energy.rs:
crates/core/src/isa/mod.rs:
crates/core/src/isa/encoding.rs:
crates/core/src/isa/inst.rs:
crates/core/src/isa/reg.rs:
crates/core/src/kernels/mod.rs:
crates/core/src/kernels/kmeans_traversal.rs:
crates/core/src/kernels/linear.rs:
crates/core/src/kernels/lsh_traversal.rs:
crates/core/src/kernels/traversal.rs:
crates/core/src/sim/mod.rs:
crates/core/src/sim/memif.rs:
crates/core/src/sim/pqueue.rs:
crates/core/src/sim/pu.rs:
crates/core/src/sim/scratchpad.rs:
crates/core/src/sim/stack.rs:
crates/core/src/sim/trace.rs:
crates/core/src/telemetry.rs:
