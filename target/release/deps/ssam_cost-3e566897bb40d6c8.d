/root/repo/target/release/deps/ssam_cost-3e566897bb40d6c8.d: crates/cost/src/lib.rs

/root/repo/target/release/deps/libssam_cost-3e566897bb40d6c8.rlib: crates/cost/src/lib.rs

/root/repo/target/release/deps/libssam_cost-3e566897bb40d6c8.rmeta: crates/cost/src/lib.rs

crates/cost/src/lib.rs:
