/root/repo/target/release/deps/ssam_serve-93bbf06bba13cd08.d: crates/serve/src/lib.rs crates/serve/src/batcher.rs

/root/repo/target/release/deps/ssam_serve-93bbf06bba13cd08: crates/serve/src/lib.rs crates/serve/src/batcher.rs

crates/serve/src/lib.rs:
crates/serve/src/batcher.rs:
