/root/repo/target/release/deps/ssam_hmc-fd6ba3f13cb45143.d: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs

/root/repo/target/release/deps/libssam_hmc-fd6ba3f13cb45143.rlib: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs

/root/repo/target/release/deps/libssam_hmc-fd6ba3f13cb45143.rmeta: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs

crates/hmc/src/lib.rs:
crates/hmc/src/address.rs:
crates/hmc/src/config.rs:
crates/hmc/src/dram.rs:
crates/hmc/src/module.rs:
crates/hmc/src/packet.rs:
crates/hmc/src/vault.rs:
