/root/repo/target/release/deps/ssam-9e40c853532f0ded.d: src/lib.rs

/root/repo/target/release/deps/libssam-9e40c853532f0ded.rlib: src/lib.rs

/root/repo/target/release/deps/libssam-9e40c853532f0ded.rmeta: src/lib.rs

src/lib.rs:
