/root/repo/target/release/deps/table4_area-f9fd709d30b2349a.d: crates/bench/src/bin/table4_area.rs

/root/repo/target/release/deps/table4_area-f9fd709d30b2349a: crates/bench/src/bin/table4_area.rs

crates/bench/src/bin/table4_area.rs:
