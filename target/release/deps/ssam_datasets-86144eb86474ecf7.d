/root/repo/target/release/deps/ssam_datasets-86144eb86474ecf7.d: crates/datasets/src/lib.rs crates/datasets/src/benchmark.rs crates/datasets/src/generator.rs crates/datasets/src/ground_truth.rs crates/datasets/src/io.rs crates/datasets/src/json.rs crates/datasets/src/spec.rs crates/datasets/src/texmex.rs

/root/repo/target/release/deps/libssam_datasets-86144eb86474ecf7.rlib: crates/datasets/src/lib.rs crates/datasets/src/benchmark.rs crates/datasets/src/generator.rs crates/datasets/src/ground_truth.rs crates/datasets/src/io.rs crates/datasets/src/json.rs crates/datasets/src/spec.rs crates/datasets/src/texmex.rs

/root/repo/target/release/deps/libssam_datasets-86144eb86474ecf7.rmeta: crates/datasets/src/lib.rs crates/datasets/src/benchmark.rs crates/datasets/src/generator.rs crates/datasets/src/ground_truth.rs crates/datasets/src/io.rs crates/datasets/src/json.rs crates/datasets/src/spec.rs crates/datasets/src/texmex.rs

crates/datasets/src/lib.rs:
crates/datasets/src/benchmark.rs:
crates/datasets/src/generator.rs:
crates/datasets/src/ground_truth.rs:
crates/datasets/src/io.rs:
crates/datasets/src/json.rs:
crates/datasets/src/spec.rs:
crates/datasets/src/texmex.rs:
