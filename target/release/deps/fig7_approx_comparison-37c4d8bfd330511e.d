/root/repo/target/release/deps/fig7_approx_comparison-37c4d8bfd330511e.d: crates/bench/src/bin/fig7_approx_comparison.rs

/root/repo/target/release/deps/fig7_approx_comparison-37c4d8bfd330511e: crates/bench/src/bin/fig7_approx_comparison.rs

crates/bench/src/bin/fig7_approx_comparison.rs:
