/root/repo/target/release/deps/bytes-199775951edc8bbd.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-199775951edc8bbd.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-199775951edc8bbd.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
