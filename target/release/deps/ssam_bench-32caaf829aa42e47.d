/root/repo/target/release/deps/ssam_bench-32caaf829aa42e47.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/release/deps/libssam_bench-32caaf829aa42e47.rlib: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/release/deps/libssam_bench-32caaf829aa42e47.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
