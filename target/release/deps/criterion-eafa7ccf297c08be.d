/root/repo/target/release/deps/criterion-eafa7ccf297c08be.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-eafa7ccf297c08be.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-eafa7ccf297c08be.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
