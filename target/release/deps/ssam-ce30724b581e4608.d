/root/repo/target/release/deps/ssam-ce30724b581e4608.d: src/lib.rs

/root/repo/target/release/deps/libssam-ce30724b581e4608.rlib: src/lib.rs

/root/repo/target/release/deps/libssam-ce30724b581e4608.rmeta: src/lib.rs

src/lib.rs:
