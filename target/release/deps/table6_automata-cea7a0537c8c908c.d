/root/repo/target/release/deps/table6_automata-cea7a0537c8c908c.d: crates/bench/src/bin/table6_automata.rs

/root/repo/target/release/deps/table6_automata-cea7a0537c8c908c: crates/bench/src/bin/table6_automata.rs

crates/bench/src/bin/table6_automata.rs:
