/root/repo/target/release/deps/probe_tmp-ec496d33485b0013.d: crates/bench/src/bin/probe_tmp.rs

/root/repo/target/release/deps/probe_tmp-ec496d33485b0013: crates/bench/src/bin/probe_tmp.rs

crates/bench/src/bin/probe_tmp.rs:
