/root/repo/target/release/deps/ssam_profiling-ce1bfdfb2a114434.d: crates/profiling/src/lib.rs

/root/repo/target/release/deps/libssam_profiling-ce1bfdfb2a114434.rlib: crates/profiling/src/lib.rs

/root/repo/target/release/deps/libssam_profiling-ce1bfdfb2a114434.rmeta: crates/profiling/src/lib.rs

crates/profiling/src/lib.rs:
