/root/repo/target/release/deps/table1_instruction_mix-22c0ca59d254f1ff.d: crates/bench/src/bin/table1_instruction_mix.rs

/root/repo/target/release/deps/table1_instruction_mix-22c0ca59d254f1ff: crates/bench/src/bin/table1_instruction_mix.rs

crates/bench/src/bin/table1_instruction_mix.rs:
