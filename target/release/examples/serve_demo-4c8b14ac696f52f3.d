/root/repo/target/release/examples/serve_demo-4c8b14ac696f52f3.d: examples/serve_demo.rs

/root/repo/target/release/examples/serve_demo-4c8b14ac696f52f3: examples/serve_demo.rs

examples/serve_demo.rs:
