/root/repo/target/debug/deps/ssam_bench-c1f45eda6132ca87.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libssam_bench-c1f45eda6132ca87.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
