/root/repo/target/debug/deps/distances-1e7c6611e4f62f94.d: crates/bench/benches/distances.rs

/root/repo/target/debug/deps/distances-1e7c6611e4f62f94: crates/bench/benches/distances.rs

crates/bench/benches/distances.rs:
