/root/repo/target/debug/deps/table6_automata-c49b0b45f3c3d527.d: crates/bench/src/bin/table6_automata.rs

/root/repo/target/debug/deps/table6_automata-c49b0b45f3c3d527: crates/bench/src/bin/table6_automata.rs

crates/bench/src/bin/table6_automata.rs:
