/root/repo/target/debug/deps/serve_load-161deeda34d9ce0a.d: crates/bench/src/bin/serve_load.rs

/root/repo/target/debug/deps/serve_load-161deeda34d9ce0a: crates/bench/src/bin/serve_load.rs

crates/bench/src/bin/serve_load.rs:
