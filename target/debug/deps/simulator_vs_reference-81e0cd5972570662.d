/root/repo/target/debug/deps/simulator_vs_reference-81e0cd5972570662.d: tests/simulator_vs_reference.rs

/root/repo/target/debug/deps/libsimulator_vs_reference-81e0cd5972570662.rmeta: tests/simulator_vs_reference.rs

tests/simulator_vs_reference.rs:
