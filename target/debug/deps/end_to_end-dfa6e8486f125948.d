/root/repo/target/debug/deps/end_to_end-dfa6e8486f125948.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-dfa6e8486f125948.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
