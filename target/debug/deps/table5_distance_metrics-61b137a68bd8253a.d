/root/repo/target/debug/deps/table5_distance_metrics-61b137a68bd8253a.d: crates/bench/src/bin/table5_distance_metrics.rs

/root/repo/target/debug/deps/table5_distance_metrics-61b137a68bd8253a: crates/bench/src/bin/table5_distance_metrics.rs

crates/bench/src/bin/table5_distance_metrics.rs:
