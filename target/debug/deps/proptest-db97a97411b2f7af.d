/root/repo/target/debug/deps/proptest-db97a97411b2f7af.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-db97a97411b2f7af.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
