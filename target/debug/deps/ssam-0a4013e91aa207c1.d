/root/repo/target/debug/deps/ssam-0a4013e91aa207c1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libssam-0a4013e91aa207c1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
