/root/repo/target/debug/deps/ssam_profiling-ca3598954f330a52.d: crates/profiling/src/lib.rs

/root/repo/target/debug/deps/libssam_profiling-ca3598954f330a52.rlib: crates/profiling/src/lib.rs

/root/repo/target/debug/deps/libssam_profiling-ca3598954f330a52.rmeta: crates/profiling/src/lib.rs

crates/profiling/src/lib.rs:
