/root/repo/target/debug/deps/hmc_model-e500422e3cdd240a.d: crates/bench/benches/hmc_model.rs Cargo.toml

/root/repo/target/debug/deps/libhmc_model-e500422e3cdd240a.rmeta: crates/bench/benches/hmc_model.rs Cargo.toml

crates/bench/benches/hmc_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
