/root/repo/target/debug/deps/proptest-e1b51aaaeac2fc8c.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-e1b51aaaeac2fc8c.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
