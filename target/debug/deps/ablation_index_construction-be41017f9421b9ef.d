/root/repo/target/debug/deps/ablation_index_construction-be41017f9421b9ef.d: crates/bench/src/bin/ablation_index_construction.rs Cargo.toml

/root/repo/target/debug/deps/libablation_index_construction-be41017f9421b9ef.rmeta: crates/bench/src/bin/ablation_index_construction.rs Cargo.toml

crates/bench/src/bin/ablation_index_construction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
