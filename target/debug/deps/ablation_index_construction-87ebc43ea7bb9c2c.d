/root/repo/target/debug/deps/ablation_index_construction-87ebc43ea7bb9c2c.d: crates/bench/src/bin/ablation_index_construction.rs Cargo.toml

/root/repo/target/debug/deps/libablation_index_construction-87ebc43ea7bb9c2c.rmeta: crates/bench/src/bin/ablation_index_construction.rs Cargo.toml

crates/bench/src/bin/ablation_index_construction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
