/root/repo/target/debug/deps/differential_sim-e43ff40fcbb01dba.d: tests/differential_sim.rs

/root/repo/target/debug/deps/differential_sim-e43ff40fcbb01dba: tests/differential_sim.rs

tests/differential_sim.rs:
