/root/repo/target/debug/deps/ssam_cost-3c0259a53172b990.d: crates/cost/src/lib.rs

/root/repo/target/debug/deps/libssam_cost-3c0259a53172b990.rmeta: crates/cost/src/lib.rs

crates/cost/src/lib.rs:
