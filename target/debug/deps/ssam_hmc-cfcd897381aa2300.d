/root/repo/target/debug/deps/ssam_hmc-cfcd897381aa2300.d: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs Cargo.toml

/root/repo/target/debug/deps/libssam_hmc-cfcd897381aa2300.rmeta: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs Cargo.toml

crates/hmc/src/lib.rs:
crates/hmc/src/address.rs:
crates/hmc/src/config.rs:
crates/hmc/src/dram.rs:
crates/hmc/src/module.rs:
crates/hmc/src/packet.rs:
crates/hmc/src/vault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
