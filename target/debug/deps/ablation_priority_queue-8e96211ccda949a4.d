/root/repo/target/debug/deps/ablation_priority_queue-8e96211ccda949a4.d: crates/bench/src/bin/ablation_priority_queue.rs Cargo.toml

/root/repo/target/debug/deps/libablation_priority_queue-8e96211ccda949a4.rmeta: crates/bench/src/bin/ablation_priority_queue.rs Cargo.toml

crates/bench/src/bin/ablation_priority_queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
