/root/repo/target/debug/deps/ablation_module_scaling-7932e754ea1d3da3.d: crates/bench/src/bin/ablation_module_scaling.rs

/root/repo/target/debug/deps/ablation_module_scaling-7932e754ea1d3da3: crates/bench/src/bin/ablation_module_scaling.rs

crates/bench/src/bin/ablation_module_scaling.rs:
