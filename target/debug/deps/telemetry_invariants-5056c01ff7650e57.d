/root/repo/target/debug/deps/telemetry_invariants-5056c01ff7650e57.d: tests/telemetry_invariants.rs

/root/repo/target/debug/deps/telemetry_invariants-5056c01ff7650e57: tests/telemetry_invariants.rs

tests/telemetry_invariants.rs:
