/root/repo/target/debug/deps/ssam_baselines-9b7e921593c2b6cc.d: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libssam_baselines-9b7e921593c2b6cc.rmeta: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/automata.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/fpga.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/normalize.rs:
crates/baselines/src/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
