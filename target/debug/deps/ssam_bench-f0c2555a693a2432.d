/root/repo/target/debug/deps/ssam_bench-f0c2555a693a2432.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libssam_bench-f0c2555a693a2432.rlib: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libssam_bench-f0c2555a693a2432.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
