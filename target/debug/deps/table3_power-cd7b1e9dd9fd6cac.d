/root/repo/target/debug/deps/table3_power-cd7b1e9dd9fd6cac.d: crates/bench/src/bin/table3_power.rs

/root/repo/target/debug/deps/table3_power-cd7b1e9dd9fd6cac: crates/bench/src/bin/table3_power.rs

crates/bench/src/bin/table3_power.rs:
