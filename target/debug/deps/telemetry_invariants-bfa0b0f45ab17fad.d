/root/repo/target/debug/deps/telemetry_invariants-bfa0b0f45ab17fad.d: tests/telemetry_invariants.rs

/root/repo/target/debug/deps/telemetry_invariants-bfa0b0f45ab17fad: tests/telemetry_invariants.rs

tests/telemetry_invariants.rs:
