/root/repo/target/debug/deps/fig7_approx_comparison-d643ae15d847bffd.d: crates/bench/src/bin/fig7_approx_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_approx_comparison-d643ae15d847bffd.rmeta: crates/bench/src/bin/fig7_approx_comparison.rs Cargo.toml

crates/bench/src/bin/fig7_approx_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
