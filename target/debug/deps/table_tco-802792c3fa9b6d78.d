/root/repo/target/debug/deps/table_tco-802792c3fa9b6d78.d: crates/bench/src/bin/table_tco.rs

/root/repo/target/debug/deps/table_tco-802792c3fa9b6d78: crates/bench/src/bin/table_tco.rs

crates/bench/src/bin/table_tco.rs:
