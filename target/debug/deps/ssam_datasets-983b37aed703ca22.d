/root/repo/target/debug/deps/ssam_datasets-983b37aed703ca22.d: crates/datasets/src/lib.rs crates/datasets/src/benchmark.rs crates/datasets/src/generator.rs crates/datasets/src/ground_truth.rs crates/datasets/src/io.rs crates/datasets/src/json.rs crates/datasets/src/spec.rs crates/datasets/src/texmex.rs

/root/repo/target/debug/deps/libssam_datasets-983b37aed703ca22.rmeta: crates/datasets/src/lib.rs crates/datasets/src/benchmark.rs crates/datasets/src/generator.rs crates/datasets/src/ground_truth.rs crates/datasets/src/io.rs crates/datasets/src/json.rs crates/datasets/src/spec.rs crates/datasets/src/texmex.rs

crates/datasets/src/lib.rs:
crates/datasets/src/benchmark.rs:
crates/datasets/src/generator.rs:
crates/datasets/src/ground_truth.rs:
crates/datasets/src/io.rs:
crates/datasets/src/json.rs:
crates/datasets/src/spec.rs:
crates/datasets/src/texmex.rs:
