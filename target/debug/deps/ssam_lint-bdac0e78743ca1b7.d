/root/repo/target/debug/deps/ssam_lint-bdac0e78743ca1b7.d: crates/bench/src/bin/ssam_lint.rs

/root/repo/target/debug/deps/libssam_lint-bdac0e78743ca1b7.rmeta: crates/bench/src/bin/ssam_lint.rs

crates/bench/src/bin/ssam_lint.rs:
