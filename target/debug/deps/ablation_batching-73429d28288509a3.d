/root/repo/target/debug/deps/ablation_batching-73429d28288509a3.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/debug/deps/libablation_batching-73429d28288509a3.rmeta: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
