/root/repo/target/debug/deps/ssam_lint-4f699a39b651dfb8.d: crates/bench/src/bin/ssam_lint.rs

/root/repo/target/debug/deps/ssam_lint-4f699a39b651dfb8: crates/bench/src/bin/ssam_lint.rs

crates/bench/src/bin/ssam_lint.rs:
