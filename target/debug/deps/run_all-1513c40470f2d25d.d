/root/repo/target/debug/deps/run_all-1513c40470f2d25d.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-1513c40470f2d25d: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
