/root/repo/target/debug/deps/fig7_approx_comparison-a0647b9b71edbf15.d: crates/bench/src/bin/fig7_approx_comparison.rs

/root/repo/target/debug/deps/fig7_approx_comparison-a0647b9b71edbf15: crates/bench/src/bin/fig7_approx_comparison.rs

crates/bench/src/bin/fig7_approx_comparison.rs:
