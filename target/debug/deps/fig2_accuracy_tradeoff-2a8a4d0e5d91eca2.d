/root/repo/target/debug/deps/fig2_accuracy_tradeoff-2a8a4d0e5d91eca2.d: crates/bench/src/bin/fig2_accuracy_tradeoff.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_accuracy_tradeoff-2a8a4d0e5d91eca2.rmeta: crates/bench/src/bin/fig2_accuracy_tradeoff.rs Cargo.toml

crates/bench/src/bin/fig2_accuracy_tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
