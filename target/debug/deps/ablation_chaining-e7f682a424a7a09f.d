/root/repo/target/debug/deps/ablation_chaining-e7f682a424a7a09f.d: crates/bench/src/bin/ablation_chaining.rs Cargo.toml

/root/repo/target/debug/deps/libablation_chaining-e7f682a424a7a09f.rmeta: crates/bench/src/bin/ablation_chaining.rs Cargo.toml

crates/bench/src/bin/ablation_chaining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
