/root/repo/target/debug/deps/topk-9af9db1f15d0850b.d: crates/bench/benches/topk.rs Cargo.toml

/root/repo/target/debug/deps/libtopk-9af9db1f15d0850b.rmeta: crates/bench/benches/topk.rs Cargo.toml

crates/bench/benches/topk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
