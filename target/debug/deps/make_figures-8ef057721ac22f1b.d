/root/repo/target/debug/deps/make_figures-8ef057721ac22f1b.d: crates/bench/src/bin/make_figures.rs

/root/repo/target/debug/deps/make_figures-8ef057721ac22f1b: crates/bench/src/bin/make_figures.rs

crates/bench/src/bin/make_figures.rs:
