/root/repo/target/debug/deps/ablation_on_device_index-814c9c2969237787.d: crates/bench/src/bin/ablation_on_device_index.rs

/root/repo/target/debug/deps/ablation_on_device_index-814c9c2969237787: crates/bench/src/bin/ablation_on_device_index.rs

crates/bench/src/bin/ablation_on_device_index.rs:
