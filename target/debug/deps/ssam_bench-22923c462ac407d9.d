/root/repo/target/debug/deps/ssam_bench-22923c462ac407d9.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/ssam_bench-22923c462ac407d9: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
