/root/repo/target/debug/deps/batch-3d7629d73a2a88f3.d: crates/bench/benches/batch.rs Cargo.toml

/root/repo/target/debug/deps/libbatch-3d7629d73a2a88f3.rmeta: crates/bench/benches/batch.rs Cargo.toml

crates/bench/benches/batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
