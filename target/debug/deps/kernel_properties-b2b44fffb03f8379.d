/root/repo/target/debug/deps/kernel_properties-b2b44fffb03f8379.d: tests/kernel_properties.rs

/root/repo/target/debug/deps/kernel_properties-b2b44fffb03f8379: tests/kernel_properties.rs

tests/kernel_properties.rs:
