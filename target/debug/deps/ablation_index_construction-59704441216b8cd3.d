/root/repo/target/debug/deps/ablation_index_construction-59704441216b8cd3.d: crates/bench/src/bin/ablation_index_construction.rs Cargo.toml

/root/repo/target/debug/deps/libablation_index_construction-59704441216b8cd3.rmeta: crates/bench/src/bin/ablation_index_construction.rs Cargo.toml

crates/bench/src/bin/ablation_index_construction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
