/root/repo/target/debug/deps/serve_equivalence-dfb51ec9d52c81e6.d: tests/serve_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libserve_equivalence-dfb51ec9d52c81e6.rmeta: tests/serve_equivalence.rs Cargo.toml

tests/serve_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
