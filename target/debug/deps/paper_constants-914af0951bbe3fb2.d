/root/repo/target/debug/deps/paper_constants-914af0951bbe3fb2.d: tests/paper_constants.rs

/root/repo/target/debug/deps/paper_constants-914af0951bbe3fb2: tests/paper_constants.rs

tests/paper_constants.rs:
