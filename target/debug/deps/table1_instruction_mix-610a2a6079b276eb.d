/root/repo/target/debug/deps/table1_instruction_mix-610a2a6079b276eb.d: crates/bench/src/bin/table1_instruction_mix.rs

/root/repo/target/debug/deps/table1_instruction_mix-610a2a6079b276eb: crates/bench/src/bin/table1_instruction_mix.rs

crates/bench/src/bin/table1_instruction_mix.rs:
