/root/repo/target/debug/deps/kernel_properties-4055f5393f9a9cc2.d: tests/kernel_properties.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_properties-4055f5393f9a9cc2.rmeta: tests/kernel_properties.rs Cargo.toml

tests/kernel_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
