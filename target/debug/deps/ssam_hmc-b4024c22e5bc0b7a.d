/root/repo/target/debug/deps/ssam_hmc-b4024c22e5bc0b7a.d: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs Cargo.toml

/root/repo/target/debug/deps/libssam_hmc-b4024c22e5bc0b7a.rmeta: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs Cargo.toml

crates/hmc/src/lib.rs:
crates/hmc/src/address.rs:
crates/hmc/src/config.rs:
crates/hmc/src/dram.rs:
crates/hmc/src/module.rs:
crates/hmc/src/packet.rs:
crates/hmc/src/vault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
