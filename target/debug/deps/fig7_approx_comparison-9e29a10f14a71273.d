/root/repo/target/debug/deps/fig7_approx_comparison-9e29a10f14a71273.d: crates/bench/src/bin/fig7_approx_comparison.rs

/root/repo/target/debug/deps/fig7_approx_comparison-9e29a10f14a71273: crates/bench/src/bin/fig7_approx_comparison.rs

crates/bench/src/bin/fig7_approx_comparison.rs:
