/root/repo/target/debug/deps/ssam_hmc-8cfc384170ab5512.d: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs

/root/repo/target/debug/deps/ssam_hmc-8cfc384170ab5512: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs

crates/hmc/src/lib.rs:
crates/hmc/src/address.rs:
crates/hmc/src/config.rs:
crates/hmc/src/dram.rs:
crates/hmc/src/module.rs:
crates/hmc/src/packet.rs:
crates/hmc/src/vault.rs:
