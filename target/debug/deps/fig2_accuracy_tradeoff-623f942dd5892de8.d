/root/repo/target/debug/deps/fig2_accuracy_tradeoff-623f942dd5892de8.d: crates/bench/src/bin/fig2_accuracy_tradeoff.rs

/root/repo/target/debug/deps/libfig2_accuracy_tradeoff-623f942dd5892de8.rmeta: crates/bench/src/bin/fig2_accuracy_tradeoff.rs

crates/bench/src/bin/fig2_accuracy_tradeoff.rs:
