/root/repo/target/debug/deps/ssam_bench-5a90332738fa192b.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libssam_bench-5a90332738fa192b.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
