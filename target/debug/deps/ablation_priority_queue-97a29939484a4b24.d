/root/repo/target/debug/deps/ablation_priority_queue-97a29939484a4b24.d: crates/bench/src/bin/ablation_priority_queue.rs

/root/repo/target/debug/deps/ablation_priority_queue-97a29939484a4b24: crates/bench/src/bin/ablation_priority_queue.rs

crates/bench/src/bin/ablation_priority_queue.rs:
