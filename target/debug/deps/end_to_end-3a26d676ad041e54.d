/root/repo/target/debug/deps/end_to_end-3a26d676ad041e54.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3a26d676ad041e54: tests/end_to_end.rs

tests/end_to_end.rs:
