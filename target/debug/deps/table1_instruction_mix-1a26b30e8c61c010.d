/root/repo/target/debug/deps/table1_instruction_mix-1a26b30e8c61c010.d: crates/bench/src/bin/table1_instruction_mix.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_instruction_mix-1a26b30e8c61c010.rmeta: crates/bench/src/bin/table1_instruction_mix.rs Cargo.toml

crates/bench/src/bin/table1_instruction_mix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
