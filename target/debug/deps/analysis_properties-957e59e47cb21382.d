/root/repo/target/debug/deps/analysis_properties-957e59e47cb21382.d: tests/analysis_properties.rs

/root/repo/target/debug/deps/analysis_properties-957e59e47cb21382: tests/analysis_properties.rs

tests/analysis_properties.rs:
