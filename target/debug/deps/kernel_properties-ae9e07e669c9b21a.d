/root/repo/target/debug/deps/kernel_properties-ae9e07e669c9b21a.d: tests/kernel_properties.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_properties-ae9e07e669c9b21a.rmeta: tests/kernel_properties.rs Cargo.toml

tests/kernel_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
