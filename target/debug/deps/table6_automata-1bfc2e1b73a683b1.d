/root/repo/target/debug/deps/table6_automata-1bfc2e1b73a683b1.d: crates/bench/src/bin/table6_automata.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_automata-1bfc2e1b73a683b1.rmeta: crates/bench/src/bin/table6_automata.rs Cargo.toml

crates/bench/src/bin/table6_automata.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
