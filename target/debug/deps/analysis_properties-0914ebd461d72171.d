/root/repo/target/debug/deps/analysis_properties-0914ebd461d72171.d: tests/analysis_properties.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_properties-0914ebd461d72171.rmeta: tests/analysis_properties.rs Cargo.toml

tests/analysis_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
