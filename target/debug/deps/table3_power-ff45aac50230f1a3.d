/root/repo/target/debug/deps/table3_power-ff45aac50230f1a3.d: crates/bench/src/bin/table3_power.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_power-ff45aac50230f1a3.rmeta: crates/bench/src/bin/table3_power.rs Cargo.toml

crates/bench/src/bin/table3_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
