/root/repo/target/debug/deps/proptest-a7979f77e862b072.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a7979f77e862b072.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a7979f77e862b072.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
