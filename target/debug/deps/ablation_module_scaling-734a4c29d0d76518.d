/root/repo/target/debug/deps/ablation_module_scaling-734a4c29d0d76518.d: crates/bench/src/bin/ablation_module_scaling.rs

/root/repo/target/debug/deps/libablation_module_scaling-734a4c29d0d76518.rmeta: crates/bench/src/bin/ablation_module_scaling.rs

crates/bench/src/bin/ablation_module_scaling.rs:
