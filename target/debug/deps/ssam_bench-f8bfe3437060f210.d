/root/repo/target/debug/deps/ssam_bench-f8bfe3437060f210.d: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libssam_bench-f8bfe3437060f210.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
