/root/repo/target/debug/deps/ssam_lint-02364b704c48ebae.d: crates/bench/src/bin/ssam_lint.rs Cargo.toml

/root/repo/target/debug/deps/libssam_lint-02364b704c48ebae.rmeta: crates/bench/src/bin/ssam_lint.rs Cargo.toml

crates/bench/src/bin/ssam_lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
