/root/repo/target/debug/deps/bytes-149a878b016fe38d.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-149a878b016fe38d.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-149a878b016fe38d.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
