/root/repo/target/debug/deps/ssam_serve-e1a72c0ed914e406.d: crates/serve/src/lib.rs crates/serve/src/batcher.rs

/root/repo/target/debug/deps/libssam_serve-e1a72c0ed914e406.rlib: crates/serve/src/lib.rs crates/serve/src/batcher.rs

/root/repo/target/debug/deps/libssam_serve-e1a72c0ed914e406.rmeta: crates/serve/src/lib.rs crates/serve/src/batcher.rs

crates/serve/src/lib.rs:
crates/serve/src/batcher.rs:
