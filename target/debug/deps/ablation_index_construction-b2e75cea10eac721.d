/root/repo/target/debug/deps/ablation_index_construction-b2e75cea10eac721.d: crates/bench/src/bin/ablation_index_construction.rs

/root/repo/target/debug/deps/libablation_index_construction-b2e75cea10eac721.rmeta: crates/bench/src/bin/ablation_index_construction.rs

crates/bench/src/bin/ablation_index_construction.rs:
