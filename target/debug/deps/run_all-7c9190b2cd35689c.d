/root/repo/target/debug/deps/run_all-7c9190b2cd35689c.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/librun_all-7c9190b2cd35689c.rmeta: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
