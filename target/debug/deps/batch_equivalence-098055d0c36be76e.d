/root/repo/target/debug/deps/batch_equivalence-098055d0c36be76e.d: tests/batch_equivalence.rs

/root/repo/target/debug/deps/batch_equivalence-098055d0c36be76e: tests/batch_equivalence.rs

tests/batch_equivalence.rs:
