/root/repo/target/debug/deps/properties-7b1417d5274af055.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7b1417d5274af055.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
