/root/repo/target/debug/deps/indexes-6bbd793d9b7654e6.d: crates/bench/benches/indexes.rs

/root/repo/target/debug/deps/indexes-6bbd793d9b7654e6: crates/bench/benches/indexes.rs

crates/bench/benches/indexes.rs:
