/root/repo/target/debug/deps/ssam_baselines-e684c05a9cc7de82.d: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

/root/repo/target/debug/deps/libssam_baselines-e684c05a9cc7de82.rlib: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

/root/repo/target/debug/deps/libssam_baselines-e684c05a9cc7de82.rmeta: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

crates/baselines/src/lib.rs:
crates/baselines/src/automata.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/fpga.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/normalize.rs:
crates/baselines/src/parallel.rs:
