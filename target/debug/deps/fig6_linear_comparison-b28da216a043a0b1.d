/root/repo/target/debug/deps/fig6_linear_comparison-b28da216a043a0b1.d: crates/bench/src/bin/fig6_linear_comparison.rs

/root/repo/target/debug/deps/fig6_linear_comparison-b28da216a043a0b1: crates/bench/src/bin/fig6_linear_comparison.rs

crates/bench/src/bin/fig6_linear_comparison.rs:
