/root/repo/target/debug/deps/table1_instruction_mix-0ff2b673a11ca258.d: crates/bench/src/bin/table1_instruction_mix.rs

/root/repo/target/debug/deps/table1_instruction_mix-0ff2b673a11ca258: crates/bench/src/bin/table1_instruction_mix.rs

crates/bench/src/bin/table1_instruction_mix.rs:
