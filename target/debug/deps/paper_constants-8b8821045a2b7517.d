/root/repo/target/debug/deps/paper_constants-8b8821045a2b7517.d: tests/paper_constants.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_constants-8b8821045a2b7517.rmeta: tests/paper_constants.rs Cargo.toml

tests/paper_constants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
