/root/repo/target/debug/deps/table4_area-f7f3445a79ee1fd9.d: crates/bench/src/bin/table4_area.rs

/root/repo/target/debug/deps/table4_area-f7f3445a79ee1fd9: crates/bench/src/bin/table4_area.rs

crates/bench/src/bin/table4_area.rs:
