/root/repo/target/debug/deps/ablation_bandwidth-bc85464133e385ac.d: crates/bench/src/bin/ablation_bandwidth.rs

/root/repo/target/debug/deps/ablation_bandwidth-bc85464133e385ac: crates/bench/src/bin/ablation_bandwidth.rs

crates/bench/src/bin/ablation_bandwidth.rs:
