/root/repo/target/debug/deps/ablation_batching-1736b41d7aa1dcf3.d: crates/bench/src/bin/ablation_batching.rs Cargo.toml

/root/repo/target/debug/deps/libablation_batching-1736b41d7aa1dcf3.rmeta: crates/bench/src/bin/ablation_batching.rs Cargo.toml

crates/bench/src/bin/ablation_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
