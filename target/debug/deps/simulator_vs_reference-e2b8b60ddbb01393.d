/root/repo/target/debug/deps/simulator_vs_reference-e2b8b60ddbb01393.d: tests/simulator_vs_reference.rs

/root/repo/target/debug/deps/simulator_vs_reference-e2b8b60ddbb01393: tests/simulator_vs_reference.rs

tests/simulator_vs_reference.rs:
