/root/repo/target/debug/deps/batch_equivalence-a1f679fe6be921b4.d: tests/batch_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_equivalence-a1f679fe6be921b4.rmeta: tests/batch_equivalence.rs Cargo.toml

tests/batch_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
