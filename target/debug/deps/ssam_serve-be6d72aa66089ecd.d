/root/repo/target/debug/deps/ssam_serve-be6d72aa66089ecd.d: crates/serve/src/lib.rs crates/serve/src/batcher.rs Cargo.toml

/root/repo/target/debug/deps/libssam_serve-be6d72aa66089ecd.rmeta: crates/serve/src/lib.rs crates/serve/src/batcher.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/batcher.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
