/root/repo/target/debug/deps/ablation_priority_queue-58bce5c66f020693.d: crates/bench/src/bin/ablation_priority_queue.rs

/root/repo/target/debug/deps/libablation_priority_queue-58bce5c66f020693.rmeta: crates/bench/src/bin/ablation_priority_queue.rs

crates/bench/src/bin/ablation_priority_queue.rs:
