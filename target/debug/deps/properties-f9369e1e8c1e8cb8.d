/root/repo/target/debug/deps/properties-f9369e1e8c1e8cb8.d: tests/properties.rs

/root/repo/target/debug/deps/properties-f9369e1e8c1e8cb8: tests/properties.rs

tests/properties.rs:
