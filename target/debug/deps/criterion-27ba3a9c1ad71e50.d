/root/repo/target/debug/deps/criterion-27ba3a9c1ad71e50.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-27ba3a9c1ad71e50.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
