/root/repo/target/debug/deps/batch_equivalence-6cd26ed770d696ef.d: tests/batch_equivalence.rs

/root/repo/target/debug/deps/libbatch_equivalence-6cd26ed770d696ef.rmeta: tests/batch_equivalence.rs

tests/batch_equivalence.rs:
