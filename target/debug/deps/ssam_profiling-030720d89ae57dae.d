/root/repo/target/debug/deps/ssam_profiling-030720d89ae57dae.d: crates/profiling/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libssam_profiling-030720d89ae57dae.rmeta: crates/profiling/src/lib.rs Cargo.toml

crates/profiling/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
