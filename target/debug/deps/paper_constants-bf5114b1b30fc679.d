/root/repo/target/debug/deps/paper_constants-bf5114b1b30fc679.d: tests/paper_constants.rs

/root/repo/target/debug/deps/paper_constants-bf5114b1b30fc679: tests/paper_constants.rs

tests/paper_constants.rs:
