/root/repo/target/debug/deps/table4_area-7f962d728e238f03.d: crates/bench/src/bin/table4_area.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_area-7f962d728e238f03.rmeta: crates/bench/src/bin/table4_area.rs Cargo.toml

crates/bench/src/bin/table4_area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
