/root/repo/target/debug/deps/indexes-1f97a62413b3f0d7.d: crates/bench/benches/indexes.rs Cargo.toml

/root/repo/target/debug/deps/libindexes-1f97a62413b3f0d7.rmeta: crates/bench/benches/indexes.rs Cargo.toml

crates/bench/benches/indexes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
