/root/repo/target/debug/deps/fig2_accuracy_tradeoff-5d85cb806199fba8.d: crates/bench/src/bin/fig2_accuracy_tradeoff.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_accuracy_tradeoff-5d85cb806199fba8.rmeta: crates/bench/src/bin/fig2_accuracy_tradeoff.rs Cargo.toml

crates/bench/src/bin/fig2_accuracy_tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
