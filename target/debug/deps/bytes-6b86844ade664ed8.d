/root/repo/target/debug/deps/bytes-6b86844ade664ed8.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-6b86844ade664ed8.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
