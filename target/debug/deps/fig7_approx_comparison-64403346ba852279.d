/root/repo/target/debug/deps/fig7_approx_comparison-64403346ba852279.d: crates/bench/src/bin/fig7_approx_comparison.rs

/root/repo/target/debug/deps/fig7_approx_comparison-64403346ba852279: crates/bench/src/bin/fig7_approx_comparison.rs

crates/bench/src/bin/fig7_approx_comparison.rs:
