/root/repo/target/debug/deps/table4_area-6d73d5c7a640acac.d: crates/bench/src/bin/table4_area.rs

/root/repo/target/debug/deps/table4_area-6d73d5c7a640acac: crates/bench/src/bin/table4_area.rs

crates/bench/src/bin/table4_area.rs:
