/root/repo/target/debug/deps/proptest-c8a08b1b56b16f89.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-c8a08b1b56b16f89.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
