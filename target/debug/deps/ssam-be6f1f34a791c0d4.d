/root/repo/target/debug/deps/ssam-be6f1f34a791c0d4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libssam-be6f1f34a791c0d4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
