/root/repo/target/debug/deps/fig6_linear_comparison-35dfb7094d4a4b2f.d: crates/bench/src/bin/fig6_linear_comparison.rs

/root/repo/target/debug/deps/libfig6_linear_comparison-35dfb7094d4a4b2f.rmeta: crates/bench/src/bin/fig6_linear_comparison.rs

crates/bench/src/bin/fig6_linear_comparison.rs:
