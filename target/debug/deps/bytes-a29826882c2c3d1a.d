/root/repo/target/debug/deps/bytes-a29826882c2c3d1a.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-a29826882c2c3d1a: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
