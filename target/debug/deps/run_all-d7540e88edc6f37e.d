/root/repo/target/debug/deps/run_all-d7540e88edc6f37e.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-d7540e88edc6f37e: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
