/root/repo/target/debug/deps/ablation_chaining-e5cd1a69c03f1374.d: crates/bench/src/bin/ablation_chaining.rs

/root/repo/target/debug/deps/libablation_chaining-e5cd1a69c03f1374.rmeta: crates/bench/src/bin/ablation_chaining.rs

crates/bench/src/bin/ablation_chaining.rs:
