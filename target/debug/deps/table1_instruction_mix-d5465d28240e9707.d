/root/repo/target/debug/deps/table1_instruction_mix-d5465d28240e9707.d: crates/bench/src/bin/table1_instruction_mix.rs

/root/repo/target/debug/deps/libtable1_instruction_mix-d5465d28240e9707.rmeta: crates/bench/src/bin/table1_instruction_mix.rs

crates/bench/src/bin/table1_instruction_mix.rs:
