/root/repo/target/debug/deps/ssam-c35937a69d6a6308.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libssam-c35937a69d6a6308.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
