/root/repo/target/debug/deps/table6_automata-075a7910e2809892.d: crates/bench/src/bin/table6_automata.rs

/root/repo/target/debug/deps/table6_automata-075a7910e2809892: crates/bench/src/bin/table6_automata.rs

crates/bench/src/bin/table6_automata.rs:
