/root/repo/target/debug/deps/table_tco-7d5a695fa09958dc.d: crates/bench/src/bin/table_tco.rs Cargo.toml

/root/repo/target/debug/deps/libtable_tco-7d5a695fa09958dc.rmeta: crates/bench/src/bin/table_tco.rs Cargo.toml

crates/bench/src/bin/table_tco.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
