/root/repo/target/debug/deps/ssam_serve-e196453877806a42.d: crates/serve/src/lib.rs crates/serve/src/batcher.rs

/root/repo/target/debug/deps/libssam_serve-e196453877806a42.rmeta: crates/serve/src/lib.rs crates/serve/src/batcher.rs

crates/serve/src/lib.rs:
crates/serve/src/batcher.rs:
