/root/repo/target/debug/deps/simulator-ac423a1c477cf9ec.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-ac423a1c477cf9ec.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
