/root/repo/target/debug/deps/ssam_hmc-88ab483f5ba75ac8.d: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs

/root/repo/target/debug/deps/libssam_hmc-88ab483f5ba75ac8.rmeta: crates/hmc/src/lib.rs crates/hmc/src/address.rs crates/hmc/src/config.rs crates/hmc/src/dram.rs crates/hmc/src/module.rs crates/hmc/src/packet.rs crates/hmc/src/vault.rs

crates/hmc/src/lib.rs:
crates/hmc/src/address.rs:
crates/hmc/src/config.rs:
crates/hmc/src/dram.rs:
crates/hmc/src/module.rs:
crates/hmc/src/packet.rs:
crates/hmc/src/vault.rs:
