/root/repo/target/debug/deps/table3_power-8bb55c3025ccab33.d: crates/bench/src/bin/table3_power.rs

/root/repo/target/debug/deps/libtable3_power-8bb55c3025ccab33.rmeta: crates/bench/src/bin/table3_power.rs

crates/bench/src/bin/table3_power.rs:
