/root/repo/target/debug/deps/ablation_on_device_index-c8884e3ef8c731e3.d: crates/bench/src/bin/ablation_on_device_index.rs Cargo.toml

/root/repo/target/debug/deps/libablation_on_device_index-c8884e3ef8c731e3.rmeta: crates/bench/src/bin/ablation_on_device_index.rs Cargo.toml

crates/bench/src/bin/ablation_on_device_index.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
