/root/repo/target/debug/deps/differential_sim-4b04ce9f13cd54e2.d: tests/differential_sim.rs

/root/repo/target/debug/deps/differential_sim-4b04ce9f13cd54e2: tests/differential_sim.rs

tests/differential_sim.rs:
