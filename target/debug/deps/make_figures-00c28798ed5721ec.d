/root/repo/target/debug/deps/make_figures-00c28798ed5721ec.d: crates/bench/src/bin/make_figures.rs Cargo.toml

/root/repo/target/debug/deps/libmake_figures-00c28798ed5721ec.rmeta: crates/bench/src/bin/make_figures.rs Cargo.toml

crates/bench/src/bin/make_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
