/root/repo/target/debug/deps/properties-01b8981cd51d1cd3.d: tests/properties.rs

/root/repo/target/debug/deps/properties-01b8981cd51d1cd3: tests/properties.rs

tests/properties.rs:
