/root/repo/target/debug/deps/kernel_properties-cc4d4421039f076c.d: tests/kernel_properties.rs

/root/repo/target/debug/deps/kernel_properties-cc4d4421039f076c: tests/kernel_properties.rs

tests/kernel_properties.rs:
