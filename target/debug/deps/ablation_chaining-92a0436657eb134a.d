/root/repo/target/debug/deps/ablation_chaining-92a0436657eb134a.d: crates/bench/src/bin/ablation_chaining.rs

/root/repo/target/debug/deps/ablation_chaining-92a0436657eb134a: crates/bench/src/bin/ablation_chaining.rs

crates/bench/src/bin/ablation_chaining.rs:
