/root/repo/target/debug/deps/ssam-92f1fa25befcb50b.d: src/lib.rs

/root/repo/target/debug/deps/ssam-92f1fa25befcb50b: src/lib.rs

src/lib.rs:
