/root/repo/target/debug/deps/ssam-6fd31f86eadad7a9.d: src/lib.rs

/root/repo/target/debug/deps/libssam-6fd31f86eadad7a9.rmeta: src/lib.rs

src/lib.rs:
