/root/repo/target/debug/deps/end_to_end-13a4aa047ea98dec.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-13a4aa047ea98dec: tests/end_to_end.rs

tests/end_to_end.rs:
