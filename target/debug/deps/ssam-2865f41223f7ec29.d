/root/repo/target/debug/deps/ssam-2865f41223f7ec29.d: src/lib.rs

/root/repo/target/debug/deps/libssam-2865f41223f7ec29.rmeta: src/lib.rs

src/lib.rs:
