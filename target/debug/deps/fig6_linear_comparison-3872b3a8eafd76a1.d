/root/repo/target/debug/deps/fig6_linear_comparison-3872b3a8eafd76a1.d: crates/bench/src/bin/fig6_linear_comparison.rs

/root/repo/target/debug/deps/fig6_linear_comparison-3872b3a8eafd76a1: crates/bench/src/bin/fig6_linear_comparison.rs

crates/bench/src/bin/fig6_linear_comparison.rs:
