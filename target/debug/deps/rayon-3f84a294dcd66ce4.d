/root/repo/target/debug/deps/rayon-3f84a294dcd66ce4.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-3f84a294dcd66ce4.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
