/root/repo/target/debug/deps/analysis_properties-05c02413b49520d5.d: tests/analysis_properties.rs

/root/repo/target/debug/deps/libanalysis_properties-05c02413b49520d5.rmeta: tests/analysis_properties.rs

tests/analysis_properties.rs:
