/root/repo/target/debug/deps/table4_area-4bad0a52c01c9bb1.d: crates/bench/src/bin/table4_area.rs

/root/repo/target/debug/deps/table4_area-4bad0a52c01c9bb1: crates/bench/src/bin/table4_area.rs

crates/bench/src/bin/table4_area.rs:
