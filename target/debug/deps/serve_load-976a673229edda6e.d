/root/repo/target/debug/deps/serve_load-976a673229edda6e.d: crates/bench/src/bin/serve_load.rs Cargo.toml

/root/repo/target/debug/deps/libserve_load-976a673229edda6e.rmeta: crates/bench/src/bin/serve_load.rs Cargo.toml

crates/bench/src/bin/serve_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
