/root/repo/target/debug/deps/ablation_batching-1e4e9b285d85377e.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/debug/deps/ablation_batching-1e4e9b285d85377e: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
