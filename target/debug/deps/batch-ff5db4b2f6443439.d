/root/repo/target/debug/deps/batch-ff5db4b2f6443439.d: crates/bench/benches/batch.rs Cargo.toml

/root/repo/target/debug/deps/libbatch-ff5db4b2f6443439.rmeta: crates/bench/benches/batch.rs Cargo.toml

crates/bench/benches/batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
