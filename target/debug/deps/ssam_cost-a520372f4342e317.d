/root/repo/target/debug/deps/ssam_cost-a520372f4342e317.d: crates/cost/src/lib.rs

/root/repo/target/debug/deps/libssam_cost-a520372f4342e317.rmeta: crates/cost/src/lib.rs

crates/cost/src/lib.rs:
