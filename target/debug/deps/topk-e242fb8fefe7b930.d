/root/repo/target/debug/deps/topk-e242fb8fefe7b930.d: crates/bench/benches/topk.rs

/root/repo/target/debug/deps/topk-e242fb8fefe7b930: crates/bench/benches/topk.rs

crates/bench/benches/topk.rs:
