/root/repo/target/debug/deps/ablation_module_scaling-005ff180f6117ff1.d: crates/bench/src/bin/ablation_module_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_module_scaling-005ff180f6117ff1.rmeta: crates/bench/src/bin/ablation_module_scaling.rs Cargo.toml

crates/bench/src/bin/ablation_module_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
