/root/repo/target/debug/deps/ssam_bench-52118702567fe302.d: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libssam_bench-52118702567fe302.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
