/root/repo/target/debug/deps/fig7_approx_comparison-a6633ff1c7372b48.d: crates/bench/src/bin/fig7_approx_comparison.rs

/root/repo/target/debug/deps/libfig7_approx_comparison-a6633ff1c7372b48.rmeta: crates/bench/src/bin/fig7_approx_comparison.rs

crates/bench/src/bin/fig7_approx_comparison.rs:
