/root/repo/target/debug/deps/assembler-e9978358f6ed0d7a.d: crates/bench/benches/assembler.rs Cargo.toml

/root/repo/target/debug/deps/libassembler-e9978358f6ed0d7a.rmeta: crates/bench/benches/assembler.rs Cargo.toml

crates/bench/benches/assembler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
