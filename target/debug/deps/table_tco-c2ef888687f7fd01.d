/root/repo/target/debug/deps/table_tco-c2ef888687f7fd01.d: crates/bench/src/bin/table_tco.rs

/root/repo/target/debug/deps/table_tco-c2ef888687f7fd01: crates/bench/src/bin/table_tco.rs

crates/bench/src/bin/table_tco.rs:
