/root/repo/target/debug/deps/ablation_fixed_point-a7b0071161ec4bab.d: crates/bench/src/bin/ablation_fixed_point.rs

/root/repo/target/debug/deps/ablation_fixed_point-a7b0071161ec4bab: crates/bench/src/bin/ablation_fixed_point.rs

crates/bench/src/bin/ablation_fixed_point.rs:
