/root/repo/target/debug/deps/indexes-45e2417a6f8286a6.d: crates/bench/benches/indexes.rs Cargo.toml

/root/repo/target/debug/deps/libindexes-45e2417a6f8286a6.rmeta: crates/bench/benches/indexes.rs Cargo.toml

crates/bench/benches/indexes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
