/root/repo/target/debug/deps/ablation_bandwidth-d0b3015a52a838f1.d: crates/bench/src/bin/ablation_bandwidth.rs

/root/repo/target/debug/deps/ablation_bandwidth-d0b3015a52a838f1: crates/bench/src/bin/ablation_bandwidth.rs

crates/bench/src/bin/ablation_bandwidth.rs:
