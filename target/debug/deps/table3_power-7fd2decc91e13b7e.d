/root/repo/target/debug/deps/table3_power-7fd2decc91e13b7e.d: crates/bench/src/bin/table3_power.rs

/root/repo/target/debug/deps/table3_power-7fd2decc91e13b7e: crates/bench/src/bin/table3_power.rs

crates/bench/src/bin/table3_power.rs:
