/root/repo/target/debug/deps/ablation_on_device_index-8fec4e75fa5f1b33.d: crates/bench/src/bin/ablation_on_device_index.rs

/root/repo/target/debug/deps/libablation_on_device_index-8fec4e75fa5f1b33.rmeta: crates/bench/src/bin/ablation_on_device_index.rs

crates/bench/src/bin/ablation_on_device_index.rs:
