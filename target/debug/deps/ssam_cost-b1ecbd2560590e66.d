/root/repo/target/debug/deps/ssam_cost-b1ecbd2560590e66.d: crates/cost/src/lib.rs

/root/repo/target/debug/deps/libssam_cost-b1ecbd2560590e66.rlib: crates/cost/src/lib.rs

/root/repo/target/debug/deps/libssam_cost-b1ecbd2560590e66.rmeta: crates/cost/src/lib.rs

crates/cost/src/lib.rs:
