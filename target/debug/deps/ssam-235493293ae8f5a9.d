/root/repo/target/debug/deps/ssam-235493293ae8f5a9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libssam-235493293ae8f5a9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
