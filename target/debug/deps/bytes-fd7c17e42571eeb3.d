/root/repo/target/debug/deps/bytes-fd7c17e42571eeb3.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-fd7c17e42571eeb3.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
