/root/repo/target/debug/deps/fig2_accuracy_tradeoff-9f57f931372cc55e.d: crates/bench/src/bin/fig2_accuracy_tradeoff.rs

/root/repo/target/debug/deps/fig2_accuracy_tradeoff-9f57f931372cc55e: crates/bench/src/bin/fig2_accuracy_tradeoff.rs

crates/bench/src/bin/fig2_accuracy_tradeoff.rs:
