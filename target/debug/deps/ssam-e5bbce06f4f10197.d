/root/repo/target/debug/deps/ssam-e5bbce06f4f10197.d: src/lib.rs

/root/repo/target/debug/deps/libssam-e5bbce06f4f10197.rlib: src/lib.rs

/root/repo/target/debug/deps/libssam-e5bbce06f4f10197.rmeta: src/lib.rs

src/lib.rs:
