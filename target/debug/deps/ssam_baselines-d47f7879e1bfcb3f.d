/root/repo/target/debug/deps/ssam_baselines-d47f7879e1bfcb3f.d: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

/root/repo/target/debug/deps/ssam_baselines-d47f7879e1bfcb3f: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

crates/baselines/src/lib.rs:
crates/baselines/src/automata.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/fpga.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/normalize.rs:
crates/baselines/src/parallel.rs:
