/root/repo/target/debug/deps/make_figures-30b44fab0048027f.d: crates/bench/src/bin/make_figures.rs

/root/repo/target/debug/deps/libmake_figures-30b44fab0048027f.rmeta: crates/bench/src/bin/make_figures.rs

crates/bench/src/bin/make_figures.rs:
