/root/repo/target/debug/deps/ablation_bandwidth-31970a70f4f674e6.d: crates/bench/src/bin/ablation_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libablation_bandwidth-31970a70f4f674e6.rmeta: crates/bench/src/bin/ablation_bandwidth.rs Cargo.toml

crates/bench/src/bin/ablation_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
