/root/repo/target/debug/deps/fig6_linear_comparison-b768d9ba070055a7.d: crates/bench/src/bin/fig6_linear_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_linear_comparison-b768d9ba070055a7.rmeta: crates/bench/src/bin/fig6_linear_comparison.rs Cargo.toml

crates/bench/src/bin/fig6_linear_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
