/root/repo/target/debug/deps/ssam_baselines-1850c0dde9412f00.d: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

/root/repo/target/debug/deps/libssam_baselines-1850c0dde9412f00.rmeta: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

crates/baselines/src/lib.rs:
crates/baselines/src/automata.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/fpga.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/normalize.rs:
crates/baselines/src/parallel.rs:
