/root/repo/target/debug/deps/table5_distance_metrics-2b30005c8c45d670.d: crates/bench/src/bin/table5_distance_metrics.rs

/root/repo/target/debug/deps/table5_distance_metrics-2b30005c8c45d670: crates/bench/src/bin/table5_distance_metrics.rs

crates/bench/src/bin/table5_distance_metrics.rs:
