/root/repo/target/debug/deps/traversal_kernel-c82a4873dea955ab.d: tests/traversal_kernel.rs

/root/repo/target/debug/deps/traversal_kernel-c82a4873dea955ab: tests/traversal_kernel.rs

tests/traversal_kernel.rs:
