/root/repo/target/debug/deps/ssam_cost-fdb360ce6e84102b.d: crates/cost/src/lib.rs

/root/repo/target/debug/deps/ssam_cost-fdb360ce6e84102b: crates/cost/src/lib.rs

crates/cost/src/lib.rs:
