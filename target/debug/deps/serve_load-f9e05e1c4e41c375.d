/root/repo/target/debug/deps/serve_load-f9e05e1c4e41c375.d: crates/bench/src/bin/serve_load.rs Cargo.toml

/root/repo/target/debug/deps/libserve_load-f9e05e1c4e41c375.rmeta: crates/bench/src/bin/serve_load.rs Cargo.toml

crates/bench/src/bin/serve_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
