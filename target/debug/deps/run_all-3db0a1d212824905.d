/root/repo/target/debug/deps/run_all-3db0a1d212824905.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-3db0a1d212824905: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
