/root/repo/target/debug/deps/ablation_batching-b43ac1172737b39f.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/debug/deps/ablation_batching-b43ac1172737b39f: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
