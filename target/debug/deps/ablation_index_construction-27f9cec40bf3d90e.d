/root/repo/target/debug/deps/ablation_index_construction-27f9cec40bf3d90e.d: crates/bench/src/bin/ablation_index_construction.rs

/root/repo/target/debug/deps/ablation_index_construction-27f9cec40bf3d90e: crates/bench/src/bin/ablation_index_construction.rs

crates/bench/src/bin/ablation_index_construction.rs:
