/root/repo/target/debug/deps/proptest-1f3f17825dc68a2b.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-1f3f17825dc68a2b: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
