/root/repo/target/debug/deps/assembler-133f7f1dfbee8587.d: crates/bench/benches/assembler.rs

/root/repo/target/debug/deps/assembler-133f7f1dfbee8587: crates/bench/benches/assembler.rs

crates/bench/benches/assembler.rs:
