/root/repo/target/debug/deps/traversal_kernel-1db166ee69551dfc.d: tests/traversal_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libtraversal_kernel-1db166ee69551dfc.rmeta: tests/traversal_kernel.rs Cargo.toml

tests/traversal_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
