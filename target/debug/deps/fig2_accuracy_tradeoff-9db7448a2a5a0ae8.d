/root/repo/target/debug/deps/fig2_accuracy_tradeoff-9db7448a2a5a0ae8.d: crates/bench/src/bin/fig2_accuracy_tradeoff.rs

/root/repo/target/debug/deps/fig2_accuracy_tradeoff-9db7448a2a5a0ae8: crates/bench/src/bin/fig2_accuracy_tradeoff.rs

crates/bench/src/bin/fig2_accuracy_tradeoff.rs:
