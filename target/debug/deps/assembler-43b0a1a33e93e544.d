/root/repo/target/debug/deps/assembler-43b0a1a33e93e544.d: crates/bench/benches/assembler.rs Cargo.toml

/root/repo/target/debug/deps/libassembler-43b0a1a33e93e544.rmeta: crates/bench/benches/assembler.rs Cargo.toml

crates/bench/benches/assembler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
