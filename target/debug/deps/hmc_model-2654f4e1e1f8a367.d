/root/repo/target/debug/deps/hmc_model-2654f4e1e1f8a367.d: crates/bench/benches/hmc_model.rs

/root/repo/target/debug/deps/hmc_model-2654f4e1e1f8a367: crates/bench/benches/hmc_model.rs

crates/bench/benches/hmc_model.rs:
