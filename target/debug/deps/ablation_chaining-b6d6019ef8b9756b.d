/root/repo/target/debug/deps/ablation_chaining-b6d6019ef8b9756b.d: crates/bench/src/bin/ablation_chaining.rs

/root/repo/target/debug/deps/ablation_chaining-b6d6019ef8b9756b: crates/bench/src/bin/ablation_chaining.rs

crates/bench/src/bin/ablation_chaining.rs:
