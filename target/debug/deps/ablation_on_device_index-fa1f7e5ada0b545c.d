/root/repo/target/debug/deps/ablation_on_device_index-fa1f7e5ada0b545c.d: crates/bench/src/bin/ablation_on_device_index.rs

/root/repo/target/debug/deps/ablation_on_device_index-fa1f7e5ada0b545c: crates/bench/src/bin/ablation_on_device_index.rs

crates/bench/src/bin/ablation_on_device_index.rs:
