/root/repo/target/debug/deps/ablation_batching-3a5612bfee48fa67.d: crates/bench/src/bin/ablation_batching.rs

/root/repo/target/debug/deps/ablation_batching-3a5612bfee48fa67: crates/bench/src/bin/ablation_batching.rs

crates/bench/src/bin/ablation_batching.rs:
