/root/repo/target/debug/deps/ssam_profiling-d348e59fa5073b8d.d: crates/profiling/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libssam_profiling-d348e59fa5073b8d.rmeta: crates/profiling/src/lib.rs Cargo.toml

crates/profiling/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
