/root/repo/target/debug/deps/ablation_fixed_point-38f9163d984c206b.d: crates/bench/src/bin/ablation_fixed_point.rs

/root/repo/target/debug/deps/libablation_fixed_point-38f9163d984c206b.rmeta: crates/bench/src/bin/ablation_fixed_point.rs

crates/bench/src/bin/ablation_fixed_point.rs:
