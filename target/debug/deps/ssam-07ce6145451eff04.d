/root/repo/target/debug/deps/ssam-07ce6145451eff04.d: src/lib.rs

/root/repo/target/debug/deps/ssam-07ce6145451eff04: src/lib.rs

src/lib.rs:
