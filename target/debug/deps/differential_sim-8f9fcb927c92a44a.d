/root/repo/target/debug/deps/differential_sim-8f9fcb927c92a44a.d: tests/differential_sim.rs

/root/repo/target/debug/deps/libdifferential_sim-8f9fcb927c92a44a.rmeta: tests/differential_sim.rs

tests/differential_sim.rs:
