/root/repo/target/debug/deps/criterion-d26dc135f6cf412c.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d26dc135f6cf412c.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
