/root/repo/target/debug/deps/proptest-701680d8853f3a36.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-701680d8853f3a36.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
