/root/repo/target/debug/deps/ablation_index_construction-7100f607d8ec0e0b.d: crates/bench/src/bin/ablation_index_construction.rs Cargo.toml

/root/repo/target/debug/deps/libablation_index_construction-7100f607d8ec0e0b.rmeta: crates/bench/src/bin/ablation_index_construction.rs Cargo.toml

crates/bench/src/bin/ablation_index_construction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
