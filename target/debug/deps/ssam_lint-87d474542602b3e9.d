/root/repo/target/debug/deps/ssam_lint-87d474542602b3e9.d: crates/bench/src/bin/ssam_lint.rs

/root/repo/target/debug/deps/ssam_lint-87d474542602b3e9: crates/bench/src/bin/ssam_lint.rs

crates/bench/src/bin/ssam_lint.rs:
