/root/repo/target/debug/deps/simulator_vs_reference-9cee1e6dcfbea373.d: tests/simulator_vs_reference.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_vs_reference-9cee1e6dcfbea373.rmeta: tests/simulator_vs_reference.rs Cargo.toml

tests/simulator_vs_reference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
