/root/repo/target/debug/deps/table_tco-bdf3827c777297f7.d: crates/bench/src/bin/table_tco.rs Cargo.toml

/root/repo/target/debug/deps/libtable_tco-bdf3827c777297f7.rmeta: crates/bench/src/bin/table_tco.rs Cargo.toml

crates/bench/src/bin/table_tco.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
