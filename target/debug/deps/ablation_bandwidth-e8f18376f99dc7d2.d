/root/repo/target/debug/deps/ablation_bandwidth-e8f18376f99dc7d2.d: crates/bench/src/bin/ablation_bandwidth.rs

/root/repo/target/debug/deps/libablation_bandwidth-e8f18376f99dc7d2.rmeta: crates/bench/src/bin/ablation_bandwidth.rs

crates/bench/src/bin/ablation_bandwidth.rs:
