/root/repo/target/debug/deps/ssam_bench-b6559a545c5b7b97.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/ssam_bench-b6559a545c5b7b97: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
