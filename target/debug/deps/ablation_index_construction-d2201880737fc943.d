/root/repo/target/debug/deps/ablation_index_construction-d2201880737fc943.d: crates/bench/src/bin/ablation_index_construction.rs

/root/repo/target/debug/deps/ablation_index_construction-d2201880737fc943: crates/bench/src/bin/ablation_index_construction.rs

crates/bench/src/bin/ablation_index_construction.rs:
