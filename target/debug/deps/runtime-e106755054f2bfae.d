/root/repo/target/debug/deps/runtime-e106755054f2bfae.d: crates/serve/tests/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-e106755054f2bfae.rmeta: crates/serve/tests/runtime.rs Cargo.toml

crates/serve/tests/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
