/root/repo/target/debug/deps/table_tco-b9dd86c76a6eca1f.d: crates/bench/src/bin/table_tco.rs

/root/repo/target/debug/deps/table_tco-b9dd86c76a6eca1f: crates/bench/src/bin/table_tco.rs

crates/bench/src/bin/table_tco.rs:
