/root/repo/target/debug/deps/ssam_lint-0def361ec3b1a838.d: crates/bench/src/bin/ssam_lint.rs

/root/repo/target/debug/deps/ssam_lint-0def361ec3b1a838: crates/bench/src/bin/ssam_lint.rs

crates/bench/src/bin/ssam_lint.rs:
