/root/repo/target/debug/deps/table_tco-895cc8279118f140.d: crates/bench/src/bin/table_tco.rs

/root/repo/target/debug/deps/libtable_tco-895cc8279118f140.rmeta: crates/bench/src/bin/table_tco.rs

crates/bench/src/bin/table_tco.rs:
