/root/repo/target/debug/deps/distances-34bc7959e3954398.d: crates/bench/benches/distances.rs Cargo.toml

/root/repo/target/debug/deps/libdistances-34bc7959e3954398.rmeta: crates/bench/benches/distances.rs Cargo.toml

crates/bench/benches/distances.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
