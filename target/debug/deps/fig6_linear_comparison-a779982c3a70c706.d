/root/repo/target/debug/deps/fig6_linear_comparison-a779982c3a70c706.d: crates/bench/src/bin/fig6_linear_comparison.rs

/root/repo/target/debug/deps/fig6_linear_comparison-a779982c3a70c706: crates/bench/src/bin/fig6_linear_comparison.rs

crates/bench/src/bin/fig6_linear_comparison.rs:
