/root/repo/target/debug/deps/make_figures-bd9c07b4f9d22b39.d: crates/bench/src/bin/make_figures.rs Cargo.toml

/root/repo/target/debug/deps/libmake_figures-bd9c07b4f9d22b39.rmeta: crates/bench/src/bin/make_figures.rs Cargo.toml

crates/bench/src/bin/make_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
