/root/repo/target/debug/deps/properties-69e7db8d0176252e.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-69e7db8d0176252e.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
