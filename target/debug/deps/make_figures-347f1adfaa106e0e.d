/root/repo/target/debug/deps/make_figures-347f1adfaa106e0e.d: crates/bench/src/bin/make_figures.rs

/root/repo/target/debug/deps/make_figures-347f1adfaa106e0e: crates/bench/src/bin/make_figures.rs

crates/bench/src/bin/make_figures.rs:
