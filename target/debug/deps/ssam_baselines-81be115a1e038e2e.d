/root/repo/target/debug/deps/ssam_baselines-81be115a1e038e2e.d: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

/root/repo/target/debug/deps/libssam_baselines-81be115a1e038e2e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/automata.rs crates/baselines/src/cpu.rs crates/baselines/src/fpga.rs crates/baselines/src/gpu.rs crates/baselines/src/normalize.rs crates/baselines/src/parallel.rs

crates/baselines/src/lib.rs:
crates/baselines/src/automata.rs:
crates/baselines/src/cpu.rs:
crates/baselines/src/fpga.rs:
crates/baselines/src/gpu.rs:
crates/baselines/src/normalize.rs:
crates/baselines/src/parallel.rs:
