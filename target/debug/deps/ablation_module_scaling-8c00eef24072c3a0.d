/root/repo/target/debug/deps/ablation_module_scaling-8c00eef24072c3a0.d: crates/bench/src/bin/ablation_module_scaling.rs

/root/repo/target/debug/deps/ablation_module_scaling-8c00eef24072c3a0: crates/bench/src/bin/ablation_module_scaling.rs

crates/bench/src/bin/ablation_module_scaling.rs:
