/root/repo/target/debug/deps/paper_constants-450b6bfdf9b13885.d: tests/paper_constants.rs

/root/repo/target/debug/deps/libpaper_constants-450b6bfdf9b13885.rmeta: tests/paper_constants.rs

tests/paper_constants.rs:
