/root/repo/target/debug/deps/differential_sim-cc20901993f2850d.d: tests/differential_sim.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential_sim-cc20901993f2850d.rmeta: tests/differential_sim.rs Cargo.toml

tests/differential_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
