/root/repo/target/debug/deps/ssam_knn-4770500057aee42b.d: crates/knn/src/lib.rs crates/knn/src/binary.rs crates/knn/src/distance.rs crates/knn/src/fixed.rs crates/knn/src/index.rs crates/knn/src/kdtree.rs crates/knn/src/kmeans.rs crates/knn/src/kmeans_tree.rs crates/knn/src/linear.rs crates/knn/src/mplsh.rs crates/knn/src/recall.rs crates/knn/src/topk.rs crates/knn/src/vecstore.rs

/root/repo/target/debug/deps/libssam_knn-4770500057aee42b.rmeta: crates/knn/src/lib.rs crates/knn/src/binary.rs crates/knn/src/distance.rs crates/knn/src/fixed.rs crates/knn/src/index.rs crates/knn/src/kdtree.rs crates/knn/src/kmeans.rs crates/knn/src/kmeans_tree.rs crates/knn/src/linear.rs crates/knn/src/mplsh.rs crates/knn/src/recall.rs crates/knn/src/topk.rs crates/knn/src/vecstore.rs

crates/knn/src/lib.rs:
crates/knn/src/binary.rs:
crates/knn/src/distance.rs:
crates/knn/src/fixed.rs:
crates/knn/src/index.rs:
crates/knn/src/kdtree.rs:
crates/knn/src/kmeans.rs:
crates/knn/src/kmeans_tree.rs:
crates/knn/src/linear.rs:
crates/knn/src/mplsh.rs:
crates/knn/src/recall.rs:
crates/knn/src/topk.rs:
crates/knn/src/vecstore.rs:
