/root/repo/target/debug/deps/ablation_fixed_point-cb3afc6ae3eb457d.d: crates/bench/src/bin/ablation_fixed_point.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fixed_point-cb3afc6ae3eb457d.rmeta: crates/bench/src/bin/ablation_fixed_point.rs Cargo.toml

crates/bench/src/bin/ablation_fixed_point.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
