/root/repo/target/debug/deps/fig2_accuracy_tradeoff-2fb07eb6c29b5b09.d: crates/bench/src/bin/fig2_accuracy_tradeoff.rs

/root/repo/target/debug/deps/fig2_accuracy_tradeoff-2fb07eb6c29b5b09: crates/bench/src/bin/fig2_accuracy_tradeoff.rs

crates/bench/src/bin/fig2_accuracy_tradeoff.rs:
