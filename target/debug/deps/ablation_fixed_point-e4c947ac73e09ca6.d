/root/repo/target/debug/deps/ablation_fixed_point-e4c947ac73e09ca6.d: crates/bench/src/bin/ablation_fixed_point.rs

/root/repo/target/debug/deps/ablation_fixed_point-e4c947ac73e09ca6: crates/bench/src/bin/ablation_fixed_point.rs

crates/bench/src/bin/ablation_fixed_point.rs:
