/root/repo/target/debug/deps/ablation_chaining-480948d2ffb76cd3.d: crates/bench/src/bin/ablation_chaining.rs

/root/repo/target/debug/deps/ablation_chaining-480948d2ffb76cd3: crates/bench/src/bin/ablation_chaining.rs

crates/bench/src/bin/ablation_chaining.rs:
