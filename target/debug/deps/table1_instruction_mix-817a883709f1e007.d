/root/repo/target/debug/deps/table1_instruction_mix-817a883709f1e007.d: crates/bench/src/bin/table1_instruction_mix.rs

/root/repo/target/debug/deps/table1_instruction_mix-817a883709f1e007: crates/bench/src/bin/table1_instruction_mix.rs

crates/bench/src/bin/table1_instruction_mix.rs:
