/root/repo/target/debug/deps/ssam_cost-724a78089e95b497.d: crates/cost/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libssam_cost-724a78089e95b497.rmeta: crates/cost/src/lib.rs Cargo.toml

crates/cost/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
