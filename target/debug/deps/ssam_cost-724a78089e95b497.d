/root/repo/target/debug/deps/ssam_cost-724a78089e95b497.d: crates/cost/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libssam_cost-724a78089e95b497.rmeta: crates/cost/src/lib.rs Cargo.toml

crates/cost/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
