/root/repo/target/debug/deps/ablation_chaining-018f500d5174b4a9.d: crates/bench/src/bin/ablation_chaining.rs Cargo.toml

/root/repo/target/debug/deps/libablation_chaining-018f500d5174b4a9.rmeta: crates/bench/src/bin/ablation_chaining.rs Cargo.toml

crates/bench/src/bin/ablation_chaining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
