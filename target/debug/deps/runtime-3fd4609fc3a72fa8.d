/root/repo/target/debug/deps/runtime-3fd4609fc3a72fa8.d: crates/serve/tests/runtime.rs

/root/repo/target/debug/deps/runtime-3fd4609fc3a72fa8: crates/serve/tests/runtime.rs

crates/serve/tests/runtime.rs:
