/root/repo/target/debug/deps/rayon-5a542be5b4defeb5.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-5a542be5b4defeb5.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
