/root/repo/target/debug/deps/ssam_cost-72993db844c8c7e0.d: crates/cost/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libssam_cost-72993db844c8c7e0.rmeta: crates/cost/src/lib.rs Cargo.toml

crates/cost/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
