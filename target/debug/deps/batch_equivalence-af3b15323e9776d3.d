/root/repo/target/debug/deps/batch_equivalence-af3b15323e9776d3.d: tests/batch_equivalence.rs

/root/repo/target/debug/deps/batch_equivalence-af3b15323e9776d3: tests/batch_equivalence.rs

tests/batch_equivalence.rs:
