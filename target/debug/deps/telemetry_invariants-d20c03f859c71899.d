/root/repo/target/debug/deps/telemetry_invariants-d20c03f859c71899.d: tests/telemetry_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_invariants-d20c03f859c71899.rmeta: tests/telemetry_invariants.rs Cargo.toml

tests/telemetry_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
