/root/repo/target/debug/deps/paper_constants-47e6fb759e7ed52c.d: tests/paper_constants.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_constants-47e6fb759e7ed52c.rmeta: tests/paper_constants.rs Cargo.toml

tests/paper_constants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
