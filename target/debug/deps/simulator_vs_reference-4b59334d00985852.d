/root/repo/target/debug/deps/simulator_vs_reference-4b59334d00985852.d: tests/simulator_vs_reference.rs

/root/repo/target/debug/deps/simulator_vs_reference-4b59334d00985852: tests/simulator_vs_reference.rs

tests/simulator_vs_reference.rs:
