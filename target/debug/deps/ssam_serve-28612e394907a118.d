/root/repo/target/debug/deps/ssam_serve-28612e394907a118.d: crates/serve/src/lib.rs crates/serve/src/batcher.rs

/root/repo/target/debug/deps/ssam_serve-28612e394907a118: crates/serve/src/lib.rs crates/serve/src/batcher.rs

crates/serve/src/lib.rs:
crates/serve/src/batcher.rs:
