/root/repo/target/debug/deps/ablation_on_device_index-912927f298aeb731.d: crates/bench/src/bin/ablation_on_device_index.rs Cargo.toml

/root/repo/target/debug/deps/libablation_on_device_index-912927f298aeb731.rmeta: crates/bench/src/bin/ablation_on_device_index.rs Cargo.toml

crates/bench/src/bin/ablation_on_device_index.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
