/root/repo/target/debug/deps/table6_automata-8d859cbdac965083.d: crates/bench/src/bin/table6_automata.rs

/root/repo/target/debug/deps/table6_automata-8d859cbdac965083: crates/bench/src/bin/table6_automata.rs

crates/bench/src/bin/table6_automata.rs:
