/root/repo/target/debug/deps/ssam_knn-0cf1e95e916b48e4.d: crates/knn/src/lib.rs crates/knn/src/binary.rs crates/knn/src/distance.rs crates/knn/src/fixed.rs crates/knn/src/index.rs crates/knn/src/kdtree.rs crates/knn/src/kmeans.rs crates/knn/src/kmeans_tree.rs crates/knn/src/linear.rs crates/knn/src/mplsh.rs crates/knn/src/recall.rs crates/knn/src/topk.rs crates/knn/src/vecstore.rs Cargo.toml

/root/repo/target/debug/deps/libssam_knn-0cf1e95e916b48e4.rmeta: crates/knn/src/lib.rs crates/knn/src/binary.rs crates/knn/src/distance.rs crates/knn/src/fixed.rs crates/knn/src/index.rs crates/knn/src/kdtree.rs crates/knn/src/kmeans.rs crates/knn/src/kmeans_tree.rs crates/knn/src/linear.rs crates/knn/src/mplsh.rs crates/knn/src/recall.rs crates/knn/src/topk.rs crates/knn/src/vecstore.rs Cargo.toml

crates/knn/src/lib.rs:
crates/knn/src/binary.rs:
crates/knn/src/distance.rs:
crates/knn/src/fixed.rs:
crates/knn/src/index.rs:
crates/knn/src/kdtree.rs:
crates/knn/src/kmeans.rs:
crates/knn/src/kmeans_tree.rs:
crates/knn/src/linear.rs:
crates/knn/src/mplsh.rs:
crates/knn/src/recall.rs:
crates/knn/src/topk.rs:
crates/knn/src/vecstore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
