/root/repo/target/debug/deps/analysis_properties-3493d0a79f5a5dcd.d: tests/analysis_properties.rs

/root/repo/target/debug/deps/analysis_properties-3493d0a79f5a5dcd: tests/analysis_properties.rs

tests/analysis_properties.rs:
