/root/repo/target/debug/deps/rand-2271b92296f64bfb.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2271b92296f64bfb.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
