/root/repo/target/debug/deps/ablation_bandwidth-496bc1557e43bb5b.d: crates/bench/src/bin/ablation_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libablation_bandwidth-496bc1557e43bb5b.rmeta: crates/bench/src/bin/ablation_bandwidth.rs Cargo.toml

crates/bench/src/bin/ablation_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
