/root/repo/target/debug/deps/serve_equivalence-0a50d54d09bc75cf.d: tests/serve_equivalence.rs

/root/repo/target/debug/deps/serve_equivalence-0a50d54d09bc75cf: tests/serve_equivalence.rs

tests/serve_equivalence.rs:
