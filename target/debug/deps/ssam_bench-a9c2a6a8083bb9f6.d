/root/repo/target/debug/deps/ssam_bench-a9c2a6a8083bb9f6.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libssam_bench-a9c2a6a8083bb9f6.rlib: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libssam_bench-a9c2a6a8083bb9f6.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
