/root/repo/target/debug/deps/ssam_datasets-4ee58b318c2144b8.d: crates/datasets/src/lib.rs crates/datasets/src/benchmark.rs crates/datasets/src/generator.rs crates/datasets/src/ground_truth.rs crates/datasets/src/io.rs crates/datasets/src/json.rs crates/datasets/src/spec.rs crates/datasets/src/texmex.rs Cargo.toml

/root/repo/target/debug/deps/libssam_datasets-4ee58b318c2144b8.rmeta: crates/datasets/src/lib.rs crates/datasets/src/benchmark.rs crates/datasets/src/generator.rs crates/datasets/src/ground_truth.rs crates/datasets/src/io.rs crates/datasets/src/json.rs crates/datasets/src/spec.rs crates/datasets/src/texmex.rs Cargo.toml

crates/datasets/src/lib.rs:
crates/datasets/src/benchmark.rs:
crates/datasets/src/generator.rs:
crates/datasets/src/ground_truth.rs:
crates/datasets/src/io.rs:
crates/datasets/src/json.rs:
crates/datasets/src/spec.rs:
crates/datasets/src/texmex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
