/root/repo/target/debug/deps/table_tco-82fb262da636f03e.d: crates/bench/src/bin/table_tco.rs Cargo.toml

/root/repo/target/debug/deps/libtable_tco-82fb262da636f03e.rmeta: crates/bench/src/bin/table_tco.rs Cargo.toml

crates/bench/src/bin/table_tco.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
