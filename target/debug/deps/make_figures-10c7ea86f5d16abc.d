/root/repo/target/debug/deps/make_figures-10c7ea86f5d16abc.d: crates/bench/src/bin/make_figures.rs

/root/repo/target/debug/deps/make_figures-10c7ea86f5d16abc: crates/bench/src/bin/make_figures.rs

crates/bench/src/bin/make_figures.rs:
