/root/repo/target/debug/deps/simulator-0d3bdec2718f85a4.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/simulator-0d3bdec2718f85a4: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
