/root/repo/target/debug/deps/kernel_properties-c579c7d28590ae37.d: tests/kernel_properties.rs

/root/repo/target/debug/deps/libkernel_properties-c579c7d28590ae37.rmeta: tests/kernel_properties.rs

tests/kernel_properties.rs:
