/root/repo/target/debug/deps/traversal_kernel-2749cd087a49e615.d: tests/traversal_kernel.rs

/root/repo/target/debug/deps/traversal_kernel-2749cd087a49e615: tests/traversal_kernel.rs

tests/traversal_kernel.rs:
