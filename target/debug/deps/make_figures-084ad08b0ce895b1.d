/root/repo/target/debug/deps/make_figures-084ad08b0ce895b1.d: crates/bench/src/bin/make_figures.rs Cargo.toml

/root/repo/target/debug/deps/libmake_figures-084ad08b0ce895b1.rmeta: crates/bench/src/bin/make_figures.rs Cargo.toml

crates/bench/src/bin/make_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
