/root/repo/target/debug/deps/table5_distance_metrics-d747b84696ca556a.d: crates/bench/src/bin/table5_distance_metrics.rs

/root/repo/target/debug/deps/libtable5_distance_metrics-d747b84696ca556a.rmeta: crates/bench/src/bin/table5_distance_metrics.rs

crates/bench/src/bin/table5_distance_metrics.rs:
