/root/repo/target/debug/deps/traversal_kernel-36adfa7228e380cb.d: tests/traversal_kernel.rs

/root/repo/target/debug/deps/libtraversal_kernel-36adfa7228e380cb.rmeta: tests/traversal_kernel.rs

tests/traversal_kernel.rs:
