/root/repo/target/debug/deps/ablation_bandwidth-1def8087c5d2858a.d: crates/bench/src/bin/ablation_bandwidth.rs

/root/repo/target/debug/deps/ablation_bandwidth-1def8087c5d2858a: crates/bench/src/bin/ablation_bandwidth.rs

crates/bench/src/bin/ablation_bandwidth.rs:
