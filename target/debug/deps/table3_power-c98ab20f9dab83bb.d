/root/repo/target/debug/deps/table3_power-c98ab20f9dab83bb.d: crates/bench/src/bin/table3_power.rs

/root/repo/target/debug/deps/table3_power-c98ab20f9dab83bb: crates/bench/src/bin/table3_power.rs

crates/bench/src/bin/table3_power.rs:
