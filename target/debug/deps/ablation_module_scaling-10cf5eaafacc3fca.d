/root/repo/target/debug/deps/ablation_module_scaling-10cf5eaafacc3fca.d: crates/bench/src/bin/ablation_module_scaling.rs

/root/repo/target/debug/deps/ablation_module_scaling-10cf5eaafacc3fca: crates/bench/src/bin/ablation_module_scaling.rs

crates/bench/src/bin/ablation_module_scaling.rs:
