/root/repo/target/debug/deps/ssam_profiling-011da865364f5a71.d: crates/profiling/src/lib.rs

/root/repo/target/debug/deps/libssam_profiling-011da865364f5a71.rmeta: crates/profiling/src/lib.rs

crates/profiling/src/lib.rs:
