/root/repo/target/debug/deps/ssam_profiling-6c6c11397f1dc0c0.d: crates/profiling/src/lib.rs

/root/repo/target/debug/deps/ssam_profiling-6c6c11397f1dc0c0: crates/profiling/src/lib.rs

crates/profiling/src/lib.rs:
