/root/repo/target/debug/deps/table5_distance_metrics-ba2f567d0d6991d0.d: crates/bench/src/bin/table5_distance_metrics.rs

/root/repo/target/debug/deps/table5_distance_metrics-ba2f567d0d6991d0: crates/bench/src/bin/table5_distance_metrics.rs

crates/bench/src/bin/table5_distance_metrics.rs:
