/root/repo/target/debug/deps/ablation_priority_queue-81951de326fecf17.d: crates/bench/src/bin/ablation_priority_queue.rs

/root/repo/target/debug/deps/ablation_priority_queue-81951de326fecf17: crates/bench/src/bin/ablation_priority_queue.rs

crates/bench/src/bin/ablation_priority_queue.rs:
