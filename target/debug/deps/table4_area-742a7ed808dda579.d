/root/repo/target/debug/deps/table4_area-742a7ed808dda579.d: crates/bench/src/bin/table4_area.rs

/root/repo/target/debug/deps/libtable4_area-742a7ed808dda579.rmeta: crates/bench/src/bin/table4_area.rs

crates/bench/src/bin/table4_area.rs:
