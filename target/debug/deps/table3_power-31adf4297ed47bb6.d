/root/repo/target/debug/deps/table3_power-31adf4297ed47bb6.d: crates/bench/src/bin/table3_power.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_power-31adf4297ed47bb6.rmeta: crates/bench/src/bin/table3_power.rs Cargo.toml

crates/bench/src/bin/table3_power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
