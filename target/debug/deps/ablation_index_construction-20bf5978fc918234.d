/root/repo/target/debug/deps/ablation_index_construction-20bf5978fc918234.d: crates/bench/src/bin/ablation_index_construction.rs

/root/repo/target/debug/deps/ablation_index_construction-20bf5978fc918234: crates/bench/src/bin/ablation_index_construction.rs

crates/bench/src/bin/ablation_index_construction.rs:
