/root/repo/target/debug/deps/table5_distance_metrics-b0755c354f529a12.d: crates/bench/src/bin/table5_distance_metrics.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_distance_metrics-b0755c354f529a12.rmeta: crates/bench/src/bin/table5_distance_metrics.rs Cargo.toml

crates/bench/src/bin/table5_distance_metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
