/root/repo/target/debug/deps/ssam_profiling-609cd77af7af5473.d: crates/profiling/src/lib.rs

/root/repo/target/debug/deps/libssam_profiling-609cd77af7af5473.rmeta: crates/profiling/src/lib.rs

crates/profiling/src/lib.rs:
