/root/repo/target/debug/deps/topk-0e811766dc8595a4.d: crates/bench/benches/topk.rs Cargo.toml

/root/repo/target/debug/deps/libtopk-0e811766dc8595a4.rmeta: crates/bench/benches/topk.rs Cargo.toml

crates/bench/benches/topk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
