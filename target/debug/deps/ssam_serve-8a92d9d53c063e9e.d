/root/repo/target/debug/deps/ssam_serve-8a92d9d53c063e9e.d: crates/serve/src/lib.rs crates/serve/src/batcher.rs Cargo.toml

/root/repo/target/debug/deps/libssam_serve-8a92d9d53c063e9e.rmeta: crates/serve/src/lib.rs crates/serve/src/batcher.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/batcher.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
