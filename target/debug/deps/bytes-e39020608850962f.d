/root/repo/target/debug/deps/bytes-e39020608850962f.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-e39020608850962f.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
