/root/repo/target/debug/deps/ablation_fixed_point-1e6ff7b2a88120b3.d: crates/bench/src/bin/ablation_fixed_point.rs

/root/repo/target/debug/deps/ablation_fixed_point-1e6ff7b2a88120b3: crates/bench/src/bin/ablation_fixed_point.rs

crates/bench/src/bin/ablation_fixed_point.rs:
