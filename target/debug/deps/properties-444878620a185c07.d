/root/repo/target/debug/deps/properties-444878620a185c07.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-444878620a185c07.rmeta: tests/properties.rs

tests/properties.rs:
