/root/repo/target/debug/deps/ablation_priority_queue-ffff5addacdf929c.d: crates/bench/src/bin/ablation_priority_queue.rs

/root/repo/target/debug/deps/ablation_priority_queue-ffff5addacdf929c: crates/bench/src/bin/ablation_priority_queue.rs

crates/bench/src/bin/ablation_priority_queue.rs:
