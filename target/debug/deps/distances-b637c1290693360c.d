/root/repo/target/debug/deps/distances-b637c1290693360c.d: crates/bench/benches/distances.rs Cargo.toml

/root/repo/target/debug/deps/libdistances-b637c1290693360c.rmeta: crates/bench/benches/distances.rs Cargo.toml

crates/bench/benches/distances.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
