/root/repo/target/debug/deps/ablation_on_device_index-96e53a25c89eccd7.d: crates/bench/src/bin/ablation_on_device_index.rs

/root/repo/target/debug/deps/ablation_on_device_index-96e53a25c89eccd7: crates/bench/src/bin/ablation_on_device_index.rs

crates/bench/src/bin/ablation_on_device_index.rs:
