/root/repo/target/debug/deps/telemetry_invariants-6e9ba8cb2dd0540e.d: tests/telemetry_invariants.rs

/root/repo/target/debug/deps/libtelemetry_invariants-6e9ba8cb2dd0540e.rmeta: tests/telemetry_invariants.rs

tests/telemetry_invariants.rs:
