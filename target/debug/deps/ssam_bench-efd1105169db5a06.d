/root/repo/target/debug/deps/ssam_bench-efd1105169db5a06.d: crates/bench/src/lib.rs crates/bench/src/svg.rs

/root/repo/target/debug/deps/libssam_bench-efd1105169db5a06.rmeta: crates/bench/src/lib.rs crates/bench/src/svg.rs

crates/bench/src/lib.rs:
crates/bench/src/svg.rs:
