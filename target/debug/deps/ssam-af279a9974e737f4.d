/root/repo/target/debug/deps/ssam-af279a9974e737f4.d: src/lib.rs

/root/repo/target/debug/deps/libssam-af279a9974e737f4.rlib: src/lib.rs

/root/repo/target/debug/deps/libssam-af279a9974e737f4.rmeta: src/lib.rs

src/lib.rs:
