/root/repo/target/debug/deps/table6_automata-981aeaaa360acdf1.d: crates/bench/src/bin/table6_automata.rs

/root/repo/target/debug/deps/libtable6_automata-981aeaaa360acdf1.rmeta: crates/bench/src/bin/table6_automata.rs

crates/bench/src/bin/table6_automata.rs:
