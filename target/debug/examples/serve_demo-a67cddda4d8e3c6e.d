/root/repo/target/debug/examples/serve_demo-a67cddda4d8e3c6e.d: examples/serve_demo.rs

/root/repo/target/debug/examples/serve_demo-a67cddda4d8e3c6e: examples/serve_demo.rs

examples/serve_demo.rs:
