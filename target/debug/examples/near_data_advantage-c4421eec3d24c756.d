/root/repo/target/debug/examples/near_data_advantage-c4421eec3d24c756.d: examples/near_data_advantage.rs Cargo.toml

/root/repo/target/debug/examples/libnear_data_advantage-c4421eec3d24c756.rmeta: examples/near_data_advantage.rs Cargo.toml

examples/near_data_advantage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
