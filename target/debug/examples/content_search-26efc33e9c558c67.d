/root/repo/target/debug/examples/content_search-26efc33e9c558c67.d: examples/content_search.rs

/root/repo/target/debug/examples/content_search-26efc33e9c558c67: examples/content_search.rs

examples/content_search.rs:
