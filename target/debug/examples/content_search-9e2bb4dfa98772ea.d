/root/repo/target/debug/examples/content_search-9e2bb4dfa98772ea.d: examples/content_search.rs Cargo.toml

/root/repo/target/debug/examples/libcontent_search-9e2bb4dfa98772ea.rmeta: examples/content_search.rs Cargo.toml

examples/content_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
