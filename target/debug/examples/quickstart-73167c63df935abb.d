/root/repo/target/debug/examples/quickstart-73167c63df935abb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-73167c63df935abb: examples/quickstart.rs

examples/quickstart.rs:
