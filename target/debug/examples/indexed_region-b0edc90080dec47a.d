/root/repo/target/debug/examples/indexed_region-b0edc90080dec47a.d: examples/indexed_region.rs

/root/repo/target/debug/examples/indexed_region-b0edc90080dec47a: examples/indexed_region.rs

examples/indexed_region.rs:
