/root/repo/target/debug/examples/indexed_region-292d80dd682bbe4f.d: examples/indexed_region.rs Cargo.toml

/root/repo/target/debug/examples/libindexed_region-292d80dd682bbe4f.rmeta: examples/indexed_region.rs Cargo.toml

examples/indexed_region.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
