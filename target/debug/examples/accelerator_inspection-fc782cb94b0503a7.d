/root/repo/target/debug/examples/accelerator_inspection-fc782cb94b0503a7.d: examples/accelerator_inspection.rs Cargo.toml

/root/repo/target/debug/examples/libaccelerator_inspection-fc782cb94b0503a7.rmeta: examples/accelerator_inspection.rs Cargo.toml

examples/accelerator_inspection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
