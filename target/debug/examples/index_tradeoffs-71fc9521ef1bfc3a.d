/root/repo/target/debug/examples/index_tradeoffs-71fc9521ef1bfc3a.d: examples/index_tradeoffs.rs

/root/repo/target/debug/examples/index_tradeoffs-71fc9521ef1bfc3a: examples/index_tradeoffs.rs

examples/index_tradeoffs.rs:
