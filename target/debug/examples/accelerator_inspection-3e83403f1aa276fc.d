/root/repo/target/debug/examples/accelerator_inspection-3e83403f1aa276fc.d: examples/accelerator_inspection.rs Cargo.toml

/root/repo/target/debug/examples/libaccelerator_inspection-3e83403f1aa276fc.rmeta: examples/accelerator_inspection.rs Cargo.toml

examples/accelerator_inspection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
