/root/repo/target/debug/examples/index_tradeoffs-a75c3e06c512e512.d: examples/index_tradeoffs.rs Cargo.toml

/root/repo/target/debug/examples/libindex_tradeoffs-a75c3e06c512e512.rmeta: examples/index_tradeoffs.rs Cargo.toml

examples/index_tradeoffs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
