/root/repo/target/debug/examples/indexed_region-4cbcaf78b0d60536.d: examples/indexed_region.rs

/root/repo/target/debug/examples/indexed_region-4cbcaf78b0d60536: examples/indexed_region.rs

examples/indexed_region.rs:
