/root/repo/target/debug/examples/index_tradeoffs-154e70cd0832e1e3.d: examples/index_tradeoffs.rs

/root/repo/target/debug/examples/index_tradeoffs-154e70cd0832e1e3: examples/index_tradeoffs.rs

examples/index_tradeoffs.rs:
