/root/repo/target/debug/examples/quickstart-0bae823f7c098398.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0bae823f7c098398: examples/quickstart.rs

examples/quickstart.rs:
