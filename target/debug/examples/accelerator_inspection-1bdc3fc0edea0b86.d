/root/repo/target/debug/examples/accelerator_inspection-1bdc3fc0edea0b86.d: examples/accelerator_inspection.rs

/root/repo/target/debug/examples/accelerator_inspection-1bdc3fc0edea0b86: examples/accelerator_inspection.rs

examples/accelerator_inspection.rs:
