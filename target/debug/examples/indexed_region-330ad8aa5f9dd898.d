/root/repo/target/debug/examples/indexed_region-330ad8aa5f9dd898.d: examples/indexed_region.rs Cargo.toml

/root/repo/target/debug/examples/libindexed_region-330ad8aa5f9dd898.rmeta: examples/indexed_region.rs Cargo.toml

examples/indexed_region.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
