/root/repo/target/debug/examples/index_tradeoffs-18a15bfe8a6eedae.d: examples/index_tradeoffs.rs Cargo.toml

/root/repo/target/debug/examples/libindex_tradeoffs-18a15bfe8a6eedae.rmeta: examples/index_tradeoffs.rs Cargo.toml

examples/index_tradeoffs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
