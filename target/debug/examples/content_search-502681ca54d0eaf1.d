/root/repo/target/debug/examples/content_search-502681ca54d0eaf1.d: examples/content_search.rs

/root/repo/target/debug/examples/content_search-502681ca54d0eaf1: examples/content_search.rs

examples/content_search.rs:
