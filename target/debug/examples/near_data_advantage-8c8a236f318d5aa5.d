/root/repo/target/debug/examples/near_data_advantage-8c8a236f318d5aa5.d: examples/near_data_advantage.rs

/root/repo/target/debug/examples/near_data_advantage-8c8a236f318d5aa5: examples/near_data_advantage.rs

examples/near_data_advantage.rs:
