/root/repo/target/debug/examples/accelerator_inspection-5108b407ee770a13.d: examples/accelerator_inspection.rs

/root/repo/target/debug/examples/accelerator_inspection-5108b407ee770a13: examples/accelerator_inspection.rs

examples/accelerator_inspection.rs:
