/root/repo/target/debug/examples/serve_demo-636cd1e83b799ca7.d: examples/serve_demo.rs Cargo.toml

/root/repo/target/debug/examples/libserve_demo-636cd1e83b799ca7.rmeta: examples/serve_demo.rs Cargo.toml

examples/serve_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
