/root/repo/target/debug/examples/content_search-e0a06354cdb182ef.d: examples/content_search.rs Cargo.toml

/root/repo/target/debug/examples/libcontent_search-e0a06354cdb182ef.rmeta: examples/content_search.rs Cargo.toml

examples/content_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
