/root/repo/target/debug/examples/near_data_advantage-bfe66bbf98b8197e.d: examples/near_data_advantage.rs

/root/repo/target/debug/examples/near_data_advantage-bfe66bbf98b8197e: examples/near_data_advantage.rs

examples/near_data_advantage.rs:
