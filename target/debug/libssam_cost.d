/root/repo/target/debug/libssam_cost.rlib: /root/repo/crates/cost/src/lib.rs
