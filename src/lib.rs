//! # SSAM — Similarity Search Associative Memory
//!
//! A full-system Rust reproduction of *Application Codesign of Near-Data
//! Processing for Similarity Search* (Lee et al., IPDPS 2018): a near-data
//! kNN accelerator built on the Hybrid Memory Cube, together with every
//! substrate its evaluation depends on.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`knn`] — the similarity-search algorithm substrate (linear search,
//!   kd-tree forests, hierarchical k-means trees, multi-probe LSH,
//!   distance metrics, fixed-point and Hamming representations).
//! * [`hmc`] — the Hybrid Memory Cube 2.0 memory model (vaults, vault
//!   controllers, links, bandwidth accounting).
//! * [`core`] — the SSAM accelerator itself: ISA, assembler, cycle-level
//!   processing-unit simulator, kNN kernels, energy/area models, and the
//!   device-level query engine with its host-side memory API.
//! * [`datasets`] — synthetic stand-ins for the paper's GloVe / GIST /
//!   AlexNet evaluation datasets.
//! * [`baselines`] — the multicore CPU baseline plus analytical GPU /
//!   FPGA / Automata Processor platform models.
//! * [`profiling`] — instruction-mix instrumentation (the paper's Table I).
//! * [`cost`] — the Section VI-A datacenter TCO model.
//! * [`serve`] — the online query-serving runtime: dynamic batching,
//!   admission control, deadlines, and graceful shutdown over the device
//!   engine (see `examples/serve_demo.rs`).
//! * [`faults`] — seeded deterministic fault injection (DRAM bit flips
//!   under SECDED ECC, link CRC corruption with bounded retry, vault and
//!   module outages, stragglers) plus the closed fault-accounting record
//!   the rest of the stack reports recovery through.
//! * [`store`] — the mutable dataset subsystem: a WAL-first LSM-lite
//!   vector store (memtable + vault-mapped immutable segments, leveled
//!   background compaction, tombstone-aware deletes) with bit-identical
//!   crash recovery, servable online through [`serve`] (see
//!   `examples/store_ingest.rs`).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use ssam::knn::{linear::knn_exact, Metric, VectorStore};
//!
//! let mut store = VectorStore::new(4);
//! store.push(&[0.0, 0.0, 0.0, 0.0]);
//! store.push(&[1.0, 1.0, 1.0, 1.0]);
//! let nn = knn_exact(&store, &[0.1, 0.0, 0.0, 0.0], 1, Metric::Euclidean);
//! assert_eq!(nn[0].id, 0);
//! ```

#![forbid(unsafe_code)]

pub use ssam_baselines as baselines;
pub use ssam_core as core;
pub use ssam_cost as cost;
pub use ssam_datasets as datasets;
pub use ssam_faults as faults;
pub use ssam_hmc as hmc;
pub use ssam_knn as knn;
pub use ssam_profiling as profiling;
pub use ssam_serve as serve;
pub use ssam_store as store;
