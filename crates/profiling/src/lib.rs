//! # ssam-profiling — instruction-mix instrumentation (paper Table I)
//!
//! The paper instrumented its CPU baselines "using the Pin instruction mix
//! tool on an Intel i7-4790K" and reports, per algorithm, the share of
//! AVX/SSE instructions, memory reads, and memory writes. Pin is x86-only
//! and closed-form here, so this crate reproduces the methodology one
//! level up: it runs the *same four algorithms* from `ssam-knn`, takes
//! their exact work counts ([`ssam_knn::SearchStats`]), and expands them
//! through a per-algorithm micro-cost model (instructions per distance
//! evaluation, per tree/hash step, per queue update on an 8-lane AVX
//! machine) into the same four instruction classes.
//!
//! The absolute percentages depend on dataset and budget exactly as they
//! do under Pin; what the paper's table establishes — and what the
//! `table1_instruction_mix` experiment reproduces — is the *shape*:
//! linear and k-means search are vector-heavy, kd-trees and MPLSH spend
//! relatively more on scalar traversal and memory writes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ssam_knn::index::{SearchBudget, SearchIndex, SearchStats};
use ssam_knn::VectorStore;

/// AVX lane width assumed for the vectorized distance loops (f32 × 8).
pub const SIMD_LANES: usize = 8;

/// Instruction-class totals for a workload.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCounts {
    /// Vector (AVX/SSE-class) instructions.
    pub vector: f64,
    /// Instructions with a memory-read operand.
    pub mem_read: f64,
    /// Instructions with a memory-write operand.
    pub mem_write: f64,
    /// Remaining scalar/control instructions.
    pub scalar: f64,
}

impl OpCounts {
    /// Total instructions.
    pub fn total(&self) -> f64 {
        self.vector + self.mem_read + self.mem_write + self.scalar
    }

    /// Percentages in the paper's Table I format.
    pub fn mix(&self) -> InstructionMix {
        let t = self.total().max(1.0);
        InstructionMix {
            vector_pct: 100.0 * self.vector / t,
            mem_read_pct: 100.0 * self.mem_read / t,
            mem_write_pct: 100.0 * self.mem_write / t,
        }
    }
}

/// One Table I row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// AVX/SSE instruction share, percent.
    pub vector_pct: f64,
    /// Memory-read share, percent.
    pub mem_read_pct: f64,
    /// Memory-write share, percent.
    pub mem_write_pct: f64,
}

/// Algorithm families of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Exact linear scan.
    Linear,
    /// Randomized kd-tree forest.
    KdTree,
    /// Hierarchical k-means tree.
    KMeans,
    /// Multi-probe LSH.
    Mplsh,
}

impl Family {
    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            Family::Linear => "Linear",
            Family::KdTree => "KD-Tree",
            Family::KMeans => "K-Means",
            Family::Mplsh => "MPLSH",
        }
    }
}

/// Per-unit instruction costs of one algorithm family on the modeled AVX
/// machine.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CostModel {
    /// Per distance evaluation, per SIMD chunk: vector ALU instructions.
    vec_per_chunk: f64,
    /// Per distance evaluation, per SIMD chunk: memory-read instructions.
    read_per_chunk: f64,
    /// Per distance evaluation: scalar loop/bookkeeping instructions.
    scalar_per_eval: f64,
    /// Per distance evaluation: write instructions (top-k updates,
    /// amortized).
    write_per_eval: f64,
    /// Per interior step (tree node / hash bit): reads.
    read_per_interior: f64,
    /// Per interior step: writes (heap pushes, probe-queue updates).
    write_per_interior: f64,
    /// Per interior step: scalar instructions.
    scalar_per_interior: f64,
    /// Per interior step: vector instructions (vectorized hash dots).
    vec_per_interior_chunk: f64,
    /// Per leaf/bucket visited: writes (bucket bookkeeping, result sets).
    write_per_leaf: f64,
    /// Per leaf/bucket visited: scalar instructions.
    scalar_per_leaf: f64,
}

fn cost_model(family: Family) -> CostModel {
    match family {
        // A tight vectorized scan: ~3 vector ALU ops and ~2.5 loads per
        // chunk, negligible writes.
        Family::Linear => CostModel {
            vec_per_chunk: 3.0,
            read_per_chunk: 2.5,
            scalar_per_eval: 1.0,
            write_per_eval: 0.025,
            read_per_interior: 0.0,
            write_per_interior: 0.0,
            scalar_per_interior: 0.0,
            vec_per_interior_chunk: 0.0,
            write_per_leaf: 0.0,
            scalar_per_leaf: 0.0,
        },
        // Tree descent + frontier-heap backtracking: pointer-chasing
        // reads, heap writes, heavy scalar control.
        Family::KdTree => CostModel {
            vec_per_chunk: 3.0,
            read_per_chunk: 2.5,
            scalar_per_eval: 6.0,
            write_per_eval: 2.5, // de-dup set + heap touches per candidate
            read_per_interior: 24.0,
            write_per_interior: 16.0,
            scalar_per_interior: 44.0,
            vec_per_interior_chunk: 0.0,
            write_per_leaf: 40.0,
            scalar_per_leaf: 80.0,
        },
        // k-means descent computes full-dimensional centroid distances at
        // every interior node — those vectorize like the scan does.
        Family::KMeans => CostModel {
            vec_per_chunk: 3.0,
            read_per_chunk: 2.5,
            scalar_per_eval: 1.5,
            write_per_eval: 0.1,
            read_per_interior: 6.0,
            write_per_interior: 3.0,
            scalar_per_interior: 10.0,
            vec_per_interior_chunk: 2.0, // centroid-distance dots
            write_per_leaf: 10.0,
            scalar_per_leaf: 20.0,
        },
        // Hash evaluation + probe-sequence generation: mostly scalar with
        // substantial writes into probe heaps and candidate sets.
        Family::Mplsh => CostModel {
            vec_per_chunk: 3.0,
            read_per_chunk: 2.5,
            scalar_per_eval: 10.0,
            write_per_eval: 5.0,
            read_per_interior: 16.0,
            write_per_interior: 14.0,
            scalar_per_interior: 60.0,
            vec_per_interior_chunk: 0.5,
            write_per_leaf: 48.0,
            scalar_per_leaf: 60.0,
        },
    }
}

/// Expands measured work statistics into instruction-class totals.
pub fn expand(family: Family, stats: &SearchStats, dims: usize) -> OpCounts {
    let m = cost_model(family);
    let chunks = dims.div_ceil(SIMD_LANES) as f64;
    let e = stats.distance_evals as f64;
    let i = stats.interior_steps as f64;
    let l = stats.leaves_visited as f64;
    OpCounts {
        vector: e * m.vec_per_chunk * chunks + i * m.vec_per_interior_chunk * chunks,
        mem_read: e * m.read_per_chunk * chunks + i * m.read_per_interior,
        mem_write: e * m.write_per_eval + i * m.write_per_interior + l * m.write_per_leaf,
        scalar: e * m.scalar_per_eval + i * m.scalar_per_interior + l * m.scalar_per_leaf,
    }
}

/// Profiles an index over a query batch: runs the real algorithm,
/// accumulates its work statistics, and reports the instruction mix.
pub fn profile<I: SearchIndex + ?Sized>(
    family: Family,
    index: &I,
    store: &VectorStore,
    queries: &VectorStore,
    k: usize,
    budget: SearchBudget,
) -> InstructionMix {
    let mut stats = SearchStats::default();
    for (_, q) in queries.iter() {
        let (_, s) = index.search_with_stats(store, q, k, budget);
        stats.merge(&s);
    }
    expand(family, &stats, store.dims()).mix()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(evals: usize, interior: usize, leaves: usize) -> SearchStats {
        SearchStats {
            distance_evals: evals,
            interior_steps: interior,
            leaves_visited: leaves,
        }
    }

    #[test]
    fn linear_mix_matches_paper_shape() {
        // Table I, GloVe row: Linear = 54.75% vector, 45.23% reads,
        // 0.44% writes.
        let mix = expand(Family::Linear, &stats(10_000, 0, 1), 100).mix();
        assert!((mix.vector_pct - 54.75).abs() < 5.0, "vector {mix:?}");
        assert!((mix.mem_read_pct - 45.23).abs() < 5.0, "reads {mix:?}");
        assert!(mix.mem_write_pct < 2.0, "writes {mix:?}");
    }

    #[test]
    fn tree_algorithms_write_more_than_linear() {
        let lin = expand(Family::Linear, &stats(10_000, 0, 1), 100).mix();
        let kd = expand(Family::KdTree, &stats(2_000, 600, 64), 100).mix();
        let lsh = expand(Family::Mplsh, &stats(1_500, 160, 256), 100).mix();
        assert!(kd.mem_write_pct > 4.0 * lin.mem_write_pct);
        assert!(lsh.mem_write_pct > kd.mem_write_pct);
    }

    #[test]
    fn vector_share_ordering_matches_table() {
        // Linear ≥ K-Means > KD-Tree > MPLSH.
        let lin = expand(Family::Linear, &stats(10_000, 0, 1), 100).mix();
        let km = expand(Family::KMeans, &stats(6_000, 400, 48), 100).mix();
        let kd = expand(Family::KdTree, &stats(2_000, 600, 64), 100).mix();
        let lsh = expand(Family::Mplsh, &stats(1_500, 160, 256), 100).mix();
        assert!(lin.vector_pct >= km.vector_pct);
        assert!(km.vector_pct > kd.vector_pct);
        assert!(kd.vector_pct > lsh.vector_pct);
    }

    #[test]
    fn percentages_sum_to_at_most_one_hundred() {
        for f in [
            Family::Linear,
            Family::KdTree,
            Family::KMeans,
            Family::Mplsh,
        ] {
            let mix = expand(f, &stats(1000, 300, 32), 128).mix();
            let sum = mix.vector_pct + mix.mem_read_pct + mix.mem_write_pct;
            assert!(sum <= 100.0 + 1e-9, "{f:?}: {sum}");
            assert!(mix.vector_pct >= 0.0 && mix.mem_read_pct >= 0.0);
        }
    }

    #[test]
    fn profile_runs_real_algorithms() {
        use ssam_knn::linear::LinearSearch;
        use ssam_knn::Metric;
        let store = VectorStore::from_flat(2, (0..100).map(|i| i as f32).collect());
        let queries = VectorStore::from_flat(2, vec![1.0, 2.0, 30.0, 31.0]);
        let mix = profile(
            Family::Linear,
            &LinearSearch::new(Metric::Euclidean),
            &store,
            &queries,
            3,
            SearchBudget::unlimited(),
        );
        assert!(mix.vector_pct > 40.0);
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(Family::Linear.label(), "Linear");
        assert_eq!(Family::Mplsh.label(), "MPLSH");
    }
}
