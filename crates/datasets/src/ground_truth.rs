//! Exact ground-truth computation.
//!
//! Recall (Section II-C) is measured against "the true set of neighbors
//! returned by exact floating point linear kNN search". Ground truth is
//! embarrassingly parallel across queries, so we compute it with rayon.

use rayon::prelude::*;
use ssam_knn::linear::knn_exact;
use ssam_knn::{Metric, VectorStore};

/// Exact neighbor ids per query (row-aligned with the query store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// `k` used to compute the truth sets.
    pub k: usize,
    /// Metric used.
    pub metric: Metric,
    /// `ids[q]` = ids of the k exact nearest neighbors of query `q`,
    /// best-first.
    pub ids: Vec<Vec<u32>>,
}

impl GroundTruth {
    /// Computes exact kNN for every query in parallel.
    pub fn compute(train: &VectorStore, queries: &VectorStore, k: usize, metric: Metric) -> Self {
        let ids: Vec<Vec<u32>> = (0..queries.len() as u32)
            .into_par_iter()
            .map(|q| {
                knn_exact(train, queries.get(q), k, metric)
                    .into_iter()
                    .map(|n| n.id)
                    .collect()
            })
            .collect();
        Self { k, metric, ids }
    }

    /// Number of queries covered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no queries are covered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_store(n: usize) -> VectorStore {
        VectorStore::from_flat(1, (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn matches_single_threaded_exact_search() {
        let train = line_store(100);
        let queries = VectorStore::from_flat(1, vec![3.2, 55.7, 99.0]);
        let gt = GroundTruth::compute(&train, &queries, 3, Metric::Euclidean);
        assert_eq!(gt.ids.len(), 3);
        assert_eq!(gt.ids[0], vec![3, 4, 2]);
        assert_eq!(gt.ids[1], vec![56, 55, 57]);
        assert_eq!(gt.ids[2], vec![99, 98, 97]);
    }

    #[test]
    fn truth_sets_have_k_entries() {
        let train = line_store(50);
        let queries = line_store(5);
        let gt = GroundTruth::compute(&train, &queries, 7, Metric::Euclidean);
        assert!(gt.ids.iter().all(|s| s.len() == 7));
        assert_eq!(gt.k, 7);
        assert_eq!(gt.len(), 5);
        assert!(!gt.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let train = line_store(200);
        let queries = line_store(20);
        let a = GroundTruth::compute(&train, &queries, 5, Metric::Euclidean);
        let b = GroundTruth::compute(&train, &queries, 5, Metric::Euclidean);
        assert_eq!(a, b);
    }
}
