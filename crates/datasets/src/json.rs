//! Minimal JSON reader/writer for the benchmark cache format.
//!
//! The build environment vendors its few dependencies, so rather than
//! carry a full serde stack for one cache file, this module implements
//! exactly the JSON subset [`crate::io`] needs: objects, arrays,
//! strings (with escapes), finite numbers, booleans, and null. Numbers
//! keep their source text so integers up to `u64::MAX` round-trip
//! without a detour through `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text.
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps output deterministic.
    Object(BTreeMap<String, Value>),
}

/// Parse or conversion failure, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the problem was found (0 for
    /// conversion errors on already-parsed values).
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Borrows the object map, or errors.
    pub fn as_object(&self) -> Result<&BTreeMap<String, Value>, JsonError> {
        match self {
            Value::Object(m) => Ok(m),
            other => Err(type_error("object", other)),
        }
    }

    /// Borrows the array elements, or errors.
    pub fn as_array(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(v) => Ok(v),
            other => Err(type_error("array", other)),
        }
    }

    /// Borrows the string contents, or errors.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(type_error("string", other)),
        }
    }

    /// Converts a number to `f64`, or errors.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Value::Number(text) => text.parse().map_err(|_| JsonError {
                message: format!("malformed number `{text}`"),
                offset: 0,
            }),
            other => Err(type_error("number", other)),
        }
    }

    /// Converts a number to `f32`, or errors.
    pub fn as_f32(&self) -> Result<f32, JsonError> {
        self.as_f64().map(|x| x as f32)
    }

    /// Converts an integer number to `u64` exactly, or errors.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Value::Number(text) => text.parse().map_err(|_| JsonError {
                message: format!("expected unsigned integer, got `{text}`"),
                offset: 0,
            }),
            other => Err(type_error("number", other)),
        }
    }

    /// Converts an integer number to `usize` exactly, or errors.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        self.as_u64().map(|x| x as usize)
    }

    /// Converts an integer number to `u32` exactly, or errors.
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        let x = self.as_u64()?;
        u32::try_from(x).map_err(|_| JsonError {
            message: format!("integer {x} out of u32 range"),
            offset: 0,
        })
    }

    /// Looks up a required object field.
    pub fn field(&self, key: &str) -> Result<&Value, JsonError> {
        self.as_object()?.get(key).ok_or_else(|| JsonError {
            message: format!("missing field `{key}`"),
            offset: 0,
        })
    }
}

fn type_error(expected: &str, got: &Value) -> JsonError {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    JsonError {
        message: format!("expected {expected}, found {kind}"),
        offset: 0,
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Serializes a value to compact JSON.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(text) => out.push_str(text),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A finite `f32` as a number value (shortest round-trip form).
///
/// # Panics
/// On non-finite input: JSON has no representation for NaN/inf, and the
/// dataset pipeline never produces them.
pub fn number_f32(x: f32) -> Value {
    assert!(x.is_finite(), "cannot serialize non-finite float {x}");
    Value::Number(format!("{x:?}"))
}

/// A finite `f64` as a number value (shortest round-trip form).
///
/// # Panics
/// On non-finite input, as [`number_f32`].
pub fn number_f64(x: f64) -> Value {
    assert!(x.is_finite(), "cannot serialize non-finite float {x}");
    Value::Number(format!("{x:?}"))
}

/// A `u64` as a number value (exact).
pub fn number_u64(x: u64) -> Value {
    Value::Number(x.to_string())
}

/// A `usize` as a number value (exact).
pub fn number_usize(x: usize) -> Value {
    Value::Number(x.to_string())
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn from_str(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs are not needed by this
                            // format; reject rather than mis-decode.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.error("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        Ok(Value::Number(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in [
            "null", "true", "false", "0", "-17", "3.25", "1e-3", "\"hi\"",
        ] {
            let v = from_str(src).expect("parses");
            assert_eq!(from_str(&to_string(&v)).expect("reparses"), v);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.0f32, -0.0, 1.5, 0.1, f32::MIN_POSITIVE, 1e30, -123.456] {
            let v = number_f32(x);
            let back = from_str(&to_string(&v))
                .expect("parses")
                .as_f32()
                .expect("f32");
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        let seed = u64::MAX - 3;
        let v = number_u64(seed);
        assert_eq!(
            from_str(&to_string(&v))
                .expect("parses")
                .as_u64()
                .expect("u64"),
            seed
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let src = r#"{"a":[1,2,[3]],"b":{"c":"x\ny","d":[]},"e":null}"#;
        let v = from_str(src).expect("parses");
        assert_eq!(from_str(&to_string(&v)).expect("reparses"), v);
        assert_eq!(
            v.field("b")
                .expect("b")
                .field("c")
                .expect("c")
                .as_str()
                .expect("str"),
            "x\ny"
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "quote\" back\\slash \n\t\r control\u{1} unicode\u{e9}";
        let v = Value::String(nasty.to_string());
        assert_eq!(
            from_str(&to_string(&v))
                .expect("parses")
                .as_str()
                .expect("str"),
            nasty
        );
    }

    #[test]
    fn errors_carry_offsets_and_kinds() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("[1,2").is_err());
        assert!(from_str("12 34").is_err());
        let v = from_str("[1]").expect("parses");
        assert!(v.as_object().is_err());
        assert!(v.field("x").is_err());
        assert!(from_str("\"x\"").expect("parses").as_u64().is_err());
        assert!(from_str("1.5").expect("parses").as_u64().is_err());
    }

    #[test]
    fn objects_serialize_deterministically() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), number_usize(2));
        m.insert("a".to_string(), number_usize(1));
        assert_eq!(to_string(&Value::Object(m)), r#"{"a":1,"b":2}"#);
    }
}
