//! Clustered Gaussian-mixture generation.
//!
//! Cluster centers are drawn uniformly on the unit sphere; member vectors
//! add isotropic Gaussian noise of standard deviation
//! `cluster_spread / sqrt(dims)` so the *norm* of the within-cluster offset
//! is ≈ `cluster_spread` regardless of dimensionality (keeping the
//! clusteredness — and therefore index effectiveness — comparable across
//! the 100-d GloVe and 4096-d AlexNet stand-ins). Cluster sizes follow a
//! Zipf-like skew to mimic the imbalanced topic/content distribution of
//! real corpora. Queries are drawn from the same mixture, i.e. they look
//! like held-out corpus entries, as in the paper's train/test split.

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use ssam_knn::VectorStore;

use crate::spec::DatasetSpec;

/// A generated dataset: the database and its held-out queries.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// Database ("train") vectors.
    pub train: VectorStore,
    /// Query ("test") vectors.
    pub queries: VectorStore,
    /// Cluster assignment of each train row (for diagnostics/tests).
    pub train_clusters: Vec<u32>,
}

/// Generates a dataset per `spec`. Deterministic given `spec.seed`.
pub fn generate(spec: &DatasetSpec) -> GeneratedData {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let dims = spec.dims;
    let clusters = spec.clusters.max(1);

    // Cluster centers on the unit sphere.
    let mut centers = VectorStore::with_capacity(dims, clusters);
    for _ in 0..clusters {
        centers.push(&random_unit_vector(dims, &mut rng));
    }

    // Zipf-like cluster weights: w_c ∝ 1 / (c+1)^imbalance.
    let weights: Vec<f64> = (0..clusters)
        .map(|c| 1.0 / ((c + 1) as f64).powf(spec.imbalance))
        .collect();
    let total_w: f64 = weights.iter().sum();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total_w;
            Some(*acc)
        })
        .collect();

    let sigma = spec.cluster_spread / (dims as f32).sqrt();
    let sample = |rng: &mut StdRng| -> (Vec<f32>, u32) {
        let u: f64 = rng.random_range(0.0..1.0);
        let c = cumulative.partition_point(|&x| x < u).min(clusters - 1);
        let center = centers.get(c as u32);
        let v: Vec<f32> = center.iter().map(|&x| x + sigma * gaussian(rng)).collect();
        (v, c as u32)
    };

    let mut train = VectorStore::with_capacity(dims, spec.train);
    let mut train_clusters = Vec::with_capacity(spec.train);
    for _ in 0..spec.train {
        let (v, c) = sample(&mut rng);
        train.push(&v);
        train_clusters.push(c);
    }

    let mut queries = VectorStore::with_capacity(dims, spec.queries);
    for _ in 0..spec.queries {
        let (v, _) = sample(&mut rng);
        queries.push(&v);
    }

    GeneratedData {
        train,
        queries,
        train_clusters,
    }
}

/// Uniform direction on the unit sphere (normalized Gaussian vector).
fn random_unit_vector(dims: usize, rng: &mut StdRng) -> Vec<f32> {
    loop {
        let v: Vec<f32> = (0..dims).map(|_| gaussian(rng)).collect();
        let norm = v.iter().map(|&x| x * x).sum::<f32>().sqrt();
        if norm > 1e-6 {
            return v.into_iter().map(|x| x / norm).collect();
        }
    }
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssam_knn::distance::{euclidean, norm_sq};

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "tiny".to_string(),
            train: 500,
            queries: 50,
            dims: 16,
            k: 5,
            clusters: 10,
            cluster_spread: 0.2,
            imbalance: 1.0,
            seed: 42,
        }
    }

    #[test]
    fn shapes_match_spec() {
        let d = generate(&tiny_spec());
        assert_eq!(d.train.len(), 500);
        assert_eq!(d.queries.len(), 50);
        assert_eq!(d.train.dims(), 16);
        assert_eq!(d.train_clusters.len(), 500);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&tiny_spec());
        let b = generate(&tiny_spec());
        assert_eq!(a.train, b.train);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = tiny_spec();
        s2.seed = 43;
        assert_ne!(generate(&tiny_spec()).train, generate(&s2).train);
    }

    #[test]
    fn vectors_have_unit_scale() {
        let d = generate(&tiny_spec());
        // Centers are unit norm and spread is small, so norms cluster near 1.
        let mean_norm: f32 =
            d.train.iter().map(|(_, v)| norm_sq(v).sqrt()).sum::<f32>() / d.train.len() as f32;
        assert!((0.8..1.3).contains(&mean_norm), "mean norm {mean_norm}");
    }

    #[test]
    fn same_cluster_rows_are_closer_than_random_pairs() {
        let d = generate(&tiny_spec());
        // Mean intra-cluster vs inter-cluster distance over a sample.
        let (mut intra, mut inter) = (Vec::new(), Vec::new());
        for i in 0..100u32 {
            for j in (i + 1)..100u32 {
                let dist = euclidean(d.train.get(i), d.train.get(j));
                if d.train_clusters[i as usize] == d.train_clusters[j as usize] {
                    intra.push(dist);
                } else {
                    inter.push(dist);
                }
            }
        }
        assert!(!intra.is_empty() && !inter.is_empty());
        let m = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            m(&intra) < 0.5 * m(&inter),
            "intra {} not well below inter {}",
            m(&intra),
            m(&inter)
        );
    }

    #[test]
    fn imbalance_skews_cluster_sizes() {
        let mut spec = tiny_spec();
        spec.imbalance = 1.5;
        spec.train = 2000;
        let d = generate(&spec);
        let mut counts = vec![0usize; spec.clusters];
        for &c in &d.train_clusters {
            counts[c as usize] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        let min = *counts.iter().min().expect("non-empty");
        assert!(max > 4 * min.max(1), "max {max} min {min}");
    }

    #[test]
    fn zero_imbalance_is_roughly_uniform() {
        let mut spec = tiny_spec();
        spec.imbalance = 0.0;
        spec.train = 5000;
        let d = generate(&spec);
        let mut counts = vec![0usize; spec.clusters];
        for &c in &d.train_clusters {
            counts[c as usize] += 1;
        }
        let expected = spec.train / spec.clusters;
        assert!(counts.iter().all(|&c| c > expected / 3 && c < expected * 3));
    }
}
