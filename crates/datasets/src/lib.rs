//! # ssam-datasets — synthetic stand-ins for the paper's evaluation datasets
//!
//! The paper (Section II-B) evaluates on three real-world datasets:
//!
//! | dataset | contents                                   | size   | dims | k  |
//! |---------|--------------------------------------------|--------|------|----|
//! | GloVe   | Twitter word embeddings                    | 1.2 M  | 100  | 6  |
//! | GIST    | GIST image descriptors                     | 1 M    | 960  | 10 |
//! | AlexNet | AlexNet features of 1 M Flickr images      | 1 M    | 4096 | 16 |
//!
//! The original corpora are not redistributable here, so this crate
//! generates **clustered Gaussian-mixture stand-ins** with matched
//! dimensionality and (scalable) cardinality. Real descriptor datasets are
//! strongly clustered — that clusteredness is what gives indexing
//! structures their accuracy/throughput trade-off — so the generator
//! controls cluster count, spread, and imbalance. Every platform
//! (CPU baseline, SSAM simulator, analytical models) consumes the *same*
//! generated data, so cross-platform comparisons are unaffected by the
//! substitution (see DESIGN.md §2).
//!
//! Each dataset ships as a [`benchmark::Benchmark`]: a train store, a
//! held-out query set ("test set of 1000 vectors used as the queries when
//! measuring application accuracy"), the paper's `k`, and exact ground
//! truth computed by multithreaded linear search.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmark;
pub mod generator;
pub mod ground_truth;
pub mod io;
pub mod json;
pub mod spec;
pub mod texmex;

pub use benchmark::Benchmark;
pub use spec::{DatasetSpec, PaperDataset};
