//! TEXMEX `.fvecs` / `.bvecs` / `.ivecs` readers and writers.
//!
//! The paper's real datasets ship in the INRIA TEXMEX corpus formats
//! (GIST1M is distributed as `.fvecs`; ANN_SIFT1B as `.bvecs`): each
//! vector is stored as a little-endian `i32` dimensionality header
//! followed by `dim` components (`f32`, `u8`, or `i32` respectively).
//! These loaders let users with the actual corpora run every experiment
//! on the real data instead of the synthetic stand-ins.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use ssam_knn::VectorStore;

/// Errors from TEXMEX parsing.
#[derive(Debug)]
pub enum TexmexError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Header or payload malformed.
    Format(String),
}

impl std::fmt::Display for TexmexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TexmexError::Io(e) => write!(f, "i/o error: {e}"),
            TexmexError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for TexmexError {}

impl From<io::Error> for TexmexError {
    fn from(e: io::Error) -> Self {
        TexmexError::Io(e)
    }
}

fn read_dim(r: &mut impl Read) -> Result<Option<usize>, TexmexError> {
    let mut head = [0u8; 4];
    match r.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let dim = i32::from_le_bytes(head);
    if dim <= 0 || dim > 1_000_000 {
        return Err(TexmexError::Format(format!(
            "implausible dimensionality {dim}"
        )));
    }
    Ok(Some(dim as usize))
}

/// Reads an `.fvecs` file into a [`VectorStore`], optionally capped at
/// `limit` vectors.
pub fn read_fvecs(path: &Path, limit: Option<usize>) -> Result<VectorStore, TexmexError> {
    let mut r = BufReader::new(File::open(path)?);
    read_fvecs_from(&mut r, limit)
}

/// Reads `.fvecs` records from any reader.
pub fn read_fvecs_from(
    r: &mut impl Read,
    limit: Option<usize>,
) -> Result<VectorStore, TexmexError> {
    let mut store: Option<VectorStore> = None;
    let mut buf = Vec::new();
    let cap = limit.unwrap_or(usize::MAX);
    let mut count = 0usize;
    while count < cap {
        let Some(dim) = read_dim(r)? else { break };
        if let Some(s) = &store {
            if s.dims() != dim {
                return Err(TexmexError::Format(format!(
                    "inconsistent dimensionality: {} then {dim}",
                    s.dims()
                )));
            }
        }
        buf.resize(dim * 4, 0u8);
        r.read_exact(&mut buf)?;
        let v: Vec<f32> = buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        store.get_or_insert_with(|| VectorStore::new(dim)).push(&v);
        count += 1;
    }
    store.ok_or_else(|| TexmexError::Format("empty file".into()))
}

/// Reads a `.bvecs` file (unsigned byte components, e.g. SIFT1B) into a
/// float [`VectorStore`].
pub fn read_bvecs(path: &Path, limit: Option<usize>) -> Result<VectorStore, TexmexError> {
    let mut r = BufReader::new(File::open(path)?);
    read_bvecs_from(&mut r, limit)
}

/// Reads `.bvecs` records from any reader.
pub fn read_bvecs_from(
    r: &mut impl Read,
    limit: Option<usize>,
) -> Result<VectorStore, TexmexError> {
    let mut store: Option<VectorStore> = None;
    let mut buf = Vec::new();
    let cap = limit.unwrap_or(usize::MAX);
    let mut count = 0usize;
    while count < cap {
        let Some(dim) = read_dim(r)? else { break };
        if let Some(s) = &store {
            if s.dims() != dim {
                return Err(TexmexError::Format(format!(
                    "inconsistent dimensionality: {} then {dim}",
                    s.dims()
                )));
            }
        }
        buf.resize(dim, 0u8);
        r.read_exact(&mut buf)?;
        let v: Vec<f32> = buf.iter().map(|&b| b as f32).collect();
        store.get_or_insert_with(|| VectorStore::new(dim)).push(&v);
        count += 1;
    }
    store.ok_or_else(|| TexmexError::Format("empty file".into()))
}

/// Reads an `.ivecs` file (integer components — TEXMEX ground-truth
/// neighbor ids) as one `Vec<i32>` row per record.
pub fn read_ivecs_from(
    r: &mut impl Read,
    limit: Option<usize>,
) -> Result<Vec<Vec<i32>>, TexmexError> {
    let mut rows = Vec::new();
    let mut buf = Vec::new();
    let cap = limit.unwrap_or(usize::MAX);
    while rows.len() < cap {
        let Some(dim) = read_dim(r)? else { break };
        buf.resize(dim * 4, 0u8);
        r.read_exact(&mut buf)?;
        rows.push(
            buf.chunks_exact(4)
                .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        );
    }
    if rows.is_empty() {
        return Err(TexmexError::Format("empty file".into()));
    }
    Ok(rows)
}

/// Writes a [`VectorStore`] as `.fvecs`.
pub fn write_fvecs(store: &VectorStore, path: &Path) -> Result<(), TexmexError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_fvecs_to(store, &mut w)
}

/// Writes `.fvecs` records to any writer.
pub fn write_fvecs_to(store: &VectorStore, w: &mut impl Write) -> Result<(), TexmexError> {
    for (_, v) in store.iter() {
        w.write_all(&(store.dims() as i32).to_le_bytes())?;
        for &x in v {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_store() -> VectorStore {
        let mut s = VectorStore::new(3);
        s.push(&[1.0, -2.5, 3.25]);
        s.push(&[0.0, 0.5, -0.125]);
        s
    }

    #[test]
    fn fvecs_round_trip() {
        let s = sample_store();
        let mut bytes = Vec::new();
        write_fvecs_to(&s, &mut bytes).expect("writes");
        // 2 records × (4 + 3·4) bytes
        assert_eq!(bytes.len(), 2 * 16);
        let back = read_fvecs_from(&mut Cursor::new(bytes), None).expect("reads");
        assert_eq!(back, s);
    }

    #[test]
    fn limit_caps_records() {
        let s = sample_store();
        let mut bytes = Vec::new();
        write_fvecs_to(&s, &mut bytes).expect("writes");
        let back = read_fvecs_from(&mut Cursor::new(bytes), Some(1)).expect("reads");
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn bvecs_reads_bytes_as_floats() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&4i32.to_le_bytes());
        bytes.extend_from_slice(&[0u8, 127, 200, 255]);
        let s = read_bvecs_from(&mut Cursor::new(bytes), None).expect("reads");
        assert_eq!(s.get(0), &[0.0, 127.0, 200.0, 255.0]);
    }

    #[test]
    fn ivecs_reads_ground_truth_rows() {
        let mut bytes = Vec::new();
        for row in [[1i32, 5, 9], [2, 6, 10]] {
            bytes.extend_from_slice(&3i32.to_le_bytes());
            for x in row {
                bytes.extend_from_slice(&x.to_le_bytes());
            }
        }
        let rows = read_ivecs_from(&mut Cursor::new(bytes), None).expect("reads");
        assert_eq!(rows, vec![vec![1, 5, 9], vec![2, 6, 10]]);
    }

    #[test]
    fn inconsistent_dims_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2i32.to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        bytes.extend_from_slice(&2.0f32.to_le_bytes());
        bytes.extend_from_slice(&3i32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        let e = read_fvecs_from(&mut Cursor::new(bytes), None).expect_err("must fail");
        assert!(matches!(e, TexmexError::Format(_)));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&4i32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 7]); // needs 16
        assert!(read_fvecs_from(&mut Cursor::new(bytes), None).is_err());
    }

    #[test]
    fn implausible_header_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(-5i32).to_le_bytes());
        let e = read_fvecs_from(&mut Cursor::new(bytes), None).expect_err("must fail");
        assert!(matches!(e, TexmexError::Format(_)));
    }

    #[test]
    fn empty_file_rejected() {
        assert!(read_fvecs_from(&mut Cursor::new(Vec::new()), None).is_err());
    }

    #[test]
    fn file_round_trip() {
        let s = sample_store();
        let dir = std::env::temp_dir().join("ssam_texmex_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("sample.fvecs");
        write_fvecs(&s, &path).expect("writes");
        let back = read_fvecs(&path, None).expect("reads");
        assert_eq!(back, s);
        std::fs::remove_file(&path).ok();
    }
}
