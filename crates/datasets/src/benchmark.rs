//! Benchmark bundles: dataset + queries + ground truth, ready for any
//! platform.

use ssam_knn::{Metric, VectorStore};

use crate::generator::{generate, GeneratedData};
use crate::ground_truth::GroundTruth;
use crate::spec::{DatasetSpec, PaperDataset};

/// Everything an experiment needs for one dataset: the database, the query
/// batch, the paper's `k`, and exact ground truth under the paper's
/// canonical (Euclidean) metric.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The spec this benchmark was generated from.
    pub spec: DatasetSpec,
    /// Database vectors.
    pub train: VectorStore,
    /// Query vectors.
    pub queries: VectorStore,
    /// Exact Euclidean ground truth at `spec.k`.
    pub ground_truth: GroundTruth,
}

impl Benchmark {
    /// Generates a benchmark from a spec (data + ground truth).
    pub fn from_spec(spec: DatasetSpec) -> Self {
        let GeneratedData { train, queries, .. } = generate(&spec);
        let ground_truth = GroundTruth::compute(&train, &queries, spec.k, Metric::Euclidean);
        Self {
            spec,
            train,
            queries,
            ground_truth,
        }
    }

    /// Generates one of the paper's datasets at reduced `scale`
    /// (see [`DatasetSpec::scaled`]).
    pub fn paper(dataset: PaperDataset, scale: f64) -> Self {
        Self::from_spec(dataset.scaled_spec(scale))
    }

    /// The paper's per-dataset neighbor count.
    pub fn k(&self) -> usize {
        self.spec.k
    }

    /// Iterate `(query_index, query_vector, exact_ids)` triples.
    pub fn iter_queries(&self) -> impl Iterator<Item = (usize, &[f32], &[u32])> {
        self.queries
            .iter()
            .map(move |(q, v)| (q as usize, v, self.ground_truth.ids[q as usize].as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssam_knn::linear::knn_exact;

    #[test]
    fn paper_benchmark_at_tiny_scale_is_consistent() {
        let b = Benchmark::paper(PaperDataset::GloVe, 0.001);
        assert_eq!(b.train.dims(), 100);
        assert_eq!(b.k(), 6);
        assert_eq!(b.ground_truth.ids.len(), b.queries.len());
        assert!(b.ground_truth.ids.iter().all(|s| s.len() == 6));
    }

    #[test]
    fn ground_truth_matches_fresh_exact_search() {
        let b = Benchmark::paper(PaperDataset::GloVe, 0.001);
        let (qi, qv, gt) = b.iter_queries().next().expect("has queries");
        assert_eq!(qi, 0);
        let fresh: Vec<u32> = knn_exact(&b.train, qv, b.k(), Metric::Euclidean)
            .into_iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(gt, fresh.as_slice());
    }

    #[test]
    fn iter_queries_covers_all() {
        let b = Benchmark::paper(PaperDataset::GloVe, 0.001);
        assert_eq!(b.iter_queries().count(), b.queries.len());
    }
}
