//! Dataset specifications matching the paper's workload parameters.

/// The three evaluation datasets of Section II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// GloVe: 1.2 M Twitter word embeddings, 100-d, k = 6.
    GloVe,
    /// GIST: 1 M image descriptors, 960-d, k = 10.
    Gist,
    /// AlexNet: 1 M Flickr fc7 features, 4096-d, k = 16.
    AlexNet,
}

impl PaperDataset {
    /// All three datasets in paper order.
    pub const ALL: [PaperDataset; 3] = [
        PaperDataset::GloVe,
        PaperDataset::Gist,
        PaperDataset::AlexNet,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::GloVe => "GloVe",
            PaperDataset::Gist => "GIST",
            PaperDataset::AlexNet => "AlexNet",
        }
    }

    /// Full specification at paper scale.
    pub fn spec(self) -> DatasetSpec {
        match self {
            PaperDataset::GloVe => DatasetSpec {
                name: "GloVe".to_string(),
                train: 1_200_000,
                queries: 1000,
                dims: 100,
                k: 6,
                clusters: 2000,
                cluster_spread: 0.35,
                imbalance: 1.1,
                seed: 0x0006_C07E,
            },
            PaperDataset::Gist => DatasetSpec {
                name: "GIST".to_string(),
                train: 1_000_000,
                queries: 1000,
                dims: 960,
                k: 10,
                clusters: 1500,
                cluster_spread: 0.30,
                imbalance: 1.0,
                seed: 0x6157,
            },
            PaperDataset::AlexNet => DatasetSpec {
                name: "AlexNet".to_string(),
                train: 1_000_000,
                queries: 1000,
                dims: 4096,
                k: 16,
                clusters: 1000,
                cluster_spread: 0.25,
                imbalance: 0.9,
                seed: 0xA1E7,
            },
        }
    }

    /// Specification scaled down for tractable experiments: train size and
    /// cluster count shrink by `scale`; dims and k stay at paper values
    /// (they define the workload's arithmetic intensity). The query count
    /// shrinks with the square root of scale so small runs still average
    /// over a meaningful batch.
    pub fn scaled_spec(self, scale: f64) -> DatasetSpec {
        self.spec().scaled(scale)
    }
}

/// Full parameterization of one synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Display name.
    pub name: String,
    /// Database (train) cardinality.
    pub train: usize,
    /// Held-out query count.
    pub queries: usize,
    /// Feature dimensionality.
    pub dims: usize,
    /// Neighbors per query (the paper's per-dataset k).
    pub k: usize,
    /// Gaussian mixture component count.
    pub clusters: usize,
    /// Within-cluster standard deviation (cluster centers live on the unit
    /// sphere scaled to norm ≈ 1, so spread controls cluster overlap).
    pub cluster_spread: f32,
    /// Zipf-like cluster-size skew exponent (0 = uniform sizes).
    pub imbalance: f64,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Scales train size, query count, and cluster count; clamps to sane
    /// minima so tiny scales stay well-formed.
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        self.train = ((self.train as f64 * scale) as usize).max(256);
        self.queries = ((self.queries as f64 * scale.sqrt()) as usize).max(20);
        self.clusters = ((self.clusters as f64 * scale) as usize).max(8);
        self
    }

    /// Database payload in bytes (f32 elements).
    pub fn train_bytes(&self) -> u64 {
        (self.train * self.dims * std::mem::size_of::<f32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_parameters_match_table() {
        let g = PaperDataset::GloVe.spec();
        assert_eq!((g.train, g.dims, g.k), (1_200_000, 100, 6));
        let gist = PaperDataset::Gist.spec();
        assert_eq!((gist.train, gist.dims, gist.k), (1_000_000, 960, 10));
        let a = PaperDataset::AlexNet.spec();
        assert_eq!((a.train, a.dims, a.k), (1_000_000, 4096, 16));
        assert_eq!(g.queries, 1000);
    }

    #[test]
    fn scaling_shrinks_cardinality_not_dims() {
        let s = PaperDataset::Gist.scaled_spec(0.01);
        assert_eq!(s.dims, 960);
        assert_eq!(s.k, 10);
        assert_eq!(s.train, 10_000);
        assert!(s.queries >= 20);
        assert!(s.clusters >= 8);
    }

    #[test]
    fn scaling_clamps_minima() {
        let s = PaperDataset::GloVe.scaled_spec(1e-6);
        assert!(s.train >= 256);
        assert!(s.queries >= 20);
        assert!(s.clusters >= 8);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn scale_above_one_rejected() {
        let _ = PaperDataset::GloVe.scaled_spec(2.0);
    }

    #[test]
    fn train_bytes_counts_f32_payload() {
        let s = PaperDataset::GloVe.spec();
        assert_eq!(s.train_bytes(), 1_200_000 * 100 * 4);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = PaperDataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["GloVe", "GIST", "AlexNet"]);
    }
}
