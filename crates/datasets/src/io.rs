//! Dataset (de)serialization.
//!
//! Benchmarks regenerate deterministically from their spec, but large
//! scales take minutes to produce ground truth for, so experiments can
//! cache generated bundles on disk as JSON. (JSON is slow but dependency-
//! free; caching is optional and off the hot path.)

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};
use ssam_knn::VectorStore;

use crate::benchmark::Benchmark;
use crate::ground_truth::GroundTruth;
use crate::spec::DatasetSpec;

/// Serializable image of a [`Benchmark`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkFile {
    /// Generating spec.
    pub spec: DatasetSpec,
    /// Database vectors.
    pub train: VectorStore,
    /// Query vectors.
    pub queries: VectorStore,
    /// Exact ground truth.
    pub ground_truth: GroundTruth,
}

impl From<Benchmark> for BenchmarkFile {
    fn from(b: Benchmark) -> Self {
        Self { spec: b.spec, train: b.train, queries: b.queries, ground_truth: b.ground_truth }
    }
}

impl From<BenchmarkFile> for Benchmark {
    fn from(f: BenchmarkFile) -> Self {
        Benchmark {
            spec: f.spec,
            train: f.train,
            queries: f.queries,
            ground_truth: f.ground_truth,
        }
    }
}

/// Writes a benchmark to `path` as JSON.
pub fn save_benchmark(b: &Benchmark, path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let image = BenchmarkFile {
        spec: b.spec.clone(),
        train: b.train.clone(),
        queries: b.queries.clone(),
        ground_truth: b.ground_truth.clone(),
    };
    let json = serde_json::to_string(&image)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    w.write_all(json.as_bytes())
}

/// Reads a benchmark previously written by [`save_benchmark`].
pub fn load_benchmark(path: &Path) -> std::io::Result<Benchmark> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let mut buf = String::new();
    r.read_to_string(&mut buf)?;
    let image: BenchmarkFile = serde_json::from_str(&buf)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(image.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PaperDataset;

    #[test]
    fn save_load_round_trip() {
        let b = Benchmark::paper(PaperDataset::GloVe, 0.0005);
        let dir = std::env::temp_dir().join("ssam_datasets_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("glove_tiny.json");
        save_benchmark(&b, &path).expect("save");
        let loaded = load_benchmark(&path).expect("load");
        assert_eq!(loaded.train, b.train);
        assert_eq!(loaded.queries, b.queries);
        assert_eq!(loaded.ground_truth, b.ground_truth);
        assert_eq!(loaded.spec, b.spec);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_benchmark(Path::new("/nonexistent/nope.json")).is_err());
    }
}
