//! Dataset (de)serialization.
//!
//! Benchmarks regenerate deterministically from their spec, but large
//! scales take minutes to produce ground truth for, so experiments can
//! cache generated bundles on disk as JSON. (JSON is slow but dependency-
//! free; caching is optional and off the hot path.) The encoding is
//! hand-rolled over [`crate::json`] — see that module for why.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use ssam_knn::{Metric, VectorStore};

use crate::benchmark::Benchmark;
use crate::ground_truth::GroundTruth;
use crate::json::{self, JsonError, Value};
use crate::spec::DatasetSpec;

/// Serializable image of a [`Benchmark`].
#[derive(Debug, Clone)]
pub struct BenchmarkFile {
    /// Generating spec.
    pub spec: DatasetSpec,
    /// Database vectors.
    pub train: VectorStore,
    /// Query vectors.
    pub queries: VectorStore,
    /// Exact ground truth.
    pub ground_truth: GroundTruth,
}

impl From<Benchmark> for BenchmarkFile {
    fn from(b: Benchmark) -> Self {
        Self {
            spec: b.spec,
            train: b.train,
            queries: b.queries,
            ground_truth: b.ground_truth,
        }
    }
}

impl From<BenchmarkFile> for Benchmark {
    fn from(f: BenchmarkFile) -> Self {
        Benchmark {
            spec: f.spec,
            train: f.train,
            queries: f.queries,
            ground_truth: f.ground_truth,
        }
    }
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn encode_store(store: &VectorStore) -> Value {
    object(vec![
        ("dims", json::number_usize(store.dims())),
        (
            "data",
            Value::Array(
                store
                    .as_flat()
                    .iter()
                    .map(|&x| json::number_f32(x))
                    .collect(),
            ),
        ),
    ])
}

fn decode_store(v: &Value) -> Result<VectorStore, JsonError> {
    let dims = v.field("dims")?.as_usize()?;
    let data = v
        .field("data")?
        .as_array()?
        .iter()
        .map(Value::as_f32)
        .collect::<Result<Vec<f32>, _>>()?;
    if dims == 0 || !data.len().is_multiple_of(dims) {
        return Err(JsonError {
            message: format!(
                "vector store: {} floats is not a multiple of dims {dims}",
                data.len()
            ),
            offset: 0,
        });
    }
    Ok(VectorStore::from_flat(dims, data))
}

fn metric_name(metric: Metric) -> &'static str {
    match metric {
        Metric::Euclidean => "euclidean",
        Metric::Manhattan => "manhattan",
        Metric::Cosine => "cosine",
        Metric::ChiSquared => "chi_squared",
        Metric::Jaccard => "jaccard",
    }
}

fn metric_from_name(name: &str) -> Result<Metric, JsonError> {
    Ok(match name {
        "euclidean" => Metric::Euclidean,
        "manhattan" => Metric::Manhattan,
        "cosine" => Metric::Cosine,
        "chi_squared" => Metric::ChiSquared,
        "jaccard" => Metric::Jaccard,
        other => {
            return Err(JsonError {
                message: format!("unknown metric `{other}`"),
                offset: 0,
            });
        }
    })
}

fn encode(image: &BenchmarkFile) -> Value {
    let spec = &image.spec;
    let truth = &image.ground_truth;
    object(vec![
        (
            "spec",
            object(vec![
                ("name", Value::String(spec.name.clone())),
                ("train", json::number_usize(spec.train)),
                ("queries", json::number_usize(spec.queries)),
                ("dims", json::number_usize(spec.dims)),
                ("k", json::number_usize(spec.k)),
                ("clusters", json::number_usize(spec.clusters)),
                ("cluster_spread", json::number_f32(spec.cluster_spread)),
                ("imbalance", json::number_f64(spec.imbalance)),
                ("seed", json::number_u64(spec.seed)),
            ]),
        ),
        ("train", encode_store(&image.train)),
        ("queries", encode_store(&image.queries)),
        (
            "ground_truth",
            object(vec![
                ("k", json::number_usize(truth.k)),
                (
                    "metric",
                    Value::String(metric_name(truth.metric).to_string()),
                ),
                (
                    "ids",
                    Value::Array(
                        truth
                            .ids
                            .iter()
                            .map(|row| {
                                Value::Array(
                                    row.iter().map(|&id| json::number_u64(id as u64)).collect(),
                                )
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

fn decode(doc: &Value) -> Result<BenchmarkFile, JsonError> {
    let spec = doc.field("spec")?;
    let truth = doc.field("ground_truth")?;
    let ids = truth
        .field("ids")?
        .as_array()?
        .iter()
        .map(|row| {
            row.as_array()?
                .iter()
                .map(Value::as_u32)
                .collect::<Result<Vec<u32>, _>>()
        })
        .collect::<Result<Vec<Vec<u32>>, JsonError>>()?;
    Ok(BenchmarkFile {
        spec: DatasetSpec {
            name: spec.field("name")?.as_str()?.to_string(),
            train: spec.field("train")?.as_usize()?,
            queries: spec.field("queries")?.as_usize()?,
            dims: spec.field("dims")?.as_usize()?,
            k: spec.field("k")?.as_usize()?,
            clusters: spec.field("clusters")?.as_usize()?,
            cluster_spread: spec.field("cluster_spread")?.as_f32()?,
            imbalance: spec.field("imbalance")?.as_f64()?,
            seed: spec.field("seed")?.as_u64()?,
        },
        train: decode_store(doc.field("train")?)?,
        queries: decode_store(doc.field("queries")?)?,
        ground_truth: GroundTruth {
            k: truth.field("k")?.as_usize()?,
            metric: metric_from_name(truth.field("metric")?.as_str()?)?,
            ids,
        },
    })
}

/// Writes a benchmark to `path` as JSON.
pub fn save_benchmark(b: &Benchmark, path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let image = BenchmarkFile {
        spec: b.spec.clone(),
        train: b.train.clone(),
        queries: b.queries.clone(),
        ground_truth: b.ground_truth.clone(),
    };
    w.write_all(json::to_string(&encode(&image)).as_bytes())
}

/// Reads a benchmark previously written by [`save_benchmark`].
pub fn load_benchmark(path: &Path) -> std::io::Result<Benchmark> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let mut buf = String::new();
    r.read_to_string(&mut buf)?;
    let doc = json::from_str(&buf)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let image =
        decode(&doc).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(image.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PaperDataset;

    #[test]
    fn save_load_round_trip() {
        let b = Benchmark::paper(PaperDataset::GloVe, 0.0005);
        let dir = std::env::temp_dir().join("ssam_datasets_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("glove_tiny.json");
        save_benchmark(&b, &path).expect("save");
        let loaded = load_benchmark(&path).expect("load");
        assert_eq!(loaded.train, b.train);
        assert_eq!(loaded.queries, b.queries);
        assert_eq!(loaded.ground_truth, b.ground_truth);
        assert_eq!(loaded.spec, b.spec);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_benchmark(Path::new("/nonexistent/nope.json")).is_err());
    }

    #[test]
    fn load_rejects_malformed_documents() {
        let dir = std::env::temp_dir().join("ssam_datasets_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        for (name, text) in [
            ("not_json.json", "not json at all"),
            ("wrong_shape.json", r#"{"spec":{}}"#),
            (
                "bad_metric.json",
                r#"{"spec":{"name":"x","train":1,"queries":1,"dims":1,"k":1,"clusters":1,"cluster_spread":0.1,"imbalance":1.0,"seed":1},"train":{"dims":1,"data":[1.0]},"queries":{"dims":1,"data":[1.0]},"ground_truth":{"k":1,"metric":"warp","ids":[[0]]}}"#,
            ),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, text).expect("write");
            assert!(load_benchmark(&path).is_err(), "{name} should fail");
            std::fs::remove_file(&path).ok();
        }
    }
}
