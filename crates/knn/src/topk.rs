//! Bounded top-k accumulation — the software analogue of the paper's
//! hardware priority-queue unit.
//!
//! The SSAM design (Section III-C) keeps the k best candidates in a
//! 16-entry shift-register priority queue. On the CPU baseline the same
//! role is played by a bounded binary max-heap: insertion is `O(log k)` and
//! most candidates are rejected with a single comparison against the
//! current worst, which is exactly the cost profile the paper's software-
//! versus-hardware queue ablation measures.

use std::collections::BinaryHeap;

/// One search result: a database identifier and its distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row id within the [`crate::VectorStore`].
    pub id: u32,
    /// Distance under the active metric (squared L2 for Euclidean).
    pub dist: f32,
}

impl Neighbor {
    /// Convenience constructor.
    pub fn new(id: u32, dist: f32) -> Self {
        Self { id, dist }
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    /// Orders by distance, breaking ties by id so results are deterministic
    /// across platforms (the simulator and CPU baseline must agree exactly).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded max-heap that retains the `k` smallest-distance neighbors seen.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates an accumulator for the `k` nearest neighbors.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of neighbors currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no neighbor has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Distance of the current k-th best, or `f32::INFINITY` while the
    /// accumulator is not yet full. Candidates at or beyond this bound
    /// cannot enter the result set — indexes use it to prune.
    pub fn bound(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map_or(f32::INFINITY, |n| n.dist)
        }
    }

    /// Offers a candidate; returns `true` if it was retained.
    pub fn offer(&mut self, id: u32, dist: f32) -> bool {
        let cand = Neighbor::new(id, dist);
        if self.heap.len() < self.k {
            self.heap.push(cand);
            return true;
        }
        // Full: replace the current worst only if strictly better under the
        // deterministic (dist, id) order.
        match self.heap.peek() {
            Some(worst) if cand < *worst => {
                self.heap.pop();
                self.heap.push(cand);
                true
            }
            _ => false,
        }
    }

    /// Consumes the accumulator and returns neighbors sorted best-first.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

/// Exact top-k by full sort — the semantic reference used in tests.
pub fn topk_by_sort(mut cands: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    cands.sort_unstable();
    cands.truncate(k);
    cands
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_k_smallest() {
        let mut t = TopK::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            t.offer(i as u32, *d);
        }
        let out = t.into_sorted();
        let dists: Vec<f32> = out.iter().map(|n| n.dist).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn bound_is_infinite_until_full() {
        let mut t = TopK::new(2);
        assert_eq!(t.bound(), f32::INFINITY);
        t.offer(0, 1.0);
        assert_eq!(t.bound(), f32::INFINITY);
        t.offer(1, 2.0);
        assert_eq!(t.bound(), 2.0);
        t.offer(2, 0.5);
        assert_eq!(t.bound(), 1.0);
    }

    #[test]
    fn offer_reports_retention() {
        let mut t = TopK::new(1);
        assert!(t.offer(0, 5.0));
        assert!(!t.offer(1, 9.0));
        assert!(t.offer(2, 1.0));
    }

    #[test]
    fn ties_break_by_lower_id() {
        let mut t = TopK::new(2);
        t.offer(7, 1.0);
        t.offer(3, 1.0);
        t.offer(5, 1.0);
        let out = t.into_sorted();
        assert_eq!(out[0].id, 3);
        assert_eq!(out[1].id, 5);
    }

    #[test]
    fn equal_distance_equal_id_is_not_retained_when_full() {
        let mut t = TopK::new(1);
        t.offer(0, 1.0);
        assert!(!t.offer(0, 1.0));
    }

    #[test]
    fn matches_sort_reference_on_fixed_input() {
        let cands: Vec<Neighbor> = (0..100)
            .map(|i| Neighbor::new(i, ((i * 37) % 19) as f32))
            .collect();
        let mut t = TopK::new(10);
        for c in &cands {
            t.offer(c.id, c.dist);
        }
        assert_eq!(t.into_sorted(), topk_by_sort(cands, 10));
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut t = TopK::new(10);
        t.offer(0, 2.0);
        t.offer(1, 1.0);
        let out = t.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }

    #[test]
    fn handles_nan_free_infinities() {
        let mut t = TopK::new(2);
        t.offer(0, f32::INFINITY);
        t.offer(1, 1.0);
        t.offer(2, f32::INFINITY);
        let out = t.into_sorted();
        assert_eq!(out[0].id, 1);
        assert_eq!(out[1].dist, f32::INFINITY);
    }

    mod adversarial {
        use super::*;
        use proptest::prelude::*;

        /// Distances drawn from a tiny palette (plus ±∞) so ties and
        /// duplicates are the common case, not the 1-in-2³² case.
        fn dist_strategy() -> impl Strategy<Value = f32> {
            prop_oneof![
                (0u8..5).prop_map(|d| d as f32),
                Just(f32::INFINITY),
                Just(f32::NEG_INFINITY),
                Just(0.0f32),
                Just(-0.0f32),
            ]
        }

        proptest! {
            /// `TopK` must agree with the full-sort reference on streams
            /// stuffed with duplicate ids, tied distances, ±INFINITY, and
            /// k both below and at/above n — the exact inputs where an
            /// incremental bounded heap can drift from the sorted truth.
            #[test]
            fn matches_sort_reference_on_adversarial_streams(
                cands in prop::collection::vec((0u32..8, dist_strategy()), 0..60),
                k in 1usize..70,
            ) {
                let neighbors: Vec<Neighbor> =
                    cands.iter().map(|&(id, d)| Neighbor::new(id, d)).collect();
                let mut t = TopK::new(k);
                for n in &neighbors {
                    t.offer(n.id, n.dist);
                }
                let got = t.into_sorted();
                let want = topk_by_sort(neighbors, k);
                // Compare exactly, including -0.0 vs +0.0 (total_cmp order).
                prop_assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    prop_assert_eq!(g.id, w.id);
                    prop_assert_eq!(g.dist.to_bits(), w.dist.to_bits());
                }
            }

            /// The pruning bound is exact: every offer strictly below the
            /// bound must be retained, every offer at or above it (when
            /// distances differ) must be rejected.
            #[test]
            fn bound_admits_exactly_the_improving_candidates(
                cands in prop::collection::vec((0u32..8, dist_strategy()), 1..40),
                k in 1usize..10,
            ) {
                let mut t = TopK::new(k);
                for &(id, d) in &cands {
                    let bound = t.bound();
                    let retained = t.offer(id, d);
                    if d < bound {
                        prop_assert!(retained, "cand below bound rejected");
                    }
                    if d > bound {
                        prop_assert!(!retained, "cand above bound retained");
                    }
                }
            }
        }
    }
}
