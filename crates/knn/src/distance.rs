//! Distance metrics (paper Section II-D).
//!
//! The canonical metric is Euclidean distance; the paper additionally
//! evaluates Manhattan distance, cosine similarity (as a distance:
//! `1 - cos(a, b)`), and Hamming distance over binarized codes (see
//! [`crate::binary`]). Chi-squared and Jaccard appear in the paper's list of
//! alternative metrics and are provided for completeness.
//!
//! For kNN ranking purposes squared Euclidean distance is order-equivalent
//! to Euclidean distance and saves a square root per candidate, which is
//! what both our CPU baseline and the SSAM kernels compute — mirroring the
//! paper's accelerator, whose distance pipeline has no sqrt unit.
//!
//! # The f32 reduction-order contract
//!
//! Every float reduction in this module follows ONE canonical evaluation
//! order, defined in [`crate::simd`]:
//!
//! * terms accumulate into **eight independent lane partials** — lane `j`
//!   holds the sum of terms `j, j+8, j+16, …` in increasing index order
//!   (a trailing partial chunk contributes element `i` to lane `i`);
//! * lane partials collapse through the **fixed pairwise tree**
//!   `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
//!
//! IEEE-754 f32 arithmetic is deterministic for a fixed evaluation order,
//! so the autovectorized chunk loop and the scalar `i % 8` fallback are
//! **bit-identical** (`to_bits()` equality, proven by proptests here and
//! in `crates/knn/src/simd.rs`), and equivalence suites across the
//! workspace may compare exact bits instead of epsilons. Contrast with
//! the device pipeline: the SSAM kernels accumulate in Q16.16 fixed point
//! (wrapping i32, per-lane then sequential lane reduction — see
//! `ssam_core::kernels::linear::reduce_lanes`), so device distances are
//! compared to these float references only through the quantization
//! model, never bit-to-bit. The analytic fast-path executor replicates
//! the *device* Q16.16 order, not this float order, precisely so it can
//! be bit-identical to the cycle simulator.

use crate::simd::{fold_terms, F32x8};

/// Identifies a distance metric; used to select kernels on every platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Euclidean (L2) distance. Ranked via the squared form.
    Euclidean,
    /// Manhattan (L1) distance.
    Manhattan,
    /// Cosine distance `1 - cos(a,b)`.
    Cosine,
    /// Chi-squared histogram distance (assumes non-negative components).
    ChiSquared,
    /// Jaccard distance over non-negative weighted sets.
    Jaccard,
}

impl Metric {
    /// All metrics the float pipeline supports.
    pub const ALL: [Metric; 5] = [
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Cosine,
        Metric::ChiSquared,
        Metric::Jaccard,
    ];

    /// Evaluates the metric on two equal-length vectors.
    ///
    /// For `Euclidean` this returns the *squared* distance (rank-preserving;
    /// see module docs).
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn eval(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::Euclidean => squared_euclidean(a, b),
            Metric::Manhattan => manhattan(a, b),
            Metric::Cosine => cosine_distance(a, b),
            Metric::ChiSquared => chi_squared(a, b),
            Metric::Jaccard => jaccard_distance(a, b),
        }
    }

    /// Short lowercase name used in experiment CSV output.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Euclidean => "euclidean",
            Metric::Manhattan => "manhattan",
            Metric::Cosine => "cosine",
            Metric::ChiSquared => "chi2",
            Metric::Jaccard => "jaccard",
        }
    }
}

#[inline]
fn check_len(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "distance operands must have equal length");
}

/// Squared Euclidean distance `Σ (a_i - b_i)^2`, canonical 8-lane order.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    fold_terms(a, b, |x, y| {
        let d = x - y;
        d * d
    })
    .hsum()
}

/// Euclidean distance `sqrt(Σ (a_i - b_i)^2)`.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance `Σ |a_i - b_i|`, canonical 8-lane order.
#[inline]
pub fn manhattan(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    fold_terms(a, b, |x, y| (x - y).abs()).hsum()
}

/// Dot product `Σ a_i b_i`, canonical 8-lane order.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    fold_terms(a, b, |x, y| x * y).hsum()
}

/// Squared L2 norm, canonical 8-lane order.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    fold_terms(a, a, |x, _| x * x).hsum()
}

/// Cosine similarity `(Σ a_i b_i) / sqrt(Σ a_i² · Σ b_i²)`.
///
/// Returns 0 when either vector is all-zero (no direction defined).
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    let denom = norm_sq(a) * norm_sq(b);
    if denom <= 0.0 {
        return 0.0;
    }
    dot(a, b) / denom.sqrt()
}

/// Cosine distance `1 - cosine_similarity`.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine_similarity(a, b)
}

/// Chi-squared distance `Σ (a_i - b_i)² / (a_i + b_i)` over non-negative
/// histograms; terms with a zero denominator contribute zero. Canonical
/// 8-lane order.
#[inline]
pub fn chi_squared(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    fold_terms(a, b, |x, y| {
        let mut t = [0.0f32; 8];
        let mut j = 0;
        while j < 8 {
            let s = x.0[j] + y.0[j];
            if s > 0.0 {
                let d = x.0[j] - y.0[j];
                t[j] = d * d / s;
            }
            j += 1;
        }
        F32x8(t)
    })
    .hsum()
}

/// Weighted Jaccard distance `1 - Σ min(a_i,b_i) / Σ max(a_i,b_i)` over
/// non-negative vectors; two all-zero vectors have distance 0. Both the
/// numerator and denominator sums follow the canonical 8-lane order.
#[inline]
pub fn jaccard_distance(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    let num = fold_terms(a, b, |x, y| x.min(y)).hsum();
    let den = fold_terms(a, b, |x, y| x.max(y)).hsum();
    if den <= 0.0 {
        0.0
    } else {
        1.0 - num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::fold_terms_scalar;

    const EPS: f32 = 1e-5;

    #[test]
    fn squared_euclidean_matches_hand_computation() {
        assert!((squared_euclidean(&[1.0, 2.0], &[4.0, 6.0]) - 25.0).abs() < EPS);
    }

    #[test]
    fn euclidean_is_sqrt_of_squared() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -1.0, 2.0];
        assert!((euclidean(&a, &b) - squared_euclidean(&a, &b).sqrt()).abs() < EPS);
    }

    #[test]
    fn identity_of_indiscernibles() {
        let a: [f32; 3] = [3.0, -1.0, 0.25];
        for m in Metric::ALL {
            // Jaccard/Chi² assume non-negative inputs; use abs values there.
            let v: Vec<f32> = a.iter().map(|x| x.abs()).collect();
            assert!(m.eval(&v, &v).abs() < EPS, "{m:?} self-distance nonzero");
        }
    }

    #[test]
    fn symmetry() {
        let a = [0.5, 1.5, 2.5, 0.0];
        let b = [1.0, 0.0, 3.0, 2.0];
        for m in Metric::ALL {
            assert!(
                (m.eval(&a, &b) - m.eval(&b, &a)).abs() < EPS,
                "{m:?} not symmetric"
            );
        }
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        assert!((manhattan(&[1.0, -2.0], &[-1.0, 1.0]) - 5.0).abs() < EPS);
    }

    #[test]
    fn cosine_similarity_of_parallel_vectors_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < EPS);
        assert!(cosine_distance(&a, &b).abs() < EPS);
    }

    #[test]
    fn cosine_similarity_of_orthogonal_vectors_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 5.0]).abs() < EPS);
    }

    #[test]
    fn cosine_of_zero_vector_is_defined() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn chi_squared_ignores_zero_denominator_terms() {
        // dims where both are zero contribute nothing
        assert!((chi_squared(&[0.0, 1.0], &[0.0, 3.0]) - 1.0).abs() < EPS);
    }

    #[test]
    fn jaccard_distance_of_disjoint_supports_is_one() {
        assert!((jaccard_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < EPS);
    }

    #[test]
    fn jaccard_of_zero_vectors_is_zero() {
        assert_eq!(jaccard_distance(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = squared_euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::ALL.len());
    }

    /// The reduction-order contract: vector kernels equal the scalar
    /// `i % 8` fallback bit-for-bit on every metric, at lengths that
    /// straddle chunk/tail boundaries.
    #[test]
    fn kernels_are_bit_identical_to_scalar_fallback() {
        let gen = |n: usize, seed: u64| -> Vec<f32> {
            let mut x = seed | 1;
            (0..n)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 40) as i32 % 4000) as f32 / 777.0
                })
                .collect()
        };
        for n in [1usize, 7, 8, 9, 16, 25, 64, 100, 321] {
            let a = gen(n, 3 + n as u64);
            let b = gen(n, 17 + n as u64);
            let se = fold_terms_scalar(&a, &b, |x, y| {
                let d = x - y;
                d * d
            })
            .hsum();
            assert_eq!(
                squared_euclidean(&a, &b).to_bits(),
                se.to_bits(),
                "l2 n={n}"
            );
            let l1 = fold_terms_scalar(&a, &b, |x, y| (x - y).abs()).hsum();
            assert_eq!(manhattan(&a, &b).to_bits(), l1.to_bits(), "l1 n={n}");
            let dp = fold_terms_scalar(&a, &b, |x, y| x * y).hsum();
            assert_eq!(dot(&a, &b).to_bits(), dp.to_bits(), "dot n={n}");
        }
    }
}
