//! Distance metrics (paper Section II-D).
//!
//! The canonical metric is Euclidean distance; the paper additionally
//! evaluates Manhattan distance, cosine similarity (as a distance:
//! `1 - cos(a, b)`), and Hamming distance over binarized codes (see
//! [`crate::binary`]). Chi-squared and Jaccard appear in the paper's list of
//! alternative metrics and are provided for completeness.
//!
//! For kNN ranking purposes squared Euclidean distance is order-equivalent
//! to Euclidean distance and saves a square root per candidate, which is
//! what both our CPU baseline and the SSAM kernels compute — mirroring the
//! paper's accelerator, whose distance pipeline has no sqrt unit.

/// Identifies a distance metric; used to select kernels on every platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Euclidean (L2) distance. Ranked via the squared form.
    Euclidean,
    /// Manhattan (L1) distance.
    Manhattan,
    /// Cosine distance `1 - cos(a,b)`.
    Cosine,
    /// Chi-squared histogram distance (assumes non-negative components).
    ChiSquared,
    /// Jaccard distance over non-negative weighted sets.
    Jaccard,
}

impl Metric {
    /// All metrics the float pipeline supports.
    pub const ALL: [Metric; 5] = [
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Cosine,
        Metric::ChiSquared,
        Metric::Jaccard,
    ];

    /// Evaluates the metric on two equal-length vectors.
    ///
    /// For `Euclidean` this returns the *squared* distance (rank-preserving;
    /// see module docs).
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn eval(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::Euclidean => squared_euclidean(a, b),
            Metric::Manhattan => manhattan(a, b),
            Metric::Cosine => cosine_distance(a, b),
            Metric::ChiSquared => chi_squared(a, b),
            Metric::Jaccard => jaccard_distance(a, b),
        }
    }

    /// Short lowercase name used in experiment CSV output.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Euclidean => "euclidean",
            Metric::Manhattan => "manhattan",
            Metric::Cosine => "cosine",
            Metric::ChiSquared => "chi2",
            Metric::Jaccard => "jaccard",
        }
    }
}

#[inline]
fn check_len(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "distance operands must have equal length");
}

/// Squared Euclidean distance `Σ (a_i - b_i)^2`.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance `sqrt(Σ (a_i - b_i)^2)`.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance `Σ |a_i - b_i|`.
#[inline]
pub fn manhattan(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
}

/// Dot product `Σ a_i b_i`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Squared L2 norm.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    a.iter().map(|&x| x * x).sum()
}

/// Cosine similarity `(Σ a_i b_i) / sqrt(Σ a_i² · Σ b_i²)`.
///
/// Returns 0 when either vector is all-zero (no direction defined).
#[inline]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    let denom = norm_sq(a) * norm_sq(b);
    if denom <= 0.0 {
        return 0.0;
    }
    dot(a, b) / denom.sqrt()
}

/// Cosine distance `1 - cosine_similarity`.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine_similarity(a, b)
}

/// Chi-squared distance `Σ (a_i - b_i)² / (a_i + b_i)` over non-negative
/// histograms; terms with a zero denominator contribute zero.
#[inline]
pub fn chi_squared(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let s = x + y;
            if s > 0.0 {
                let d = x - y;
                d * d / s
            } else {
                0.0
            }
        })
        .sum()
}

/// Weighted Jaccard distance `1 - Σ min(a_i,b_i) / Σ max(a_i,b_i)` over
/// non-negative vectors; two all-zero vectors have distance 0.
#[inline]
pub fn jaccard_distance(a: &[f32], b: &[f32]) -> f32 {
    check_len(a, b);
    let (mut num, mut den) = (0.0f32, 0.0f32);
    for (&x, &y) in a.iter().zip(b) {
        num += x.min(y);
        den += x.max(y);
    }
    if den <= 0.0 {
        0.0
    } else {
        1.0 - num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f32 = 1e-5;

    #[test]
    fn squared_euclidean_matches_hand_computation() {
        assert!((squared_euclidean(&[1.0, 2.0], &[4.0, 6.0]) - 25.0).abs() < EPS);
    }

    #[test]
    fn euclidean_is_sqrt_of_squared() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -1.0, 2.0];
        assert!((euclidean(&a, &b) - squared_euclidean(&a, &b).sqrt()).abs() < EPS);
    }

    #[test]
    fn identity_of_indiscernibles() {
        let a: [f32; 3] = [3.0, -1.0, 0.25];
        for m in Metric::ALL {
            // Jaccard/Chi² assume non-negative inputs; use abs values there.
            let v: Vec<f32> = a.iter().map(|x| x.abs()).collect();
            assert!(m.eval(&v, &v).abs() < EPS, "{m:?} self-distance nonzero");
        }
    }

    #[test]
    fn symmetry() {
        let a = [0.5, 1.5, 2.5, 0.0];
        let b = [1.0, 0.0, 3.0, 2.0];
        for m in Metric::ALL {
            assert!(
                (m.eval(&a, &b) - m.eval(&b, &a)).abs() < EPS,
                "{m:?} not symmetric"
            );
        }
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        assert!((manhattan(&[1.0, -2.0], &[-1.0, 1.0]) - 5.0).abs() < EPS);
    }

    #[test]
    fn cosine_similarity_of_parallel_vectors_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < EPS);
        assert!(cosine_distance(&a, &b).abs() < EPS);
    }

    #[test]
    fn cosine_similarity_of_orthogonal_vectors_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 5.0]).abs() < EPS);
    }

    #[test]
    fn cosine_of_zero_vector_is_defined() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn chi_squared_ignores_zero_denominator_terms() {
        // dims where both are zero contribute nothing
        assert!((chi_squared(&[0.0, 1.0], &[0.0, 3.0]) - 1.0).abs() < EPS);
    }

    #[test]
    fn jaccard_distance_of_disjoint_supports_is_one() {
        assert!((jaccard_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < EPS);
    }

    #[test]
    fn jaccard_of_zero_vectors_is_zero() {
        assert_eq!(jaccard_distance(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = squared_euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::ALL.len());
    }
}
