//! Lloyd's k-means with k-means++ seeding.
//!
//! Used two ways, matching the paper: as the recursive partitioner inside
//! the hierarchical k-means index (Section II-C), and as the index-
//! construction workload offloaded to SSAM in Section VI-B ("treating
//! cluster centroids as the dataset and streaming the dataset in as kNN
//! queries to determine the closest centroid").

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

use crate::distance::squared_euclidean;
use crate::vecstore::VectorStore;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids, row-major (`k` rows of `dims`).
    pub centroids: VectorStore,
    /// Cluster assignment per input row (indices into `centroids`).
    pub assignments: Vec<u32>,
    /// Iterations executed before convergence or cap.
    pub iterations: usize,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

/// k-means configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMeansParams {
    /// Number of clusters.
    pub k: usize,
    /// Iteration cap for Lloyd's loop.
    pub max_iters: usize,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        Self {
            k: 8,
            max_iters: 25,
            seed: 0x55A4D,
        }
    }
}

/// Runs k-means over the rows of `store` listed in `ids` (all rows if
/// `ids` is `None`).
///
/// Degenerate inputs are handled gracefully: if there are fewer distinct
/// points than `k`, the result simply has some empty clusters re-seeded to
/// existing points.
///
/// # Panics
/// Panics if `params.k == 0` or the selection is empty.
pub fn kmeans(store: &VectorStore, ids: Option<&[u32]>, params: KMeansParams) -> KMeansResult {
    assert!(params.k > 0, "k must be positive");
    let owned_ids: Vec<u32>;
    let ids: &[u32] = match ids {
        Some(s) => s,
        None => {
            owned_ids = (0..store.len() as u32).collect();
            &owned_ids
        }
    };
    assert!(!ids.is_empty(), "cannot cluster an empty selection");

    let dims = store.dims();
    let k = params.k.min(ids.len());
    let mut rng = StdRng::seed_from_u64(params.seed);

    let mut centroids = seed_plus_plus(store, ids, k, &mut rng);
    let mut assignments = vec![0u32; ids.len()];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..params.max_iters {
        iterations = it + 1;
        // Assignment step.
        let mut new_inertia = 0.0f64;
        for (slot, &id) in ids.iter().enumerate() {
            let v = store.get(id);
            let (best, d) = nearest_centroid(&centroids, v);
            assignments[slot] = best;
            new_inertia += d as f64;
        }
        // Update step.
        let mut sums = vec![0.0f64; k * dims];
        let mut counts = vec![0usize; k];
        for (slot, &id) in ids.iter().enumerate() {
            let c = assignments[slot] as usize;
            counts[c] += 1;
            for (acc, &x) in sums[c * dims..(c + 1) * dims].iter_mut().zip(store.get(id)) {
                *acc += x as f64;
            }
        }
        let mut next = VectorStore::with_capacity(dims, k);
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster to a random member point.
                let id = ids[rng.random_range(0..ids.len())];
                next.push(store.get(id));
            } else {
                let row: Vec<f32> = sums[c * dims..(c + 1) * dims]
                    .iter()
                    .map(|&s| (s / counts[c] as f64) as f32)
                    .collect();
                next.push(&row);
            }
        }
        centroids = next;

        // Converged when inertia stops improving meaningfully.
        if (inertia - new_inertia).abs() <= 1e-9 * inertia.max(1.0) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }

    KMeansResult {
        centroids,
        assignments,
        iterations,
        inertia,
    }
}

/// Index and squared distance of the centroid closest to `v`.
pub fn nearest_centroid(centroids: &VectorStore, v: &[f32]) -> (u32, f32) {
    let mut best = 0u32;
    let mut best_d = f32::INFINITY;
    for (c, cv) in centroids.iter() {
        let d = squared_euclidean(v, cv);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centroid uniform, subsequent centroids sampled
/// proportionally to squared distance from the nearest chosen centroid.
fn seed_plus_plus(store: &VectorStore, ids: &[u32], k: usize, rng: &mut StdRng) -> VectorStore {
    let dims = store.dims();
    let mut centroids = VectorStore::with_capacity(dims, k);
    let first = ids[rng.random_range(0..ids.len())];
    centroids.push(store.get(first));

    let mut d2: Vec<f32> = ids
        .iter()
        .map(|&id| squared_euclidean(store.get(id), centroids.get(0)))
        .collect();

    while centroids.len() < k {
        let total: f64 = d2.iter().map(|&d| d as f64).sum();
        let chosen_slot = if total <= 0.0 {
            // All remaining points coincide with chosen centroids.
            rng.random_range(0..ids.len())
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut slot = 0;
            for (i, &d) in d2.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    slot = i;
                    break;
                }
            }
            slot
        };
        let cid = centroids.push(store.get(ids[chosen_slot]));
        for (i, &id) in ids.iter().enumerate() {
            let d = squared_euclidean(store.get(id), centroids.get(cid));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs in 2-D.
    fn blobs() -> VectorStore {
        let mut s = VectorStore::new(2);
        for i in 0..20 {
            let jitter = (i % 5) as f32 * 0.01;
            s.push(&[0.0 + jitter, 0.0 + jitter]);
            s.push(&[10.0 + jitter, 10.0 + jitter]);
        }
        s
    }

    #[test]
    fn separates_two_blobs() {
        let s = blobs();
        let r = kmeans(
            &s,
            None,
            KMeansParams {
                k: 2,
                max_iters: 50,
                seed: 1,
            },
        );
        // All even rows (blob A) share a cluster, all odd rows (blob B) the other.
        let a = r.assignments[0];
        let b = r.assignments[1];
        assert_ne!(a, b);
        for (i, &c) in r.assignments.iter().enumerate() {
            assert_eq!(c, if i % 2 == 0 { a } else { b });
        }
    }

    #[test]
    fn centroids_land_near_blob_means() {
        let s = blobs();
        let r = kmeans(
            &s,
            None,
            KMeansParams {
                k: 2,
                max_iters: 50,
                seed: 7,
            },
        );
        let mut near_origin = 0;
        let mut near_ten = 0;
        for (_, c) in r.centroids.iter() {
            if c[0] < 1.0 {
                near_origin += 1;
            }
            if c[0] > 9.0 {
                near_ten += 1;
            }
        }
        assert_eq!(near_origin, 1);
        assert_eq!(near_ten, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = blobs();
        let p = KMeansParams {
            k: 3,
            max_iters: 10,
            seed: 42,
        };
        let r1 = kmeans(&s, None, p);
        let r2 = kmeans(&s, None, p);
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.centroids, r2.centroids);
    }

    #[test]
    fn k_clamped_to_population() {
        let s = VectorStore::from_flat(1, vec![1.0, 2.0]);
        let r = kmeans(
            &s,
            None,
            KMeansParams {
                k: 10,
                max_iters: 5,
                seed: 0,
            },
        );
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn subset_clustering_ignores_other_rows() {
        let s = blobs();
        // Cluster only blob A rows; centroid must be near the origin.
        let ids: Vec<u32> = (0..s.len() as u32).filter(|i| i % 2 == 0).collect();
        let r = kmeans(
            &s,
            Some(&ids),
            KMeansParams {
                k: 1,
                max_iters: 10,
                seed: 0,
            },
        );
        assert!(r.centroids.get(0)[0] < 1.0);
        assert_eq!(r.assignments.len(), ids.len());
    }

    #[test]
    fn inertia_is_finite_and_nonnegative() {
        let s = blobs();
        let r = kmeans(&s, None, KMeansParams::default());
        assert!(r.inertia.is_finite());
        assert!(r.inertia >= 0.0);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let s = VectorStore::from_flat(2, vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let r = kmeans(
            &s,
            None,
            KMeansParams {
                k: 3,
                max_iters: 5,
                seed: 0,
            },
        );
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn nearest_centroid_picks_minimum() {
        let mut c = VectorStore::new(1);
        c.push(&[0.0]);
        c.push(&[5.0]);
        c.push(&[9.0]);
        assert_eq!(nearest_centroid(&c, &[6.0]).0, 1);
    }
}
