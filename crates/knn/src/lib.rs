//! # ssam-knn — k-nearest-neighbor algorithm substrate
//!
//! This crate implements the similarity-search algorithms characterized in
//! Section II of *Application Codesign of Near-Data Processing for Similarity
//! Search* (Lee et al., IPDPS 2018):
//!
//! * exact linear k-nearest-neighbor search ([`linear`]),
//! * randomized kd-tree forests with backtracking ([`kdtree`]),
//! * hierarchical k-means trees ([`kmeans_tree`]),
//! * hyperplane multi-probe locality-sensitive hashing ([`mplsh`]),
//! * the distance metrics of Section II-D ([`distance`]), including
//!   fixed-point ([`fixed`]) and binarized Hamming-space ([`binary`])
//!   representations.
//!
//! All approximate indexes implement the [`index::SearchIndex`] trait and
//! expose a *search budget* knob (leaves visited / probes used) which is the
//! x-axis generator for the paper's throughput-versus-accuracy curves
//! (Fig. 2 and Fig. 7). Search accuracy is measured with [`recall`]
//! (`|S_E ∩ S_A| / |S_E|`, Section II-C).
//!
//! The implementations here are the *reference* (single-threaded) versions
//! used both directly by the characterization experiments and as the
//! semantic ground truth the SSAM accelerator simulator is validated
//! against. Multicore (rayon) variants live in `ssam-baselines`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod distance;
pub mod fixed;
pub mod index;
pub mod kdtree;
pub mod kmeans;
pub mod kmeans_tree;
pub mod linear;
pub mod mplsh;
pub mod recall;
pub mod simd;
pub mod topk;
pub mod vecstore;

pub use distance::Metric;
pub use index::{SearchBudget, SearchIndex, SearchStats};
pub use topk::Neighbor;
pub use vecstore::VectorStore;
