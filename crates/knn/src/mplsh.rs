//! Hyperplane multi-probe locality-sensitive hashing (HP-MPLSH).
//!
//! Reproduces the index the paper benchmarks with FALCONN (Section II-C):
//! each hash table cuts the space with `hash_bits` random hyperplanes
//! (the paper uses 20); a vector's bucket is the sign pattern of its dot
//! products with those hyperplanes. Hash functions intentionally collide
//! similar vectors into the same bucket. To improve accuracy, *multi-probe*
//! querying perturbs the query's hash in increasing order of perturbation
//! cost (Lv et al., VLDB'07) to visit additional "close by" buckets — the
//! probe count is the Fig. 2 throughput/accuracy knob.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

use crate::distance::{dot, Metric};
use crate::index::{SearchBudget, SearchIndex, SearchStats};
use crate::topk::{Neighbor, TopK};
use crate::vecstore::VectorStore;

/// Construction parameters for [`MultiProbeLsh`].
#[derive(Debug, Clone, Copy)]
pub struct MplshParams {
    /// Independent hash tables.
    pub tables: usize,
    /// Hyperplane cuts (hash bits) per table; the paper sets 20. Max 32.
    pub hash_bits: usize,
    /// RNG seed for hyperplane sampling.
    pub seed: u64,
}

impl Default for MplshParams {
    fn default() -> Self {
        Self {
            tables: 4,
            hash_bits: 20,
            seed: 0x004C_5348,
        }
    }
}

/// One hash table: its hyperplanes and bucket map.
#[derive(Debug, Clone)]
struct Table {
    /// `hash_bits` hyperplane normals, row-major.
    planes: VectorStore,
    buckets: HashMap<u32, Vec<u32>>,
}

/// Hyperplane multi-probe LSH index.
#[derive(Debug, Clone)]
pub struct MultiProbeLsh {
    tables: Vec<Table>,
    params: MplshParams,
    metric: Metric,
    dims: usize,
}

impl MultiProbeLsh {
    /// Builds the index over every row of `store`.
    ///
    /// # Panics
    /// Panics if the store is empty, `hash_bits` is 0 or > 32, or
    /// `tables == 0`.
    pub fn build(store: &VectorStore, metric: Metric, params: MplshParams) -> Self {
        assert!(!store.is_empty(), "cannot index an empty store");
        assert!(params.tables > 0, "need at least one hash table");
        assert!(
            (1..=32).contains(&params.hash_bits),
            "hash_bits must be in 1..=32"
        );
        let dims = store.dims();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let tables = (0..params.tables)
            .map(|_| {
                let mut planes = VectorStore::with_capacity(dims, params.hash_bits);
                for _ in 0..params.hash_bits {
                    // Gaussian normals give rotation-invariant hyperplanes.
                    let v: Vec<f32> = (0..dims)
                        .map(|_| {
                            let g: f64 = sample_standard_normal(&mut rng);
                            g as f32
                        })
                        .collect();
                    planes.push(&v);
                }
                let mut buckets: HashMap<u32, Vec<u32>> = HashMap::new();
                for (id, v) in store.iter() {
                    let code = hash_code(&planes, v).0;
                    buckets.entry(code).or_default().push(id);
                }
                Table { planes, buckets }
            })
            .collect();
        Self {
            tables,
            params,
            metric,
            dims,
        }
    }

    /// Number of non-empty buckets summed over tables.
    pub fn num_buckets(&self) -> usize {
        self.tables.iter().map(|t| t.buckets.len()).sum()
    }

    /// Construction parameters.
    pub fn params(&self) -> MplshParams {
        self.params
    }
}

/// Box–Muller standard normal from a uniform RNG.
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Hashes `v`: bit `i` set iff `dot(v, plane_i) >= 0`. Also returns the raw
/// activations (needed for probe ordering).
fn hash_code(planes: &VectorStore, v: &[f32]) -> (u32, Vec<f32>) {
    let mut code = 0u32;
    let mut acts = Vec::with_capacity(planes.len());
    for (i, p) in planes.iter() {
        let z = dot(v, p);
        acts.push(z);
        if z >= 0.0 {
            code |= 1 << i;
        }
    }
    (code, acts)
}

/// A perturbation set in the Lv et al. generation order: flip the query
/// bits at `positions[..len]` of the confidence-sorted bit order.
#[derive(Debug, Clone, PartialEq)]
struct Probe {
    score: f32,
    /// Indices into the sorted-by-|activation| bit order; the *last* index
    /// is the expansion point for successor generation.
    set: Vec<u32>,
}
impl Eq for Probe {}
impl Ord for Probe {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| self.set.cmp(&other.set))
    }
}
impl PartialOrd for Probe {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Generates the first `n` probe codes for a query in increasing
/// perturbation-cost order. The first probe is always the unperturbed code.
///
/// Cost of flipping bit `b` is `activation(b)^2` — the squared margin to
/// that hyperplane — so low-confidence bits are flipped first, exactly the
/// "small perturbations to the hash result" of the paper.
fn probe_sequence(code: u32, acts: &[f32], n: usize) -> Vec<u32> {
    let bits = acts.len();
    let mut out = Vec::with_capacity(n);
    out.push(code);
    if n <= 1 || bits == 0 {
        return out;
    }

    // Bit indices sorted by |activation| ascending (cheapest flips first).
    let mut order: Vec<u32> = (0..bits as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        acts[a as usize]
            .abs()
            .total_cmp(&acts[b as usize].abs())
            .then(a.cmp(&b))
    });
    let cost = |sorted_pos: u32| -> f32 {
        let bit = order[sorted_pos as usize];
        let z = acts[bit as usize];
        z * z
    };

    // Heap-based generation (Lv et al.): successors of a set whose last
    // element is `j` are shift (j→j+1) and expand (append j+1).
    let mut heap: BinaryHeap<Reverse<Probe>> = BinaryHeap::new();
    heap.push(Reverse(Probe {
        score: cost(0),
        set: vec![0],
    }));
    while out.len() < n {
        let Some(Reverse(p)) = heap.pop() else { break };
        // Emit this perturbation.
        let mut perturbed = code;
        for &pos in &p.set {
            perturbed ^= 1 << order[pos as usize];
        }
        out.push(perturbed);

        let last = *p.set.last().expect("probe sets are non-empty");
        if (last + 1) < bits as u32 {
            // Shift.
            let mut shifted = p.set.clone();
            *shifted.last_mut().expect("non-empty") = last + 1;
            let score = p.score - cost(last) + cost(last + 1);
            heap.push(Reverse(Probe {
                score,
                set: shifted,
            }));
            // Expand.
            let mut expanded = p.set;
            expanded.push(last + 1);
            let score = p.score + cost(last + 1);
            heap.push(Reverse(Probe {
                score,
                set: expanded,
            }));
        }
    }
    out
}

impl SearchIndex for MultiProbeLsh {
    fn search_with_stats(
        &self,
        store: &VectorStore,
        query: &[f32],
        k: usize,
        budget: SearchBudget,
    ) -> (Vec<Neighbor>, SearchStats) {
        assert_eq!(query.len(), self.dims, "query dimensionality mismatch");
        let mut top = TopK::new(k);
        let mut stats = SearchStats::default();
        let mut seen: HashSet<u32> = HashSet::new();
        // Cap the probe explosion at the table's full bucket count.
        let probes = budget.checks.min(1usize << self.params.hash_bits.min(24));

        for table in &self.tables {
            let (code, acts) = hash_code(&table.planes, query);
            // Each hyperplane dot product is an interior (hash) step.
            stats.interior_steps += self.params.hash_bits;
            for probe in probe_sequence(code, &acts, probes) {
                stats.leaves_visited += 1;
                if let Some(bucket) = table.buckets.get(&probe) {
                    for &id in bucket {
                        if seen.insert(id) {
                            stats.distance_evals += 1;
                            top.offer(id, self.metric.eval(query, store.get(id)));
                        }
                    }
                }
            }
        }
        (top.into_sorted(), stats)
    }

    fn family(&self) -> &'static str {
        "mplsh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::knn_exact;
    use crate::recall::recall;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    fn small_params() -> MplshParams {
        // Few bits so buckets are well-populated at test scale.
        MplshParams {
            tables: 6,
            hash_bits: 8,
            seed: 77,
        }
    }

    #[test]
    fn probe_sequence_starts_with_base_code() {
        let acts = vec![0.5, -0.2, 1.0];
        let seq = probe_sequence(0b101, &acts, 4);
        assert_eq!(seq[0], 0b101);
    }

    #[test]
    fn probe_sequence_has_no_duplicates() {
        let acts = vec![0.5, -0.2, 1.0, -0.1, 0.05];
        let seq = probe_sequence(0b10101, &acts, 20);
        let mut s = seq.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), seq.len());
    }

    #[test]
    fn probe_sequence_flips_cheapest_bit_first() {
        // |activations|: bit2 is cheapest (0.05)
        let acts = vec![0.5, -0.2, 0.05];
        let seq = probe_sequence(0b000, &acts, 2);
        assert_eq!(
            seq[1], 0b100,
            "second probe should flip the lowest-margin bit"
        );
    }

    #[test]
    fn probe_scores_are_nondecreasing() {
        let acts = vec![0.9, -0.4, 0.1, 0.7];
        let full = probe_sequence(0, &acts, 16);
        let score = |p: u32| -> f32 {
            (0..4)
                .filter(|b| p & (1 << b) != 0)
                .map(|b| acts[b] * acts[b])
                .sum()
        };
        for w in full.windows(2) {
            assert!(score(w[0]) <= score(w[1]) + 1e-6);
        }
    }

    #[test]
    fn probe_sequence_enumerates_all_subsets_eventually() {
        let acts = vec![0.3, 0.6, 0.9];
        let seq = probe_sequence(0, &acts, 8);
        assert_eq!(seq.len(), 8); // 2^3 distinct perturbations of 3 bits
    }

    #[test]
    fn self_query_is_found_with_one_probe() {
        let s = random_store(200, 8, 1);
        let idx = MultiProbeLsh::build(&s, Metric::Euclidean, small_params());
        // The query *is* row 0, so it hashes to its own bucket in every table.
        let q: Vec<f32> = s.get(0).to_vec();
        let out = idx.search(&s, &q, 1, SearchBudget::checks(1));
        assert_eq!(out[0].id, 0);
        assert_eq!(out[0].dist, 0.0);
    }

    #[test]
    fn recall_grows_with_probe_budget() {
        let s = random_store(600, 10, 2);
        let idx = MultiProbeLsh::build(&s, Metric::Euclidean, small_params());
        let mut rng = StdRng::seed_from_u64(3);
        let (mut low, mut high) = (0.0, 0.0);
        for _ in 0..25 {
            let q: Vec<f32> = (0..10).map(|_| rng.random_range(-1.0..1.0)).collect();
            let exact = knn_exact(&s, &q, 5, Metric::Euclidean);
            low += recall(&exact, &idx.search(&s, &q, 5, SearchBudget::checks(1)));
            high += recall(&exact, &idx.search(&s, &q, 5, SearchBudget::checks(64)));
        }
        assert!(high >= low, "high-probe recall {high} < low-probe {low}");
    }

    #[test]
    fn every_row_is_bucketed_once_per_table() {
        let s = random_store(150, 6, 4);
        let idx = MultiProbeLsh::build(&s, Metric::Euclidean, small_params());
        for table in &idx.tables {
            let total: usize = table.buckets.values().map(|b| b.len()).sum();
            assert_eq!(total, s.len());
        }
    }

    #[test]
    fn stats_count_probes_across_tables() {
        let s = random_store(100, 6, 5);
        let p = small_params();
        let idx = MultiProbeLsh::build(&s, Metric::Euclidean, p);
        let (_, stats) = idx.search_with_stats(&s, &[0.0; 6], 3, SearchBudget::checks(4));
        assert_eq!(stats.leaves_visited, 4 * p.tables);
        assert_eq!(stats.interior_steps, p.hash_bits * p.tables);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = random_store(120, 5, 6);
        let i1 = MultiProbeLsh::build(&s, Metric::Euclidean, small_params());
        let i2 = MultiProbeLsh::build(&s, Metric::Euclidean, small_params());
        let q = [0.1f32; 5];
        assert_eq!(
            i1.search(&s, &q, 4, SearchBudget::checks(8)),
            i2.search(&s, &q, 4, SearchBudget::checks(8))
        );
    }

    #[test]
    fn results_have_unique_ids() {
        let s = random_store(200, 6, 7);
        let idx = MultiProbeLsh::build(&s, Metric::Euclidean, small_params());
        let out = idx.search(&s, &[0.0; 6], 10, SearchBudget::checks(32));
        let mut ids: Vec<u32> = out.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.len());
    }
}
