//! 32-bit fixed-point representation (paper Section II-D).
//!
//! "Fixed-point arithmetic is much cheaper to implement in hardware than
//! floating point units. … Overall, we find there is negligible accuracy
//! loss between 32-bit floating-point and 32-bit fixed-point data
//! representations."
//!
//! We use the Q16.16 format: a signed 32-bit integer whose low 16 bits are
//! the fraction. This is the native number format of the SSAM processing
//! unit's ALUs — every SSAM kernel computes distances on these values, so
//! conversion and arithmetic here define accelerator semantics.

use crate::vecstore::VectorStore;

/// Fraction bits in the Q16.16 format.
pub const FRAC_BITS: u32 = 16;
/// Scale factor `2^16`.
pub const SCALE: f64 = (1u32 << FRAC_BITS) as f64;

/// A Q16.16 fixed-point value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fix32(pub i32);

impl Fix32 {
    /// Largest representable value (≈ 32767.99998).
    pub const MAX: Fix32 = Fix32(i32::MAX);
    /// Smallest representable value (≈ −32768).
    pub const MIN: Fix32 = Fix32(i32::MIN);
    /// Zero.
    pub const ZERO: Fix32 = Fix32(0);

    /// Converts from `f32`, saturating at the representable range and
    /// rounding to nearest.
    pub fn from_f32(x: f32) -> Self {
        let scaled = (x as f64 * SCALE).round();
        Fix32(scaled.clamp(i32::MIN as f64, i32::MAX as f64) as i32)
    }

    /// Converts back to `f32`.
    pub fn to_f32(self) -> f32 {
        (self.0 as f64 / SCALE) as f32
    }

    /// Saturating addition.
    pub fn sat_add(self, rhs: Fix32) -> Fix32 {
        Fix32(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn sat_sub(self, rhs: Fix32) -> Fix32 {
        Fix32(self.0.saturating_sub(rhs.0))
    }

    /// Fixed-point multiply: `(a*b) >> 16` with 64-bit intermediate, the
    /// exact operation the PU's MULT performs. (Named `fx_mul` to avoid
    /// colliding with `std::ops::Mul`, which this deliberately is not —
    /// the semantics are Q16.16, not integer.)
    pub fn fx_mul(self, rhs: Fix32) -> Fix32 {
        let wide = (self.0 as i64) * (rhs.0 as i64);
        Fix32((wide >> FRAC_BITS) as i32)
    }
}

/// A dataset converted to Q16.16 for fixed-point pipelines.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedStore {
    dims: usize,
    data: Vec<i32>,
}

impl FixedStore {
    /// Quantizes every row of a float store.
    pub fn from_store(store: &VectorStore) -> Self {
        let data = store
            .as_flat()
            .iter()
            .map(|&x| Fix32::from_f32(x).0)
            .collect();
        Self {
            dims: store.dims(),
            data,
        }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Borrow row `id` as raw Q16.16 words.
    pub fn get(&self, id: u32) -> &[i32] {
        let i = id as usize;
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// The flat Q16.16 buffer (what SSAM streams from DRAM).
    pub fn as_flat(&self) -> &[i32] {
        &self.data
    }

    /// Quantizes a single query vector.
    pub fn quantize_query(&self, q: &[f32]) -> Vec<i32> {
        assert_eq!(q.len(), self.dims, "query dimensionality mismatch");
        q.iter().map(|&x| Fix32::from_f32(x).0).collect()
    }
}

/// Squared Euclidean distance between Q16.16 vectors, accumulated in 64-bit
/// *raw* units of `2^-32` (i.e. the sum of `((a-b) in raw)²`). Rank-
/// equivalent to the float distance up to quantization error.
pub fn squared_euclidean_fixed(a: &[i32], b: &[i32]) -> u64 {
    assert_eq!(a.len(), b.len(), "distance operands must have equal length");
    let mut acc: u64 = 0;
    for (&x, &y) in a.iter().zip(b) {
        let d = (x as i64) - (y as i64);
        acc = acc.wrapping_add((d * d) as u64);
    }
    acc
}

/// Manhattan distance between Q16.16 vectors in raw `2^-16` units.
pub fn manhattan_fixed(a: &[i32], b: &[i32]) -> u64 {
    assert_eq!(a.len(), b.len(), "distance operands must have equal length");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x as i64) - (y as i64)).unsigned_abs())
        .sum()
}

/// Exact linear kNN in fixed point: returns ids of the `k` nearest rows
/// under squared Euclidean distance.
pub fn knn_exact_fixed(store: &FixedStore, query: &[i32], k: usize) -> Vec<u32> {
    let mut cands: Vec<(u64, u32)> = (0..store.len() as u32)
        .map(|id| (squared_euclidean_fixed(query, store.get(id)), id))
        .collect();
    cands.sort_unstable();
    cands.truncate(k);
    cands.into_iter().map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::squared_euclidean;
    use crate::linear::knn_exact;
    use crate::recall::recall_ids;
    use crate::Metric;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    #[test]
    fn round_trip_error_is_within_half_ulp() {
        for x in [-1.5f32, 0.0, 0.25, std::f32::consts::PI, -100.0, 1e-5] {
            let err = (Fix32::from_f32(x).to_f32() - x).abs();
            assert!(err <= (1.0 / SCALE as f32), "err {err} for {x}");
        }
    }

    #[test]
    fn saturates_out_of_range() {
        assert_eq!(Fix32::from_f32(1e9), Fix32::MAX);
        assert_eq!(Fix32::from_f32(-1e9), Fix32::MIN);
    }

    #[test]
    fn mul_matches_float_product() {
        let a = Fix32::from_f32(1.5);
        let b = Fix32::from_f32(-2.25);
        assert!((a.fx_mul(b).to_f32() - (-3.375)).abs() < 1e-3);
    }

    #[test]
    fn sat_add_does_not_wrap() {
        assert_eq!(Fix32::MAX.sat_add(Fix32::from_f32(1.0)), Fix32::MAX);
        assert_eq!(Fix32::MIN.sat_sub(Fix32::from_f32(1.0)), Fix32::MIN);
    }

    #[test]
    fn fixed_distance_tracks_float_distance() {
        let a = [0.5f32, -0.25, 1.0];
        let b = [0.0f32, 0.75, -1.0];
        let fa: Vec<i32> = a.iter().map(|&x| Fix32::from_f32(x).0).collect();
        let fb: Vec<i32> = b.iter().map(|&x| Fix32::from_f32(x).0).collect();
        let fixed = squared_euclidean_fixed(&fa, &fb) as f64 / (SCALE * SCALE);
        let float = squared_euclidean(&a, &b) as f64;
        assert!((fixed - float).abs() < 1e-3);
    }

    #[test]
    fn manhattan_fixed_tracks_float() {
        let a = [1.0f32, -2.0];
        let b = [-1.0f32, 1.0];
        let fa: Vec<i32> = a.iter().map(|&x| Fix32::from_f32(x).0).collect();
        let fb: Vec<i32> = b.iter().map(|&x| Fix32::from_f32(x).0).collect();
        assert!((manhattan_fixed(&fa, &fb) as f64 / SCALE - 5.0).abs() < 1e-3);
    }

    /// The paper's Section II-D claim: negligible accuracy loss going from
    /// 32-bit float to 32-bit fixed point.
    #[test]
    fn fixed_point_knn_matches_float_knn() {
        let mut rng = StdRng::seed_from_u64(9);
        let dims = 16;
        let mut s = VectorStore::with_capacity(dims, 300);
        for _ in 0..300 {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        let fs = FixedStore::from_store(&s);
        let mut total = 0.0;
        for _ in 0..20 {
            let q: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            let exact: Vec<u32> = knn_exact(&s, &q, 10, Metric::Euclidean)
                .iter()
                .map(|n| n.id)
                .collect();
            let fixed = knn_exact_fixed(&fs, &fs.quantize_query(&q), 10);
            total += recall_ids(&exact, &fixed);
        }
        assert!(
            total / 20.0 > 0.99,
            "fixed-point recall degraded: {}",
            total / 20.0
        );
    }

    #[test]
    fn fixed_store_shape_matches_source() {
        let s = VectorStore::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        let fs = FixedStore::from_store(&s);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.dims(), 2);
        assert_eq!(fs.get(1)[0], Fix32::from_f32(3.0).0);
    }
}
