//! Dense row-major vector storage.
//!
//! Feature vectors (Fig. 1's intermediary representation) are stored as one
//! contiguous `Vec<f32>` so linear scans stream through memory exactly the
//! way the paper's bandwidth analysis assumes: large contiguous blocks, each
//! vector touched once per query and then discarded.

/// A dense, row-major collection of equal-length `f32` feature vectors.
///
/// Vector `i` occupies `data[i*dims .. (i+1)*dims]`. IDs are implicit row
/// indices (`u32`), matching the paper's observation that a kNN query's
/// result set is "only a small set of identifiers".
#[derive(Debug, Clone, PartialEq)]
pub struct VectorStore {
    dims: usize,
    data: Vec<f32>,
}

impl VectorStore {
    /// Creates an empty store for vectors of dimensionality `dims`.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "vector dimensionality must be positive");
        Self {
            dims,
            data: Vec::new(),
        }
    }

    /// Creates a store from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dims == 0` or `data.len()` is not a multiple of `dims`.
    pub fn from_flat(dims: usize, data: Vec<f32>) -> Self {
        assert!(dims > 0, "vector dimensionality must be positive");
        assert!(
            data.len().is_multiple_of(dims),
            "flat buffer length {} is not a multiple of dims {}",
            data.len(),
            dims
        );
        Self { dims, data }
    }

    /// Creates a store with capacity preallocated for `n` vectors.
    pub fn with_capacity(dims: usize, n: usize) -> Self {
        assert!(dims > 0, "vector dimensionality must be positive");
        Self {
            dims,
            data: Vec::with_capacity(dims * n),
        }
    }

    /// Appends one vector; returns its id.
    ///
    /// # Panics
    /// Panics if `v.len() != self.dims()`.
    pub fn push(&mut self, v: &[f32]) -> u32 {
        assert_eq!(v.len(), self.dims, "vector length mismatch");
        let id = self.len() as u32;
        self.data.extend_from_slice(v);
        id
    }

    /// Number of vectors stored.
    pub fn len(&self) -> usize {
        self.data.len() / self.dims
    }

    /// Whether the store holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of every vector in the store.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Borrow vector `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn get(&self, id: u32) -> &[f32] {
        let i = id as usize;
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// The full flat row-major buffer (what the SSAM device model streams).
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Iterate `(id, vector)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[f32])> {
        self.data
            .chunks_exact(self.dims)
            .enumerate()
            .map(|(i, v)| (i as u32, v))
    }

    /// Total payload size in bytes (the quantity a linear scan must move).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Builds a sub-store containing the listed rows, in order.
    ///
    /// Used to shard a dataset across HMC vaults in the device model.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn subset(&self, ids: &[u32]) -> VectorStore {
        let mut out = VectorStore::with_capacity(self.dims, ids.len());
        for &id in ids {
            out.push(self.get(id));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut s = VectorStore::new(3);
        let a = s.push(&[1.0, 2.0, 3.0]);
        let b = s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(s.get(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.get(1), &[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn from_flat_partitions_rows() {
        let s = VectorStore::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        let _ = VectorStore::from_flat(3, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn push_rejects_wrong_dims() {
        let mut s = VectorStore::new(3);
        s.push(&[1.0]);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let s = VectorStore::from_flat(1, vec![9.0, 8.0, 7.0]);
        let ids: Vec<u32> = s.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let vals: Vec<f32> = s.iter().map(|(_, v)| v[0]).collect();
        assert_eq!(vals, vec![9.0, 8.0, 7.0]);
    }

    #[test]
    fn bytes_counts_payload() {
        let s = VectorStore::from_flat(4, vec![0.0; 16]);
        assert_eq!(s.bytes(), 64);
    }

    #[test]
    fn subset_selects_rows() {
        let s = VectorStore::from_flat(1, vec![10.0, 11.0, 12.0, 13.0]);
        let sub = s.subset(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(0), &[13.0]);
        assert_eq!(sub.get(1), &[11.0]);
    }

    #[test]
    fn empty_store_reports_empty() {
        let s = VectorStore::new(5);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.bytes(), 0);
    }
}
