//! Randomized kd-tree forest with best-bin-first backtracking.
//!
//! Follows the FLANN construction the paper benchmarks (Section II-C):
//! each tree recursively cuts the data on a dimension chosen at random
//! among the `RAND_DIM_CANDIDATES` highest-variance dimensions, splitting
//! at the mean. Leaves hold buckets of similar vectors. At query time a
//! depth-first descent reaches one bucket, then *backtracking* visits
//! additional "close by" buckets in best-first order until the
//! user-specified leaf budget is exhausted — the budget is the Fig. 2
//! throughput/accuracy knob.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

use crate::distance::Metric;
use crate::index::{SearchBudget, SearchIndex, SearchStats};
use crate::topk::{Neighbor, TopK};
use crate::vecstore::VectorStore;

/// Among how many top-variance dimensions the split dimension is drawn
/// (FLANN uses 5).
const RAND_DIM_CANDIDATES: usize = 5;

/// Construction parameters for a [`KdForest`].
#[derive(Debug, Clone, Copy)]
pub struct KdTreeParams {
    /// Number of parallel randomized trees.
    pub trees: usize,
    /// Maximum bucket size at the leaves.
    pub leaf_size: usize,
    /// RNG seed for dimension randomization.
    pub seed: u64,
}

impl Default for KdTreeParams {
    fn default() -> Self {
        Self {
            trees: 4,
            leaf_size: 16,
            seed: 0x6B64,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Interior {
        dim: u16,
        split: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        ids: Vec<u32>,
    },
}

/// One randomized kd-tree stored as an arena of nodes.
#[derive(Debug, Clone)]
struct KdTree {
    nodes: Vec<Node>,
    root: u32,
}

/// A forest of randomized kd-trees sharing one candidate queue at search
/// time, as in FLANN.
#[derive(Debug, Clone)]
pub struct KdForest {
    trees: Vec<KdTree>,
    params: KdTreeParams,
    metric: Metric,
    dims: usize,
}

impl KdForest {
    /// Builds a forest over every row of `store` under `metric`.
    ///
    /// # Panics
    /// Panics if the store is empty or `params.trees == 0`.
    pub fn build(store: &VectorStore, metric: Metric, params: KdTreeParams) -> Self {
        assert!(!store.is_empty(), "cannot index an empty store");
        assert!(params.trees > 0, "forest needs at least one tree");
        let leaf_size = params.leaf_size.max(1);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let trees = (0..params.trees)
            .map(|_| {
                let mut ids: Vec<u32> = (0..store.len() as u32).collect();
                let mut nodes = Vec::new();
                let root = build_subtree(store, &mut ids, leaf_size, &mut nodes, &mut rng);
                KdTree { nodes, root }
            })
            .collect();
        Self {
            trees,
            params,
            metric,
            dims: store.dims(),
        }
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total leaves across all trees.
    pub fn num_leaves(&self) -> usize {
        self.trees
            .iter()
            .map(|t| {
                t.nodes
                    .iter()
                    .filter(|n| matches!(n, Node::Leaf { .. }))
                    .count()
            })
            .sum()
    }

    /// Construction parameters.
    pub fn params(&self) -> KdTreeParams {
        self.params
    }
}

/// Recursively builds one subtree over `ids`, returning the node index.
fn build_subtree(
    store: &VectorStore,
    ids: &mut [u32],
    leaf_size: usize,
    nodes: &mut Vec<Node>,
    rng: &mut StdRng,
) -> u32 {
    if ids.len() <= leaf_size {
        nodes.push(Node::Leaf { ids: ids.to_vec() });
        return (nodes.len() - 1) as u32;
    }

    let (dim, split) = choose_split(store, ids, rng);
    // Partition in place around the split value on `dim`.
    let mut lo = 0usize;
    let mut hi = ids.len();
    while lo < hi {
        if store.get(ids[lo])[dim] < split {
            lo += 1;
        } else {
            hi -= 1;
            ids.swap(lo, hi);
        }
    }
    // Guard against degenerate splits (all points on one side): cut in half
    // so the recursion always terminates.
    let mid = if lo == 0 || lo == ids.len() {
        ids.len() / 2
    } else {
        lo
    };

    let (left_ids, right_ids) = ids.split_at_mut(mid);
    let left = build_subtree(store, left_ids, leaf_size, nodes, rng);
    let right = build_subtree(store, right_ids, leaf_size, nodes, rng);
    nodes.push(Node::Interior {
        dim: dim as u16,
        split,
        left,
        right,
    });
    (nodes.len() - 1) as u32
}

/// Picks the split dimension (random among top-variance candidates) and the
/// split value (mean of that dimension), FLANN style.
fn choose_split(store: &VectorStore, ids: &[u32], rng: &mut StdRng) -> (usize, f32) {
    let dims = store.dims();
    // Mean and variance per dimension over this id set.
    let mut mean = vec![0.0f64; dims];
    for &id in ids {
        for (m, &x) in mean.iter_mut().zip(store.get(id)) {
            *m += x as f64;
        }
    }
    let n = ids.len() as f64;
    for m in &mut mean {
        *m /= n;
    }
    let mut var = vec![0.0f64; dims];
    for &id in ids {
        for ((v, &m), &x) in var.iter_mut().zip(&mean).zip(store.get(id)) {
            let d = x as f64 - m;
            *v += d * d;
        }
    }

    // Top candidate dimensions by variance.
    let mut order: Vec<usize> = (0..dims).collect();
    order.sort_unstable_by(|&a, &b| var[b].total_cmp(&var[a]));
    let ncand = RAND_DIM_CANDIDATES.min(dims);
    let dim = order[rng.random_range(0..ncand)];
    (dim, mean[dim] as f32)
}

/// A pending branch during best-bin-first traversal: the minimum possible
/// distance to the region, and where to resume.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Branch {
    mindist: f32,
    tree: u32,
    node: u32,
}

impl Eq for Branch {}
impl Ord for Branch {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.mindist
            .total_cmp(&other.mindist)
            .then_with(|| (self.tree, self.node).cmp(&(other.tree, other.node)))
    }
}
impl PartialOrd for Branch {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl SearchIndex for KdForest {
    fn search_with_stats(
        &self,
        store: &VectorStore,
        query: &[f32],
        k: usize,
        budget: SearchBudget,
    ) -> (Vec<Neighbor>, SearchStats) {
        assert_eq!(query.len(), self.dims, "query dimensionality mismatch");
        let mut top = TopK::new(k);
        let mut stats = SearchStats::default();
        // Shared best-first frontier across all trees (FLANN's single heap).
        let mut frontier: BinaryHeap<Reverse<Branch>> = BinaryHeap::new();
        let mut seen = std::collections::HashSet::new();

        for (t, tree) in self.trees.iter().enumerate() {
            frontier.push(Reverse(Branch {
                mindist: 0.0,
                tree: t as u32,
                node: tree.root,
            }));
        }

        let mut leaves = 0usize;
        while let Some(Reverse(br)) = frontier.pop() {
            if leaves >= budget.checks {
                break;
            }
            // Prune: the region cannot beat the current k-th best. Must be
            // strict — `TopK::offer` orders candidates by (dist, id), so a
            // region whose mindist exactly ties the bound may still hold an
            // equal-distance, lower-id neighbor the queue would accept.
            if br.mindist > top.bound() {
                continue;
            }
            let tree = &self.trees[br.tree as usize];
            let mut node = br.node;
            let acc = br.mindist;
            // Descend to a leaf, deferring far siblings onto the frontier.
            loop {
                match &tree.nodes[node as usize] {
                    Node::Interior {
                        dim,
                        split,
                        left,
                        right,
                    } => {
                        stats.interior_steps += 1;
                        let q = query[*dim as usize];
                        let delta = q - split;
                        let (near, far) = if delta < 0.0 {
                            (*left, *right)
                        } else {
                            (*right, *left)
                        };
                        let far_min = acc + plane_penalty(self.metric, delta);
                        frontier.push(Reverse(Branch {
                            mindist: far_min,
                            tree: br.tree,
                            node: far,
                        }));
                        node = near;
                        // `acc` unchanged on the near side: the region still
                        // contains points at the current lower bound.
                    }
                    Node::Leaf { ids } => {
                        leaves += 1;
                        stats.leaves_visited += 1;
                        for &id in ids {
                            if seen.insert(id) {
                                stats.distance_evals += 1;
                                top.offer(id, self.metric.eval(query, store.get(id)));
                            }
                        }
                        break;
                    }
                }
            }
        }
        (top.into_sorted(), stats)
    }

    fn family(&self) -> &'static str {
        "kdtree"
    }
}

/// Lower-bound increment for crossing a splitting plane at offset `delta`.
#[inline]
fn plane_penalty(metric: Metric, delta: f32) -> f32 {
    match metric {
        Metric::Euclidean => delta * delta,
        Metric::Manhattan => delta.abs(),
        // Other metrics have no exact plane bound; use the L1 penalty as a
        // heuristic ordering (still correct as *approximate* search).
        _ => delta.abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::knn_exact;
    use crate::recall::recall;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    fn params(trees: usize) -> KdTreeParams {
        KdTreeParams {
            trees,
            leaf_size: 8,
            seed: 99,
        }
    }

    #[test]
    fn unlimited_budget_reaches_full_recall() {
        let s = random_store(400, 8, 1);
        let f = KdForest::build(&s, Metric::Euclidean, params(2));
        let q = vec![0.1f32; 8];
        let exact = knn_exact(&s, &q, 10, Metric::Euclidean);
        let approx = f.search(&s, &q, 10, SearchBudget::unlimited());
        assert_eq!(recall(&exact, &approx), 1.0);
    }

    #[test]
    fn more_budget_never_lowers_recall_on_average() {
        let s = random_store(600, 6, 2);
        let f = KdForest::build(&s, Metric::Euclidean, params(4));
        let mut rng = StdRng::seed_from_u64(3);
        let mut low = 0.0;
        let mut high = 0.0;
        for _ in 0..20 {
            let q: Vec<f32> = (0..6).map(|_| rng.random_range(-1.0..1.0)).collect();
            let exact = knn_exact(&s, &q, 5, Metric::Euclidean);
            low += recall(&exact, &f.search(&s, &q, 5, SearchBudget::checks(1)));
            high += recall(&exact, &f.search(&s, &q, 5, SearchBudget::checks(64)));
        }
        assert!(high >= low, "high-budget recall {high} < low-budget {low}");
    }

    #[test]
    fn budget_caps_leaves_visited() {
        let s = random_store(500, 4, 4);
        let f = KdForest::build(&s, Metric::Euclidean, params(2));
        let (_, stats) = f.search_with_stats(&s, &[0.0; 4], 3, SearchBudget::checks(3));
        assert!(stats.leaves_visited <= 3);
    }

    #[test]
    fn all_ids_partitioned_into_leaves_exactly_once_per_tree() {
        let s = random_store(257, 3, 5);
        let f = KdForest::build(&s, Metric::Euclidean, params(3));
        for tree in &f.trees {
            let mut seen = vec![false; s.len()];
            for node in &tree.nodes {
                if let Node::Leaf { ids } = node {
                    for &id in ids {
                        assert!(!seen[id as usize], "id {id} in two leaves");
                        seen[id as usize] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&b| b), "some id missing from tree");
        }
    }

    #[test]
    fn leaf_sizes_respect_cap() {
        let s = random_store(300, 5, 6);
        let p = KdTreeParams {
            trees: 1,
            leaf_size: 10,
            seed: 0,
        };
        let f = KdForest::build(&s, Metric::Euclidean, p);
        for node in &f.trees[0].nodes {
            if let Node::Leaf { ids } = node {
                assert!(ids.len() <= 10);
            }
        }
    }

    #[test]
    fn duplicate_points_handled() {
        let s = VectorStore::from_flat(2, [1.0, 1.0].repeat(50));
        let f = KdForest::build(&s, Metric::Euclidean, params(2));
        let out = f.search(&s, &[1.0, 1.0], 5, SearchBudget::unlimited());
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn results_never_contain_duplicate_ids() {
        let s = random_store(200, 4, 7);
        let f = KdForest::build(&s, Metric::Euclidean, params(4));
        let out = f.search(&s, &[0.0; 4], 20, SearchBudget::checks(50));
        let mut ids: Vec<u32> = out.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.len());
    }

    /// Regression: a subtree whose mindist exactly ties the k-th best must
    /// still be visited, because `TopK::offer` prefers lower ids on tied
    /// distances. Constructed in 1-D with exact f32 arithmetic: the query
    /// sits at 0, ids 1 and 2 at x=-2 fill the k=2 queue at distance 4.0,
    /// and id 0 at x=+2 (the far side of the root split, mindist exactly
    /// 4.0) ties them with a lower id. The old `>=` prune returned
    /// {1, 2}; the exact answer is {0, 1}.
    #[test]
    fn tied_mindist_subtree_is_not_pruned() {
        let s = VectorStore::from_flat(1, vec![2.0, -2.0, -2.0, 10.0]);
        let p = KdTreeParams {
            trees: 1,
            leaf_size: 1,
            seed: 0,
        };
        let f = KdForest::build(&s, Metric::Euclidean, p);
        let exact = knn_exact(&s, &[0.0], 2, Metric::Euclidean);
        assert_eq!(
            exact.iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![0, 1],
            "scenario precondition: exact ties break toward lower ids"
        );
        let approx = f.search(&s, &[0.0], 2, SearchBudget::unlimited());
        assert_eq!(
            approx, exact,
            "tied subtree straddling the split was pruned"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let s = random_store(150, 4, 8);
        let f1 = KdForest::build(&s, Metric::Euclidean, params(2));
        let f2 = KdForest::build(&s, Metric::Euclidean, params(2));
        let o1 = f1.search(&s, &[0.2; 4], 5, SearchBudget::checks(8));
        let o2 = f2.search(&s, &[0.2; 4], 5, SearchBudget::checks(8));
        assert_eq!(o1, o2);
    }
}
