//! Hierarchical k-means tree with backtracking (paper Section II-C).
//!
//! "The dataset is partitioned recursively based on k-means cluster
//! assignments to form a tree data structure. Like kd-tree indices, the
//! height of the tree is restricted, and each leaf holds a bucket of
//! similar vectors which are searched when a query reaches that bucket.
//! Backtracking is also used to expand the search space and search
//! 'close by' buckets."

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::distance::{squared_euclidean, Metric};
use crate::index::{SearchBudget, SearchIndex, SearchStats};
use crate::kmeans::{kmeans, KMeansParams};
use crate::topk::{Neighbor, TopK};
use crate::vecstore::VectorStore;

/// Construction parameters for a [`KMeansTree`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansTreeParams {
    /// Branching factor at every interior node.
    pub branching: usize,
    /// Maximum bucket size at the leaves.
    pub leaf_size: usize,
    /// Maximum tree height (root = level 0); deeper levels become leaves.
    pub max_height: usize,
    /// Lloyd iteration cap per split.
    pub kmeans_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KMeansTreeParams {
    fn default() -> Self {
        Self {
            branching: 8,
            leaf_size: 32,
            max_height: 12,
            kmeans_iters: 8,
            seed: 0x6B6D,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Interior {
        /// Centroid per child, row-major in `centroids` (branching rows).
        centroids: VectorStore,
        children: Vec<u32>,
    },
    Leaf {
        ids: Vec<u32>,
    },
}

/// Hierarchical k-means index.
#[derive(Debug, Clone)]
pub struct KMeansTree {
    nodes: Vec<Node>,
    root: u32,
    params: KMeansTreeParams,
    metric: Metric,
    dims: usize,
}

impl KMeansTree {
    /// Builds the tree over every row of `store`.
    ///
    /// # Panics
    /// Panics if the store is empty or `params.branching < 2`.
    pub fn build(store: &VectorStore, metric: Metric, params: KMeansTreeParams) -> Self {
        assert!(!store.is_empty(), "cannot index an empty store");
        assert!(params.branching >= 2, "branching factor must be at least 2");
        let mut nodes = Vec::new();
        let ids: Vec<u32> = (0..store.len() as u32).collect();
        let root = build_node(store, ids, &params, 0, &mut nodes);
        Self {
            nodes,
            root,
            params,
            metric,
            dims: store.dims(),
        }
    }

    /// Number of leaves (buckets).
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Construction parameters.
    pub fn params(&self) -> KMeansTreeParams {
        self.params
    }
}

fn build_node(
    store: &VectorStore,
    ids: Vec<u32>,
    params: &KMeansTreeParams,
    level: usize,
    nodes: &mut Vec<Node>,
) -> u32 {
    if ids.len() <= params.leaf_size || level >= params.max_height {
        nodes.push(Node::Leaf { ids });
        return (nodes.len() - 1) as u32;
    }

    let km = kmeans(
        store,
        Some(&ids),
        KMeansParams {
            k: params.branching,
            max_iters: params.kmeans_iters,
            // Derive a distinct stream per node from (seed, level, first id).
            seed: params
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(level as u64)
                .wrapping_add(ids[0] as u64),
        },
    );

    // Group member ids by assigned cluster.
    let kk = km.centroids.len();
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); kk];
    for (slot, &id) in ids.iter().enumerate() {
        groups[km.assignments[slot] as usize].push(id);
    }

    // If clustering failed to split (all points in one cluster — duplicates
    // or pathological data), fall back to a leaf to guarantee termination.
    if groups.iter().filter(|g| !g.is_empty()).count() <= 1 {
        nodes.push(Node::Leaf { ids });
        return (nodes.len() - 1) as u32;
    }

    let mut centroids = VectorStore::with_capacity(store.dims(), kk);
    let mut children = Vec::with_capacity(kk);
    for (c, group) in groups.into_iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        centroids.push(km.centroids.get(c as u32));
        let child = build_node(store, group, params, level + 1, nodes);
        children.push(child);
    }
    nodes.push(Node::Interior {
        centroids,
        children,
    });
    (nodes.len() - 1) as u32
}

/// Pending branch ordered by distance to its centroid.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Branch {
    key: f32,
    node: u32,
}
impl Eq for Branch {}
impl Ord for Branch {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .total_cmp(&other.key)
            .then_with(|| self.node.cmp(&other.node))
    }
}
impl PartialOrd for Branch {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl SearchIndex for KMeansTree {
    fn search_with_stats(
        &self,
        store: &VectorStore,
        query: &[f32],
        k: usize,
        budget: SearchBudget,
    ) -> (Vec<Neighbor>, SearchStats) {
        assert_eq!(query.len(), self.dims, "query dimensionality mismatch");
        let mut top = TopK::new(k);
        let mut stats = SearchStats::default();
        let mut frontier: BinaryHeap<Reverse<Branch>> = BinaryHeap::new();
        frontier.push(Reverse(Branch {
            key: 0.0,
            node: self.root,
        }));

        let mut leaves = 0usize;
        while let Some(Reverse(br)) = frontier.pop() {
            if leaves >= budget.checks {
                break;
            }
            let mut node = br.node;
            // Descend: follow the closest centroid, defer siblings.
            loop {
                match &self.nodes[node as usize] {
                    Node::Interior {
                        centroids,
                        children,
                    } => {
                        stats.interior_steps += 1;
                        let mut best_child = 0usize;
                        let mut best_d = f32::INFINITY;
                        let mut dists = Vec::with_capacity(children.len());
                        for (c, cv) in centroids.iter() {
                            // Centroid proximity always uses L2: the tree was
                            // built by k-means in Euclidean space.
                            let d = squared_euclidean(query, cv);
                            dists.push(d);
                            if d < best_d {
                                best_d = d;
                                best_child = c as usize;
                            }
                        }
                        for (c, &child) in children.iter().enumerate() {
                            if c != best_child {
                                frontier.push(Reverse(Branch {
                                    key: dists[c],
                                    node: child,
                                }));
                            }
                        }
                        node = children[best_child];
                    }
                    Node::Leaf { ids } => {
                        leaves += 1;
                        stats.leaves_visited += 1;
                        stats.distance_evals += ids.len();
                        for &id in ids {
                            top.offer(id, self.metric.eval(query, store.get(id)));
                        }
                        break;
                    }
                }
            }
        }
        (top.into_sorted(), stats)
    }

    fn family(&self) -> &'static str {
        "kmeans"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::knn_exact;
    use crate::recall::recall;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    fn random_store(n: usize, dims: usize, seed: u64) -> VectorStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = VectorStore::with_capacity(dims, n);
        for _ in 0..n {
            let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
            s.push(&v);
        }
        s
    }

    fn params() -> KMeansTreeParams {
        KMeansTreeParams {
            branching: 4,
            leaf_size: 16,
            max_height: 10,
            kmeans_iters: 5,
            seed: 11,
        }
    }

    #[test]
    fn unlimited_budget_reaches_full_recall() {
        let s = random_store(300, 6, 1);
        let t = KMeansTree::build(&s, Metric::Euclidean, params());
        let q = vec![0.0f32; 6];
        let exact = knn_exact(&s, &q, 8, Metric::Euclidean);
        let approx = t.search(&s, &q, 8, SearchBudget::unlimited());
        assert_eq!(recall(&exact, &approx), 1.0);
    }

    #[test]
    fn every_id_lands_in_exactly_one_leaf() {
        let s = random_store(333, 4, 2);
        let t = KMeansTree::build(&s, Metric::Euclidean, params());
        let mut seen = vec![0usize; s.len()];
        for node in &t.nodes {
            if let Node::Leaf { ids } = node {
                for &id in ids {
                    seen[id as usize] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn budget_caps_leaves() {
        let s = random_store(500, 4, 3);
        let t = KMeansTree::build(&s, Metric::Euclidean, params());
        let (_, stats) = t.search_with_stats(&s, &[0.0; 4], 3, SearchBudget::checks(2));
        assert!(stats.leaves_visited <= 2);
    }

    #[test]
    fn recall_grows_with_budget() {
        let s = random_store(800, 8, 4);
        let t = KMeansTree::build(&s, Metric::Euclidean, params());
        let mut rng = StdRng::seed_from_u64(5);
        let (mut low, mut high) = (0.0, 0.0);
        for _ in 0..20 {
            let q: Vec<f32> = (0..8).map(|_| rng.random_range(-1.0..1.0)).collect();
            let exact = knn_exact(&s, &q, 5, Metric::Euclidean);
            low += recall(&exact, &t.search(&s, &q, 5, SearchBudget::checks(1)));
            high += recall(&exact, &t.search(&s, &q, 5, SearchBudget::checks(64)));
        }
        assert!(high >= low);
    }

    #[test]
    fn duplicate_heavy_data_terminates_and_searches() {
        let mut s = VectorStore::new(2);
        for _ in 0..200 {
            s.push(&[3.0, 3.0]);
        }
        for _ in 0..10 {
            s.push(&[9.0, 9.0]);
        }
        let t = KMeansTree::build(&s, Metric::Euclidean, params());
        let out = t.search(&s, &[9.0, 9.0], 3, SearchBudget::unlimited());
        assert!(out.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn single_point_store() {
        let s = VectorStore::from_flat(3, vec![1.0, 2.0, 3.0]);
        let t = KMeansTree::build(&s, Metric::Euclidean, params());
        let out = t.search(&s, &[0.0, 0.0, 0.0], 1, SearchBudget::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = random_store(200, 5, 6);
        let t1 = KMeansTree::build(&s, Metric::Euclidean, params());
        let t2 = KMeansTree::build(&s, Metric::Euclidean, params());
        let q = [0.3f32; 5];
        assert_eq!(
            t1.search(&s, &q, 4, SearchBudget::checks(4)),
            t2.search(&s, &q, 4, SearchBudget::checks(4))
        );
    }
}
