//! Search accuracy metric (paper Section II-C).
//!
//! Accuracy is defined as `|S_E ∩ S_A| / |S_E|` where `S_E` is the exact
//! neighbor set returned by floating-point linear search and `S_A` the set
//! returned by the approximate algorithm under test.

use crate::topk::Neighbor;

/// Recall of one query: fraction of exact neighbors recovered.
///
/// Returns 1.0 when the exact set is empty (vacuous truth, keeps batch
/// averages well-defined on degenerate inputs).
pub fn recall(exact: &[Neighbor], approx: &[Neighbor]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hits = exact
        .iter()
        .filter(|e| approx.iter().any(|a| a.id == e.id))
        .count();
    hits as f64 / exact.len() as f64
}

/// Recall over id sets directly (ground-truth files store bare ids).
pub fn recall_ids(exact: &[u32], approx: &[u32]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hits = exact.iter().filter(|e| approx.contains(e)).count();
    hits as f64 / exact.len() as f64
}

/// Mean recall across a batch of queries.
///
/// # Panics
/// Panics if the two batches differ in length.
pub fn mean_recall(exact: &[Vec<u32>], approx: &[Vec<u32>]) -> f64 {
    assert_eq!(exact.len(), approx.len(), "batch size mismatch");
    if exact.is_empty() {
        return 1.0;
    }
    let sum: f64 = exact
        .iter()
        .zip(approx)
        .map(|(e, a)| recall_ids(e, a))
        .sum();
    sum / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u32) -> Neighbor {
        Neighbor::new(id, 0.0)
    }

    #[test]
    fn perfect_recall() {
        let e = [n(1), n(2), n(3)];
        let a = [n(3), n(1), n(2)];
        assert_eq!(recall(&e, &a), 1.0);
    }

    #[test]
    fn partial_recall() {
        let e = [n(1), n(2), n(3), n(4)];
        let a = [n(1), n(9), n(3), n(8)];
        assert_eq!(recall(&e, &a), 0.5);
    }

    #[test]
    fn zero_recall() {
        let e = [n(1)];
        let a = [n(2)];
        assert_eq!(recall(&e, &a), 0.0);
    }

    #[test]
    fn empty_exact_set_is_vacuously_recalled() {
        assert_eq!(recall(&[], &[n(1)]), 1.0);
    }

    #[test]
    fn recall_ignores_distances() {
        let e = [Neighbor::new(5, 1.0)];
        let a = [Neighbor::new(5, 99.0)];
        assert_eq!(recall(&e, &a), 1.0);
    }

    #[test]
    fn mean_recall_averages() {
        let e = vec![vec![1, 2], vec![3, 4]];
        let a = vec![vec![1, 2], vec![3, 9]];
        assert!((mean_recall(&e, &a) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn mean_recall_rejects_mismatched_batches() {
        let _ = mean_recall(&[vec![1]], &[]);
    }

    #[test]
    fn recall_is_bounded() {
        let e = [n(0), n(1)];
        let a = [n(0), n(0), n(1), n(1)];
        let r = recall(&e, &a);
        assert!((0.0..=1.0).contains(&r));
    }
}
