//! 8-lane SIMD substrate for the host-side distance kernels.
//!
//! The crate forbids `unsafe`, so rather than calling `std::arch`
//! intrinsics directly this module expresses every kernel over a plain
//! `[f32; 8]` value type whose whole-array operations LLVM reliably
//! autovectorizes to `mulps`/`addps`-class instructions on x86-64 (and
//! NEON on aarch64). What the module pins down — and what actually
//! matters for reproducibility — is the **reduction order**:
//!
//! # Canonical reduction order
//!
//! Every distance reduction in this workspace accumulates into eight
//! independent lane partials and then combines them with one fixed
//! pairwise tree:
//!
//! 1. Lane `j` accumulates elements `j, j+8, j+16, …` of the term
//!    stream, in increasing index order. A trailing partial chunk of
//!    `r < 8` elements contributes its element `i` to lane `i`.
//! 2. The horizontal sum is the fixed tree
//!    `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
//!
//! IEEE-754 f32 addition is deterministic for a fixed evaluation
//! order, so any two implementations that follow this contract — the
//! vectorized chunk loop here, the scalar `i % 8` fallback loop, or a
//! hand-rolled intrinsic version — produce **bit-identical** results
//! (`to_bits()` equality), which is what the equivalence proptests
//! assert. See `distance.rs` for the kernels built on this contract.

/// Eight f32 lanes; the unit of the canonical reduction order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32x8(pub [f32; 8]);

/// Number of lanes in the canonical reduction.
pub const LANES: usize = 8;

impl std::ops::Add for F32x8 {
    type Output = F32x8;

    /// Lane-wise `self + o`.
    #[inline(always)]
    fn add(self, o: F32x8) -> F32x8 {
        let mut r = [0.0f32; 8];
        let mut j = 0;
        while j < 8 {
            r[j] = self.0[j] + o.0[j];
            j += 1;
        }
        F32x8(r)
    }
}

impl std::ops::Sub for F32x8 {
    type Output = F32x8;

    /// Lane-wise `self - o`.
    #[inline(always)]
    fn sub(self, o: F32x8) -> F32x8 {
        let mut r = [0.0f32; 8];
        let mut j = 0;
        while j < 8 {
            r[j] = self.0[j] - o.0[j];
            j += 1;
        }
        F32x8(r)
    }
}

impl std::ops::Mul for F32x8 {
    type Output = F32x8;

    /// Lane-wise `self * o`.
    #[inline(always)]
    fn mul(self, o: F32x8) -> F32x8 {
        let mut r = [0.0f32; 8];
        let mut j = 0;
        while j < 8 {
            r[j] = self.0[j] * o.0[j];
            j += 1;
        }
        F32x8(r)
    }
}

impl F32x8 {
    /// All lanes zero.
    pub const ZERO: F32x8 = F32x8([0.0; 8]);

    /// Loads eight consecutive elements starting at `s[0]`.
    ///
    /// # Panics
    /// Panics if `s.len() < 8`.
    #[inline(always)]
    pub fn load(s: &[f32]) -> F32x8 {
        F32x8([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
    }

    /// Lane-wise fused `self + a * b` (separate mul + add; no FMA, so
    /// the scalar fallback rounds identically).
    #[inline(always)]
    pub fn mul_add(self, a: F32x8, b: F32x8) -> F32x8 {
        self + a * b
    }

    /// Lane-wise absolute value.
    #[inline(always)]
    pub fn abs(self) -> F32x8 {
        let mut r = [0.0f32; 8];
        let mut j = 0;
        while j < 8 {
            r[j] = self.0[j].abs();
            j += 1;
        }
        F32x8(r)
    }

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, o: F32x8) -> F32x8 {
        let mut r = [0.0f32; 8];
        let mut j = 0;
        while j < 8 {
            r[j] = self.0[j].min(o.0[j]);
            j += 1;
        }
        F32x8(r)
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, o: F32x8) -> F32x8 {
        let mut r = [0.0f32; 8];
        let mut j = 0;
        while j < 8 {
            r[j] = self.0[j].max(o.0[j]);
            j += 1;
        }
        F32x8(r)
    }

    /// Canonical horizontal sum: the fixed pairwise tree
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
    ///
    /// This is the ONLY sanctioned way to collapse lane partials; a
    /// sequential `l0+l1+…+l7` fold rounds differently and would break
    /// the bit-identity contract.
    #[inline(always)]
    pub fn hsum(self) -> f32 {
        let l = self.0;
        ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
    }
}

/// Folds a term stream into lane partials following the canonical
/// order, vectorized over full 8-element chunks with the remainder
/// handled per-lane. `term(x, y)` must be a pure lane-wise function.
///
/// Returns the lane-partial vector; callers finish with [`F32x8::hsum`].
#[inline(always)]
pub fn fold_terms(a: &[f32], b: &[f32], term: impl Fn(F32x8, F32x8) -> F32x8) -> F32x8 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = F32x8::ZERO;
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        let va = F32x8::load(&a[base..]);
        let vb = F32x8::load(&b[base..]);
        acc = acc + term(va, vb);
    }
    let tail = chunks * LANES;
    if tail < a.len() {
        // Pad the final partial chunk with zeros in BOTH operands and
        // mask the term so padding lanes contribute exactly +0.0.
        let mut pa = [0.0f32; 8];
        let mut pb = [0.0f32; 8];
        let r = a.len() - tail;
        pa[..r].copy_from_slice(&a[tail..]);
        pb[..r].copy_from_slice(&b[tail..]);
        let mut t = term(F32x8(pa), F32x8(pb)).0;
        for lane in t.iter_mut().skip(r) {
            *lane = 0.0;
        }
        acc = acc + F32x8(t);
    }
    acc
}

/// Scalar reference for [`fold_terms`]: same contract, one element at a
/// time (`lane = i % 8`). Used by tests to prove the vector path
/// bit-identical; also the shape any non-x86 fallback must take.
pub fn fold_terms_scalar(a: &[f32], b: &[f32], term: impl Fn(f32, f32) -> f32) -> F32x8 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        lanes[i % LANES] += term(x, y);
    }
    F32x8(lanes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize, seed: u64) -> Vec<f32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 40) as i32 % 2000) as f32 / 321.0
            })
            .collect()
    }

    #[test]
    fn vector_and_scalar_folds_are_bit_identical() {
        // Lengths straddling every chunk/tail boundary shape.
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 100, 128, 1000] {
            let a = stream(n, 7 + n as u64);
            let b = stream(n, 131 + n as u64);
            let v = fold_terms(&a, &b, |x, y| {
                let d = x - y;
                d * d
            });
            let s = fold_terms_scalar(&a, &b, |x, y| {
                let d = x - y;
                d * d
            });
            for j in 0..LANES {
                assert_eq!(
                    v.0[j].to_bits(),
                    s.0[j].to_bits(),
                    "lane {j} diverges at n={n}"
                );
            }
            assert_eq!(v.hsum().to_bits(), s.hsum().to_bits(), "hsum at n={n}");
        }
    }

    #[test]
    fn hsum_is_the_fixed_pairwise_tree() {
        // Values chosen so sequential and pairwise folds round apart.
        let v = F32x8([1e8, -1e8, 1.0, 1e-8, 3.0, -3.0, 1e8, 1.0]);
        let l = v.0;
        let expect = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
        assert_eq!(v.hsum().to_bits(), expect.to_bits());
    }

    #[test]
    fn tail_padding_contributes_positive_zero() {
        // A non-zero term over (0,0) padding must be masked out: the
        // abs-diff term of padded zeros is +0.0 anyway, but a term like
        // max(x,y) over negative streams would not be. Use min/max.
        let a = [-1.0f32, -2.0, -3.0];
        let b = [-4.0f32, -5.0, -6.0];
        let v = fold_terms(&a, &b, |x, y| x.max(y));
        let s = fold_terms_scalar(&a, &b, |x, y| x.max(y));
        for j in 0..LANES {
            assert_eq!(v.0[j].to_bits(), s.0[j].to_bits(), "lane {j}");
        }
    }
}
