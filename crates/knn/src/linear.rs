//! Exact linear (brute-force) k-nearest-neighbor search.
//!
//! Linear search is the paper's reference point everywhere: it defines
//! ground truth for the recall metric, it is the behaviour approximate
//! indexes degrade to at high accuracy targets, and it is the workload of
//! the headline Fig. 6 comparison ("exact linear search, which is agnostic
//! to dataset composition and index traversal overheads").

use crate::distance::Metric;
use crate::index::{SearchBudget, SearchIndex, SearchStats};
use crate::topk::{Neighbor, TopK};
use crate::vecstore::VectorStore;

/// Brute-force scan of the entire store under a configurable metric.
#[derive(Debug, Clone, Copy)]
pub struct LinearSearch {
    metric: Metric,
}

impl LinearSearch {
    /// Linear search under `metric`.
    pub fn new(metric: Metric) -> Self {
        Self { metric }
    }

    /// The active metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }
}

impl Default for LinearSearch {
    fn default() -> Self {
        Self::new(Metric::Euclidean)
    }
}

impl SearchIndex for LinearSearch {
    fn search_with_stats(
        &self,
        store: &VectorStore,
        query: &[f32],
        k: usize,
        _budget: SearchBudget,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut top = TopK::new(k);
        for (id, v) in store.iter() {
            top.offer(id, self.metric.eval(query, v));
        }
        let stats = SearchStats {
            distance_evals: store.len(),
            leaves_visited: 1,
            interior_steps: 0,
        };
        (top.into_sorted(), stats)
    }

    fn family(&self) -> &'static str {
        "linear"
    }
}

/// Convenience free function: exact k nearest neighbors of `query` under
/// `metric`, best-first.
pub fn knn_exact(store: &VectorStore, query: &[f32], k: usize, metric: Metric) -> Vec<Neighbor> {
    LinearSearch::new(metric).search(store, query, k, SearchBudget::unlimited())
}

/// Scans only the listed candidate rows — the "bucket scan" primitive that
/// approximate indexes perform at the end of their traversals.
pub fn scan_candidates(
    store: &VectorStore,
    candidates: &[u32],
    query: &[f32],
    top: &mut TopK,
    metric: Metric,
) {
    for &id in candidates {
        top.offer(id, metric.eval(query, store.get(id)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_store() -> VectorStore {
        // Points on a line: ids 0..5 at x = 0,1,2,3,4.
        VectorStore::from_flat(1, vec![0.0, 1.0, 2.0, 3.0, 4.0])
    }

    #[test]
    fn finds_nearest_in_order() {
        let s = toy_store();
        let out = knn_exact(&s, &[2.2], 3, Metric::Euclidean);
        let ids: Vec<u32> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn k_larger_than_store_returns_all() {
        let s = toy_store();
        let out = knn_exact(&s, &[0.0], 10, Metric::Euclidean);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn stats_count_full_scan() {
        let s = toy_store();
        let (_, stats) =
            LinearSearch::default().search_with_stats(&s, &[1.0], 2, SearchBudget::default());
        assert_eq!(stats.distance_evals, 5);
    }

    #[test]
    fn manhattan_and_euclidean_agree_in_one_dimension() {
        let s = toy_store();
        let e = knn_exact(&s, &[3.4], 5, Metric::Euclidean);
        let m = knn_exact(&s, &[3.4], 5, Metric::Manhattan);
        let ids = |v: &[Neighbor]| v.iter().map(|n| n.id).collect::<Vec<_>>();
        assert_eq!(ids(&e), ids(&m));
    }

    #[test]
    fn scan_candidates_respects_subset() {
        let s = toy_store();
        let mut top = TopK::new(2);
        scan_candidates(&s, &[4, 0], &[0.1], &mut top, Metric::Euclidean);
        let out = top.into_sorted();
        assert_eq!(out[0].id, 0);
        assert_eq!(out[1].id, 4);
    }

    #[test]
    fn exact_results_sorted_by_distance() {
        let s = VectorStore::from_flat(2, vec![1.0, 1.0, -3.0, 0.5, 0.0, 0.0, 2.0, 2.0]);
        let out = knn_exact(&s, &[0.2, 0.1], 4, Metric::Euclidean);
        for w in out.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }
}
