//! Common interface for the approximate kNN indexes of Section II-C.
//!
//! Every index exposes a *search budget* — the number of leaves visited
//! during backtracking (kd-tree, k-means tree) or the number of probes per
//! table (MPLSH). Increasing the budget increases the fraction of the
//! dataset examined per query, trading throughput for accuracy; this is
//! the single knob swept to produce the paper's Fig. 2 and Fig. 7 curves.

use crate::topk::Neighbor;
use crate::vecstore::VectorStore;

/// Per-query work cap for an approximate index traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum leaves (buckets) to visit, including the initial descent
    /// (tree indexes), or probes per hash table (MPLSH).
    pub checks: usize,
}

impl SearchBudget {
    /// Budget of `checks` leaves/probes.
    pub fn checks(checks: usize) -> Self {
        Self {
            checks: checks.max(1),
        }
    }

    /// Effectively unlimited budget — degrades the index to linear-scan
    /// accuracy, the behaviour the paper notes "past 95–99% accuracy".
    pub fn unlimited() -> Self {
        Self { checks: usize::MAX }
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self::checks(32)
    }
}

/// Work accounting reported by a single query, used to derive throughput
/// proxies and to feed the SSAM device model with candidate-scan volumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Database vectors whose distance to the query was evaluated.
    pub distance_evals: usize,
    /// Leaves/buckets (or hash probes) visited.
    pub leaves_visited: usize,
    /// Interior tree nodes (or hash computations) traversed.
    pub interior_steps: usize,
}

impl SearchStats {
    /// Accumulates another query's stats (for batch averaging).
    pub fn merge(&mut self, other: &SearchStats) {
        self.distance_evals += other.distance_evals;
        self.leaves_visited += other.leaves_visited;
        self.interior_steps += other.interior_steps;
    }
}

/// An approximate (or exact) kNN index over a [`VectorStore`].
///
/// The store is passed back in at query time: indexes hold only ids and
/// routing structure, the vectors stay in their contiguous home — matching
/// the paper's memory layout where buckets are scanned in place.
pub trait SearchIndex {
    /// Returns the `k` (approximate) nearest neighbors of `query`,
    /// best-first, along with per-query work statistics.
    fn search_with_stats(
        &self,
        store: &VectorStore,
        query: &[f32],
        k: usize,
        budget: SearchBudget,
    ) -> (Vec<Neighbor>, SearchStats);

    /// Returns the `k` (approximate) nearest neighbors of `query`, best-first.
    fn search(
        &self,
        store: &VectorStore,
        query: &[f32],
        k: usize,
        budget: SearchBudget,
    ) -> Vec<Neighbor> {
        self.search_with_stats(store, query, k, budget).0
    }

    /// Human-readable index-family name (for experiment output).
    fn family(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_clamps_to_one() {
        assert_eq!(SearchBudget::checks(0).checks, 1);
    }

    #[test]
    fn unlimited_budget_is_max() {
        assert_eq!(SearchBudget::unlimited().checks, usize::MAX);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = SearchStats {
            distance_evals: 1,
            leaves_visited: 2,
            interior_steps: 3,
        };
        let b = SearchStats {
            distance_evals: 10,
            leaves_visited: 20,
            interior_steps: 30,
        };
        a.merge(&b);
        assert_eq!(a.distance_evals, 11);
        assert_eq!(a.leaves_visited, 22);
        assert_eq!(a.interior_steps, 33);
    }
}
