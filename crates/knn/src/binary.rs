//! Hamming-space representations (paper Section II-D).
//!
//! "Recent work has shown that Hamming codes can be an effective
//! alternative for Euclidean space representations. Binarization techniques
//! trade accuracy for higher throughput … Binarization also enables Hamming
//! distance calculations which are cheaper to implement in hardware."
//!
//! We binarize with random hyperplane codes (sign of projections onto
//! Gaussian directions), the same family the paper's MPLSH hashing uses.
//! Hamming distance is XOR + popcount — exactly what the SSAM `FXP`
//! (fused xor-popcount) instruction computes 32 dimensions at a time.

use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;

use crate::distance::dot;
use crate::topk::{Neighbor, TopK};
use crate::vecstore::VectorStore;

/// A set of binary codes, one per vector, packed into 32-bit words to match
/// the SSAM `FXP` instruction ("each 32-bit word is 32 dimensions of a
/// binary vector").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryStore {
    bits: usize,
    words_per_vec: usize,
    data: Vec<u32>,
}

impl BinaryStore {
    /// Creates an empty store for `bits`-dimensional codes.
    ///
    /// # Panics
    /// Panics if `bits == 0`.
    pub fn new(bits: usize) -> Self {
        assert!(bits > 0, "code length must be positive");
        Self {
            bits,
            words_per_vec: bits.div_ceil(32),
            data: Vec::new(),
        }
    }

    /// Appends a packed code; returns its id.
    ///
    /// # Panics
    /// Panics if `words.len()` differs from `words_per_vec()`.
    pub fn push(&mut self, words: &[u32]) -> u32 {
        assert_eq!(words.len(), self.words_per_vec, "code word-count mismatch");
        let id = self.len() as u32;
        self.data.extend_from_slice(words);
        id
    }

    /// Number of codes stored.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.words_per_vec).unwrap_or(0)
    }

    /// Whether the store holds no codes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Code length in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// 32-bit words per code.
    pub fn words_per_vec(&self) -> usize {
        self.words_per_vec
    }

    /// Borrow code `id`.
    pub fn get(&self, id: u32) -> &[u32] {
        let i = id as usize;
        &self.data[i * self.words_per_vec..(i + 1) * self.words_per_vec]
    }

    /// Payload size in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
    }
}

/// Hamming distance between two packed codes: `Σ popcount(a_i XOR b_i)`.
///
/// Accumulates into eight independent u32 lanes (the same chunk shape as
/// the float kernels in [`crate::simd`]) so LLVM vectorizes the
/// xor+popcount loop; integer addition is associative, so unlike the f32
/// kernels no ordering contract is needed — any order is bit-identical.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn hamming(a: &[u32], b: &[u32]) -> u32 {
    assert_eq!(a.len(), b.len(), "codes must have equal length");
    let mut lanes = [0u32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        let base = c * 8;
        let mut j = 0;
        while j < 8 {
            lanes[j] += (a[base + j] ^ b[base + j]).count_ones();
            j += 1;
        }
    }
    let mut total: u32 = lanes.iter().sum();
    for i in chunks * 8..a.len() {
        total += (a[i] ^ b[i]).count_ones();
    }
    total
}

/// Random-hyperplane binarizer: bit `i` of the code is the sign of the
/// projection onto Gaussian direction `i`.
#[derive(Debug, Clone)]
pub struct HyperplaneBinarizer {
    planes: VectorStore,
    bits: usize,
}

impl HyperplaneBinarizer {
    /// Samples `bits` Gaussian hyperplanes for `dims`-dimensional input.
    ///
    /// # Panics
    /// Panics if `bits == 0` or `dims == 0`.
    pub fn new(dims: usize, bits: usize, seed: u64) -> Self {
        assert!(bits > 0, "code length must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut planes = VectorStore::with_capacity(dims, bits);
        for _ in 0..bits {
            let v: Vec<f32> = (0..dims).map(|_| gaussian(&mut rng)).collect();
            planes.push(&v);
        }
        Self { planes, bits }
    }

    /// Code length in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Encodes one float vector into a packed code.
    pub fn encode(&self, v: &[f32]) -> Vec<u32> {
        let mut words = vec![0u32; self.bits.div_ceil(32)];
        for (i, p) in self.planes.iter() {
            if dot(v, p) >= 0.0 {
                words[(i / 32) as usize] |= 1 << (i % 32);
            }
        }
        words
    }

    /// Encodes an entire float store.
    pub fn encode_store(&self, store: &VectorStore) -> BinaryStore {
        let mut out = BinaryStore::new(self.bits);
        for (_, v) in store.iter() {
            out.push(&self.encode(v));
        }
        out
    }
}

fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Exact linear kNN in Hamming space, best-first.
pub fn knn_hamming(store: &BinaryStore, query: &[u32], k: usize) -> Vec<Neighbor> {
    let mut top = TopK::new(k);
    for id in 0..store.len() as u32 {
        top.offer(id, hamming(query, store.get(id)) as f32);
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::cosine_similarity;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use rand::SeedableRng;

    #[test]
    fn hamming_of_identical_codes_is_zero() {
        assert_eq!(hamming(&[0xDEAD_BEEF, 0x1234], &[0xDEAD_BEEF, 0x1234]), 0);
    }

    #[test]
    fn hamming_counts_differing_bits() {
        assert_eq!(hamming(&[0b1010], &[0b0110]), 2);
        assert_eq!(hamming(&[0u32], &[u32::MAX]), 32);
    }

    #[test]
    fn hamming_is_symmetric_and_triangle() {
        let a = [0x0F0Fu32];
        let b = [0x00FFu32];
        let c = [0xFFFFu32];
        assert_eq!(hamming(&a, &b), hamming(&b, &a));
        assert!(hamming(&a, &c) <= hamming(&a, &b) + hamming(&b, &c));
    }

    #[test]
    fn encoder_is_deterministic() {
        let b1 = HyperplaneBinarizer::new(8, 64, 5);
        let b2 = HyperplaneBinarizer::new(8, 64, 5);
        let v: Vec<f32> = (0..8).map(|i| i as f32 - 3.5).collect();
        assert_eq!(b1.encode(&v), b2.encode(&v));
    }

    #[test]
    fn encode_pads_to_word_boundary() {
        let b = HyperplaneBinarizer::new(4, 40, 1);
        let code = b.encode(&[1.0, -1.0, 0.5, 2.0]);
        assert_eq!(code.len(), 2);
        // Bits 40..64 must stay zero.
        assert_eq!(code[1] >> 8, 0);
    }

    #[test]
    fn opposite_vectors_get_complementary_codes() {
        let b = HyperplaneBinarizer::new(6, 32, 2);
        let v: Vec<f32> = vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.25];
        let neg: Vec<f32> = v.iter().map(|x| -x).collect();
        let cv = b.encode(&v);
        let cn = b.encode(&neg);
        // Hyperplanes through the origin flip every strictly-nonzero bit;
        // allow a few boundary ties.
        assert!(hamming(&cv, &cn) >= 30);
    }

    /// Random-hyperplane LSH property: E[hamming/bits] = angle/π, so codes
    /// of similar vectors are closer than codes of dissimilar ones.
    #[test]
    fn hamming_distance_tracks_angular_similarity() {
        let mut rng = StdRng::seed_from_u64(3);
        let dims = 16;
        let b = HyperplaneBinarizer::new(dims, 256, 4);
        let base: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
        // near: small perturbation; far: independent vector
        let near: Vec<f32> = base
            .iter()
            .map(|x| x + rng.random_range(-0.05f32..0.05))
            .collect();
        let far: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
        assert!(cosine_similarity(&base, &near) > cosine_similarity(&base, &far));
        let cb = b.encode(&base);
        assert!(hamming(&cb, &b.encode(&near)) < hamming(&cb, &b.encode(&far)));
    }

    #[test]
    fn knn_hamming_returns_sorted_unique() {
        let mut s = BinaryStore::new(32);
        for i in 0..50u32 {
            s.push(&[i * 0x0101]);
        }
        let out = knn_hamming(&s, &[0], 10);
        assert_eq!(out.len(), 10);
        for w in out.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn store_accessors() {
        let mut s = BinaryStore::new(64);
        s.push(&[1, 2]);
        s.push(&[3, 4]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.bits(), 64);
        assert_eq!(s.words_per_vec(), 2);
        assert_eq!(s.get(1), &[3, 4]);
        assert_eq!(s.bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "word-count mismatch")]
    fn push_rejects_wrong_width() {
        let mut s = BinaryStore::new(64);
        s.push(&[1]);
    }
}
