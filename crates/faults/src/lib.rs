//! Seeded, deterministic fault injection for the SSAM stack.
//!
//! A [`FaultPlan`] describes *what can go wrong* (DRAM bit flips, link CRC
//! corruption, vault/module outages, stragglers) as rates plus a seed, and a
//! [`RecoveryPolicy`] describes *how the stack responds* (bounded link
//! retries, capped exponential backoff for module failover, degradation and
//! probing thresholds). Every fault decision is a pure function of
//! `(seed, domain, scope, query_seq, unit, attempt)` via a splitmix64-style
//! hash, so a run is bit-reproducible: re-executing the same plan over the
//! same queries injects exactly the same faults, and bumping `attempt` gives
//! a retry an independent (but still deterministic) outcome.
//!
//! The [`FaultRecord`] counters travel with telemetry records and obey
//! closure invariants checked by [`FaultRecord::check_closure`]: every
//! injected fault must be corrected (ECC single), recovered (link retry,
//! module failover), or surfaced as lost coverage — none may vanish.

/// Finalizer from splitmix64; a strong 64-bit mixer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

// Hash domains keep the independent fault channels decorrelated even when
// they share the same (scope, seq, unit, attempt) key.
const DOMAIN_BIT_EVENTS: u64 = 1;
const DOMAIN_BIT_KIND: u64 = 2;
const DOMAIN_BIT_VICTIM: u64 = 3;
const DOMAIN_BIT_POS: u64 = 4;
const DOMAIN_CRC: u64 = 5;
const DOMAIN_VAULT_OUT: u64 = 6;
const DOMAIN_MODULE_OUT: u64 = 7;
const DOMAIN_STRAGGLE: u64 = 8;
const DOMAIN_CRASH: u64 = 9;

/// How the stack recovers from injected faults. Separate from the injection
/// rates so recovery behavior can be tuned (or exercised) independently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Module failover attempts after the initial try (cluster level).
    pub max_module_retries: u32,
    /// Base of the capped exponential backoff between module retries, seconds.
    pub backoff_base: f64,
    /// Backoff ceiling, seconds.
    pub backoff_cap: f64,
    /// Consecutive faulty batches after which a module is marked degraded
    /// and taken out of dispatch.
    pub degrade_after: u32,
    /// A degraded module is probed once every this many batches to detect
    /// recovery.
    pub probe_interval: u64,
    /// How many times ssam-serve re-enqueues a request whose batch failed
    /// (worker panic / degraded coverage with `require_full`).
    pub serve_retry_budget: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_module_retries: 2,
            backoff_base: 5e-6,
            backoff_cap: 100e-6,
            degrade_after: 3,
            probe_interval: 8,
            serve_retry_budget: 1,
        }
    }
}

impl RecoveryPolicy {
    /// Modeled wait before retry `attempt` (1-based): `min(base * 2^(a-1), cap)`.
    pub fn backoff(&self, attempt: u32) -> f64 {
        (self.backoff_base * f64::from(1u32 << (attempt.saturating_sub(1)).min(20)))
            .min(self.backoff_cap)
    }
}

/// A seeded description of the faults to inject. All rates are per
/// *opportunity*: `bit_flip_rate` is expected ECC events per (query, vault)
/// scan, `crc_corruption_rate` is per link-transfer attempt, the outage rates
/// are per (query, vault) / (batch, module), `straggler_rate` per
/// (query, vault).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    /// Expected DRAM bit-flip *events* per (query, vault) scan.
    pub bit_flip_rate: f64,
    /// Fraction of bit-flip events that hit two bits of a word
    /// (detected-but-uncorrectable under SECDED).
    pub double_bit_fraction: f64,
    /// Probability that one result-transfer attempt over the link is
    /// corrupted (caught by CRC, triggering a retransmission).
    pub crc_corruption_rate: f64,
    /// Retransmissions allowed per transfer before the link gives up.
    pub max_link_retries: u32,
    /// Extra seconds charged per retransmission on top of the re-sent wire
    /// time (timeout + reissue overhead).
    pub link_retry_penalty: f64,
    /// Probability a vault is unreachable for a whole (query, vault) scan.
    pub vault_outage_rate: f64,
    /// Vaults that are always out (hard failures).
    pub dead_vaults: Vec<u32>,
    /// Probability a module is unreachable for a whole batch attempt.
    pub module_outage_rate: f64,
    /// Modules that are always out.
    pub dead_modules: Vec<u32>,
    /// Probability a vault runs slow for a (query, vault) scan.
    pub straggler_rate: f64,
    /// Multiplicative slowdown applied to a straggling vault's time.
    pub straggler_slowdown: f64,
    /// Recovery knobs used by the cluster and serve layers.
    pub policy: RecoveryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            bit_flip_rate: 0.0,
            double_bit_fraction: 0.0,
            crc_corruption_rate: 0.0,
            max_link_retries: 2,
            link_retry_penalty: 1e-6,
            vault_outage_rate: 0.0,
            dead_vaults: Vec::new(),
            module_outage_rate: 0.0,
            dead_modules: Vec::new(),
            straggler_rate: 0.0,
            straggler_slowdown: 4.0,
            policy: RecoveryPolicy::default(),
        }
    }
}

/// Outcome of sampling the fault channels for one (query, vault) scan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VaultFault {
    /// Vault unreachable: no scan happens, its candidates are lost.
    pub outage: bool,
    /// Total ECC events injected into this scan.
    pub bit_flip_events: u32,
    /// Events that flipped two bits (detected, uncorrectable → vault lost).
    pub double_bit_events: u32,
    /// Corrupted transfer attempts on the result link.
    pub crc_corruptions: u32,
    /// The transfer was corrupted on every allowed attempt.
    pub link_failed: bool,
    /// Multiplicative slowdown; 1.0 means nominal speed.
    pub slowdown: f64,
}

impl VaultFault {
    /// No observable effect on this scan.
    pub fn is_trivial(&self) -> bool {
        !self.outage
            && self.bit_flip_events == 0
            && self.crc_corruptions == 0
            && !self.link_failed
            && self.slowdown == 1.0
    }

    /// ECC detected a double-bit error somewhere in the scan.
    pub fn uncorrectable(&self) -> bool {
        self.double_bit_events > 0
    }

    /// The vault's candidates cannot be trusted/delivered for this query.
    pub fn lost(&self) -> bool {
        self.outage || self.uncorrectable() || self.link_failed
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A moderate everything-at-once preset used by the CI chaos smoke.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            bit_flip_rate: 0.08,
            double_bit_fraction: 0.25,
            crc_corruption_rate: 0.05,
            vault_outage_rate: 0.01,
            module_outage_rate: 0.03,
            straggler_rate: 0.05,
            straggler_slowdown: 4.0,
            ..FaultPlan::default()
        }
    }

    /// True when no channel can ever fire.
    pub fn is_zero(&self) -> bool {
        self.bit_flip_rate == 0.0
            && self.crc_corruption_rate == 0.0
            && self.vault_outage_rate == 0.0
            && self.module_outage_rate == 0.0
            && self.straggler_rate == 0.0
            && self.dead_vaults.is_empty()
            && self.dead_modules.is_empty()
    }

    #[inline]
    fn hash(&self, domain: u64, scope: u64, seq: u64, unit: u64, idx: u64) -> u64 {
        let mut h = self.seed ^ GOLDEN;
        for x in [domain, scope, seq, unit, idx] {
            h = mix(h.wrapping_add(GOLDEN) ^ x);
        }
        h
    }

    #[inline]
    fn uniform(&self, domain: u64, scope: u64, seq: u64, unit: u64, idx: u64) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (self.hash(domain, scope, seq, unit, idx) >> 11) as f64 * (1.0 / 9007199254740992.0)
    }

    /// Sample every fault channel for one (query, vault) scan.
    ///
    /// `scope` disambiguates otherwise-identical key streams (cluster module
    /// index, serve worker index); `attempt` gives retries fresh outcomes.
    pub fn vault_fault(&self, scope: u64, query_seq: u64, vault: u64, attempt: u64) -> VaultFault {
        let mut f = VaultFault {
            slowdown: 1.0,
            ..VaultFault::default()
        };
        let key_seq = query_seq.wrapping_mul(0x1_0001).wrapping_add(attempt);
        if self.dead_vaults.contains(&(vault as u32))
            || (self.vault_outage_rate > 0.0
                && self.uniform(DOMAIN_VAULT_OUT, scope, key_seq, vault, 0)
                    < self.vault_outage_rate)
        {
            // Nothing runs and nothing is transferred, so the other channels
            // have no opportunity to fire.
            f.outage = true;
            return f;
        }
        if self.bit_flip_rate > 0.0 {
            let expected = self.bit_flip_rate;
            let mut events = expected.floor() as u32;
            if self.uniform(DOMAIN_BIT_EVENTS, scope, key_seq, vault, 0) < expected.fract() {
                events += 1;
            }
            f.bit_flip_events = events;
            for e in 0..events {
                if self.uniform(DOMAIN_BIT_KIND, scope, key_seq, vault, u64::from(e))
                    < self.double_bit_fraction
                {
                    f.double_bit_events += 1;
                }
            }
        }
        if self.crc_corruption_rate > 0.0 {
            let mut clean = false;
            for a in 0..=self.max_link_retries {
                if self.uniform(DOMAIN_CRC, scope, key_seq, vault, u64::from(a))
                    < self.crc_corruption_rate
                {
                    f.crc_corruptions += 1;
                } else {
                    clean = true;
                    break;
                }
            }
            f.link_failed = !clean;
        }
        if self.straggler_rate > 0.0
            && self.uniform(DOMAIN_STRAGGLE, scope, key_seq, vault, 0) < self.straggler_rate
        {
            f.slowdown = self.straggler_slowdown;
        }
        f
    }

    /// Is the whole module unreachable for this batch attempt?
    pub fn module_outage(&self, scope: u64, batch_seq: u64, module: u64, attempt: u64) -> bool {
        if self.dead_modules.contains(&(module as u32)) {
            return true;
        }
        if self.module_outage_rate == 0.0 {
            return false;
        }
        let key_seq = batch_seq.wrapping_mul(0x1_0001).wrapping_add(attempt);
        self.uniform(DOMAIN_MODULE_OUT, scope, key_seq, module, 0) < self.module_outage_rate
    }

    /// Deterministic victim word index for bit-flip event `event` (caller
    /// reduces modulo the shard length).
    pub fn victim_index(&self, scope: u64, query_seq: u64, vault: u64, event: u32) -> u64 {
        self.hash(
            DOMAIN_BIT_VICTIM,
            scope,
            query_seq,
            vault.wrapping_add(u64::from(event) << 32),
            0,
        )
    }

    /// Deterministic distinct bit positions (< `width`) for a flip event.
    /// Returns `(p0, p0)` for single flips and two distinct positions for
    /// doubles.
    pub fn flip_positions(
        &self,
        scope: u64,
        query_seq: u64,
        vault: u64,
        event: u32,
        width: u32,
        double: bool,
    ) -> (u32, u32) {
        let h = self.hash(DOMAIN_BIT_POS, scope, query_seq, vault, u64::from(event));
        let p0 = (h as u32) % width;
        if !double {
            return (p0, p0);
        }
        let mut p1 = ((h >> 32) as u32) % width;
        if p1 == p0 {
            p1 = (p1 + 1) % width;
        }
        (p0, p1)
    }

    /// Parse a `--faults` spec.
    ///
    /// Accepts the presets `none` and `chaos[:seed]`, or a comma-separated
    /// `key=value` list. Keys: `seed`, `bit_flip`, `double_frac`, `crc`,
    /// `link_retries`, `link_penalty`, `vault_out`, `dead_vaults` (`|`-separated
    /// ids), `module_out`, `dead_modules`, `straggle`, `slowdown`,
    /// `module_retries`, `retry_budget`.
    ///
    /// Example: `seed=7,bit_flip=0.1,double_frac=0.2,crc=0.05,vault_out=0.01`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(FaultPlan::none());
        }
        if let Some(rest) = spec.strip_prefix("chaos") {
            let seed = match rest.strip_prefix(':') {
                Some(s) => s
                    .parse::<u64>()
                    .map_err(|e| format!("bad chaos seed {s:?}: {e}"))?,
                None if rest.is_empty() => 0xc4a05,
                None => return Err(format!("bad fault preset {spec:?}")),
            };
            return Ok(FaultPlan::chaos(seed));
        }
        let mut plan = FaultPlan::none();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let fval = || {
                value
                    .parse::<f64>()
                    .map_err(|e| format!("bad value for {key}: {e}"))
            };
            let uval = || {
                value
                    .parse::<u64>()
                    .map_err(|e| format!("bad value for {key}: {e}"))
            };
            let list = || -> Result<Vec<u32>, String> {
                value
                    .split('|')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.parse::<u32>()
                            .map_err(|e| format!("bad id in {key}: {e}"))
                    })
                    .collect()
            };
            match key {
                "seed" => plan.seed = uval()?,
                "bit_flip" => plan.bit_flip_rate = fval()?,
                "double_frac" => plan.double_bit_fraction = fval()?,
                "crc" => plan.crc_corruption_rate = fval()?,
                "link_retries" => plan.max_link_retries = uval()? as u32,
                "link_penalty" => plan.link_retry_penalty = fval()?,
                "vault_out" => plan.vault_outage_rate = fval()?,
                "dead_vaults" => plan.dead_vaults = list()?,
                "module_out" => plan.module_outage_rate = fval()?,
                "dead_modules" => plan.dead_modules = list()?,
                "straggle" => plan.straggler_rate = fval()?,
                "slowdown" => plan.straggler_slowdown = fval()?,
                "module_retries" => plan.policy.max_module_retries = uval()? as u32,
                "retry_budget" => plan.policy.serve_retry_budget = uval()? as u32,
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        for (name, rate) in [
            ("bit_flip", plan.bit_flip_rate),
            ("double_frac", plan.double_bit_fraction),
            ("crc", plan.crc_corruption_rate),
            ("vault_out", plan.vault_outage_rate),
            ("module_out", plan.module_outage_rate),
            ("straggle", plan.straggler_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
        }
        if plan.straggler_slowdown < 1.0 {
            return Err(format!(
                "slowdown must be >= 1.0, got {}",
                plan.straggler_slowdown
            ));
        }
        Ok(plan)
    }
}

/// Seeded process-crash chooser for crash-recovery testing.
///
/// The mutable store's durability contract is "replaying the WAL after a
/// crash restores bit-identical state". Exercising that contract needs a
/// crash *point* — how many WAL bytes actually reached stable storage
/// before the process died, including torn tails that cut a record in
/// half. `CrashSpec` derives that point deterministically from
/// `(seed, event)` through the same splitmix64 mixer as the other fault
/// channels, so a failing crash case replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Base seed; different seeds give independent crash schedules.
    pub seed: u64,
}

impl CrashSpec {
    /// A crash schedule from a seed.
    pub fn new(seed: u64) -> Self {
        CrashSpec { seed }
    }

    /// How many WAL bytes survive crash number `event` of a log currently
    /// `wal_len` bytes long: uniform over `0..=wal_len`, so whole-record
    /// boundaries, torn tails, and the empty log are all reachable.
    pub fn torn_tail(&self, event: u64, wal_len: u64) -> u64 {
        if wal_len == 0 {
            return 0;
        }
        let mut h = self.seed ^ GOLDEN;
        for x in [DOMAIN_CRASH, event, wal_len] {
            h = mix(h.wrapping_add(GOLDEN) ^ x);
        }
        h % (wal_len + 1)
    }

    /// Per-module torn tail: like [`torn_tail`], but folds the module
    /// (shard replica) id into the hash chain, so a single crash event
    /// cuts every module's WAL at an *independent* point — the realistic
    /// sharded-crash shape where each device lost a different amount of
    /// its unsynced tail. `module` participates in the fold even when the
    /// lengths coincide, so two modules with identical WALs still tear
    /// differently.
    ///
    /// [`torn_tail`]: CrashSpec::torn_tail
    pub fn torn_tail_for(&self, module: u64, event: u64, wal_len: u64) -> u64 {
        if wal_len == 0 {
            return 0;
        }
        let mut h = self.seed ^ GOLDEN;
        for x in [DOMAIN_CRASH, module, event, wal_len] {
            h = mix(h.wrapping_add(GOLDEN) ^ x);
        }
        h % (wal_len + 1)
    }
}

/// Fault accounting that travels with telemetry records.
///
/// The counters obey linear closure invariants (see [`check_closure`]) so
/// they can be summed across vaults, queries, and modules and still balance:
/// an injected fault either leaves a "handled" trace (corrected, retried-ok,
/// failed-over) or a "lost" trace (a unit in `lost_units` with a cause
/// counter and the matching drop in `covered_vectors`).
///
/// [`check_closure`]: FaultRecord::check_closure
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultRecord {
    /// ECC events injected (single- or double-bit).
    pub bit_flip_events: u64,
    /// Single-bit events corrected in place by SECDED.
    pub ecc_corrected: u64,
    /// Double-bit events detected but not correctable.
    pub ecc_uncorrectable: u64,
    /// Corrupted link-transfer attempts caught by CRC.
    pub crc_corruptions: u64,
    /// Corrupted attempts recovered by retransmission (transfer succeeded).
    pub link_retries_ok: u64,
    /// Corrupted attempts on transfers that ultimately failed.
    pub link_failed_attempts: u64,
    /// Transfers abandoned after exhausting retries (one per lost link).
    pub link_failures: u64,
    /// (query, vault) scans skipped because the vault was unreachable.
    pub vault_outages: u64,
    /// Module-batch attempts that found the module unreachable.
    pub module_outages: u64,
    /// (query, vault) scans that ran at a straggler slowdown.
    pub stragglers: u64,
    /// Module batches recovered by failover to a healthy clone.
    pub failed_over: u64,
    /// Lost units by terminal cause (units also listed in `lost_units`).
    pub lost_ecc: u64,
    pub lost_link: u64,
    pub lost_outage: u64,
    pub lost_module: u64,
    /// Ids of lost units: vault ids at device level, module ids at cluster
    /// level (cluster records also fold in the modules' own lost vaults via
    /// the cause counters).
    pub lost_units: Vec<u32>,
    /// Candidate vectors actually scanned for the query (or batch).
    pub covered_vectors: u64,
    /// Candidate vectors that should have been scanned.
    pub total_vectors: u64,
    /// Modeled time spent on recovery: retransmissions + failover backoff.
    pub recovery_seconds: f64,
}

impl FaultRecord {
    /// Total injected fault events.
    pub fn injected(&self) -> u64 {
        self.bit_flip_events
            + self.crc_corruptions
            + self.vault_outages
            + self.module_outages
            + self.stragglers
    }

    /// Fraction of the candidate set actually scanned; 1.0 when nothing was
    /// expected (e.g. modeled-only records).
    pub fn coverage(&self) -> f64 {
        if self.total_vectors == 0 {
            1.0
        } else {
            self.covered_vectors as f64 / self.total_vectors as f64
        }
    }

    /// True when the record shows no fault activity and full coverage.
    pub fn is_trivial(&self) -> bool {
        self.injected() == 0
            && self.failed_over == 0
            && self.lost_units.is_empty()
            && self.recovery_seconds == 0.0
            && self.covered_vectors == self.total_vectors
    }

    /// Fold `other` into `self`. All invariants are linear, so accumulated
    /// records still pass [`check_closure`](FaultRecord::check_closure).
    pub fn accumulate(&mut self, other: &FaultRecord) {
        self.bit_flip_events += other.bit_flip_events;
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_uncorrectable += other.ecc_uncorrectable;
        self.crc_corruptions += other.crc_corruptions;
        self.link_retries_ok += other.link_retries_ok;
        self.link_failed_attempts += other.link_failed_attempts;
        self.link_failures += other.link_failures;
        self.vault_outages += other.vault_outages;
        self.module_outages += other.module_outages;
        self.stragglers += other.stragglers;
        self.failed_over += other.failed_over;
        self.lost_ecc += other.lost_ecc;
        self.lost_link += other.lost_link;
        self.lost_outage += other.lost_outage;
        self.lost_module += other.lost_module;
        self.lost_units.extend_from_slice(&other.lost_units);
        self.covered_vectors += other.covered_vectors;
        self.total_vectors += other.total_vectors;
        self.recovery_seconds += other.recovery_seconds;
    }

    /// Check that no fault vanished. Returns every violated invariant.
    pub fn check_closure(&self) -> Result<(), String> {
        let mut errs = Vec::new();
        if self.bit_flip_events != self.ecc_corrected + self.ecc_uncorrectable {
            errs.push(format!(
                "ECC leak: {} events != {} corrected + {} uncorrectable",
                self.bit_flip_events, self.ecc_corrected, self.ecc_uncorrectable
            ));
        }
        if self.crc_corruptions != self.link_retries_ok + self.link_failed_attempts {
            errs.push(format!(
                "CRC leak: {} corruptions != {} retried-ok + {} on-failed-links",
                self.crc_corruptions, self.link_retries_ok, self.link_failed_attempts
            ));
        }
        if self.link_failures > 0 && self.link_failed_attempts < self.link_failures {
            errs.push(format!(
                "{} link failures but only {} corrupted attempts on failed links",
                self.link_failures, self.link_failed_attempts
            ));
        }
        let lost = self.lost_ecc + self.lost_link + self.lost_outage + self.lost_module;
        if self.lost_units.len() as u64 != lost {
            errs.push(format!(
                "lost-unit leak: {} units != {} ecc + {} link + {} outage + {} module causes",
                self.lost_units.len(),
                self.lost_ecc,
                self.lost_link,
                self.lost_outage,
                self.lost_module
            ));
        }
        if self.lost_outage != self.vault_outages {
            errs.push(format!(
                "outage leak: {} vault outages != {} vaults lost to outage",
                self.vault_outages, self.lost_outage
            ));
        }
        if self.lost_link != self.link_failures {
            errs.push(format!(
                "link-loss leak: {} link failures != {} vaults lost to link",
                self.link_failures, self.lost_link
            ));
        }
        if self.covered_vectors > self.total_vectors {
            errs.push(format!(
                "coverage overflow: covered {} > total {}",
                self.covered_vectors, self.total_vectors
            ));
        }
        if self.lost_units.is_empty() && self.covered_vectors != self.total_vectors {
            errs.push(format!(
                "silent coverage loss: no lost units but covered {} != total {}",
                self.covered_vectors, self.total_vectors
            ));
        }
        if !self.lost_units.is_empty() && self.covered_vectors == self.total_vectors {
            errs.push(format!(
                "phantom loss: {} lost units but full coverage",
                self.lost_units.len()
            ));
        }
        if !self.recovery_seconds.is_finite() || self.recovery_seconds < 0.0 {
            errs.push(format!("bad recovery_seconds: {}", self.recovery_seconds));
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs.join("; "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_trivial_everywhere() {
        let plan = FaultPlan::none();
        assert!(plan.is_zero());
        for seq in 0..64 {
            for vault in 0..32 {
                assert!(plan.vault_fault(0, seq, vault, 0).is_trivial());
            }
            assert!(!plan.module_outage(0, seq, seq % 4, 0));
        }
    }

    #[test]
    fn sampling_is_deterministic_and_attempt_sensitive() {
        let plan = FaultPlan::chaos(42);
        let a = plan.vault_fault(3, 17, 5, 0);
        let b = plan.vault_fault(3, 17, 5, 0);
        assert_eq!(a, b);
        // Across many keys, attempt 1 must differ from attempt 0 somewhere.
        let differs = (0..256).any(|seq| {
            (0..32).any(|v| plan.vault_fault(0, seq, v, 0) != plan.vault_fault(0, seq, v, 1))
        });
        assert!(differs, "retry attempts never changed the outcome");
    }

    #[test]
    fn per_module_torn_tails_are_independent_and_bounded() {
        let crash = CrashSpec::new(0xDEAD_BEEF);
        for event in 0..8u64 {
            for len in [0u64, 1, 17, 4096] {
                for module in 0..6u64 {
                    let cut = crash.torn_tail_for(module, event, len);
                    assert!(cut <= len, "cut {cut} past wal end {len}");
                    assert_eq!(cut, crash.torn_tail_for(module, event, len));
                }
            }
            // Same event + length, different modules: the cut points must
            // decorrelate somewhere across events.
        }
        let differs = (0..16u64).any(|event| {
            crash.torn_tail_for(0, event, 4096) != crash.torn_tail_for(1, event, 4096)
        });
        assert!(differs, "module id never changed the torn-tail point");
        // The per-module variant is a distinct channel from the global one.
        let shifts = (0..16u64)
            .any(|event| crash.torn_tail_for(0, event, 4096) != crash.torn_tail(event, 4096));
        assert!(shifts, "torn_tail_for(0, ..) collapsed onto torn_tail");
    }

    #[test]
    fn seeds_decorrelate() {
        let a = FaultPlan::chaos(1);
        let b = FaultPlan::chaos(2);
        let differs = (0..256)
            .any(|seq| (0..32).any(|v| a.vault_fault(0, seq, v, 0) != b.vault_fault(0, seq, v, 0)));
        assert!(differs);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan {
            seed: 9,
            bit_flip_rate: 0.5,
            double_bit_fraction: 0.5,
            crc_corruption_rate: 0.25,
            vault_outage_rate: 0.1,
            straggler_rate: 0.2,
            ..FaultPlan::default()
        };
        let n = 20_000u64;
        let mut outages = 0u64;
        let mut flips = 0u64;
        let mut stragglers = 0u64;
        for seq in 0..n {
            let f = plan.vault_fault(0, seq, seq % 32, 0);
            if f.outage {
                outages += 1;
                continue;
            }
            flips += u64::from(f.bit_flip_events);
            if f.slowdown > 1.0 {
                stragglers += 1;
            }
        }
        let live = (n - outages) as f64;
        assert!((outages as f64 / n as f64 - 0.1).abs() < 0.02);
        assert!((flips as f64 / live - 0.5).abs() < 0.05);
        assert!((stragglers as f64 / live - 0.2).abs() < 0.02);
    }

    #[test]
    fn dead_vaults_always_out() {
        let plan = FaultPlan {
            dead_vaults: vec![7],
            ..FaultPlan::default()
        };
        for seq in 0..32 {
            assert!(plan.vault_fault(0, seq, 7, 0).outage);
            assert!(!plan.vault_fault(0, seq, 6, 0).outage);
        }
    }

    #[test]
    fn link_retry_bound_is_respected() {
        let plan = FaultPlan {
            seed: 5,
            crc_corruption_rate: 0.9,
            max_link_retries: 2,
            ..FaultPlan::default()
        };
        let mut saw_failure = false;
        let mut saw_recovery = false;
        for seq in 0..512 {
            let f = plan.vault_fault(0, seq, 0, 0);
            assert!(f.crc_corruptions <= plan.max_link_retries + 1);
            if f.link_failed {
                assert_eq!(f.crc_corruptions, plan.max_link_retries + 1);
                saw_failure = true;
            } else if f.crc_corruptions > 0 {
                saw_recovery = true;
            }
        }
        assert!(saw_failure && saw_recovery);
    }

    #[test]
    fn flip_positions_distinct_for_doubles() {
        let plan = FaultPlan::chaos(3);
        for e in 0..64 {
            let (p0, p1) = plan.flip_positions(0, 1, 2, e, 39, true);
            assert_ne!(p0, p1);
            assert!(p0 < 39 && p1 < 39);
            let (s0, s1) = plan.flip_positions(0, 1, 2, e, 39, false);
            assert_eq!(s0, s1);
        }
    }

    #[test]
    fn parser_round_trips_and_rejects() {
        let plan =
            FaultPlan::parse("seed=7,bit_flip=0.1,double_frac=0.2,crc=0.05,link_retries=3,vault_out=0.01,dead_vaults=1|5,straggle=0.1,slowdown=8,module_out=0.02,dead_modules=2,module_retries=4,retry_budget=2")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.bit_flip_rate, 0.1);
        assert_eq!(plan.max_link_retries, 3);
        assert_eq!(plan.dead_vaults, vec![1, 5]);
        assert_eq!(plan.dead_modules, vec![2]);
        assert_eq!(plan.straggler_slowdown, 8.0);
        assert_eq!(plan.policy.max_module_retries, 4);
        assert_eq!(plan.policy.serve_retry_budget, 2);
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("chaos:9").unwrap(), FaultPlan::chaos(9));
        assert!(FaultPlan::parse("chaos").unwrap().bit_flip_rate > 0.0);
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("bit_flip=2.0").is_err());
        assert!(FaultPlan::parse("slowdown=0.5").is_err());
        assert!(FaultPlan::parse("bit_flip").is_err());
    }

    #[test]
    fn closure_catches_leaks() {
        let mut r = FaultRecord {
            bit_flip_events: 3,
            ecc_corrected: 2,
            ecc_uncorrectable: 1,
            lost_ecc: 1,
            lost_units: vec![4],
            covered_vectors: 90,
            total_vectors: 100,
            ..FaultRecord::default()
        };
        r.check_closure().unwrap();
        r.ecc_corrected = 1; // one event vanished
        assert!(r.check_closure().unwrap_err().contains("ECC leak"));
    }

    #[test]
    fn closure_survives_accumulation() {
        let a = FaultRecord {
            crc_corruptions: 2,
            link_retries_ok: 2,
            covered_vectors: 50,
            total_vectors: 50,
            ..FaultRecord::default()
        };
        let mut b = FaultRecord {
            vault_outages: 1,
            lost_outage: 1,
            lost_units: vec![3],
            covered_vectors: 40,
            total_vectors: 50,
            ..FaultRecord::default()
        };
        a.check_closure().unwrap();
        b.check_closure().unwrap();
        b.accumulate(&a);
        b.check_closure().unwrap();
        assert_eq!(b.injected(), 3);
        assert!((b.coverage() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff(1), p.backoff_base);
        assert_eq!(p.backoff(2), p.backoff_base * 2.0);
        assert!(p.backoff(30) <= p.backoff_cap);
    }
}
