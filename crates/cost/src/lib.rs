//! # ssam-cost — the Section VI-A cost-of-specialization model
//!
//! The paper sizes a datacenter similarity-search fleet from public query
//! rates ("Google handles in excess of 56,000 queries per second, of
//! which up to 20% … are new and unique; we assume the remaining 80% are
//! serviced by a front-end cache"), then compares the three-year compute
//! energy cost of serving the unique-query stream on CPU servers versus
//! SSAM-based servers, against an $88 M ASIC NRE for a 28 nm design.
//!
//! This crate implements that analytical model with every assumption as
//! an explicit, documented parameter, so the `table_tco` experiment can
//! print the fleet sizes, power draws, energy costs, savings, and the
//! NRE break-even verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Hours in a (non-leap) year.
pub const HOURS_PER_YEAR: f64 = 24.0 * 365.0;

/// All model assumptions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoParams {
    /// Front-end query arrival rate, queries/second.
    pub total_qps: f64,
    /// Fraction of queries that miss the front-end cache (paper: 20%).
    pub unique_fraction: f64,
    /// Sustained unique-query throughput of one CPU server
    /// (GIST-sized descriptors on the Xeon baseline).
    pub qps_per_cpu_server: f64,
    /// Dynamic compute power of one CPU server under load, watts.
    pub cpu_server_dynamic_w: f64,
    /// Sustained throughput of one SSAM-equipped server.
    pub qps_per_ssam_server: f64,
    /// Dynamic compute power of one SSAM server, watts.
    pub ssam_server_dynamic_w: f64,
    /// Industrial electricity price, dollars per kWh (paper: $0.069).
    pub dollars_per_kwh: f64,
    /// Amortization horizon in years (paper: 3).
    pub years: f64,
    /// One-time ASIC mask + development cost, dollars (paper: $88 M at
    /// 28 nm, citing Austin's DAC'17 estimate).
    pub asic_nre_dollars: f64,
}

impl TcoParams {
    /// The paper's assumptions: 56 kQPS front end, 20% unique, Xeon
    /// serving medium (GIST-sized) descriptors (11,200 unique QPS needs
    /// ~1,800 machines → ~6.2 QPS/server at ~65 W dynamic), SSAM servers
    /// two orders of magnitude faster per the Fig. 6 results at a few
    /// watts of accelerator power.
    pub fn paper_defaults() -> Self {
        Self {
            total_qps: 56_000.0,
            unique_fraction: 0.20,
            qps_per_cpu_server: 6.3,
            cpu_server_dynamic_w: 65.0,
            qps_per_ssam_server: 630.0,
            ssam_server_dynamic_w: 40.0,
            dollars_per_kwh: 0.069,
            years: 3.0,
            asic_nre_dollars: 88.0e6,
        }
    }
}

/// Model outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoReport {
    /// Unique queries/second to serve.
    pub unique_qps: f64,
    /// CPU fleet size.
    pub cpu_servers: u64,
    /// SSAM fleet size.
    pub ssam_servers: u64,
    /// CPU fleet dynamic power, kW.
    pub cpu_power_kw: f64,
    /// SSAM fleet dynamic power, kW.
    pub ssam_power_kw: f64,
    /// CPU fleet energy cost over the horizon, dollars.
    pub cpu_energy_cost: f64,
    /// SSAM fleet energy cost over the horizon, dollars.
    pub ssam_energy_cost: f64,
    /// Energy-cost savings over the horizon, dollars.
    pub savings: f64,
    /// Whether savings cover the ASIC NRE within the horizon.
    pub nre_recovered: bool,
}

/// Evaluates the model.
///
/// # Panics
/// Panics if any rate/price parameter is non-positive or
/// `unique_fraction` is outside `(0, 1]`.
pub fn evaluate(p: &TcoParams) -> TcoReport {
    assert!(p.total_qps > 0.0, "total_qps must be positive");
    assert!(
        p.unique_fraction > 0.0 && p.unique_fraction <= 1.0,
        "unique_fraction must be in (0, 1]"
    );
    assert!(p.qps_per_cpu_server > 0.0 && p.qps_per_ssam_server > 0.0);
    assert!(p.dollars_per_kwh > 0.0 && p.years > 0.0);

    let unique_qps = p.total_qps * p.unique_fraction;
    let cpu_servers = (unique_qps / p.qps_per_cpu_server).ceil() as u64;
    let ssam_servers = (unique_qps / p.qps_per_ssam_server).ceil() as u64;
    let cpu_power_kw = cpu_servers as f64 * p.cpu_server_dynamic_w / 1000.0;
    let ssam_power_kw = ssam_servers as f64 * p.ssam_server_dynamic_w / 1000.0;
    let hours = p.years * HOURS_PER_YEAR;
    let cpu_energy_cost = cpu_power_kw * hours * p.dollars_per_kwh;
    let ssam_energy_cost = ssam_power_kw * hours * p.dollars_per_kwh;
    let savings = cpu_energy_cost - ssam_energy_cost;
    TcoReport {
        unique_qps,
        cpu_servers,
        ssam_servers,
        cpu_power_kw,
        ssam_power_kw,
        cpu_energy_cost,
        ssam_energy_cost,
        savings,
        nre_recovered: savings >= p.asic_nre_dollars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fleet_size_is_about_1800_machines() {
        let r = evaluate(&TcoParams::paper_defaults());
        assert_eq!(r.unique_qps, 11_200.0);
        assert!(
            (1700..=1850).contains(&(r.cpu_servers as i64)),
            "{}",
            r.cpu_servers
        );
    }

    #[test]
    fn paper_fleet_power_is_about_118_kw() {
        // The paper's "118 kW-hrs per second of dynamic compute power":
        // ~1800 machines × ~65 W.
        let r = evaluate(&TcoParams::paper_defaults());
        assert!(
            (110.0..125.0).contains(&r.cpu_power_kw),
            "{}",
            r.cpu_power_kw
        );
    }

    #[test]
    fn ssam_fleet_is_two_orders_smaller_in_energy() {
        let r = evaluate(&TcoParams::paper_defaults());
        assert!(r.cpu_energy_cost > 100.0 * r.ssam_energy_cost);
        assert!(r.savings > 0.0);
    }

    #[test]
    fn energy_only_savings_do_not_recover_nre() {
        // Honest model note (recorded in EXPERIMENTS.md): at $0.069/kWh,
        // three years of fleet *energy* alone (~$200k) cannot repay an
        // $88M NRE — the paper's $772M figure must fold in whole-server
        // TCO. The savings direction and ~100× ratio hold regardless.
        let r = evaluate(&TcoParams::paper_defaults());
        assert!(!r.nre_recovered);
    }

    #[test]
    fn nre_recovers_with_full_server_tco() {
        // Folding amortized whole-server cost into the per-kWh rate (as
        // Barroso & Hölzle's TCO method effectively does — the paper
        // cites it) recovers the NRE: the CPU fleet alone runs
        // ~$3k/server/year in capex+opex.
        let mut p = TcoParams::paper_defaults();
        p.dollars_per_kwh = 30.0; // effective fully-burdened rate
        let r = evaluate(&p);
        assert!(r.nre_recovered);
    }

    #[test]
    fn savings_scale_with_horizon() {
        let mut p = TcoParams::paper_defaults();
        let r3 = evaluate(&p);
        p.years = 6.0;
        let r6 = evaluate(&p);
        assert!((r6.savings / r3.savings - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_unique_traffic_needs_five_times_the_fleet() {
        let mut p = TcoParams::paper_defaults();
        let base = evaluate(&p).cpu_servers;
        p.unique_fraction = 1.0;
        let full = evaluate(&p).cpu_servers;
        assert!((full as f64 / base as f64 - 5.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "unique_fraction")]
    fn bad_fraction_rejected() {
        let mut p = TcoParams::paper_defaults();
        p.unique_fraction = 1.5;
        let _ = evaluate(&p);
    }
}
