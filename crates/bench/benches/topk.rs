//! Criterion microbenches for top-k structures: the software bounded heap
//! versus the hardware shift-register queue model.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use ssam_core::sim::pqueue::HardwarePriorityQueue;
use ssam_knn::topk::TopK;

fn candidates(n: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(2);
    (0..n).map(|_| rng.random_range(0.0..1000.0)).collect()
}

fn bench_topk(c: &mut Criterion) {
    let cands = candidates(100_000);
    let mut group = c.benchmark_group("topk");
    for k in [10usize, 16, 100] {
        group.bench_with_input(BenchmarkId::new("software_heap", k), &k, |bench, &k| {
            bench.iter(|| {
                let mut t = TopK::new(k);
                for (i, &d) in cands.iter().enumerate() {
                    t.offer(i as u32, black_box(d));
                }
                t.into_sorted()
            })
        });
    }
    group.bench_function("hw_queue_model_16", |bench| {
        bench.iter(|| {
            let mut q = HardwarePriorityQueue::new();
            for (i, &d) in cands.iter().enumerate() {
                q.insert(i as i32, black_box(d as i32));
            }
            q.len()
        })
    });
    group.bench_function("full_sort_reference", |bench| {
        bench.iter(|| {
            let mut v: Vec<(u32, u32)> = cands
                .iter()
                .enumerate()
                .map(|(i, &d)| (d.to_bits(), i as u32))
                .collect();
            v.sort_unstable();
            v.truncate(16);
            v
        })
    });
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
