//! Criterion microbenches for index build + query across the three
//! approximate-index families.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use ssam_knn::index::{SearchBudget, SearchIndex};
use ssam_knn::kdtree::{KdForest, KdTreeParams};
use ssam_knn::kmeans_tree::{KMeansTree, KMeansTreeParams};
use ssam_knn::linear::LinearSearch;
use ssam_knn::mplsh::{MplshParams, MultiProbeLsh};
use ssam_knn::{Metric, VectorStore};

fn dataset(n: usize, dims: usize) -> VectorStore {
    let mut rng = StdRng::seed_from_u64(3);
    let mut s = VectorStore::with_capacity(dims, n);
    for _ in 0..n {
        let v: Vec<f32> = (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect();
        s.push(&v);
    }
    s
}

fn bench_indexes(c: &mut Criterion) {
    let store = dataset(20_000, 64);
    let query: Vec<f32> = (0..64).map(|i| 0.01 * i as f32).collect();
    let budget = SearchBudget::checks(32);
    let k = 10;

    let kd = KdForest::build(&store, Metric::Euclidean, KdTreeParams::default());
    let km = KMeansTree::build(&store, Metric::Euclidean, KMeansTreeParams::default());
    let lsh = MultiProbeLsh::build(
        &store,
        Metric::Euclidean,
        MplshParams {
            tables: 4,
            hash_bits: 12,
            seed: 1,
        },
    );
    let lin = LinearSearch::new(Metric::Euclidean);

    let mut group = c.benchmark_group("query");
    group.bench_function("linear", |b| {
        b.iter(|| lin.search(&store, black_box(&query), k, SearchBudget::unlimited()))
    });
    group.bench_function("kdtree", |b| {
        b.iter(|| kd.search(&store, black_box(&query), k, budget))
    });
    group.bench_function("kmeans_tree", |b| {
        b.iter(|| km.search(&store, black_box(&query), k, budget))
    });
    group.bench_function("mplsh", |b| {
        b.iter(|| lsh.search(&store, black_box(&query), k, budget))
    });
    group.finish();

    let small = dataset(4000, 32);
    let mut build = c.benchmark_group("build");
    build.sample_size(10);
    for trees in [1usize, 4] {
        build.bench_with_input(BenchmarkId::new("kdtree", trees), &trees, |b, &t| {
            b.iter(|| {
                KdForest::build(
                    &small,
                    Metric::Euclidean,
                    KdTreeParams {
                        trees: t,
                        leaf_size: 16,
                        seed: 1,
                    },
                )
            })
        });
    }
    build.bench_function("kmeans_tree", |b| {
        b.iter(|| KMeansTree::build(&small, Metric::Euclidean, KMeansTreeParams::default()))
    });
    build.bench_function("mplsh", |b| {
        b.iter(|| {
            MultiProbeLsh::build(
                &small,
                Metric::Euclidean,
                MplshParams {
                    tables: 4,
                    hash_bits: 10,
                    seed: 1,
                },
            )
        })
    });
    build.finish();
}

criterion_group!(benches, bench_indexes);
criterion_main!(benches);
