//! Criterion microbenches for the assembler and instruction codec.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssam_core::asm::assemble;
use ssam_core::isa::encoding::{decode, encode};
use ssam_core::kernels::linear;

fn bench_assembler(c: &mut Criterion) {
    let kernel = linear::cosine(960, 8);
    let src = kernel.source.clone();
    c.bench_function("assemble_cosine_kernel", |b| {
        b.iter(|| assemble(black_box(&src)).expect("assembles"))
    });

    let words: Vec<u64> = kernel.program.iter().map(encode).collect();
    c.bench_function("encode_program", |b| {
        b.iter(|| {
            kernel
                .program
                .iter()
                .map(|i| encode(black_box(i)))
                .collect::<Vec<u64>>()
        })
    });
    c.bench_function("decode_program", |b| {
        b.iter(|| {
            words
                .iter()
                .map(|&w| decode(black_box(w)).expect("decodes"))
                .collect::<Vec<_>>()
        })
    });
}

criterion_group!(benches, bench_assembler);
criterion_main!(benches);
