//! Criterion microbenches for the distance kernels of Section II-D.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use ssam_knn::binary::hamming;
use ssam_knn::distance::{cosine_distance, manhattan, squared_euclidean};
use ssam_knn::fixed::{squared_euclidean_fixed, Fix32};

fn rand_vec(dims: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect()
}

fn bench_distances(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("distance");
    for dims in [100usize, 960, 4096] {
        let a = rand_vec(dims, &mut rng);
        let b = rand_vec(dims, &mut rng);
        group.bench_with_input(BenchmarkId::new("euclidean", dims), &dims, |bench, _| {
            bench.iter(|| squared_euclidean(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("manhattan", dims), &dims, |bench, _| {
            bench.iter(|| manhattan(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("cosine", dims), &dims, |bench, _| {
            bench.iter(|| cosine_distance(black_box(&a), black_box(&b)))
        });

        let fa: Vec<i32> = a.iter().map(|&x| Fix32::from_f32(x).0).collect();
        let fb: Vec<i32> = b.iter().map(|&x| Fix32::from_f32(x).0).collect();
        group.bench_with_input(
            BenchmarkId::new("euclidean_fixed", dims),
            &dims,
            |bench, _| bench.iter(|| squared_euclidean_fixed(black_box(&fa), black_box(&fb))),
        );

        let words = dims.div_ceil(32);
        let ba: Vec<u32> = (0..words).map(|_| rng.random()).collect();
        let bb: Vec<u32> = (0..words).map(|_| rng.random()).collect();
        group.bench_with_input(BenchmarkId::new("hamming", dims), &dims, |bench, _| {
            bench.iter(|| hamming(black_box(&ba), black_box(&bb)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
