//! Criterion microbenches for the PU simulator: whole-kernel scan
//! throughput per vector length and metric.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ssam_core::isa::DRAM_BASE;
use ssam_core::kernels::linear;
use ssam_core::sim::pu::ProcessingUnit;

fn bench_simulator(c: &mut Criterion) {
    let dims = 128usize;
    let n = 256usize;

    let mut group = c.benchmark_group("pu_scan");
    for vl in [2usize, 4, 8, 16] {
        let kernel = linear::euclidean(dims, vl);
        let vw = kernel.layout.vec_words;
        let words: Arc<Vec<i32>> = Arc::new((0..n * vw).map(|i| (i % 251) as i32).collect());
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("euclidean", vl), &vl, |b, _| {
            b.iter(|| {
                let mut pu = ProcessingUnit::new(vl, Arc::clone(&words));
                pu.load_program(kernel.program.clone());
                pu.scratchpad_mut()
                    .write_block(0, &vec![1 << 16; vw])
                    .expect("query");
                pu.set_sreg(1, DRAM_BASE as i32);
                pu.set_sreg(2, DRAM_BASE as i32 + (n * vw * 4) as i32);
                pu.run(100_000_000).expect("runs")
            })
        });
    }
    for vl in [4usize, 16] {
        let words_per_code = 8usize;
        let kernel = linear::hamming(words_per_code, vl);
        let vw = kernel.layout.vec_words;
        let words: Arc<Vec<i32>> = Arc::new(
            (0..n * vw)
                .map(|i| (i as u32).wrapping_mul(2654435761) as i32)
                .collect(),
        );
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("hamming", vl), &vl, |b, _| {
            b.iter(|| {
                let mut pu = ProcessingUnit::new(vl, Arc::clone(&words));
                pu.load_program(kernel.program.clone());
                pu.scratchpad_mut()
                    .write_block(0, &vec![0x5A5A; vw])
                    .expect("query");
                pu.set_sreg(1, DRAM_BASE as i32);
                pu.set_sreg(2, DRAM_BASE as i32 + (n * vw * 4) as i32);
                pu.run(100_000_000).expect("runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
