//! Criterion bench for the batched device execution engine: a 64-query
//! GloVe-stand-in batch through `SsamDevice::query_batch` versus the same
//! queries through a serial `query()` loop.
//!
//! The batched engine recycles one processing unit per (vault, tile) work
//! item (architectural-state reset instead of reconstruction — no 32 KB
//! scratchpad re-zeroing, no DRAM-interface realloc) and shares one
//! instruction image per kernel instead of cloning it per (query, vault),
//! so the win here is host-side engine overhead, not simulated cycles
//! (those are bit-identical by construction). Two shard sizes bracket the
//! regimes: at 4 vectors/vault the per-query engine overhead dominates
//! and batching wins outright; at 32 vectors/vault the (identical)
//! instruction-level simulation dominates and the paths converge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ssam_core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam_knn::VectorStore;

const DIMS: usize = 100; // GloVe width
const BATCH: usize = 64;
const K: usize = 10;

fn stand_in_store(vectors: usize) -> VectorStore {
    let mut store = VectorStore::with_capacity(DIMS, vectors);
    for i in 0..vectors {
        let v: Vec<f32> = (0..DIMS)
            .map(|j| ((i * 31 + j * 7) as f32 * 0.13).sin())
            .collect();
        store.push(&v);
    }
    store
}

fn queries() -> Vec<Vec<f32>> {
    (0..BATCH)
        .map(|i| {
            (0..DIMS)
                .map(|j| ((i * 17 + j * 5) as f32 * 0.21).cos())
                .collect()
        })
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let qs = queries();
    let mut group = c.benchmark_group("device_batch");
    group.throughput(Throughput::Elements(BATCH as u64));
    for vectors in [128usize, 1024] {
        let store = stand_in_store(vectors);
        let mut dev = SsamDevice::new(SsamConfig::default());
        dev.load_vectors(&store);

        group.bench_with_input(
            BenchmarkId::new("serial_loop", vectors),
            &vectors,
            |b, _| {
                b.iter(|| {
                    let mut out = Vec::with_capacity(BATCH);
                    for q in &qs {
                        out.push(dev.query(&DeviceQuery::Euclidean(q), K).expect("runs"));
                    }
                    out
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("query_batch", vectors),
            &vectors,
            |b, _| {
                let dq: Vec<DeviceQuery<'_>> =
                    qs.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
                b.iter(|| dev.query_batch(&dq, K).expect("runs"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
