//! Criterion microbenches for the HMC model: address mapping, vault
//! transactions, packet codec.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssam_hmc::address::AddressMap;
use ssam_hmc::packet::{Command, Packet};
use ssam_hmc::{HmcConfig, HmcModule};

fn bench_hmc(c: &mut Criterion) {
    let cfg = HmcConfig::hmc2();
    let interleaved = AddressMap::interleaved(&cfg);

    c.bench_function("address_split_range_1MiB", |b| {
        b.iter(|| interleaved.split_range(black_box(12345), black_box(1 << 20)))
    });

    c.bench_function("module_read_stream", |b| {
        b.iter(|| {
            let mut m = HmcModule::new_interleaved(cfg);
            let mut t = 0.0;
            for i in 0..256u64 {
                t = m.read(t, i * 4096, 4096);
            }
            t
        })
    });

    let pkt = Packet::request(Command::Write, 0xABCD, &[7u8; 96]);
    let frame = pkt.encode();
    c.bench_function("packet_encode", |b| b.iter(|| black_box(&pkt).encode()));
    c.bench_function("packet_decode", |b| {
        b.iter(|| Packet::decode(Bytes::clone(black_box(&frame))).expect("decodes"))
    });
}

criterion_group!(benches, bench_hmc);
criterion_main!(benches);
