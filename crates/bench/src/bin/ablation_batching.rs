//! **§I ablation** — why batching doesn't save the CPU.
//!
//! "Batching requests to amortize this data movement has limited benefits
//! as time-sensitive applications have stringent latency budgets."
//!
//! Models query batching on the CPU (each database stream amortized over
//! B queries) and on SSAM, reporting throughput *and* latency: batching
//! buys the CPU throughput only by letting latency grow with B, and the
//! gain saturates once the machine turns compute-bound. SSAM at B = 1
//! already beats the CPU at any practical batch.
//!
//! A second table backs the analytic SSAM column with *measured* batched
//! executions: real GloVe queries through the device's batched engine
//! ([`ssam_core::device::SsamDevice::query_batch`]), one kernel simulation
//! per (vault, query), pipelined under one provisioning decision.

use ssam_baselines::normalize::area_normalized_throughput;
use ssam_baselines::{CpuPlatform, ScanWorkload};
use ssam_bench::{fmt, print_table, ssam_scan_cost, ssam_with, ExpConfig};
use ssam_core::area::module_area;
use ssam_core::device::DeviceQuery;
use ssam_datasets::PaperDataset;
use ssam_hmc::HmcConfig;

fn main() {
    let cfg = ExpConfig::from_args(0.01);
    let spec = PaperDataset::Gist.scaled_spec(cfg.scale);
    let w = ScanWorkload::dense(spec.train, spec.dims);
    let cpu = CpuPlatform::xeon_e5_2620();
    let hmc = HmcConfig::hmc2();
    let freq = 1.0e9;
    let vl = 4;
    let cost = ssam_scan_cost(spec.dims, vl);
    // Provision PUs to saturate the vault controller, as the device does.
    let pu_demand = cost.bytes_per_vector / (cost.cycles_per_vector / freq);
    let pus = ((hmc.vault_bandwidth / pu_demand).ceil()).clamp(1.0, 8.0);
    let cpu_area = cpu.area_mm2_28nm();
    let ssam_area = module_area(vl).total();

    let mut rows = Vec::new();
    for batch in [1usize, 2, 4, 8, 16, 64, 256] {
        // CPU: one database stream serves the batch; compute scales per
        // query. All batched queries complete together (latency = batch
        // completion time).
        let cpu_mem = w.bytes_per_query() / cpu.mem_bandwidth;
        let cpu_cmp = batch as f64 * w.ops_per_query() / cpu.peak_ops();
        let cpu_time = cpu_mem.max(cpu_cmp);
        let cpu_tput = batch as f64 / cpu_time;

        // SSAM: vault-local streams; compute replicated per vault.
        let n = spec.train as f64;
        let ssam_mem = n * cost.bytes_per_vector / hmc.internal_bandwidth();
        let ssam_cmp = batch as f64 * n * cost.cycles_per_vector / (hmc.vaults as f64 * pus * freq);
        let ssam_time = ssam_mem.max(ssam_cmp);
        let ssam_tput = batch as f64 / ssam_time;

        rows.push(vec![
            batch.to_string(),
            fmt(cpu_tput),
            fmt(cpu_time * 1e3),
            fmt(ssam_tput),
            fmt(ssam_time * 1e3),
            format!(
                "{:.1}",
                area_normalized_throughput(ssam_tput, ssam_area)
                    / area_normalized_throughput(cpu_tput, cpu_area)
            ),
        ]);
    }

    println!(
        "\n§I ablation — batching on {} ({} x {}-d), CPU vs SSAM-{vl}",
        spec.name, spec.train, spec.dims
    );
    print_table(
        cfg.csv,
        &[
            "batch",
            "CPU q/s",
            "CPU latency ms",
            "SSAM q/s",
            "SSAM latency ms",
            "SSAM/CPU (per mm^2)",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: CPU batching trades latency for throughput (Section I:\n\
         'limited benefits as time-sensitive applications have stringent\n\
         latency budgets') and saturates at the compute roofline; SSAM needs\n\
         no batching and stays ~an order of magnitude ahead per mm^2."
    );

    // Measured SSAM batching: the same trend from real batched kernel
    // executions on a (scaled) GloVe load. Scale is kept small because
    // every (vault, query) pair is simulated instruction-by-instruction.
    let glove = ExpConfig {
        scale: (cfg.scale * 0.2).min(0.002),
        queries: cfg.queries,
        csv: cfg.csv,
        telemetry: None,
    }
    .benchmark(PaperDataset::GloVe);
    let k = glove.k();
    let mut dev = ssam_with(&glove.train, vl);
    let max_batch = glove.queries.len().min(16);
    let mut rows = Vec::new();
    for batch in [1usize, 2, 4, 8, 16] {
        if batch > max_batch {
            break;
        }
        let queries: Vec<Vec<f32>> = (0..batch as u32)
            .map(|i| glove.queries.get(i % glove.queries.len() as u32).to_vec())
            .collect();
        let dq: Vec<DeviceQuery<'_>> = queries.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
        let r = dev.query_batch(&dq, k).expect("device runs");
        let serial: f64 = r.results.iter().map(|q| q.timing.seconds).sum();
        rows.push(vec![
            batch.to_string(),
            fmt(r.timing.queries_per_second),
            fmt(r.timing.seconds * 1e3),
            fmt(r.timing.seconds_per_query * 1e6),
            fmt(serial / r.timing.seconds),
            fmt(r.timing.energy_mj / batch as f64),
        ]);
    }
    println!(
        "\nMeasured SSAM-{vl} batched engine on {} ({} x {}-d, k={k})",
        glove.spec.name,
        glove.train.len(),
        glove.train.dims()
    );
    print_table(
        cfg.csv,
        &[
            "batch",
            "q/s",
            "batch ms",
            "us/query",
            "speedup vs serial",
            "mJ/query",
        ],
        &rows,
    );
}
