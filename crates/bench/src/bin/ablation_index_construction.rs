//! **§VI-B** — offloading index construction to SSAM.
//!
//! "To train a hierarchical k-means indexing structure, we execute
//! k-means by treating cluster centroids as the dataset and streaming the
//! dataset in as kNN queries to determine the closest centroid. … the
//! bulk of each application kernel can be offloaded and benefits from the
//! augmented memory bandwidth."
//!
//! Costs one Lloyd assignment pass (the data-intensive scan): every
//! dataset vector is a k=1 query against the centroid set. The CPU path
//! is measured; the SSAM path prices the same scan with simulated kernel
//! cycles and HMC bandwidth. The host retains the short serialized
//! centroid-update phase in both cases.

use std::time::Instant;

use ssam_bench::{fmt, print_table, ssam_scan_cost, ExpConfig};
use ssam_core::isa::VECTOR_LENGTHS;
use ssam_datasets::PaperDataset;
use ssam_hmc::HmcConfig;
use ssam_knn::kmeans::nearest_centroid;
use ssam_knn::kmeans::{kmeans, KMeansParams};

const CENTROIDS: usize = 64;

fn main() {
    let cfg = ExpConfig::from_args(0.01);
    let hmc = HmcConfig::hmc2();
    let freq = 1.0e9;
    let mut rows = Vec::new();

    for dataset in PaperDataset::ALL {
        let bench = cfg.benchmark(dataset);
        let dims = bench.train.dims();
        eprintln!("[index-construction] {}", dataset.name());

        // Centroid seed via one short k-means run on a sample.
        let sample: Vec<u32> = (0..(bench.train.len() as u32).min(2000)).collect();
        let km = kmeans(
            &bench.train,
            Some(&sample),
            KMeansParams {
                k: CENTROIDS,
                max_iters: 2,
                seed: 3,
            },
        );

        // CPU assignment pass, measured.
        let start = Instant::now();
        let mut acc = 0u32;
        for (_, v) in bench.train.iter() {
            acc = acc.wrapping_add(nearest_centroid(&km.centroids, v).0);
        }
        let cpu_s = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);

        // SSAM assignment pass: the dataset streams from DRAM and the
        // centroid set lives in the scratchpad — but semantically it is
        // N scans of the centroid table. Equivalent near-data cost: the
        // whole dataset is read once at internal bandwidth, with compute
        // of cycles_per_vector(dims over CENTROIDS scans)… modeled as a
        // dataset-sized stream with CENTROIDS-deep per-vector compute.
        for &vl in &VECTOR_LENGTHS {
            let cost = ssam_scan_cost(dims, vl);
            let n = bench.train.len() as f64;
            let bytes = n * cost.bytes_per_vector;
            let cycles = n * CENTROIDS as f64 * cost.cycles_per_vector;
            let pus = 8.0;
            let mem_t = bytes / hmc.internal_bandwidth();
            let cmp_t = cycles / (hmc.vaults as f64 * pus * freq);
            let ssam_s = mem_t.max(cmp_t);
            rows.push(vec![
                dataset.name().into(),
                format!("SSAM-{vl}"),
                fmt(cpu_s * 1e3),
                fmt(ssam_s * 1e3),
                format!("{:.1}x", cpu_s / ssam_s),
                if cmp_t > mem_t {
                    "compute".into()
                } else {
                    "bandwidth".into()
                },
            ]);
        }
    }

    println!(
        "\n§VI-B — k-means assignment pass ({} centroids), host CPU vs SSAM offload, scale {}",
        CENTROIDS, cfg.scale
    );
    print_table(
        cfg.csv,
        &[
            "dataset",
            "design",
            "CPU ms/pass",
            "SSAM ms/pass",
            "speedup",
            "bound by",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: the data-intensive scan offloads profitably; the host\n\
         keeps only the short serialized centroid update."
    );
}
