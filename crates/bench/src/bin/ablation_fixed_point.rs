//! **§II-D ablation** — 32-bit fixed point versus 32-bit float.
//!
//! "We converted each dataset to a 32-bit fixed-point representation and
//! repeated the throughput versus accuracy experiments. Overall, we find
//! there is negligible accuracy loss between 32-bit floating-point and
//! 32-bit fixed-point data representations."
//!
//! This is what licenses the SSAM PU's fixed-point-only ALUs.

use ssam_bench::{print_table, ExpConfig};
use ssam_datasets::PaperDataset;
use ssam_knn::fixed::{knn_exact_fixed, FixedStore};
use ssam_knn::recall::recall_ids;

fn main() {
    let cfg = ExpConfig::from_args(0.01);
    let mut rows = Vec::new();

    for dataset in PaperDataset::ALL {
        let bench = cfg.benchmark(dataset);
        let fixed = FixedStore::from_store(&bench.train);
        let k = bench.k();

        let mut total = 0.0;
        let nq = bench.queries.len().min(50);
        for q in 0..nq as u32 {
            let query = fixed.quantize_query(bench.queries.get(q));
            let got = knn_exact_fixed(&fixed, &query, k);
            total += recall_ids(&bench.ground_truth.ids[q as usize], &got);
        }
        let recall = total / nq as f64;
        rows.push(vec![
            dataset.name().into(),
            bench.train.dims().to_string(),
            k.to_string(),
            format!("{recall:.4}"),
        ]);
    }

    println!("\n§II-D ablation — Q16.16 fixed-point exact search vs float ground truth");
    print_table(cfg.csv, &["dataset", "dims", "k", "recall vs float"], &rows);
    println!("\nPaper shape: negligible accuracy loss (recall ~= 1.0) at 32-bit fixed point.");
}
