//! **§VI-A** — the cost-of-specialization analysis.
//!
//! Prints the paper's fleet-sizing and three-year energy-cost comparison
//! with every assumption explicit, plus a sensitivity sweep over the
//! SSAM speedup and electricity price.

use ssam_bench::{fmt, print_table, ExpConfig};
use ssam_cost::{evaluate, TcoParams};

fn main() {
    let cfg = ExpConfig::from_args(1.0);
    let p = TcoParams::paper_defaults();
    let r = evaluate(&p);

    println!("\n§VI-A — datacenter TCO model (paper defaults)");
    let rows = vec![
        vec![
            "front-end query rate".into(),
            format!("{} q/s", p.total_qps),
        ],
        vec![
            "unique (cache-miss) fraction".into(),
            format!("{:.0}%", 100.0 * p.unique_fraction),
        ],
        vec!["unique query rate".into(), format!("{} q/s", r.unique_qps)],
        vec!["CPU servers needed".into(), r.cpu_servers.to_string()],
        vec!["SSAM servers needed".into(), r.ssam_servers.to_string()],
        vec![
            "CPU fleet dynamic power".into(),
            format!("{:.1} kW", r.cpu_power_kw),
        ],
        vec![
            "SSAM fleet dynamic power".into(),
            format!("{:.1} kW", r.ssam_power_kw),
        ],
        vec![
            format!("CPU energy cost / {} yr", p.years),
            format!("${}", fmt(r.cpu_energy_cost)),
        ],
        vec![
            format!("SSAM energy cost / {} yr", p.years),
            format!("${}", fmt(r.ssam_energy_cost)),
        ],
        vec!["energy savings".into(), format!("${}", fmt(r.savings))],
        vec![
            "ASIC NRE (28 nm)".into(),
            format!("${}", fmt(p.asic_nre_dollars)),
        ],
        vec![
            "NRE recovered by energy alone".into(),
            r.nre_recovered.to_string(),
        ],
    ];
    print_table(cfg.csv, &["quantity", "value"], &rows);

    println!("\nSensitivity: effective $/kWh folding in full server TCO (Barroso-style)");
    let mut rows = Vec::new();
    for rate in [0.069, 1.0, 5.0, 15.0, 30.0] {
        let mut q = p;
        q.dollars_per_kwh = rate;
        let rr = evaluate(&q);
        rows.push(vec![
            format!("${rate}/kWh"),
            format!("${}", fmt(rr.cpu_energy_cost)),
            format!("${}", fmt(rr.savings)),
            rr.nre_recovered.to_string(),
        ]);
    }
    print_table(
        cfg.csv,
        &[
            "effective rate",
            "CPU 3-yr cost",
            "savings",
            "NRE recovered",
        ],
        &rows,
    );

    println!(
        "\nNote (recorded in EXPERIMENTS.md): the paper reports $772M vs $4.69M\n\
         over three years; raw energy at $0.069/kWh for a ~118 kW fleet is\n\
         ~$214k, so the paper's figure necessarily folds in whole-server TCO.\n\
         The model preserves the paper's conclusions: ~100x fleet-energy\n\
         reduction, and specialization pays off under full-TCO accounting."
    );
}
