//! **ssam-lint** — static verification of every shipped SSAM kernel.
//!
//! Runs [`ssam_core::analysis::verify`] over the full kernel matrix
//! (metric × vector length × representative dimensionalities) and prints
//! each diagnostic as
//!
//! ```text
//! <kernel> dims=<d> @ pc <n>: <severity>[<CODE>]: <message>
//! ```
//!
//! Exit status is non-zero iff any kernel produces an **error**-severity
//! diagnostic; warnings (data-dependent stack growth in the tree
//! traversals) are reported but do not fail the lint. CI runs
//! `ssam-lint --all` after the experiment smoke tests.
//!
//! Usage:
//!
//! ```text
//! ssam-lint [--all] [FILTER]   # FILTER = substring of the kernel label
//! ssam-lint -q                 # errors only
//! ```

use ssam_core::analysis::{self, Severity};
use ssam_core::isa::VECTOR_LENGTHS;
use ssam_core::kernels::{kmeans_traversal, linear, lsh_traversal, traversal, Kernel};

/// Representative feature dimensionalities: the paper's datasets span
/// GloVe-100, GIST-960, and AlexNet-4096-style widths; 16 exercises the
/// dims < VL padding edge case.
const DIMS: [usize; 3] = [16, 100, 960];

/// Representative binary code widths (32-bit words) for Hamming kernels.
const HAMMING_WORDS: [usize; 2] = [4, 16];

/// The software-queue kernels specialize on `k` (the insertion loop is
/// unrolled against the queue depth), and the serving runtime stages one
/// such kernel per requested `k` — so lint representative serving depths
/// around the paper's canonical k = 10, not just k = 10 itself.
const SWQUEUE_KS: [usize; 3] = [1, 10, 40];

/// Every kernel in the matrix, labeled with its dimensionality — kernel
/// names encode the metric and VL but not the feature width, so without
/// the label the three `DIMS` instantiations are indistinguishable in
/// the report (and in `FILTER` matches).
fn all_kernels() -> Vec<(String, Kernel)> {
    let mut kernels: Vec<(String, Kernel)> = Vec::new();
    for &vl in &VECTOR_LENGTHS {
        for &dims in &DIMS {
            for kernel in [
                linear::euclidean(dims, vl),
                linear::manhattan(dims, vl),
                linear::cosine(dims, vl),
                traversal::kdtree_euclidean(dims, vl, 64),
                kmeans_traversal::kmeans_euclidean(dims, vl, 64),
                lsh_traversal::lsh_euclidean(dims, vl, 8, 64),
            ] {
                kernels.push((format!("{} dims={dims}", kernel.name), kernel));
            }
            for &k in &SWQUEUE_KS {
                for kernel in [
                    linear::euclidean_swqueue(dims, vl, k),
                    linear::manhattan_swqueue(dims, vl, k),
                    linear::cosine_swqueue(dims, vl, k),
                ] {
                    kernels.push((format!("{} dims={dims}", kernel.name), kernel));
                }
            }
        }
        for &words in &HAMMING_WORDS {
            let kernel = linear::hamming(words, vl);
            kernels.push((format!("{} words={words}", kernel.name), kernel));
            for &k in &SWQUEUE_KS {
                let kernel = linear::hamming_swqueue(words, vl, k);
                kernels.push((format!("{} words={words}", kernel.name), kernel));
            }
        }
    }
    kernels
}

/// Write one report line, exiting with the current verdict if the
/// downstream consumer (e.g. `ssam-lint | head`) has closed the pipe.
fn emit(out: &mut impl std::io::Write, errors: usize, line: std::fmt::Arguments) {
    if writeln!(out, "{line}").is_err() {
        std::process::exit(i32::from(errors > 0));
    }
}

fn main() {
    let mut filter: Option<String> = None;
    let mut quiet = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--all" => {} // the default; accepted for CI readability
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => {
                println!("usage: ssam-lint [--all] [-q|--quiet] [FILTER]");
                println!("Statically verifies every generated kernel; exits 1 on errors.");
                return;
            }
            other => filter = Some(other.to_string()),
        }
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut checked = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for (label, kernel) in all_kernels() {
        if let Some(f) = &filter {
            if !label.contains(f.as_str()) {
                continue;
            }
        }
        checked += 1;
        for d in analysis::verify(&kernel) {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            if quiet && d.severity != Severity::Error {
                continue;
            }
            let place = match d.pc {
                Some(pc) => format!(" @ pc {pc}"),
                None => String::new(),
            };
            emit(
                &mut out,
                errors,
                format_args!(
                    "{label}{place}: {}[{}]: {}",
                    d.severity,
                    d.code.as_str(),
                    d.message
                ),
            );
        }
    }

    emit(
        &mut out,
        errors,
        format_args!("ssam-lint: {checked} kernels checked, {errors} errors, {warnings} warnings"),
    );
    if errors > 0 {
        std::process::exit(1);
    }
}
