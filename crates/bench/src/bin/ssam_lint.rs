//! **ssam-lint** — static verification of every shipped SSAM kernel.
//!
//! Runs [`ssam_core::analysis::verify`] over the full kernel matrix
//! (metric × vector length × representative dimensionalities) and prints
//! each diagnostic as
//!
//! ```text
//! <kernel> dims=<d> @ pc <n>: <severity>[<CODE>]: <message>
//! ```
//!
//! Exit status is non-zero iff any kernel produces an **error**-severity
//! diagnostic; warnings (data-dependent stack growth in the tree
//! traversals) are reported but do not fail the lint. CI runs
//! `ssam-lint --all` after the experiment smoke tests.
//!
//! Usage:
//!
//! ```text
//! ssam-lint [--all] [FILTER]   # FILTER = substring of the kernel label
//! ssam-lint -q                 # errors only
//! ssam-lint --opt-report       # optimizer JSON report (and CI gate)
//! ssam-lint --cost [--n N]     # static cost-model JSON over the matrix
//! ```
//!
//! `--opt-report` emits one JSON object covering the whole matrix —
//! per-kernel before/after instruction counts and pass counters plus
//! per-family totals — and **gates**: it exits non-zero if optimization
//! ever *increased* an instruction count or introduced a lint error.
//! `--cost` runs [`analysis::cost::estimate`] over every kernel at a
//! representative shard size (default 1024 vectors, override with
//! `--n`), reporting cycle/traffic intervals and the roofline
//! classification the telemetry layer would assign.

use ssam_core::analysis::cost::{estimate, BoundClass};
use ssam_core::analysis::{self, Severity};
use ssam_core::isa::VECTOR_LENGTHS;
use ssam_core::kernels::{kmeans_traversal, linear, lsh_traversal, traversal, Kernel};

/// Representative feature dimensionalities: the paper's datasets span
/// GloVe-100, GIST-960, and AlexNet-4096-style widths; 16 exercises the
/// dims < VL padding edge case.
const DIMS: [usize; 3] = [16, 100, 960];

/// Representative binary code widths (32-bit words) for Hamming kernels.
const HAMMING_WORDS: [usize; 2] = [4, 16];

/// The software-queue kernels specialize on `k` (the insertion loop is
/// unrolled against the queue depth), and the serving runtime stages one
/// such kernel per requested `k` — so lint representative serving depths
/// around the paper's canonical k = 10, not just k = 10 itself.
const SWQUEUE_KS: [usize; 3] = [1, 10, 40];

/// Every kernel in the matrix, labeled with its dimensionality — kernel
/// names encode the metric and VL but not the feature width, so without
/// the label the three `DIMS` instantiations are indistinguishable in
/// the report (and in `FILTER` matches).
fn all_kernels() -> Vec<(String, Kernel)> {
    let mut kernels: Vec<(String, Kernel)> = Vec::new();
    for &vl in &VECTOR_LENGTHS {
        for &dims in &DIMS {
            for kernel in [
                linear::euclidean(dims, vl),
                linear::manhattan(dims, vl),
                linear::cosine(dims, vl),
                traversal::kdtree_euclidean(dims, vl, 64),
                kmeans_traversal::kmeans_euclidean(dims, vl, 64),
                lsh_traversal::lsh_euclidean(dims, vl, 8, 64),
            ] {
                kernels.push((format!("{} dims={dims}", kernel.name), kernel));
            }
            for &k in &SWQUEUE_KS {
                for kernel in [
                    linear::euclidean_swqueue(dims, vl, k),
                    linear::manhattan_swqueue(dims, vl, k),
                    linear::cosine_swqueue(dims, vl, k),
                ] {
                    kernels.push((format!("{} dims={dims}", kernel.name), kernel));
                }
            }
        }
        for &words in &HAMMING_WORDS {
            let kernel = linear::hamming(words, vl);
            kernels.push((format!("{} words={words}", kernel.name), kernel));
            for &k in &SWQUEUE_KS {
                let kernel = linear::hamming_swqueue(words, vl, k);
                kernels.push((format!("{} words={words}", kernel.name), kernel));
            }
        }
    }
    kernels
}

/// Write one report line, exiting with the current verdict if the
/// downstream consumer (e.g. `ssam-lint | head`) has closed the pipe.
fn emit(out: &mut impl std::io::Write, errors: usize, line: std::fmt::Arguments) {
    if writeln!(out, "{line}").is_err() {
        std::process::exit(i32::from(errors > 0));
    }
}

/// Kernel family: the name up to the `_vl` parameter suffix
/// (`linear_euclidean_swqueue_vl4_k10` → `linear_euclidean_swqueue`).
fn family(name: &str) -> &str {
    name.find("_vl").map_or(name, |i| &name[..i])
}

/// `ssam-lint --opt-report`: optimizer accounting as JSON, plus the CI
/// gate — optimization must never add instructions or lint errors.
fn opt_report(kernels: &[(String, Kernel)]) -> i32 {
    use std::collections::BTreeMap;
    let mut gate_failures: Vec<String> = Vec::new();
    let mut families: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    let mut rows = Vec::new();
    let (mut total_before, mut total_after) = (0u64, 0u64);
    for (label, kernel) in kernels {
        let r = &kernel.opt;
        if r.instructions_after > r.instructions_before {
            gate_failures.push(format!(
                "{label}: optimization grew the program ({} -> {})",
                r.instructions_before, r.instructions_after
            ));
        }
        let errors = analysis::verify(kernel)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        if errors > 0 {
            gate_failures.push(format!(
                "{label}: optimized kernel has {errors} lint error(s)"
            ));
        }
        total_before += r.instructions_before as u64;
        total_after += r.instructions_after as u64;
        let fam = families.entry(family(&kernel.name)).or_insert((0, 0));
        fam.0 += r.instructions_before as u64;
        fam.1 += r.instructions_after as u64;
        rows.push(format!(
            "    {{\"kernel\": \"{}\", \"before\": {}, \"after\": {}, \"folded\": {}, \
             \"branches_resolved\": {}, \"unreachable_removed\": {}, \"dead_removed\": {}, \
             \"redundant_loads\": {}, \"hoisted\": {}, \"rounds\": {}, \"lint_errors\": {}}}",
            label,
            r.instructions_before,
            r.instructions_after,
            r.folded,
            r.branches_resolved,
            r.unreachable_removed,
            r.dead_removed,
            r.redundant_loads,
            r.hoisted,
            r.rounds,
            errors
        ));
    }
    let fam_rows: Vec<String> = families
        .iter()
        .map(|(fam, (before, after))| {
            format!(
                "    {{\"family\": \"{fam}\", \"before\": {before}, \"after\": {after}, \
                 \"reduction_pct\": {:.2}}}",
                if *before > 0 {
                    100.0 * (before - after) as f64 / *before as f64
                } else {
                    0.0
                }
            )
        })
        .collect();
    println!("{{");
    println!("  \"kernels\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    println!("  \"families\": [");
    println!("{}", fam_rows.join(",\n"));
    println!("  ],");
    println!("  \"total_before\": {total_before},");
    println!("  \"total_after\": {total_after},");
    println!(
        "  \"reduction_pct\": {:.2},",
        100.0 * (total_before - total_after) as f64 / total_before as f64
    );
    println!("  \"gate_failures\": {}", gate_failures.len());
    println!("}}");
    for f in &gate_failures {
        eprintln!("ssam-lint gate: {f}");
    }
    i32::from(!gate_failures.is_empty())
}

/// Renders an [`analysis::cost::Interval`] as a JSON `{"min", "max"}`
/// pair, `max: null` when statically unbounded.
fn json_interval(iv: analysis::cost::Interval) -> String {
    match iv.max {
        Some(max) => format!("{{\"min\": {}, \"max\": {max}}}", iv.min),
        None => format!("{{\"min\": {}, \"max\": null}}", iv.min),
    }
}

/// `ssam-lint --cost`: the static cost model over the kernel matrix.
fn cost_report(kernels: &[(String, Kernel)], n: u64) -> i32 {
    let rows: Vec<String> = kernels
        .iter()
        .map(|(label, kernel)| {
            let e = estimate(kernel, kernel.layout.vl, n);
            let bound = match e.bound {
                Some(BoundClass::Compute) => "\"compute\"",
                Some(BoundClass::Memory) => "\"memory\"",
                None => "null",
            };
            format!(
                "    {{\"kernel\": \"{label}\", \"vl\": {}, \"n\": {n}, \"exact\": {}, \
                 \"instructions\": {}, \"cycles\": {}, \"dram_bytes\": {}, \
                 \"comp_seconds\": {:.9}, \"mem_seconds\": {:.9}, \"bound\": {bound}}}",
                kernel.layout.vl,
                e.exact,
                json_interval(e.instructions),
                json_interval(e.cycles),
                json_interval(e.dram_bytes),
                e.comp_seconds,
                e.mem_seconds,
            )
        })
        .collect();
    println!("{{");
    println!("  \"kernels\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
    0
}

fn main() {
    let mut filter: Option<String> = None;
    let mut quiet = false;
    let mut mode_opt_report = false;
    let mut mode_cost = false;
    let mut cost_n = 1024u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => {} // the default; accepted for CI readability
            "-q" | "--quiet" => quiet = true,
            "--opt-report" => mode_opt_report = true,
            "--cost" => mode_cost = true,
            "--n" => {
                cost_n = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("ssam-lint: --n requires a positive integer");
                    std::process::exit(2);
                });
            }
            "-h" | "--help" => {
                println!("usage: ssam-lint [--all] [-q|--quiet] [FILTER]");
                println!("       ssam-lint --opt-report   # optimizer JSON + CI gate");
                println!("       ssam-lint --cost [--n N] # static cost model JSON");
                println!("Statically verifies every generated kernel; exits 1 on errors.");
                return;
            }
            other => filter = Some(other.to_string()),
        }
    }

    if mode_opt_report || mode_cost {
        let kernels: Vec<(String, Kernel)> = all_kernels()
            .into_iter()
            .filter(|(label, _)| filter.as_ref().is_none_or(|f| label.contains(f.as_str())))
            .collect();
        let mut status = 0;
        if mode_opt_report {
            status = status.max(opt_report(&kernels));
        }
        if mode_cost {
            status = status.max(cost_report(&kernels, cost_n));
        }
        std::process::exit(status);
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut checked = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for (label, kernel) in all_kernels() {
        if let Some(f) = &filter {
            if !label.contains(f.as_str()) {
                continue;
            }
        }
        checked += 1;
        for d in analysis::verify(&kernel) {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            if quiet && d.severity != Severity::Error {
                continue;
            }
            let place = match d.pc {
                Some(pc) => format!(" @ pc {pc}"),
                None => String::new(),
            };
            emit(
                &mut out,
                errors,
                format_args!(
                    "{label}{place}: {}[{}]: {}",
                    d.severity,
                    d.code.as_str(),
                    d.message
                ),
            );
        }
    }

    emit(
        &mut out,
        errors,
        format_args!("ssam-lint: {checked} kernels checked, {errors} errors, {warnings} warnings"),
    );
    if errors > 0 {
        std::process::exit(1);
    }
}
