//! **Table V** — relative SSAM throughput of alternative distance metrics
//! versus Euclidean, per dataset.
//!
//! Paper reference (SSAM-4):
//!
//! | metric     | GloVe | GIST  | AlexNet |
//! |------------|-------|-------|---------|
//! | Euclidean  | 1×    | 1×    | 1×      |
//! | Hamming    | 4.38× | 7.98× | 9.38×   |
//! | Cosine     | 0.46× | 0.47× | 0.47×   |
//! | Manhattan  | 0.94× | 0.99× | 0.99×   |

use ssam_bench::{print_table, ExpConfig};
use ssam_core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam_datasets::PaperDataset;
use ssam_knn::binary::HyperplaneBinarizer;

const VL: usize = 4;
const SAMPLES: usize = 2;

fn main() {
    let cfg = ExpConfig::from_args(0.002);
    let mut rows = Vec::new();
    let paper: [(&str, [f64; 3]); 4] = [
        ("euclidean", [1.0, 1.0, 1.0]),
        ("hamming", [4.38, 7.98, 9.38]),
        ("cosine", [0.46, 0.47, 0.47]),
        ("manhattan", [0.94, 0.99, 0.99]),
    ];

    let mut measured: Vec<[f64; 3]> = vec![[0.0; 3]; 4];
    for (d, dataset) in PaperDataset::ALL.into_iter().enumerate() {
        let bench = cfg.benchmark(dataset);
        let k = bench.k();
        eprintln!("[table5] {}", dataset.name());

        // Dense metrics share one device load.
        let mut dev = SsamDevice::new(SsamConfig {
            vector_length: VL,
            ..SsamConfig::default()
        });
        dev.load_vectors(&bench.train);
        let queries: Vec<Vec<f32>> = (0..SAMPLES.min(bench.queries.len()) as u32)
            .map(|i| bench.queries.get(i).to_vec())
            .collect();

        let qps = |dev: &mut SsamDevice, make: &dyn Fn(&Vec<f32>) -> DeviceQuery<'_>| -> f64 {
            let dq: Vec<DeviceQuery<'_>> = queries.iter().map(make).collect();
            dev.estimate_throughput(&dq, k)
                .expect("device runs")
                .queries_per_second
        };
        let eu = qps(&mut dev, &|q| DeviceQuery::Euclidean(q));
        let ma = qps(&mut dev, &|q| DeviceQuery::Manhattan(q));
        let co = qps(&mut dev, &|q| DeviceQuery::Cosine(q));

        // Hamming: binarize to the padded dimensionality (32-bit words).
        let bits = bench.train.dims().div_ceil(32) * 32;
        let binarizer = HyperplaneBinarizer::new(bench.train.dims(), bits, 9);
        let codes = binarizer.encode_store(&bench.train);
        let mut bdev = SsamDevice::new(SsamConfig {
            vector_length: VL,
            ..SsamConfig::default()
        });
        bdev.load_binary(&codes);
        let bqueries: Vec<Vec<u32>> = queries.iter().map(|q| binarizer.encode(q)).collect();
        let dq: Vec<DeviceQuery<'_>> = bqueries.iter().map(|q| DeviceQuery::Hamming(q)).collect();
        let ha = bdev
            .estimate_throughput(&dq, k)
            .expect("device runs")
            .queries_per_second;

        measured[0][d] = 1.0;
        measured[1][d] = ha / eu;
        measured[2][d] = co / eu;
        measured[3][d] = ma / eu;
    }

    for (m, (name, p)) in paper.iter().enumerate() {
        rows.push(vec![
            (*name).into(),
            format!("{:.2}x", measured[m][0]),
            format!("{:.2}x", measured[m][1]),
            format!("{:.2}x", measured[m][2]),
            format!("{:.2}/{:.2}/{:.2}", p[0], p[1], p[2]),
        ]);
    }

    println!(
        "\nTable V — relative SSAM-{VL} throughput vs Euclidean (scale {})",
        cfg.scale
    );
    print_table(
        cfg.csv,
        &["metric", "GloVe", "GIST", "AlexNet", "paper (G/Gi/A)"],
        &rows,
    );
    println!(
        "\nPaper shape: Hamming gains grow with dimensionality (binarized data\n\
         is 32x smaller and FXP fuses the per-word work); cosine costs ~2x\n\
         Euclidean (software division); Manhattan ~parity."
    );
}
