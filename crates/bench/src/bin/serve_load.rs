//! **serve-load** — load generator for the online serving runtime.
//!
//! Drives [`ssam_serve::Server`] over a scaled GloVe device two ways:
//!
//! * **Closed loop**: a sweep over client concurrencies; each client
//!   thread issues its next query the moment the previous one returns.
//!   Reported per point: sustained throughput, p50/p95/p99 latency, and
//!   the batch-size histogram the dynamic batcher actually formed. The
//!   highest-concurrency point is repeated against a `max_batch = 1`
//!   server (batch-of-1 serial serving) and against the *offline*
//!   `query_batch` path at the same mean batch size, so the run directly
//!   answers "what does dynamic batching buy, and how close is serving
//!   to the offline ceiling?".
//! * **Open loop**: a Poisson arrival process at a fixed rate (default:
//!   70% of the best closed-loop throughput) with non-blocking
//!   submission, the regime where admission control matters — rejected
//!   and deadline-expired requests are counted, never waited on.
//!   Arrivals follow an **absolute schedule** (each tenant's next-arrival
//!   instant is the previous one plus an exponential draw, paced with
//!   sleep-until plus a short spin tail), so the offered rate has no
//!   per-request sleep floor and no drift; the run **fails if achieved
//!   diverges from offered by more than 5%**. Tail percentiles are
//!   reported both over completed requests and over completed+expired
//!   (each expired request counted at its deadline), so shedding load
//!   cannot cosmetically improve the reported p99.
//!
//! With `--tenants <spec>` the open loop becomes a multi-tenant QoS
//! harness: `name:rate=R[,weight=W][,tier=T][,limit=L][,burst=B]`
//! `[,timeout_ms=MS][,min_cov=F][,storm];...` — each tenant is an
//! independent Poisson stream at `rate` q/s, scheduled with per-tenant
//! weight/tier/token-bucket admission (`limit`/`burst`), and `storm`
//! confines the `--faults` plan to that tenant
//! ([`ssam_serve::ServeFaults::storm_tenants`]). The report gains
//! per-tenant p50/p95/p99, goodput, and a Jain fairness index over the
//! fraction of each tenant's demand that was served.
//!
//! Every served query flows through the device's self-checking telemetry
//! ([`ssam_core::telemetry`]); the run **fails** if any accounting
//! violation is retained, so the load test doubles as an end-to-end
//! audit of the serve path. Results go to `BENCH_serve.json` (see
//! `--json`), optionally with the raw per-query records as JSONL
//! (`--telemetry`).
//!
//! With `--faults <spec>` (a [`ssam_faults::FaultPlan::parse`] spec such
//! as `chaos:7` or `seed=3,bit_flip=0.5,vault_out=0.02`) every worker
//! device injects seeded faults; the run then also audits the fault
//! accounting — aggregate injected/corrected/retried/lost counters must
//! close exactly or the run fails — and emits them under `"faults"` in
//! the JSON report.
//!
//! ```text
//! serve_load [--seconds N] [--concurrency 1,4,16,64] [--workers N]
//!            [--max-batch N] [--linger-us N] [--scale F] [--k N]
//!            [--rate QPS] [--timeout-ms N] [--tenants SPEC]
//!            [--faults SPEC] [--json PATH] [--telemetry PATH] [--csv]
//! ```

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ssam_bench::{fmt, print_table};
use ssam_core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam_core::telemetry::Telemetry;
use ssam_datasets::json::{self, Value};
use ssam_datasets::PaperDataset;
use ssam_faults::FaultPlan;
use ssam_knn::VectorStore;
use ssam_serve::qos::jain_index;
use ssam_serve::{
    OwnedQuery, QosConfig, Request, ServeConfig, ServeError, ServeFaults, Server, TenantId,
    TenantQos,
};

struct Args {
    seconds: f64,
    concurrency: Vec<usize>,
    workers: usize,
    max_batch: usize,
    linger: Duration,
    scale: f64,
    k: Option<usize>,
    rate: Option<f64>,
    timeout: Option<Duration>,
    tenants: Option<String>,
    min_jain: Option<f64>,
    mutate: Option<String>,
    memtable: Option<usize>,
    shards: usize,
    replicas: usize,
    faults: Option<String>,
    json: String,
    telemetry: Option<String>,
    csv: bool,
    no_opt: bool,
    fast_path: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        seconds: 5.0,
        concurrency: vec![1, 4, 16, 64],
        workers: 2,
        max_batch: 16,
        linger: Duration::from_micros(500),
        scale: 0.001,
        k: None,
        rate: None,
        timeout: None,
        tenants: None,
        min_jain: None,
        mutate: None,
        memtable: None,
        shards: 1,
        replicas: 1,
        faults: None,
        json: "BENCH_serve.json".to_string(),
        telemetry: None,
        csv: false,
        no_opt: false,
        fast_path: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i)
            .cloned()
            .unwrap_or_else(|| panic!("{what} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--seconds" => a.seconds = take(&mut i, "--seconds").parse().expect("float"),
            "--concurrency" => {
                a.concurrency = take(&mut i, "--concurrency")
                    .split(',')
                    .map(|s| s.trim().parse().expect("integer list"))
                    .collect();
                assert!(
                    !a.concurrency.is_empty(),
                    "--concurrency needs at least one"
                );
            }
            "--workers" => a.workers = take(&mut i, "--workers").parse().expect("integer"),
            "--max-batch" => a.max_batch = take(&mut i, "--max-batch").parse().expect("integer"),
            "--linger-us" => {
                a.linger = Duration::from_micros(take(&mut i, "--linger-us").parse().expect("µs"));
            }
            "--scale" => a.scale = take(&mut i, "--scale").parse().expect("float"),
            "--k" => a.k = Some(take(&mut i, "--k").parse().expect("integer")),
            "--rate" => a.rate = Some(take(&mut i, "--rate").parse().expect("float")),
            "--timeout-ms" => {
                a.timeout = Some(Duration::from_millis(
                    take(&mut i, "--timeout-ms").parse().expect("ms"),
                ));
            }
            "--tenants" => a.tenants = Some(take(&mut i, "--tenants")),
            "--min-jain" => {
                a.min_jain = Some(take(&mut i, "--min-jain").parse().expect("float"));
            }
            "--mutate" => a.mutate = Some(take(&mut i, "--mutate")),
            "--memtable" => {
                a.memtable = Some(take(&mut i, "--memtable").parse().expect("integer"));
            }
            "--shards" => a.shards = take(&mut i, "--shards").parse().expect("integer"),
            "--replicas" => a.replicas = take(&mut i, "--replicas").parse().expect("integer"),
            "--faults" => a.faults = Some(take(&mut i, "--faults")),
            "--json" => a.json = take(&mut i, "--json"),
            "--telemetry" => a.telemetry = Some(take(&mut i, "--telemetry")),
            "--csv" => a.csv = true,
            "--no-opt" => a.no_opt = true,
            "--fast-path" => a.fast_path = true,
            "-h" | "--help" => {
                println!(
                    "usage: serve_load [--seconds N] [--concurrency 1,4,16,64] [--workers N]\n\
                     \x20                 [--max-batch N] [--linger-us N] [--scale F] [--k N]\n\
                     \x20                 [--rate QPS] [--timeout-ms N] [--tenants SPEC]\n\
                     \x20                 [--min-jain F] [--faults SPEC] [--json PATH]\n\
                     \x20                 [--telemetry PATH] [--csv] [--no-opt] [--fast-path]\n\
                     \x20  --no-opt stages raw (unoptimized) kernel programs for A/B runs\n\
                     \x20  --fast-path uses the validated analytic executor (bit-identical\n\
                     \x20  results, no per-instruction simulation) for A/B runs\n\
                     \x20  --tenants name:rate=R[,weight=W][,tier=T][,limit=L][,burst=B]\n\
                     \x20            [,timeout_ms=MS][,min_cov=F][,storm];... runs the open\n\
                     \x20  loop as a multi-tenant QoS harness (storm confines --faults to\n\
                     \x20  that tenant)\n\
                     \x20  --min-jain fails the run if Jain fairness over per-tenant\n\
                     \x20  demand-met falls below F (CI gate; needs >= 2 tenants)\n\
                     \x20  --mutate insert=F,delete=F runs an open-loop mixed read/write\n\
                     \x20  workload against a mutable ssam-store backend instead of the\n\
                     \x20  read-only sweeps: fractions are per-arrival probabilities (the\n\
                     \x20  rest are reads), writes churn uids in [0, 2n), and the report\n\
                     \x20  gains write tails, compaction stall time, and read-during-\n\
                     \x20  compaction tails (--memtable N overrides the seal threshold)\n\
                     \x20  --shards N --replicas R (mutate mode) shard the store over\n\
                     \x20  N*R modules with replicated WALs; mid-run the harness kills a\n\
                     \x20  replica module and revives it (a failover drill), then replays\n\
                     \x20  the surviving WAL images through ShardedStore::open and\n\
                     \x20  reports the recovery + write-failover ledger in the JSON"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument `{other}` (try --help)"),
        }
        i += 1;
    }
    assert!(a.seconds > 0.0, "--seconds must be positive");
    a
}

/// Process CPU seconds (all threads, user + system) from
/// `/proc/self/stat`; `None` off-Linux. On a shared host, wall-clock
/// throughput swings with neighbor load — CPU time is the stable basis
/// for comparing serving configurations.
fn process_cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields after the parenthesized comm (which may contain spaces):
    // state is the first, utime/stime are the 12th and 13th.
    let rest = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: f64 = fields.get(11)?.parse().ok()?;
    let stime: f64 = fields.get(12)?.parse().ok()?;
    // Linux exports these in clock ticks; CLK_TCK is 100 on every
    // mainstream configuration.
    Some((utime + stime) / 100.0)
}

/// Latency distribution + rates over one measured window.
///
/// Three throughputs are reported. `qps` is host wall-clock — on this
/// cycle-level simulator it is dominated by simulation cost and by
/// whatever else shares the machine, so it mostly measures the harness.
/// `cpu_qps` divides by process CPU time, the stable measure of host
/// work per query (where batching's amortization of staging and
/// processing-unit setup shows). `device_qps` divides by *modeled
/// device-busy seconds* (each batch's pipelined
/// [`ssam_core::device::BatchTiming::seconds`], apportioned per query) —
/// the paper-faithful device metric.
struct Measured {
    served: u64,
    elapsed: f64,
    cpu_seconds: Option<f64>,
    device_seconds: f64,
    latencies_ms: Vec<f64>,
}

impl Measured {
    fn qps(&self) -> f64 {
        self.served as f64 / self.elapsed
    }

    fn cpu_qps(&self) -> f64 {
        match self.cpu_seconds {
            Some(s) if s > 0.0 => self.served as f64 / s,
            _ => f64::NAN,
        }
    }

    fn device_qps(&self) -> f64 {
        if self.device_seconds == 0.0 {
            return f64::NAN;
        }
        self.served as f64 / self.device_seconds
    }

    fn percentile(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[percentile_rank(sorted.len(), q)]
    }
}

/// Nearest-rank percentile index: the smallest rank whose cumulative
/// share of the sample is ≥ `q`, i.e. `⌈q·len⌉ − 1` zero-based.
///
/// The previous `((len − 1) · q).round()` form *interpolated the index*
/// and systematically understated the tail: with 100 samples it reported
/// the 95th-smallest value as p95 (rank 95 covers only 95% of the mass
/// when exactly the 95th order statistic is the first to reach it — but
/// at e.g. len = 10, `round(9 · 0.95) = 9` vs `round(9 · 0.99) = 9`
/// collapsed p95 and p99, and at len = 20 it reported the 19th value for
/// p99 instead of the maximum). Nearest-rank is the standard
/// conservative definition: p99 of 20 samples is the sample maximum.
fn percentile_rank(len: usize, q: f64) -> usize {
    debug_assert!(len > 0 && (0.0..=1.0).contains(&q));
    ((q * len as f64).ceil() as usize).clamp(1, len) - 1
}

/// Tail percentile over completed *and* expired requests: each expired
/// request contributes its deadline as a latency sample (it waited at
/// least that long before the server gave up on it). Without this, an
/// overloaded server that sheds more load reports a *better* p99 — the
/// slowest requests are exactly the ones deleted from the sample.
fn tail_percentile(completed_ms: &[f64], expired_at_ms: &[f64], q: f64) -> f64 {
    let total = completed_ms.len() + expired_at_ms.len();
    if total == 0 {
        return f64::NAN;
    }
    let mut all: Vec<f64> = completed_ms.iter().chain(expired_at_ms).copied().collect();
    all.sort_by(|a, b| a.total_cmp(b));
    all[percentile_rank(total, q)]
}

/// Which stored query the `cursor`-th arrival issues. The cursor is
/// `u64`: the previous `u32` counter wrapped at 2³² arrivals, which a
/// million-q/s fast-path run reaches in ~71 minutes — after the wrap the
/// modulo walk restarts mid-sequence (and with `i += 1` on the `u32`
/// itself, overflow panics in debug builds).
fn query_index(cursor: u64, n: u32) -> u32 {
    debug_assert!(n > 0);
    (cursor % u64::from(n)) as u32
}

/// Sleep-until with a short spin tail. `thread::sleep` alone rounds up
/// to OS timer granularity (≈1 ms under a 1000 Hz tick — the bug that
/// capped the old per-arrival-sleep pacing at ~1k q/s); spinning the
/// final stretch hits the target instant to microseconds while still
/// sleeping away the bulk of long waits. Already-past targets return
/// immediately, so a generator that falls behind catches up instead of
/// accumulating drift.
const SPIN_TAIL: Duration = Duration::from_micros(200);

fn pace_until(target: Instant) {
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        let left = target - now;
        if left > SPIN_TAIL {
            std::thread::sleep(left - SPIN_TAIL);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// One tenant of the open-loop harness, parsed from `--tenants`.
struct TenantSpec {
    name: String,
    id: TenantId,
    /// Offered Poisson arrival rate, q/s.
    rate: f64,
    weight: f64,
    tier: u8,
    /// Server-side admission limit (token-bucket rate), q/s.
    limit: Option<f64>,
    burst: f64,
    timeout: Option<Duration>,
    min_cov: Option<f64>,
    /// Confine the `--faults` plan to this tenant's batches.
    storm: bool,
}

impl TenantSpec {
    fn qos(&self) -> TenantQos {
        TenantQos {
            rate: self.limit,
            burst: self.burst,
            weight: self.weight,
            tier: self.tier,
            min_coverage: self.min_cov,
            default_timeout: None,
            write_rate: None,
        }
    }
}

/// Parses `name:rate=R[,weight=W][,tier=T][,limit=L][,burst=B]`
/// `[,timeout_ms=MS][,min_cov=F][,storm];...`. Tenant ids are assigned
/// in declaration order.
fn parse_tenant_specs(spec: &str, default_timeout: Option<Duration>) -> Vec<TenantSpec> {
    let specs: Vec<TenantSpec> = spec
        .split(';')
        .filter(|part| !part.trim().is_empty())
        .enumerate()
        .map(|(idx, part)| {
            let (name, rest) = part
                .trim()
                .split_once(':')
                .unwrap_or_else(|| panic!("tenant spec `{part}` needs `name:key=value,...`"));
            let mut t = TenantSpec {
                name: name.trim().to_string(),
                id: TenantId(idx as u32),
                rate: 0.0,
                weight: 1.0,
                tier: 1,
                limit: None,
                burst: 1.0,
                timeout: default_timeout,
                min_cov: None,
                storm: false,
            };
            for kv in rest.split(',') {
                let kv = kv.trim();
                if kv.is_empty() {
                    continue;
                }
                match kv.split_once('=') {
                    Some(("rate", v)) => t.rate = v.parse().expect("rate=QPS"),
                    Some(("weight", v)) => t.weight = v.parse().expect("weight=F"),
                    Some(("tier", v)) => t.tier = v.parse().expect("tier=N"),
                    Some(("limit", v)) => t.limit = Some(v.parse().expect("limit=QPS")),
                    Some(("burst", v)) => t.burst = v.parse().expect("burst=F"),
                    Some(("timeout_ms", v)) => {
                        t.timeout = Some(Duration::from_millis(v.parse().expect("timeout_ms=N")));
                    }
                    Some(("min_cov", v)) => t.min_cov = Some(v.parse().expect("min_cov=F")),
                    None if kv == "storm" => t.storm = true,
                    _ => panic!("unknown tenant key `{kv}` in `{part}` (try --help)"),
                }
            }
            assert!(t.rate > 0.0, "tenant `{}` needs rate=QPS > 0", t.name);
            t
        })
        .collect();
    assert!(!specs.is_empty(), "--tenants spec names no tenants");
    specs
}

/// Everything the open loop observed about one tenant.
struct TenantResult {
    name: String,
    id: TenantId,
    offered: f64,
    timeout_ms: Option<f64>,
    arrivals: u64,
    rejected_overload: u64,
    rejected_rate_limited: u64,
    expired: u64,
    degraded: u64,
    latencies_ms: Vec<f64>,
    device_seconds: f64,
    elapsed: f64,
}

impl TenantResult {
    fn served(&self) -> u64 {
        self.latencies_ms.len() as u64
    }

    fn goodput(&self) -> f64 {
        self.served() as f64 / self.elapsed
    }

    /// Fraction of this tenant's offered demand that completed — the
    /// allocation the Jain index is computed over (1.0 for every tenant
    /// means the server met everyone's demand equally well).
    fn demand_met(&self) -> f64 {
        (self.goodput() / self.offered).min(1.0)
    }

    /// Deadline values of expired requests, one sample each, for the
    /// completed+expired tail.
    fn expired_at_ms(&self) -> Vec<f64> {
        let at = self.timeout_ms.unwrap_or(f64::NAN);
        vec![at; self.expired as usize]
    }

    fn percentile(&self, q: f64) -> f64 {
        tail_percentile(&self.latencies_ms, &[], q)
    }

    fn percentile_with_expired(&self, q: f64) -> f64 {
        tail_percentile(&self.latencies_ms, &self.expired_at_ms(), q)
    }
}

/// The open-loop run as a whole.
struct OpenOutcome {
    tenants: Vec<TenantResult>,
    arrivals: u64,
    offered_qps: f64,
    achieved_qps: f64,
    measured: Measured,
}

/// Multi-tenant open loop: per-tenant Poisson arrival streams merged on
/// an absolute schedule, non-blocking submission, per-tenant waiter
/// threads draining tickets as they complete (bounded memory at millions
/// of arrivals). Fails the run if the achieved arrival rate diverges
/// from the offered rate by more than 5% (only checked when the expected
/// arrival count is large enough that Poisson noise sits well inside
/// that band).
fn open_loop(
    server: &Arc<Server>,
    queries: &Arc<VectorStore>,
    k: usize,
    specs: &[TenantSpec],
    seconds: f64,
) -> OpenOutcome {
    let handle = server.handle();
    let nq = queries.len() as u32;

    // One waiter thread + ticket channel per tenant: tickets are
    // consumed as they resolve instead of accumulating for the whole
    // run.
    let mut senders = Vec::new();
    let mut waiters = Vec::new();
    for _ in specs {
        let (tx, rx) = mpsc::channel::<ssam_serve::Ticket>();
        senders.push(tx);
        waiters.push(std::thread::spawn(move || {
            let mut lat = Vec::new();
            let mut dev = 0.0f64;
            let mut expired = 0u64;
            let mut degraded = 0u64;
            for ticket in rx {
                match ticket.wait() {
                    Ok(r) => {
                        lat.push((r.queue_seconds + r.service_seconds) * 1e3);
                        dev += device_share_seconds(&r);
                    }
                    Err(ServeError::DeadlineExceeded { .. }) => expired += 1,
                    Err(ServeError::Degraded { .. }) => degraded += 1,
                    Err(e) => panic!("open-loop request failed: {e}"),
                }
            }
            (lat, dev, expired, degraded)
        }));
    }

    // Absolute arrival schedule: a min-heap of (next instant, tenant)
    // seeded with one exponential draw per tenant; every pop schedules
    // that tenant's next arrival relative to the *scheduled* (not
    // actual) time, so pacing error never compounds.
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs_f64(seconds);
    let cpu0 = process_cpu_seconds();
    let mut rngs: Vec<StdRng> = (0..specs.len())
        .map(|i| StdRng::seed_from_u64(0x5e7e ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect();
    let mut heap: BinaryHeap<Reverse<(Instant, usize)>> = BinaryHeap::new();
    let draw = |rngs: &mut Vec<StdRng>, idx: usize, rate: f64| -> Duration {
        let u: f64 = rngs[idx].random_range(f64::MIN_POSITIVE..1.0);
        Duration::from_secs_f64((-u.ln() / rate).min(1.0))
    };
    for (idx, spec) in specs.iter().enumerate() {
        heap.push(Reverse((t0 + draw(&mut rngs, idx, spec.rate), idx)));
    }
    let mut arrivals = vec![0u64; specs.len()];
    let mut rejected_overload = vec![0u64; specs.len()];
    let mut rejected_rate_limited = vec![0u64; specs.len()];
    let mut cursor = 0u64;
    while let Some(Reverse((at, idx))) = heap.pop() {
        if at >= deadline {
            break;
        }
        pace_until(at);
        let spec = &specs[idx];
        let q = queries.get(query_index(cursor, nq)).to_vec();
        cursor += 1;
        let mut req = Request::new(OwnedQuery::Euclidean(q), k).with_tenant(spec.id);
        if let Some(t) = spec.timeout {
            req = req.with_timeout(t);
        }
        match handle.submit(req) {
            Ok(ticket) => senders[idx].send(ticket).expect("waiter alive"),
            Err(ServeError::Overloaded { .. }) => rejected_overload[idx] += 1,
            Err(ServeError::RateLimited { .. }) => rejected_rate_limited[idx] += 1,
            Err(e) => panic!("open-loop submission failed: {e}"),
        }
        arrivals[idx] += 1;
        heap.push(Reverse((at + draw(&mut rngs, idx, spec.rate), idx)));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    drop(senders);

    let mut tenants = Vec::new();
    let mut all_latencies = Vec::new();
    let mut device_seconds = 0.0f64;
    for (idx, waiter) in waiters.into_iter().enumerate() {
        let (lat, dev, expired, degraded) = waiter.join().expect("waiter thread");
        all_latencies.extend_from_slice(&lat);
        device_seconds += dev;
        let spec = &specs[idx];
        tenants.push(TenantResult {
            name: spec.name.clone(),
            id: spec.id,
            offered: spec.rate,
            timeout_ms: spec.timeout.map(|t| t.as_secs_f64() * 1e3),
            arrivals: arrivals[idx],
            rejected_overload: rejected_overload[idx],
            rejected_rate_limited: rejected_rate_limited[idx],
            expired,
            degraded,
            latencies_ms: lat,
            device_seconds: dev,
            elapsed,
        });
    }
    let cpu_seconds = process_cpu_seconds().zip(cpu0).map(|(a, b)| a - b);
    let total_arrivals: u64 = arrivals.iter().sum();
    let offered_qps: f64 = specs.iter().map(|s| s.rate).sum();
    let achieved_qps = total_arrivals as f64 / elapsed;

    // Pacing acceptance: achieved must track offered. Poisson count
    // noise is √N, so only enforce once the expected count puts 5%
    // beyond ~4σ; below that the check would flake on randomness, not
    // pacing.
    let expected = offered_qps * seconds;
    if expected >= 2000.0 {
        let divergence = (achieved_qps - offered_qps).abs() / offered_qps;
        assert!(
            divergence <= 0.05,
            "open-loop pacing failed: offered {offered_qps:.0} q/s but achieved \
             {achieved_qps:.0} q/s ({:.1}% divergence; the generator could not \
             sustain the schedule)",
            divergence * 100.0
        );
    }

    OpenOutcome {
        arrivals: total_arrivals,
        offered_qps,
        achieved_qps,
        measured: Measured {
            served: all_latencies.len() as u64,
            elapsed,
            cpu_seconds,
            device_seconds,
            latencies_ms: all_latencies,
        },
        tenants,
    }
}

/// Closed loop: `clients` threads, each issuing back-to-back blocking
/// queries against `server` for `seconds` of wall clock.
fn closed_loop(
    server: &Arc<Server>,
    queries: &Arc<VectorStore>,
    k: usize,
    clients: usize,
    seconds: f64,
) -> Measured {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let cpu0 = process_cpu_seconds();
    let joins: Vec<_> = (0..clients)
        .map(|c| {
            let handle = server.handle();
            let queries = Arc::clone(queries);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut lat = Vec::new();
                let mut dev_secs = 0.0f64;
                let n = queries.len() as u32;
                let mut i = (c as u32) % n;
                while !stop.load(Ordering::Relaxed) {
                    let q = queries.get(i).to_vec();
                    i = (i + 1) % n;
                    let t0 = Instant::now();
                    let resp = handle
                        .query(Request::new(OwnedQuery::Euclidean(q), k))
                        .expect("closed-loop request served");
                    lat.push(t0.elapsed().as_secs_f64() * 1e3);
                    dev_secs += device_share_seconds(&resp);
                }
                (lat, dev_secs)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_secs_f64(seconds));
    stop.store(true, Ordering::Relaxed);
    let mut latencies_ms = Vec::new();
    let mut device_seconds = 0.0f64;
    for j in joins {
        let (lat, dev_secs) = j.join().expect("client thread");
        latencies_ms.extend(lat);
        device_seconds += dev_secs;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let cpu_seconds = process_cpu_seconds().zip(cpu0).map(|(a, b)| a - b);
    Measured {
        served: latencies_ms.len() as u64,
        elapsed,
        cpu_seconds,
        device_seconds,
        latencies_ms,
    }
}

/// This response's share of its batch's modeled (pipelined) device time:
/// summed over a batch's responses it totals the batch's
/// `BatchTiming::seconds`, so summed over a run it is device-busy time.
fn device_share_seconds(resp: &ssam_serve::Response) -> f64 {
    match &resp.account {
        ssam_serve::DeviceAccount::Device { batch, .. } => batch.seconds_per_query,
        ssam_serve::DeviceAccount::Cluster(t) => t.seconds,
        ssam_serve::DeviceAccount::Store { seconds, .. }
        | ssam_serve::DeviceAccount::Sharded { seconds, .. } => *seconds,
    }
}

/// Mixed read/write workload mix, parsed from `--mutate`. Fractions are
/// per-arrival probabilities; everything left over is a read.
struct MutateSpec {
    insert: f64,
    delete: f64,
}

/// Parses `insert=F,delete=F` (either key may be omitted; defaults are a
/// 20% insert / 5% delete mix).
fn parse_mutate_spec(s: &str) -> MutateSpec {
    let mut m = MutateSpec {
        insert: 0.2,
        delete: 0.05,
    };
    for kv in s.split(',') {
        let kv = kv.trim();
        if kv.is_empty() {
            continue;
        }
        match kv.split_once('=') {
            Some(("insert", v)) => m.insert = v.parse().expect("insert=F"),
            Some(("delete", v)) => m.delete = v.parse().expect("delete=F"),
            _ => panic!("unknown mutate key `{kv}` (want insert=F,delete=F)"),
        }
    }
    assert!(
        m.insert >= 0.0 && m.delete >= 0.0 && m.insert + m.delete <= 1.0,
        "mutate fractions must be non-negative and sum to at most 1"
    );
    m
}

fn lock_store(
    store: &std::sync::Mutex<ssam_store::Store>,
) -> std::sync::MutexGuard<'_, ssam_store::Store> {
    store
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_sharded(
    store: &std::sync::Mutex<ssam_store::ShardedStore>,
) -> std::sync::MutexGuard<'_, ssam_store::ShardedStore> {
    store
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The `--mutate` harness runs against either store backend; both expose
/// the aggregate [`ssam_store::StoreStats`] the report is built from.
#[derive(Clone)]
enum MutBackend {
    Single(Arc<std::sync::Mutex<ssam_store::Store>>),
    Sharded(Arc<std::sync::Mutex<ssam_store::ShardedStore>>),
}

impl MutBackend {
    fn of(server: &Server) -> MutBackend {
        match server.sharded_store() {
            Some(st) => MutBackend::Sharded(st),
            None => MutBackend::Single(server.store().expect("store backend")),
        }
    }

    fn stats(&self) -> ssam_store::StoreStats {
        match self {
            MutBackend::Single(s) => lock_store(s).stats(),
            MutBackend::Sharded(s) => lock_sharded(s).stats(),
        }
    }

    fn compactions(&self) -> u64 {
        self.stats().compactions
    }
}

fn percentile_of(samples: &[f64], q: f64) -> f64 {
    tail_percentile(samples, &[], q)
}

/// JSON-safe percentile: the serializer rejects non-finite floats, so an
/// empty sample set reports 0.0 (its count field disambiguates).
fn percentile_json(samples: &[f64], q: f64) -> Value {
    let p = percentile_of(samples, q);
    json::number_f64(if p.is_finite() { p } else { 0.0 })
}

/// The `--mutate` harness: an open-loop Poisson stream where each
/// arrival is an insert, a delete, or a read, against a mutable
/// [`ssam_store::Store`] behind the serving runtime (so reads batch
/// through the normal path and compaction runs on the maintenance
/// thread, sharing the store lock with every query and write).
///
/// Reported: write tails (inserts and deletes block on the store lock,
/// so a write landing mid-compaction eats the stall — the write p99 *is*
/// the user-visible compaction cost), total/worst compaction stall, and
/// read tails split into all reads vs reads that overlapped a compaction
/// (classified by the store's compaction counter moving between a read's
/// submission and completion).
fn run_mutate(args: &Args, spec: &MutateSpec) {
    use ssam_store::{ShardedStore, ShardedStoreConfig, Store, StoreConfig};

    let ds = PaperDataset::GloVe.scaled_spec(args.scale);
    let bench = ssam_datasets::Benchmark::from_spec(ds);
    let k = args.k.unwrap_or_else(|| bench.k());
    let dims = bench.train.dims();
    let n = bench.train.len();
    let queries = bench.queries;
    let nq = queries.len() as u32;
    let sink = Telemetry::new();

    let mut store_config = StoreConfig::new(dims);
    store_config.device = SsamConfig {
        vector_length: 4,
        optimize_kernels: !args.no_opt,
        fast_path: args.fast_path,
        ..SsamConfig::default()
    };
    // Small enough that a few seconds of writes seal repeatedly, big
    // enough that the memtable amortizes device staging.
    store_config.memtable_capacity = args.memtable.unwrap_or((n / 8).max(64));
    store_config.fanout = 4;
    let memtable_capacity = store_config.memtable_capacity;

    assert!(
        args.shards >= 1 && args.replicas >= 1,
        "--shards and --replicas must be at least 1"
    );
    let sharded = args.shards > 1 || args.replicas > 1;

    let fault_plan = args.faults.as_deref().map(|fs| {
        Arc::new(FaultPlan::parse(fs).unwrap_or_else(|e| panic!("bad --faults spec: {e}")))
    });
    let serve_config = ServeConfig {
        max_batch: args.max_batch,
        max_linger: args.linger,
        workers: args.workers,
        faults: ServeFaults {
            plan: fault_plan.clone(),
            min_coverage: 0.0,
            ..ServeFaults::default()
        },
        ..ServeConfig::default()
    };
    let server = if sharded {
        let mut store = ShardedStore::create(ShardedStoreConfig::new(
            args.shards,
            args.replicas,
            store_config,
        ));
        store.attach_telemetry(&sink);
        for i in 0..n as u32 {
            store
                .insert(i, queries_or_train(&bench.train, i))
                .expect("initial load");
        }
        while store.compact_step() {}
        Arc::new(Server::start_sharded_store(store, serve_config))
    } else {
        let mut store = Store::create(store_config);
        store.attach_telemetry(&sink);
        for i in 0..n as u32 {
            store
                .insert(i, queries_or_train(&bench.train, i))
                .expect("initial load");
        }
        // Drain load-time compaction debt so the measured window starts
        // from a settled tree.
        while store.compact_step() {}
        Arc::new(Server::start_store(store, serve_config))
    };
    let handle = server.handle();
    let backend = MutBackend::of(&server);
    let base = backend.stats();

    let rate = args.rate.unwrap_or(500.0).max(1.0);
    println!(
        "serve-load --mutate: {} initial vectors ({dims}-d), k={k}, \
         memtable {memtable_capacity}, fanout 4, {} q/s offered \
         (insert {:.0}%, delete {:.0}%, read {:.0}%), executor={}{}",
        n,
        fmt(rate),
        spec.insert * 100.0,
        spec.delete * 100.0,
        (1.0 - spec.insert - spec.delete) * 100.0,
        if args.fast_path {
            "analytic fast path"
        } else {
            "cycle simulator"
        },
        if sharded {
            format!(
                ", {} shards x {} replicas ({} modules)",
                args.shards,
                args.replicas,
                args.shards * args.replicas
            )
        } else {
            String::new()
        }
    );

    // Waiter thread: drains read tickets as they resolve, classifying
    // each read by whether the compaction counter moved while it was in
    // flight.
    let (tx, rx) = mpsc::channel::<(ssam_serve::Ticket, u64)>();
    let store_w = backend.clone();
    let waiter = std::thread::spawn(move || {
        let mut read_ms = Vec::new();
        let mut during_ms = Vec::new();
        let mut dev = 0.0f64;
        let mut expired = 0u64;
        let mut degraded = 0u64;
        for (ticket, c0) in rx {
            match ticket.wait() {
                Ok(r) => {
                    let ms = (r.queue_seconds + r.service_seconds) * 1e3;
                    dev += device_share_seconds(&r);
                    let c1 = store_w.compactions();
                    if c1 != c0 {
                        during_ms.push(ms);
                    }
                    read_ms.push(ms);
                }
                Err(ServeError::DeadlineExceeded { .. }) => expired += 1,
                Err(ServeError::Degraded { .. }) => degraded += 1,
                Err(e) => panic!("mutate read failed: {e}"),
            }
        }
        (read_ms, during_ms, dev, expired, degraded)
    });

    // One merged Poisson stream; each arrival draws its op kind. Writes
    // churn uids over [0, 2n) so the live set both grows (fresh uids)
    // and turns over (overwrites + deletes of resident uids).
    let churn_uids = (2 * n.max(1)) as u32;
    let mut rng = StdRng::seed_from_u64(0x5e7e_a11d);
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs_f64(args.seconds);
    let cpu0 = process_cpu_seconds();
    let mut next = t0;
    let mut cursor = 0u64;
    let mut arrivals = 0u64;
    let mut reads = 0u64;
    let mut rejected = 0u64;
    let mut insert_ms = Vec::new();
    let mut delete_ms = Vec::new();
    // Failover drill (sharded with replication only): kill one replica
    // module at half time, revive it at three quarters. While it is down
    // its shard's writes fail over to the surviving replicas' WALs; on
    // revive the queued records catch it back up.
    let drill = sharded && args.replicas > 1;
    let kill_at = t0 + Duration::from_secs_f64(args.seconds * 0.5);
    let revive_at = t0 + Duration::from_secs_f64(args.seconds * 0.75);
    let drill_module = 0usize;
    let mut killed = false;
    let mut revived = false;
    let mut acked_failed_over = 0u64;
    let mut refused = 0u64;
    loop {
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        next += Duration::from_secs_f64((-u.ln() / rate).min(1.0));
        if next >= deadline {
            break;
        }
        pace_until(next);
        if drill {
            let now = Instant::now();
            if !killed && now >= kill_at {
                if let MutBackend::Sharded(st) = &backend {
                    lock_sharded(st).kill_module(drill_module);
                }
                killed = true;
                println!(
                    "drill: killed module {drill_module} (shard 0, replica 0) \
                     at t={:.1}s",
                    (now - t0).as_secs_f64()
                );
            }
            if killed && !revived && now >= revive_at {
                if let MutBackend::Sharded(st) = &backend {
                    lock_sharded(st).revive_module(drill_module);
                }
                revived = true;
                println!(
                    "drill: revived module {drill_module} at t={:.1}s",
                    (now - t0).as_secs_f64()
                );
            }
        }
        arrivals += 1;
        let op: f64 = rng.random_range(0.0..1.0);
        if op < spec.insert {
            let uid = rng.random_range(0..churn_uids);
            let v = queries.get(query_index(cursor, nq)).to_vec();
            cursor += 1;
            let w0 = Instant::now();
            match handle.insert_routed(uid, &v) {
                Ok(ack) => {
                    insert_ms.push(w0.elapsed().as_secs_f64() * 1e3);
                    acked_failed_over += u64::from(ack.failed_over);
                }
                Err(ServeError::ShardUnavailable { .. }) => refused += 1,
                Err(e) => panic!("mutate insert failed: {e}"),
            }
        } else if op < spec.insert + spec.delete {
            let uid = rng.random_range(0..churn_uids);
            let w0 = Instant::now();
            match handle.delete_routed(uid) {
                Ok(ack) => {
                    delete_ms.push(w0.elapsed().as_secs_f64() * 1e3);
                    acked_failed_over += u64::from(ack.failed_over);
                }
                Err(ServeError::ShardUnavailable { .. }) => refused += 1,
                Err(e) => panic!("mutate delete failed: {e}"),
            }
        } else {
            let q = queries.get(query_index(cursor, nq)).to_vec();
            cursor += 1;
            let c0 = backend.compactions();
            let mut req = Request::new(OwnedQuery::Euclidean(q), k);
            if let Some(t) = args.timeout {
                req = req.with_timeout(t);
            }
            match handle.submit(req) {
                Ok(ticket) => {
                    tx.send((ticket, c0)).expect("waiter alive");
                    reads += 1;
                }
                Err(ServeError::Overloaded { .. }) => rejected += 1,
                Err(e) => panic!("mutate read submission failed: {e}"),
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    drop(tx);
    let (read_ms, during_ms, device_seconds, expired, degraded) =
        waiter.join().expect("waiter thread");
    let cpu_seconds = process_cpu_seconds().zip(cpu0).map(|(a, b)| a - b);

    // Sharded epilogue: revive anything still down, then drain every
    // fail-over queue with scratch writes (a write catches up all live
    // replicas of its shard before appending), so the write ledger can
    // close over pending_now == 0.
    if let MutBackend::Sharded(st_arc) = &backend {
        let mut st = lock_sharded(st_arc);
        if killed && !revived {
            st.revive_module(drill_module);
        }
        let sh = args.shards as u32;
        let scratch0 = churn_uids.div_ceil(sh) * sh;
        let v0 = queries.get(0).to_vec();
        let mut rounds = 0;
        while st.pending_total() > 0 {
            rounds += 1;
            assert!(
                rounds <= 16,
                "fail-over queues did not drain after 16 catch-up rounds"
            );
            for s in 0..sh {
                // A chaos plan can refuse a scratch write; the next
                // round retries it.
                let _ = st.insert(scratch0 + s, &v0);
                let _ = st.delete(scratch0 + s);
            }
        }
    }

    // Post-run store accounting: post one verified account record, then
    // read the raw stats for the report. Violations fail the run below.
    struct StoreSummary {
        live: usize,
        resident: usize,
        dead_ratio: f64,
        write_amp: f64,
        compaction_debt: u64,
    }
    let (stats, summary, sharded_json, sharded_line) = match &backend {
        MutBackend::Single(store) => {
            let st = lock_store(store);
            st.record_account("serve_load_mutate");
            let a = st.account("serve_load_mutate");
            let summary = StoreSummary {
                live: a.live(),
                resident: a.resident(),
                dead_ratio: a.dead_ratio(),
                write_amp: a.write_amp(),
                compaction_debt: a.compaction_debt(),
            };
            (st.stats(), summary, None, None)
        }
        MutBackend::Sharded(store) => {
            let st = lock_sharded(store);
            st.record_account("serve_load_mutate");
            let a = st.account("serve_load_mutate");
            st.check_write_ledger()
                .unwrap_or_else(|e| panic!("write-failover ledger does not close: {e}"));
            let ledger = st.write_ledger().clone();
            // Recovery drill: replay the live WAL images through a fresh
            // open and demand the twin agrees on the live set.
            let (twin, rec) = ShardedStore::open(st.config().clone(), &st.wal_images())
                .expect("recovery drill: reopen from WAL images");
            assert_eq!(
                twin.live_len(),
                st.live_len(),
                "recovery drill: reopened store disagrees on the live set"
            );
            let resident: usize = a.modules.iter().map(|m| m.store.resident()).sum();
            let dead: f64 = a
                .modules
                .iter()
                .map(|m| m.store.dead_ratio() * m.store.resident() as f64)
                .sum();
            let payload: u64 = a.modules.iter().map(|m| m.store.payload_bytes).sum();
            let durable: u64 = a
                .modules
                .iter()
                .map(|m| m.store.wal_bytes + m.store.staged_bytes)
                .sum();
            let summary = StoreSummary {
                live: a.live,
                resident,
                dead_ratio: if resident == 0 {
                    0.0
                } else {
                    dead / resident as f64
                },
                write_amp: if payload == 0 {
                    0.0
                } else {
                    durable as f64 / payload as f64
                },
                compaction_debt: a.modules.iter().map(|m| m.store.compaction_debt()).sum(),
            };
            let mut o = BTreeMap::new();
            o.insert("shards".into(), json::number_usize(st.shards()));
            o.insert("replicas".into(), json::number_usize(st.replicas()));
            o.insert("drill".into(), Value::Bool(drill));
            o.insert("drill_module".into(), json::number_usize(drill_module));
            o.insert(
                "write_outages".into(),
                json::number_u64(ledger.write_outages),
            );
            o.insert(
                "failed_over_writes".into(),
                json::number_u64(ledger.failed_over_writes),
            );
            o.insert(
                "refused_writes".into(),
                json::number_u64(ledger.refused_writes),
            );
            o.insert(
                "catch_up_records".into(),
                json::number_u64(ledger.catch_up_records),
            );
            o.insert(
                "pending_peak".into(),
                json::number_usize(ledger.pending_peak),
            );
            o.insert(
                "backoff_seconds".into(),
                json::number_f64(ledger.backoff_seconds),
            );
            o.insert("ledger_closed".into(), Value::Bool(true));
            o.insert(
                "acked_failed_over".into(),
                json::number_u64(acked_failed_over),
            );
            o.insert("refused_client".into(), json::number_u64(refused));
            o.insert("behind_total".into(), json::number_usize(a.behind_total()));
            let mut rec_o = BTreeMap::new();
            rec_o.insert(
                "records_replayed".into(),
                json::number_usize(rec.total.replayed),
            );
            rec_o.insert(
                "truncated_bytes".into(),
                json::number_u64(rec.total.truncated),
            );
            rec_o.insert(
                "segments_rebuilt".into(),
                json::number_usize(rec.total.segments_rebuilt),
            );
            rec_o.insert(
                "catch_up_records".into(),
                json::number_u64(rec.catch_up_records),
            );
            o.insert("recovery_drill".into(), Value::Object(rec_o));
            let line = format!(
                "sharded: {} shards x {} replicas; {} write outages, {} writes \
                 failed over ({} acked as such), {} refused, {} catch-up records \
                 (peak pending {}), {:.3}s modeled backoff; recovery drill \
                 replayed {} records / rebuilt {} segments ({} catch-up), live \
                 set agrees",
                st.shards(),
                st.replicas(),
                ledger.write_outages,
                ledger.failed_over_writes,
                acked_failed_over,
                ledger.refused_writes,
                ledger.catch_up_records,
                ledger.pending_peak,
                ledger.backoff_seconds,
                rec.total.replayed,
                rec.total.segments_rebuilt,
                rec.catch_up_records,
            );
            (st.stats(), summary, Some(Value::Object(o)), Some(line))
        }
    };
    let write_ms: Vec<f64> = insert_ms.iter().chain(&delete_ms).copied().collect();
    let stall = stats.compact_seconds - base.compact_seconds;
    let seal_stall = stats.seal_seconds - base.seal_seconds;
    let writes = insert_ms.len() + delete_ms.len();

    println!(
        "\nmutate open loop: {arrivals} arrivals in {elapsed:.1}s -> {writes} writes \
         (p50 {:.3} ms, p99 {:.3} ms), {} reads served of {reads} submitted \
         (p50 {:.2} ms, p99 {:.2} ms), {rejected} overloaded, {expired} expired, \
         {degraded} degraded",
        percentile_of(&write_ms, 0.50),
        percentile_of(&write_ms, 0.99),
        read_ms.len(),
        percentile_of(&read_ms, 0.50),
        percentile_of(&read_ms, 0.99),
    );
    println!(
        "compaction: {} merges over the run, {stall:.3}s total stall \
         (worst single {:.3}s), {} seals ({seal_stall:.3}s); {} of {} reads \
         overlapped a compaction (p99 {:.2} ms vs {:.2} ms clear)",
        stats.compactions - base.compactions,
        stats.max_compact_seconds,
        stats.seals - base.seals,
        during_ms.len(),
        read_ms.len(),
        percentile_of(&during_ms, 0.99),
        percentile_of(&read_ms, 0.99),
    );
    println!(
        "store: {} segments on {} levels, {} live / {} resident \
         (dead ratio {:.3}), write-amp {:.2}, compaction debt {}",
        stats.segments,
        stats.levels,
        summary.live,
        summary.resident,
        summary.dead_ratio,
        summary.write_amp,
        summary.compaction_debt,
    );
    if let Some(line) = &sharded_line {
        println!("{line}");
    }

    let server_stats = Arc::into_inner(server).expect("sole owner").shutdown();

    let violations = sink.violations();
    assert!(
        violations.is_empty(),
        "mutate-path accounting violations: {violations:#?}"
    );
    let fault_totals = sink.fault_totals();
    fault_totals
        .check_closure()
        .unwrap_or_else(|e| panic!("fault accounting does not close: {e}"));
    println!("telemetry: {} verified records, 0 violations", sink.len());
    if let Some(path) = &args.telemetry {
        sink.write_jsonl(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("cannot write telemetry JSONL to {path}: {e}"));
    }

    let m = Measured {
        served: read_ms.len() as u64,
        elapsed,
        cpu_seconds,
        device_seconds,
        latencies_ms: read_ms.clone(),
    };
    let mut mutate_o = BTreeMap::new();
    mutate_o.insert("insert_fraction".into(), json::number_f64(spec.insert));
    mutate_o.insert("delete_fraction".into(), json::number_f64(spec.delete));
    mutate_o.insert("offered_qps".into(), json::number_f64(rate));
    mutate_o.insert("arrivals".into(), json::number_u64(arrivals));
    mutate_o.insert("inserts".into(), json::number_u64(server_stats.inserts));
    mutate_o.insert("deletes".into(), json::number_u64(server_stats.deletes));
    mutate_o.insert("reads_submitted".into(), json::number_u64(reads));
    mutate_o.insert("rejected_overload".into(), json::number_u64(rejected));
    mutate_o.insert(
        "rejected_shard_down".into(),
        json::number_u64(server_stats.rejected_shard_down),
    );
    let mut recovery_o = BTreeMap::new();
    recovery_o.insert(
        "records_replayed".into(),
        json::number_u64(server_stats.recovered_records),
    );
    recovery_o.insert(
        "truncated_bytes".into(),
        json::number_u64(server_stats.recovered_truncated_bytes),
    );
    recovery_o.insert(
        "segments_rebuilt".into(),
        json::number_u64(server_stats.recovered_segments),
    );
    mutate_o.insert("startup_recovery".into(), Value::Object(recovery_o));
    mutate_o.insert("expired".into(), json::number_u64(expired));
    mutate_o.insert("degraded".into(), json::number_u64(degraded));
    mutate_o.insert("write_p50_ms".into(), percentile_json(&write_ms, 0.50));
    mutate_o.insert("write_p99_ms".into(), percentile_json(&write_ms, 0.99));
    mutate_o.insert("insert_p99_ms".into(), percentile_json(&insert_ms, 0.99));
    mutate_o.insert("delete_p99_ms".into(), percentile_json(&delete_ms, 0.99));
    mutate_o.insert(
        "reads_during_compaction".into(),
        json::number_usize(during_ms.len()),
    );
    mutate_o.insert(
        "read_during_compaction_p99_ms".into(),
        percentile_json(&during_ms, 0.99),
    );
    let mut compaction_o = BTreeMap::new();
    compaction_o.insert(
        "compactions".into(),
        json::number_u64(stats.compactions - base.compactions),
    );
    compaction_o.insert("stall_seconds".into(), json::number_f64(stall));
    compaction_o.insert(
        "max_stall_seconds".into(),
        json::number_f64(stats.max_compact_seconds),
    );
    compaction_o.insert("seals".into(), json::number_u64(stats.seals - base.seals));
    compaction_o.insert("seal_seconds".into(), json::number_f64(seal_stall));
    mutate_o.insert("compaction".into(), Value::Object(compaction_o));
    let mut store_o = BTreeMap::new();
    store_o.insert("segments".into(), json::number_usize(stats.segments));
    store_o.insert("levels".into(), json::number_usize(stats.levels));
    store_o.insert("live".into(), json::number_usize(summary.live));
    store_o.insert("resident".into(), json::number_usize(summary.resident));
    store_o.insert("dead_ratio".into(), json::number_f64(summary.dead_ratio));
    store_o.insert("write_amp".into(), json::number_f64(summary.write_amp));
    store_o.insert(
        "compaction_debt".into(),
        json::number_u64(summary.compaction_debt),
    );
    store_o.insert("wal_records".into(), json::number_u64(stats.wal_records));
    store_o.insert("wal_bytes".into(), json::number_u64(stats.wal_bytes));
    store_o.insert("staged_bytes".into(), json::number_u64(stats.staged_bytes));
    mutate_o.insert("store".into(), Value::Object(store_o));
    if let Some(sharded_v) = sharded_json {
        mutate_o.insert("sharded".into(), sharded_v);
    }

    let mut root = BTreeMap::new();
    root.insert(
        "dataset".into(),
        Value::String(format!("GloVe scaled ({n} train / {nq} queries, {dims}-d)")),
    );
    root.insert("mode".into(), Value::String("mutate".into()));
    root.insert("scale".into(), json::number_f64(args.scale));
    root.insert("shards".into(), json::number_usize(args.shards));
    root.insert("replicas".into(), json::number_usize(args.replicas));
    root.insert("k".into(), json::number_usize(k));
    root.insert("workers".into(), json::number_usize(args.workers));
    root.insert("max_batch".into(), json::number_usize(args.max_batch));
    root.insert("seconds".into(), json::number_f64(args.seconds));
    root.insert("fast_path".into(), Value::Bool(args.fast_path));
    root.insert(
        "open_loop".into(),
        measured_object(&m, &[("offered_qps", json::number_f64(rate))]),
    );
    root.insert("mutate".into(), Value::Object(mutate_o));
    if let Some(plan) = &fault_plan {
        let mut f = BTreeMap::new();
        f.insert("spec".into(), Value::String(args.faults.clone().unwrap()));
        f.insert("seed".into(), json::number_u64(plan.seed));
        f.insert("injected".into(), json::number_u64(fault_totals.injected()));
        f.insert(
            "module_outages".into(),
            json::number_u64(fault_totals.module_outages),
        );
        f.insert(
            "failed_over".into(),
            json::number_u64(fault_totals.failed_over),
        );
        f.insert("coverage".into(), json::number_f64(fault_totals.coverage()));
        f.insert(
            "recovery_seconds".into(),
            json::number_f64(fault_totals.recovery_seconds),
        );
        root.insert("faults".into(), Value::Object(f));
    }
    let mut tele_o = BTreeMap::new();
    tele_o.insert("records".into(), json::number_usize(sink.len()));
    tele_o.insert("violations".into(), json::number_usize(0));
    root.insert("telemetry".into(), Value::Object(tele_o));

    let payload = json::to_string(&Value::Object(root));
    std::fs::write(&args.json, payload + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.json));
    println!("wrote {}", args.json);
}

/// Initial-load vectors come from the train split (the queries split
/// feeds the runtime churn), cycled if uids outrun it.
fn queries_or_train(train: &VectorStore, i: u32) -> &[f32] {
    train.get(i % train.len() as u32)
}

fn measured_object(m: &Measured, extra: &[(&str, Value)]) -> Value {
    let mut o = BTreeMap::new();
    o.insert("served".into(), json::number_u64(m.served));
    o.insert("qps".into(), json::number_f64(m.qps()));
    o.insert("cpu_qps".into(), json::number_f64(m.cpu_qps()));
    o.insert("device_qps".into(), json::number_f64(m.device_qps()));
    o.insert("p50_ms".into(), json::number_f64(m.percentile(0.50)));
    o.insert("p95_ms".into(), json::number_f64(m.percentile(0.95)));
    o.insert("p99_ms".into(), json::number_f64(m.percentile(0.99)));
    for (k, v) in extra {
        o.insert((*k).to_string(), v.clone());
    }
    Value::Object(o)
}

fn hist_value(hist: &[u64]) -> Value {
    Value::Array(hist.iter().map(|&n| json::number_u64(n)).collect())
}

fn main() {
    let args = parse_args();
    if let Some(mutate) = args.mutate.as_deref().map(parse_mutate_spec) {
        assert!(
            args.tenants.is_none(),
            "--mutate and --tenants are separate harnesses; pick one"
        );
        run_mutate(&args, &mutate);
        return;
    }
    let spec = PaperDataset::GloVe.scaled_spec(args.scale);
    let bench = ssam_datasets::Benchmark::from_spec(spec);
    let k = args.k.unwrap_or_else(|| bench.k());
    let sink = Telemetry::new();
    let mut device = {
        let mut dev = SsamDevice::new(SsamConfig {
            vector_length: 4,
            optimize_kernels: !args.no_opt,
            fast_path: args.fast_path,
            ..SsamConfig::default()
        });
        dev.load_vectors(&bench.train);
        dev
    };
    device.attach_telemetry(&sink);
    let dataset_label = format!(
        "{} ({} train / {} queries, {}-d)",
        bench.spec.name,
        bench.train.len(),
        bench.queries.len(),
        bench.train.dims()
    );
    let queries = Arc::new(bench.queries);

    println!(
        "serve-load: {dataset_label}, k={k}, workers={}, max_batch={}, linger={:?}, \
         executor={}",
        args.workers,
        args.max_batch,
        args.linger,
        if args.fast_path {
            "analytic fast path"
        } else {
            "cycle simulator"
        }
    );

    // ---- Offline ceiling: the device's batch engine, no serving layer.
    // `offline_model` is the modeled pipelined throughput at this batch
    // size (deterministic); `offline_host` is host wall-clock.
    let offline_batch = args.max_batch.min(queries.len()).max(1);
    let (offline_host, offline_cpu, offline_model) = {
        let mut dev: SsamDevice = device.clone();
        let qs: Vec<Vec<f32>> = (0..offline_batch as u32)
            .map(|i| queries.get(i % queries.len() as u32).to_vec())
            .collect();
        let dq: Vec<DeviceQuery<'_>> = qs.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
        // Warm the kernel cache, then measure repeated batches for at
        // least a second of host wall clock.
        let warm = dev.query_batch(&dq, k).expect("offline batch");
        let model_qps = warm.timing.queries_per_second;
        let t0 = Instant::now();
        let cpu0 = process_cpu_seconds();
        let mut served = 0u64;
        while t0.elapsed().as_secs_f64() < (args.seconds * 0.5).min(2.0) {
            dev.query_batch(&dq, k).expect("offline batch");
            served += offline_batch as u64;
        }
        let cpu = process_cpu_seconds()
            .zip(cpu0)
            .map(|(a, b)| a - b)
            .filter(|&s| s > 0.0)
            .map_or(f64::NAN, |s| served as f64 / s);
        (served as f64 / t0.elapsed().as_secs_f64(), cpu, model_qps)
    };
    println!(
        "offline query_batch ceiling at batch {offline_batch}: {} modeled q/s, \
         {} cpu q/s, {} host q/s",
        fmt(offline_model),
        fmt(offline_cpu),
        fmt(offline_host)
    );

    let fault_plan = args.faults.as_deref().map(|spec| {
        Arc::new(FaultPlan::parse(spec).unwrap_or_else(|e| panic!("bad --faults spec: {e}")))
    });
    if let Some(plan) = &fault_plan {
        println!(
            "fault injection: seed={} bit_flip={} crc={} vault_out={} straggle={} module_out={}",
            plan.seed,
            plan.bit_flip_rate,
            plan.crc_corruption_rate,
            plan.vault_outage_rate,
            plan.straggler_rate,
            plan.module_outage_rate
        );
    }
    let serve_config = ServeConfig {
        max_batch: args.max_batch,
        max_linger: args.linger,
        workers: args.workers,
        faults: ServeFaults {
            plan: fault_plan.clone(),
            // The load generator accepts partial answers and reports
            // coverage honestly; the retry/degrade path is exercised by
            // the runtime's own tests.
            min_coverage: 0.0,
            ..ServeFaults::default()
        },
        ..ServeConfig::default()
    };

    // ---- Closed-loop concurrency sweep (one server across the sweep:
    // the batch histogram then spans all points; per-point stats are
    // deltas).
    let mut sweep_rows = Vec::new();
    let mut sweep_json = Vec::new();
    let server = Arc::new(Server::start(device.clone(), serve_config.clone()));
    let mut prev = server.stats();
    let mut best_qps = 0.0f64;
    let mut top: Option<(usize, Measured, f64)> = None;
    for &c in &args.concurrency {
        let m = closed_loop(&server, &queries, k, c, args.seconds);
        let now = server.stats();
        let batches = now.batches - prev.batches;
        let served_batched = now.served - prev.served;
        let mean_batch = if batches == 0 {
            0.0
        } else {
            served_batched as f64 / batches as f64
        };
        prev = now;
        best_qps = best_qps.max(m.qps());
        sweep_rows.push(vec![
            c.to_string(),
            m.served.to_string(),
            fmt(m.qps()),
            fmt(m.cpu_qps()),
            fmt(m.device_qps()),
            format!("{:.2}", m.percentile(0.50)),
            format!("{:.2}", m.percentile(0.95)),
            format!("{:.2}", m.percentile(0.99)),
            format!("{mean_batch:.2}"),
        ]);
        sweep_json.push(measured_object(
            &m,
            &[
                ("concurrency", json::number_usize(c)),
                ("mean_batch", json::number_f64(mean_batch)),
            ],
        ));
        top = Some((c, m, mean_batch));
    }
    let final_stats = server.stats();
    println!("\nclosed-loop sweep ({}s per point):", args.seconds);
    print_table(
        args.csv,
        &[
            "clients",
            "served",
            "host q/s",
            "cpu q/s",
            "device q/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "mean batch",
        ],
        &sweep_rows,
    );

    // ---- Batch-of-1 baseline at the highest concurrency: the same
    // serving stack with dynamic batching disabled.
    let (top_c, top_m, top_mean_batch) = top.expect("at least one sweep point");
    let serial_server = Arc::new(Server::start(
        device.clone(),
        ServeConfig {
            max_batch: 1,
            ..serve_config.clone()
        },
    ));
    let serial = closed_loop(&serial_server, &queries, k, top_c, args.seconds);
    let serial_stats = Arc::into_inner(serial_server)
        .expect("sole owner")
        .shutdown();
    assert_eq!(
        serial_stats.max_batch().max(1),
        1,
        "baseline must serve batches of 1"
    );
    let speedup_cpu = top_m.cpu_qps() / serial.cpu_qps();
    let speedup_model = top_m.device_qps() / serial.device_qps();
    let speedup_host = top_m.qps() / serial.qps();
    let offline_fraction = top_m.cpu_qps() / offline_cpu;
    println!(
        "\nat {top_c} clients: dynamic batching {} cpu q/s (mean batch {top_mean_batch:.1}) \
         vs batch-of-1 {} cpu q/s -> {speedup_cpu:.2}x per host cpu-second \
         ({speedup_host:.2}x wall-clock, {speedup_model:.2}x on the device model — uniform \
         same-kernel queries pipeline with no modeled stall, the paper's 'SSAM needs no \
         batching' premise); {:.0}% of the offline query_batch ceiling at batch \
         {offline_batch} (cpu basis)",
        fmt(top_m.cpu_qps()),
        fmt(serial.cpu_qps()),
        offline_fraction * 100.0
    );

    // ---- Open loop: Poisson arrivals on an absolute schedule,
    // non-blocking submission; rejections are counted, never waited on.
    // `--tenants` turns this into the multi-tenant QoS harness; without
    // it, one default tenant at `--rate` (or 70% of the best closed-loop
    // throughput) reproduces the single-tenant run.
    let specs = match &args.tenants {
        Some(spec) => parse_tenant_specs(spec, args.timeout),
        None => vec![TenantSpec {
            name: "default".to_string(),
            id: TenantId::DEFAULT,
            rate: args.rate.unwrap_or(best_qps * 0.7).max(1.0),
            weight: 1.0,
            tier: 1,
            limit: None,
            burst: 1.0,
            timeout: args.timeout,
            min_cov: None,
            storm: false,
        }],
    };
    let storm_tenants: Vec<TenantId> = specs.iter().filter(|s| s.storm).map(|s| s.id).collect();
    assert!(
        storm_tenants.is_empty() || fault_plan.is_some(),
        "--tenants marks a storm tenant but no --faults plan was given"
    );
    let mut open_config = serve_config.clone();
    open_config.qos = specs.iter().fold(QosConfig::default(), |cfg, s| {
        cfg.with_tenant(s.id, s.qos())
    });
    if !storm_tenants.is_empty() {
        open_config.faults.storm_tenants = Some(storm_tenants.clone());
    }
    let open_server = Arc::new(Server::start(device, open_config));
    let outcome = open_loop(&open_server, &queries, k, &specs, args.seconds);
    let open = {
        let m = &outcome.measured;
        let rejected_overload: u64 = outcome.tenants.iter().map(|t| t.rejected_overload).sum();
        let rejected_rate: u64 = outcome
            .tenants
            .iter()
            .map(|t| t.rejected_rate_limited)
            .sum();
        let expired: u64 = outcome.tenants.iter().map(|t| t.expired).sum();
        let expired_all: Vec<f64> = outcome
            .tenants
            .iter()
            .flat_map(|t| t.expired_at_ms())
            .collect();
        let jain = jain_index(
            &outcome
                .tenants
                .iter()
                .map(TenantResult::demand_met)
                .collect::<Vec<_>>(),
        );
        println!(
            "\nopen loop: Poisson {} q/s offered for {:.1}s -> {} arrivals \
             ({} q/s achieved), {} served ({} q/s goodput), p50 {:.2} ms, \
             p99 {:.2} ms (with expired: {:.2} ms), {} overloaded, \
             {} rate-limited, {} deadline-expired",
            fmt(outcome.offered_qps),
            m.elapsed,
            outcome.arrivals,
            fmt(outcome.achieved_qps),
            m.served,
            fmt(m.qps()),
            m.percentile(0.50),
            m.percentile(0.99),
            tail_percentile(&m.latencies_ms, &expired_all, 0.99),
            rejected_overload,
            rejected_rate,
            expired,
        );
        if outcome.tenants.len() > 1 {
            println!(
                "\nper-tenant ({} tenants, Jain fairness {jain:.4}):",
                outcome.tenants.len()
            );
            let rows: Vec<Vec<String>> = outcome
                .tenants
                .iter()
                .map(|t| {
                    vec![
                        t.name.clone(),
                        fmt(t.offered),
                        t.arrivals.to_string(),
                        fmt(t.goodput()),
                        format!("{:.3}", t.demand_met()),
                        format!("{:.2}", t.percentile(0.50)),
                        format!("{:.2}", t.percentile(0.99)),
                        format!("{:.2}", t.percentile_with_expired(0.99)),
                        t.rejected_rate_limited.to_string(),
                        t.expired.to_string(),
                        t.degraded.to_string(),
                    ]
                })
                .collect();
            print_table(
                args.csv,
                &[
                    "tenant",
                    "offered q/s",
                    "arrivals",
                    "goodput q/s",
                    "demand met",
                    "p50 ms",
                    "p99 ms",
                    "p99+exp ms",
                    "rate-limited",
                    "expired",
                    "degraded",
                ],
                &rows,
            );
        }
        if let Some(min) = args.min_jain {
            assert!(
                outcome.tenants.len() > 1,
                "--min-jain needs at least two tenants (got {})",
                outcome.tenants.len()
            );
            assert!(
                jain >= min,
                "Jain fairness {jain:.4} fell below the --min-jain {min} gate"
            );
        }
        let tenants_json: Vec<Value> = outcome
            .tenants
            .iter()
            .map(|t| {
                let mut o = BTreeMap::new();
                o.insert("name".into(), Value::String(t.name.clone()));
                o.insert("tenant".into(), json::number_u64(u64::from(t.id.0)));
                o.insert("offered_qps".into(), json::number_f64(t.offered));
                o.insert("arrivals".into(), json::number_u64(t.arrivals));
                o.insert("served".into(), json::number_u64(t.served()));
                o.insert("goodput_qps".into(), json::number_f64(t.goodput()));
                o.insert("demand_met".into(), json::number_f64(t.demand_met()));
                o.insert("p50_ms".into(), json::number_f64(t.percentile(0.50)));
                o.insert("p95_ms".into(), json::number_f64(t.percentile(0.95)));
                o.insert("p99_ms".into(), json::number_f64(t.percentile(0.99)));
                o.insert(
                    "p99_with_expired_ms".into(),
                    json::number_f64(t.percentile_with_expired(0.99)),
                );
                o.insert(
                    "rejected_overload".into(),
                    json::number_u64(t.rejected_overload),
                );
                o.insert(
                    "rejected_rate_limited".into(),
                    json::number_u64(t.rejected_rate_limited),
                );
                o.insert("expired".into(), json::number_u64(t.expired));
                o.insert("degraded".into(), json::number_u64(t.degraded));
                o.insert("device_seconds".into(), json::number_f64(t.device_seconds));
                Value::Object(o)
            })
            .collect();
        measured_object(
            m,
            &[
                ("offered_qps", json::number_f64(outcome.offered_qps)),
                ("achieved_qps", json::number_f64(outcome.achieved_qps)),
                ("arrivals", json::number_u64(outcome.arrivals)),
                ("rejected_overload", json::number_u64(rejected_overload)),
                ("rejected_rate_limited", json::number_u64(rejected_rate)),
                ("rejected_deadline", json::number_u64(expired)),
                (
                    "p50_with_expired_ms",
                    json::number_f64(tail_percentile(&m.latencies_ms, &expired_all, 0.50)),
                ),
                (
                    "p95_with_expired_ms",
                    json::number_f64(tail_percentile(&m.latencies_ms, &expired_all, 0.95)),
                ),
                (
                    "p99_with_expired_ms",
                    json::number_f64(tail_percentile(&m.latencies_ms, &expired_all, 0.99)),
                ),
                ("jain_fairness", json::number_f64(jain)),
                ("tenants", Value::Array(tenants_json)),
            ],
        )
    };
    let open_stats = Arc::into_inner(open_server).expect("sole owner").shutdown();
    let dyn_stats = Arc::into_inner(server).expect("sole owner").shutdown();

    // ---- Telemetry cross-check: every served batch left verified
    // records; any retained violation fails the run.
    if let Some(path) = &args.telemetry {
        sink.write_jsonl(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("cannot write telemetry JSONL to {path}: {e}"));
        println!("\ntelemetry: {} records -> {path}", sink.len());
    }
    let violations = sink.violations();
    assert!(
        violations.is_empty(),
        "serve-path telemetry accounting violations: {violations:#?}"
    );
    println!("telemetry: {} verified records, 0 violations", sink.len());

    // ---- Fault audit: the aggregate of every per-query fault record
    // must close — no injected fault may vanish unaccounted.
    let fault_totals = sink.fault_totals();
    fault_totals
        .check_closure()
        .unwrap_or_else(|e| panic!("fault accounting does not close: {e}"));
    if fault_plan.is_some() {
        println!(
            "faults: {} injected = {} ecc-corrected + {} ecc-uncorrectable + \
             {} crc (of which {} retried ok, {} link-failed) + {} vault outages + \
             {} module outages + {} stragglers; {} failed over; coverage {:.4}",
            fault_totals.injected(),
            fault_totals.ecc_corrected,
            fault_totals.ecc_uncorrectable,
            fault_totals.crc_corruptions,
            fault_totals.link_retries_ok,
            fault_totals.link_failures,
            fault_totals.vault_outages,
            fault_totals.module_outages,
            fault_totals.stragglers,
            fault_totals.failed_over,
            fault_totals.coverage(),
        );
        assert!(
            fault_totals.injected() > 0,
            "--faults was given but no fault was ever injected; \
             the chaos run exercised nothing"
        );
    }

    // ---- BENCH_serve.json
    let mut root = BTreeMap::new();
    root.insert("dataset".into(), Value::String(dataset_label));
    root.insert("scale".into(), json::number_f64(args.scale));
    root.insert("k".into(), json::number_usize(k));
    root.insert("workers".into(), json::number_usize(args.workers));
    root.insert("max_batch".into(), json::number_usize(args.max_batch));
    root.insert(
        "linger_us".into(),
        json::number_u64(args.linger.as_micros() as u64),
    );
    root.insert("seconds_per_point".into(), json::number_f64(args.seconds));
    root.insert("optimize_kernels".into(), Value::Bool(!args.no_opt));
    root.insert("fast_path".into(), Value::Bool(args.fast_path));
    let mut offline_o = BTreeMap::new();
    offline_o.insert("batch".into(), json::number_usize(offline_batch));
    offline_o.insert("host_qps".into(), json::number_f64(offline_host));
    offline_o.insert("cpu_qps".into(), json::number_f64(offline_cpu));
    offline_o.insert("model_qps".into(), json::number_f64(offline_model));
    root.insert("offline".into(), Value::Object(offline_o));
    root.insert("closed_loop".into(), Value::Array(sweep_json));
    root.insert(
        "serial_baseline".into(),
        measured_object(&serial, &[("concurrency", json::number_usize(top_c))]),
    );
    root.insert(
        "speedup_vs_serial_cpu".into(),
        json::number_f64(speedup_cpu),
    );
    root.insert(
        "speedup_vs_serial_model".into(),
        json::number_f64(speedup_model),
    );
    root.insert(
        "speedup_vs_serial_host".into(),
        json::number_f64(speedup_host),
    );
    root.insert(
        "fraction_of_offline_cpu".into(),
        json::number_f64(offline_fraction),
    );
    root.insert("open_loop".into(), open);
    root.insert("batch_hist".into(), hist_value(&final_stats.batch_hist));
    let mut tele_o = BTreeMap::new();
    tele_o.insert("records".into(), json::number_usize(sink.len()));
    tele_o.insert("violations".into(), json::number_usize(0));
    root.insert("telemetry".into(), Value::Object(tele_o));
    if let Some(plan) = &fault_plan {
        let mut f = BTreeMap::new();
        f.insert("spec".into(), Value::String(args.faults.clone().unwrap()));
        f.insert("seed".into(), json::number_u64(plan.seed));
        f.insert("injected".into(), json::number_u64(fault_totals.injected()));
        f.insert(
            "bit_flips".into(),
            json::number_u64(fault_totals.bit_flip_events),
        );
        f.insert(
            "ecc_corrected".into(),
            json::number_u64(fault_totals.ecc_corrected),
        );
        f.insert(
            "ecc_uncorrectable".into(),
            json::number_u64(fault_totals.ecc_uncorrectable),
        );
        f.insert(
            "crc_corruptions".into(),
            json::number_u64(fault_totals.crc_corruptions),
        );
        f.insert(
            "link_retries_ok".into(),
            json::number_u64(fault_totals.link_retries_ok),
        );
        f.insert(
            "link_failures".into(),
            json::number_u64(fault_totals.link_failures),
        );
        f.insert(
            "vault_outages".into(),
            json::number_u64(fault_totals.vault_outages),
        );
        f.insert(
            "module_outages".into(),
            json::number_u64(fault_totals.module_outages),
        );
        f.insert(
            "stragglers".into(),
            json::number_u64(fault_totals.stragglers),
        );
        f.insert(
            "failed_over".into(),
            json::number_u64(fault_totals.failed_over),
        );
        f.insert("coverage".into(), json::number_f64(fault_totals.coverage()));
        f.insert(
            "recovery_seconds".into(),
            json::number_f64(fault_totals.recovery_seconds),
        );
        root.insert("faults".into(), Value::Object(f));
    }
    let mut stats_o = BTreeMap::new();
    for (name, s) in [("dynamic", &dyn_stats), ("open_loop", &open_stats)] {
        let mut o = BTreeMap::new();
        o.insert("submitted".into(), json::number_u64(s.submitted));
        o.insert("served".into(), json::number_u64(s.served));
        o.insert("failed".into(), json::number_u64(s.failed));
        o.insert(
            "rejected_overload".into(),
            json::number_u64(s.rejected_overload),
        );
        o.insert(
            "rejected_deadline".into(),
            json::number_u64(s.rejected_deadline),
        );
        o.insert(
            "rejected_rate_limited".into(),
            json::number_u64(s.rejected_rate_limited),
        );
        o.insert("batches".into(), json::number_u64(s.batches));
        o.insert("mean_batch".into(), json::number_f64(s.mean_batch()));
        o.insert("degraded".into(), json::number_u64(s.degraded));
        o.insert(
            "retried_degraded".into(),
            json::number_u64(s.retried_degraded),
        );
        o.insert("retried_panic".into(), json::number_u64(s.retried_panic));
        o.insert("worker_panics".into(), json::number_u64(s.worker_panics));
        stats_o.insert(name.to_string(), Value::Object(o));
    }
    root.insert("server_stats".into(), Value::Object(stats_o));

    let payload = json::to_string(&Value::Object(root));
    std::fs::write(&args.json, payload + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.json));
    println!("wrote {}", args.json);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured(latencies_ms: Vec<f64>) -> Measured {
        Measured {
            served: latencies_ms.len() as u64,
            elapsed: 1.0,
            cpu_seconds: None,
            device_seconds: 0.0,
            latencies_ms,
        }
    }

    /// At small sample counts the old `round((len−1)·q)` index collapsed
    /// p95 into p99 and neither reached the maximum; nearest-rank must
    /// report the sample maximum for any q past (len−1)/len.
    #[test]
    fn small_sample_tails_reach_the_maximum() {
        let m = measured((1..=10).map(f64::from).collect());
        assert_eq!(m.percentile(0.50), 5.0);
        assert_eq!(m.percentile(0.95), 10.0);
        assert_eq!(m.percentile(0.99), 10.0);
        assert_eq!(m.percentile(1.0), 10.0);

        // len = 20: old formula gave round(19 · 0.99) = 19 → 19.0 for
        // p99, silently discarding the worst observation.
        let m = measured((1..=20).map(f64::from).collect());
        assert_eq!(m.percentile(0.95), 19.0);
        assert_eq!(m.percentile(0.99), 20.0);
    }

    /// At len = 100 the q-th percentile is exactly the ⌈100q⌉-th order
    /// statistic, and p95/p99 are distinct.
    #[test]
    fn hundred_samples_hit_the_exact_order_statistic() {
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        v.reverse(); // percentile() sorts; feed it unsorted data.
        let m = measured(v);
        assert_eq!(m.percentile(0.50), 50.0);
        assert_eq!(m.percentile(0.95), 95.0);
        assert_eq!(m.percentile(0.99), 99.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(measured(vec![]).percentile(0.99).is_nan());
        let one = measured(vec![7.5]);
        assert_eq!(one.percentile(0.0), 7.5);
        assert_eq!(one.percentile(0.99), 7.5);
        assert_eq!(percentile_rank(1, 0.0), 0);
        assert_eq!(percentile_rank(5, 1.0), 4);
    }

    /// The cursor the open loop indexes queries with must survive past
    /// 2³² arrivals: the old `u32` counter wrapped there (~71 minutes at
    /// 1M q/s), restarting the modulo walk mid-sequence.
    #[test]
    fn query_cursor_survives_u32_overflow() {
        let n = 1000u32;
        let at_wrap = u64::from(u32::MAX) + 1;
        assert_eq!(query_index(at_wrap, n), (at_wrap % u64::from(n)) as u32);
        assert_eq!(
            query_index(at_wrap + 1, n),
            query_index(at_wrap, n) + 1,
            "the walk must continue across the u32 boundary, not restart"
        );
        // The failure mode the u32 counter had: after the wrap the
        // counter restarts at 0, so the walk jumps to query 0 — but the
        // true u64 walk is at 2³² mod 1000 = 296.
        assert_eq!(query_index(at_wrap, n), 296);
        let wrapped_u32 = (at_wrap as u32) % n;
        assert_ne!(query_index(at_wrap, n), wrapped_u32);
    }

    /// Expired requests count at their deadline in the combined tail:
    /// shedding load must never *improve* reported p99.
    #[test]
    fn expired_requests_count_at_their_deadline() {
        // 98 fast completions; 2 requests expired at a 100 ms deadline.
        let completed: Vec<f64> = (1..=98).map(|i| f64::from(i) * 0.1).collect();
        let expired = vec![100.0, 100.0];
        // Completed-only p99 pretends the tail is sub-10 ms...
        assert!(tail_percentile(&completed, &[], 0.99) < 10.0);
        // ...but the honest tail is the deadline itself.
        assert_eq!(tail_percentile(&completed, &expired, 0.99), 100.0);
        assert_eq!(tail_percentile(&completed, &expired, 0.50), 5.0);
        // More shedding (fewer completions, more expiries) must not
        // lower the combined p99.
        let fewer: Vec<f64> = (1..=50).map(|i| f64::from(i) * 0.1).collect();
        let more_expired = vec![100.0; 50];
        assert!(
            tail_percentile(&fewer, &more_expired, 0.99)
                >= tail_percentile(&completed, &expired, 0.99)
        );
        assert!(tail_percentile(&[], &[], 0.99).is_nan());
    }

    #[test]
    fn tenant_spec_parses_full_grammar() {
        let specs = parse_tenant_specs(
            "gold:rate=100,weight=4,tier=0,timeout_ms=20,min_cov=0.9; \
             bronze:rate=50,limit=40,burst=8,storm",
            Some(Duration::from_millis(5)),
        );
        assert_eq!(specs.len(), 2);
        let g = &specs[0];
        assert_eq!((g.name.as_str(), g.id), ("gold", TenantId(0)));
        assert_eq!((g.rate, g.weight, g.tier), (100.0, 4.0, 0));
        assert_eq!(g.timeout, Some(Duration::from_millis(20)));
        assert_eq!(g.min_cov, Some(0.9));
        assert!(g.limit.is_none() && !g.storm);
        let b = &specs[1];
        assert_eq!((b.name.as_str(), b.id), ("bronze", TenantId(1)));
        assert_eq!((b.limit, b.burst), (Some(40.0), 8.0));
        // Unspecified timeout inherits the harness default.
        assert_eq!(b.timeout, Some(Duration::from_millis(5)));
        assert!(b.storm);
        let qos = b.qos();
        assert_eq!((qos.rate, qos.burst, qos.tier), (Some(40.0), 8.0, 1));
    }
}
