//! **Table VI** — SSAM-4 versus the Micron Automata Processor (gen 1 and
//! gen 2) for exact linear Hamming kNN.
//!
//! Paper reference (queries/s at full scale):
//!
//! |                      | GloVe  | GIST | AlexNet |
//! |----------------------|--------|------|---------|
//! | SSAM-4               | 2059.3 | 480.5| 134.10  |
//! | First-generation AP  | 288    | 2.64 | 0.553   |
//! | Second-generation AP | 1117.09| 10.55| 0.951   |

use ssam_baselines::automata::{ApGeneration, AutomataPlatform};
use ssam_baselines::ScanWorkload;
use ssam_bench::{fmt, print_table, ExpConfig};
use ssam_core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam_datasets::PaperDataset;
use ssam_knn::binary::HyperplaneBinarizer;

const VL: usize = 4;
const AP_BATCH: usize = 1000;

fn main() {
    let cfg = ExpConfig::from_args(0.002);
    let g1 = AutomataPlatform::new(ApGeneration::Gen1);
    let g2 = AutomataPlatform::new(ApGeneration::Gen2);
    let mut rows = Vec::new();

    for dataset in PaperDataset::ALL {
        let bench = cfg.benchmark(dataset);
        let bits = bench.train.dims().div_ceil(32) * 32;
        eprintln!("[table6] {} ({} bits)", dataset.name(), bits);

        // SSAM: simulate the Hamming kernel over the binarized dataset.
        let binarizer = HyperplaneBinarizer::new(bench.train.dims(), bits, 9);
        let codes = binarizer.encode_store(&bench.train);
        let mut dev = SsamDevice::new(SsamConfig {
            vector_length: VL,
            ..SsamConfig::default()
        });
        dev.load_binary(&codes);
        let queries: Vec<Vec<u32>> = (0..2u32)
            .map(|i| binarizer.encode(bench.queries.get(i)))
            .collect();
        let dq: Vec<DeviceQuery<'_>> = queries.iter().map(|q| DeviceQuery::Hamming(q)).collect();
        let ssam_qps = dev
            .estimate_throughput(&dq, bench.k())
            .expect("device runs")
            .queries_per_second;

        // AP: analytical model over the same (scaled) workload.
        let w = ScanWorkload::binary(bench.train.len(), bits);
        let g1_qps = g1.hamming_throughput(&w, AP_BATCH);
        let g2_qps = g2.hamming_throughput(&w, AP_BATCH);

        rows.push(vec![
            dataset.name().into(),
            fmt(ssam_qps),
            fmt(g1_qps),
            fmt(g2_qps),
            format!("{:.0}", ssam_qps / g1_qps),
            format!("{:.0}", ssam_qps / g2_qps),
        ]);
    }

    println!(
        "\nTable VI — linear Hamming kNN, SSAM-{VL} vs Automata Processor (scale {})",
        cfg.scale
    );
    print_table(
        cfg.csv,
        &[
            "dataset",
            "SSAM-4 q/s",
            "AP gen1 q/s",
            "AP gen2 q/s",
            "SSAM/gen1",
            "SSAM/gen2",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: SSAM leads both AP generations everywhere; the gap\n\
         explodes with dimensionality because high-dimensional codes fit only\n\
         a handful of NFAs per AP configuration, forcing reconfiguration\n\
         passes. Gen-2's faster reconfiguration narrows but does not close it."
    );
}
