//! Regenerates the paper's figures as SVG files under
//! `results/figures/`: Fig. 2 (CPU throughput vs accuracy), Fig. 6a/6b
//! (platform comparison bars), and Fig. 7 (SSAM vs CPU vs accuracy).
//!
//! ```text
//! cargo run -p ssam-bench --release --bin make_figures [-- --scale 0.005]
//! ```

use std::fs;
use std::path::PathBuf;

use ssam_baselines::normalize::area_normalized_throughput;
use ssam_baselines::parallel::{batch_recall, batch_search_single_thread};
use ssam_baselines::{CpuPlatform, FpgaPlatform, GpuPlatform, ScanWorkload};
use ssam_bench::svg::{grouped_bar_chart, line_chart, PlotSpec, Series};
use ssam_bench::{ssam_linear_estimate, ssam_scan_cost, ssam_with, ExpConfig};
use ssam_core::area::module_area;
use ssam_core::isa::VECTOR_LENGTHS;
use ssam_datasets::{Benchmark, PaperDataset};
use ssam_hmc::HmcConfig;
use ssam_knn::index::{SearchBudget, SearchIndex};
use ssam_knn::kdtree::{KdForest, KdTreeParams};
use ssam_knn::kmeans_tree::{KMeansTree, KMeansTreeParams};
use ssam_knn::mplsh::{MplshParams, MultiProbeLsh};
use ssam_knn::Metric;

const BUDGETS: [usize; 7] = [1, 2, 4, 8, 16, 64, 128];

fn indexes(bench: &Benchmark) -> Vec<(&'static str, Box<dyn SearchIndex>)> {
    let bits = ((bench.train.len() as f64 / 8.0).log2().ceil() as usize).clamp(8, 20);
    vec![
        (
            "kd-tree",
            Box::new(KdForest::build(
                &bench.train,
                Metric::Euclidean,
                KdTreeParams {
                    trees: 4,
                    leaf_size: 32,
                    seed: 7,
                },
            )) as Box<dyn SearchIndex>,
        ),
        (
            "k-means",
            Box::new(KMeansTree::build(
                &bench.train,
                Metric::Euclidean,
                KMeansTreeParams {
                    branching: 16,
                    leaf_size: 64,
                    max_height: 10,
                    kmeans_iters: 6,
                    seed: 7,
                },
            )),
        ),
        (
            "MPLSH",
            Box::new(MultiProbeLsh::build(
                &bench.train,
                Metric::Euclidean,
                MplshParams {
                    tables: 8,
                    hash_bits: bits,
                    seed: 7,
                },
            )),
        ),
    ]
}

fn main() {
    let cfg = ExpConfig::from_args(0.005);
    let out_dir = PathBuf::from("results/figures");
    fs::create_dir_all(&out_dir).expect("create output directory");
    let mut written = Vec::new();

    // ---- Fig. 2: per-dataset throughput vs accuracy on the CPU ----
    for dataset in PaperDataset::ALL {
        let mut bench = cfg.benchmark(dataset);
        cap_queries(&mut bench, cfg.queries.unwrap_or(30));
        let k = bench.k();
        eprintln!("[fig2] {}", dataset.name());
        let mut series = Vec::new();
        for (name, index) in indexes(&bench) {
            let mut points = Vec::new();
            for budget in BUDGETS {
                let out = batch_search_single_thread(
                    index.as_ref(),
                    &bench.train,
                    &bench.queries,
                    k,
                    SearchBudget::checks(budget),
                );
                points.push((batch_recall(&out, &bench.ground_truth.ids), out.qps));
            }
            series.push(Series {
                label: name.into(),
                points,
            });
        }
        let lin = batch_search_single_thread(
            &ssam_knn::linear::LinearSearch::new(Metric::Euclidean),
            &bench.train,
            &bench.queries,
            k,
            SearchBudget::unlimited(),
        );
        series.push(Series {
            label: "linear".into(),
            points: vec![(0.0, lin.qps), (1.0, lin.qps)],
        });
        let svg = line_chart(
            &PlotSpec {
                title: format!("Fig. 2 — {} (scale {})", dataset.name(), cfg.scale),
                x_label: "recall".into(),
                y_label: "queries/s (log)".into(),
                ..PlotSpec::default()
            },
            &series,
        );
        written.push(write(
            &out_dir,
            &format!("fig2_{}.svg", dataset.name().to_lowercase()),
            &svg,
        ));
    }

    // ---- Fig. 6a/6b: platform comparison bars ----
    let groups: Vec<String> = PaperDataset::ALL
        .iter()
        .map(|d| d.name().to_string())
        .collect();
    let mut tput: Vec<(String, Vec<f64>)> = Vec::new();
    let mut eff: Vec<(String, Vec<f64>)> = Vec::new();
    let cpu = CpuPlatform::xeon_e5_2620();
    let gpu = GpuPlatform::titan_x();
    type PlatformFn = Box<dyn Fn(&ScanWorkload) -> (f64, f64)>;
    let mut platform_rows: Vec<(String, PlatformFn)> = vec![
        (
            "CPU".into(),
            Box::new(move |w| {
                (
                    area_normalized_throughput(cpu.linear_throughput(w), cpu.area_mm2_28nm()),
                    cpu.linear_queries_per_joule(w),
                )
            }),
        ),
        (
            "GPU".into(),
            Box::new(move |w| {
                (
                    area_normalized_throughput(gpu.linear_throughput(w), gpu.area_mm2_28nm()),
                    gpu.linear_queries_per_joule(w),
                )
            }),
        ),
        (
            "FPGA-16".into(),
            Box::new(move |w| {
                let f = FpgaPlatform::kintex7(16);
                (
                    area_normalized_throughput(f.linear_throughput(w), f.area_mm2_28nm()),
                    f.linear_queries_per_joule(w),
                )
            }),
        ),
    ];
    for (name, f) in platform_rows.drain(..) {
        let mut t_col = Vec::new();
        let mut e_col = Vec::new();
        for dataset in PaperDataset::ALL {
            let spec = dataset.spec().scaled(cfg.scale.min(0.002));
            let w = ScanWorkload::dense(spec.train, spec.dims);
            let (t, e) = f(&w);
            t_col.push(t);
            e_col.push(e);
        }
        tput.push((name.clone(), t_col));
        eff.push((name, e_col));
    }
    for &vl in &VECTOR_LENGTHS {
        let mut t_col = Vec::new();
        let mut e_col = Vec::new();
        for dataset in PaperDataset::ALL {
            eprintln!("[fig6] {} SSAM-{vl}", dataset.name());
            let bench = Benchmark::paper(dataset, cfg.scale.min(0.002));
            let mut dev = ssam_with(&bench.train, vl);
            let (qps, mj) = ssam_linear_estimate(&mut dev, &bench, 2);
            t_col.push(area_normalized_throughput(qps, module_area(vl).total()));
            e_col.push(1000.0 / mj);
        }
        tput.push((format!("SSAM-{vl}"), t_col));
        eff.push((format!("SSAM-{vl}"), e_col));
    }
    let svg = grouped_bar_chart(
        &PlotSpec {
            title: "Fig. 6a — area-normalized throughput (q/s/mm², log)".into(),
            y_label: "queries/s/mm²".into(),
            width: 840,
            ..PlotSpec::default()
        },
        &groups,
        &tput,
    );
    written.push(write(&out_dir, "fig6a_throughput.svg", &svg));
    let svg = grouped_bar_chart(
        &PlotSpec {
            title: "Fig. 6b — energy efficiency (queries/J, log)".into(),
            y_label: "queries/J".into(),
            width: 840,
            ..PlotSpec::default()
        },
        &groups,
        &eff,
    );
    written.push(write(&out_dir, "fig6b_energy.svg", &svg));

    // ---- Fig. 7: SSAM vs CPU area-normalized throughput vs accuracy ----
    let hmc = HmcConfig::hmc2();
    for dataset in PaperDataset::ALL {
        let mut bench = cfg.benchmark(dataset);
        cap_queries(&mut bench, cfg.queries.unwrap_or(30));
        let dims = bench.train.dims();
        let k = bench.k();
        eprintln!("[fig7] {}", dataset.name());
        let cost = ssam_scan_cost(dims, 4);
        let mut series = Vec::new();
        for (name, index) in indexes(&bench) {
            let mut cpu_pts = Vec::new();
            let mut ssam_pts = Vec::new();
            for budget in BUDGETS {
                let out = batch_search_single_thread(
                    index.as_ref(),
                    &bench.train,
                    &bench.queries,
                    k,
                    SearchBudget::checks(budget),
                );
                let recall = batch_recall(&out, &bench.ground_truth.ids);
                let nq = out.results.len() as f64;
                let cand = out.stats.distance_evals as f64 / nq;
                let interior = out.stats.interior_steps as f64 / nq;
                let leaves = out.stats.leaves_visited as f64 / nq;
                let cpu_t = cpu.approx_seconds_per_query(cand, interior, dims);
                cpu_pts.push((
                    recall,
                    area_normalized_throughput(1.0 / cpu_t, cpu.area_mm2_28nm()),
                ));
                let engaged = leaves.min(hmc.vaults as f64).max(1.0);
                let mem_t = cand * cost.bytes_per_vector / (engaged * hmc.vault_bandwidth);
                let comp_t = cand * cost.cycles_per_vector / (engaged * 4.0 * 1.0e9);
                let t = mem_t.max(comp_t) + interior * 6.0 / 1.0e9 + 2e-7;
                ssam_pts.push((
                    recall,
                    area_normalized_throughput(1.0 / t, module_area(4).total()),
                ));
            }
            series.push(Series {
                label: format!("{name} (CPU)"),
                points: cpu_pts,
            });
            series.push(Series {
                label: format!("{name} (SSAM)"),
                points: ssam_pts,
            });
        }
        let svg = line_chart(
            &PlotSpec {
                title: format!("Fig. 7 — {} (scale {})", dataset.name(), cfg.scale),
                x_label: "recall".into(),
                y_label: "queries/s/mm² (log)".into(),
                width: 780,
                ..PlotSpec::default()
            },
            &series,
        );
        written.push(write(
            &out_dir,
            &format!("fig7_{}.svg", dataset.name().to_lowercase()),
            &svg,
        ));
    }

    println!("wrote {} figures:", written.len());
    for p in written {
        println!("  {}", p.display());
    }
}

fn cap_queries(bench: &mut Benchmark, cap: usize) {
    if cap < bench.queries.len() {
        let dims = bench.queries.dims();
        let mut q = ssam_knn::VectorStore::with_capacity(dims, cap);
        for i in 0..cap as u32 {
            q.push(bench.queries.get(i));
        }
        bench.queries = q;
        bench.ground_truth.ids.truncate(cap);
    }
}

fn write(dir: &std::path::Path, name: &str, svg: &str) -> PathBuf {
    let path = dir.join(name);
    fs::write(&path, svg).expect("write figure");
    path
}
