//! **Fig. 2** — CPU throughput versus accuracy for approximate kNN.
//!
//! "We benchmark the accuracy and throughput of indexing techniques for
//! the GloVe, GIST, and AlexNet datasets … for single threaded
//! implementations. In general, our results show indexing techniques can
//! provide up to 170× throughput improvement over linear search while
//! still maintaining at least 50% search accuracy, but only up to 13× in
//! order to achieve 90% accuracy."
//!
//! Sweeps the leaf/probe budget of each index and prints recall, absolute
//! throughput, and speedup over exact linear search.

use ssam_baselines::parallel::{batch_recall, batch_search_single_thread};
use ssam_bench::{fmt, print_table, ExpConfig};
use ssam_datasets::PaperDataset;
use ssam_knn::index::{SearchBudget, SearchIndex};
use ssam_knn::kdtree::{KdForest, KdTreeParams};
use ssam_knn::kmeans_tree::{KMeansTree, KMeansTreeParams};
use ssam_knn::linear::LinearSearch;
use ssam_knn::mplsh::{MplshParams, MultiProbeLsh};
use ssam_knn::Metric;

const BUDGETS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

fn main() {
    let cfg = ExpConfig::from_args(0.01);
    let mut rows = Vec::new();

    for dataset in PaperDataset::ALL {
        let mut bench = cfg.benchmark(dataset);
        if cfg.queries.is_none() && bench.queries.len() > 50 {
            // Single-threaded sweeps over 3 indexes × 8 budgets: cap the
            // batch for tractability unless the user overrides.
            let dims = bench.queries.dims();
            let mut q = ssam_knn::VectorStore::with_capacity(dims, 50);
            for i in 0..50u32 {
                q.push(bench.queries.get(i));
            }
            bench.queries = q;
            bench.ground_truth.ids.truncate(50);
        }
        let k = bench.k();
        eprintln!(
            "[fig2] {}: {} vectors x {} dims, {} queries, k = {k}",
            dataset.name(),
            bench.train.len(),
            bench.train.dims(),
            bench.queries.len()
        );

        // Exact linear reference.
        let linear = LinearSearch::new(Metric::Euclidean);
        let lin = batch_search_single_thread(
            &linear,
            &bench.train,
            &bench.queries,
            k,
            SearchBudget::unlimited(),
        );
        let lin_qps = lin.qps;
        rows.push(vec![
            dataset.name().into(),
            "linear".into(),
            "-".into(),
            fmt(lin_qps),
            "1.000".into(),
            "1.000".into(),
        ]);

        // Indexes. MPLSH hash bits scale with cardinality so buckets stay
        // populated at reduced scale (the paper's 20 bits assume 1M+).
        let kd = KdForest::build(
            &bench.train,
            Metric::Euclidean,
            KdTreeParams {
                trees: 4,
                leaf_size: 32,
                seed: 7,
            },
        );
        let km = KMeansTree::build(
            &bench.train,
            Metric::Euclidean,
            KMeansTreeParams {
                branching: 16,
                leaf_size: 64,
                max_height: 10,
                kmeans_iters: 6,
                seed: 7,
            },
        );
        let bits = ((bench.train.len() as f64 / 8.0).log2().ceil() as usize).clamp(8, 20);
        let lsh = MultiProbeLsh::build(
            &bench.train,
            Metric::Euclidean,
            MplshParams {
                tables: 8,
                hash_bits: bits,
                seed: 7,
            },
        );

        let indexes: [(&str, &dyn SearchIndex); 3] =
            [("kdtree", &kd), ("kmeans", &km), ("mplsh", &lsh)];
        for (name, index) in indexes {
            for budget in BUDGETS {
                let out = batch_search_single_thread(
                    index,
                    &bench.train,
                    &bench.queries,
                    k,
                    SearchBudget::checks(budget),
                );
                let recall = batch_recall(&out, &bench.ground_truth.ids);
                rows.push(vec![
                    dataset.name().into(),
                    name.into(),
                    budget.to_string(),
                    fmt(out.qps),
                    format!("{recall:.3}"),
                    format!("{:.2}", out.qps / lin_qps),
                ]);
            }
        }
    }

    println!("\nFig. 2 — throughput vs accuracy (single-threaded CPU)");
    print_table(
        cfg.csv,
        &[
            "dataset",
            "algorithm",
            "budget",
            "queries/s",
            "recall",
            "speedup_vs_linear",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: 10-170x speedup at >=50% recall, <=13x at 90%, and\n\
         convergence to linear-search throughput as recall -> 1."
    );
}
