//! **Table III** — SSAM accelerator power by module, per vector length.
//!
//! Prints the calibrated per-module peak powers (which reproduce the
//! paper's table verbatim) alongside the *effective* power of a real
//! simulated linear-search kernel, whose activity factors come from the
//! instruction stream the simulator executed — the role PrimeTime traces
//! play in the paper's flow.

use ssam_bench::{print_table, ssam_with, ExpConfig};
use ssam_core::device::DeviceQuery;
use ssam_core::energy::{effective_power, module_power, Activity};
use ssam_core::isa::VECTOR_LENGTHS;
use ssam_datasets::PaperDataset;

fn main() {
    let cfg = ExpConfig::from_args(0.002);
    let bench = cfg.benchmark(PaperDataset::GloVe);

    let mut rows = Vec::new();
    for &vl in &VECTOR_LENGTHS {
        let p = module_power(vl);
        // Activity factors from a simulated kernel run.
        let mut dev = ssam_with(&bench.train, vl);
        let q: Vec<f32> = bench.queries.get(0).to_vec();
        let r = dev
            .query(&DeviceQuery::Euclidean(&q), bench.k())
            .expect("device runs");
        let act = Activity::from_stats(&r.vault_stats[0]);
        let eff = effective_power(vl, &act);
        rows.push(vec![
            format!("SSAM-{vl}"),
            format!("{:.2}", p.pqueue),
            format!("{:.2}", p.stack),
            format!("{:.2}", p.alus),
            format!("{:.2}", p.scratchpad),
            format!("{:.2}", p.regfiles),
            format!("{:.2}", p.ins_memory),
            format!("{:.2}", p.pipeline),
            format!("{:.2}", p.total()),
            format!("{eff:.2}"),
        ]);
    }

    println!("\nTable III — SSAM accelerator power by module (paper units, 28 nm)");
    print_table(
        cfg.csv,
        &[
            "design",
            "pqueue",
            "stack",
            "ALUs",
            "scratchpad",
            "reg files",
            "ins mem",
            "pipe/ctrl",
            "peak total",
            "effective (sim activity)",
        ],
        &rows,
    );
    println!(
        "\nPeak columns reproduce paper Table III; the effective column applies\n\
         simulated linear-search activity factors (SSAM logic stays well under\n\
         a standard memory module's power budget)."
    );
}
