//! **Fig. 6a/6b** — area-normalized throughput and energy efficiency for
//! exact linear search (Euclidean), across CPU, GPU, FPGA-{2..16}, and
//! SSAM-{2..16}, on all three datasets.
//!
//! "We observe SSAM achieves area-normalized throughput improvements of
//! up to 426×, and energy efficiency gains of up to 934× over
//! multi-threaded Xeon E5-2620 CPU results."
//!
//! SSAM numbers come from full device simulation of the actual kernels
//! over sample queries; the comparison platforms are the calibrated
//! roofline models of `ssam-baselines`.

use ssam_baselines::normalize::{area_normalized_throughput, energy_efficiency};
use ssam_baselines::{CpuPlatform, FpgaPlatform, GpuPlatform, ScanWorkload};
use ssam_bench::{emit_telemetry, fmt, print_table, ssam_linear_estimate, ssam_with, ExpConfig};
use ssam_core::area::module_area;
use ssam_core::isa::VECTOR_LENGTHS;
use ssam_core::telemetry::Telemetry;
use ssam_datasets::PaperDataset;

fn main() {
    let cfg = ExpConfig::from_args(0.002);
    let sink = Telemetry::default();
    let mut rows = Vec::new();

    for dataset in PaperDataset::ALL {
        let bench = cfg.benchmark(dataset);
        let w = ScanWorkload::dense(bench.train.len(), bench.train.dims());
        eprintln!(
            "[fig6] {}: {} vectors x {} dims",
            dataset.name(),
            bench.train.len(),
            bench.train.dims()
        );

        let cpu = CpuPlatform::xeon_e5_2620();
        let gpu = GpuPlatform::titan_x();
        let cpu_qps = cpu.linear_throughput(&w);
        let cpu_norm = area_normalized_throughput(cpu_qps, cpu.area_mm2_28nm());
        let cpu_eff = cpu.linear_queries_per_joule(&w);
        let mut push = |platform: String, qps: f64, area: f64, power_w: f64| {
            let norm = area_normalized_throughput(qps, area);
            let eff = energy_efficiency(qps, power_w);
            rows.push(vec![
                dataset.name().into(),
                platform,
                fmt(qps),
                fmt(norm),
                fmt(eff),
                format!("{:.1}", norm / cpu_norm),
                format!("{:.1}", eff / cpu_eff),
            ]);
        };

        push(
            "CPU (Xeon E5-2620)".into(),
            cpu_qps,
            cpu.area_mm2_28nm(),
            cpu.dynamic_power_w,
        );
        push(
            "GPU (Titan X)".into(),
            gpu.linear_throughput(&w),
            gpu.area_mm2_28nm(),
            gpu.dynamic_power_w,
        );
        for &vl in &VECTOR_LENGTHS {
            let f = FpgaPlatform::kintex7(vl);
            push(
                format!("FPGA-{vl}"),
                f.linear_throughput(&w),
                f.area_mm2_28nm(),
                f.dynamic_power_w,
            );
        }
        for &vl in &VECTOR_LENGTHS {
            let mut dev = ssam_with(&bench.train, vl);
            if cfg.telemetry.is_some() {
                dev.attach_telemetry(&sink);
            }
            let (qps, mj_per_q) = ssam_linear_estimate(&mut dev, &bench, 2);
            let area = module_area(vl).total();
            // queries/J directly from simulated per-query energy.
            let eff = 1000.0 / mj_per_q;
            let norm = area_normalized_throughput(qps, area);
            rows.push(vec![
                dataset.name().into(),
                format!("SSAM-{vl}"),
                fmt(qps),
                fmt(norm),
                fmt(eff),
                format!("{:.1}", norm / cpu_norm),
                format!("{:.1}", eff / cpu_eff),
            ]);
        }
    }

    println!(
        "\nFig. 6a/6b — exact linear Euclidean search (scale {})",
        cfg.scale
    );
    print_table(
        cfg.csv,
        &[
            "dataset",
            "platform",
            "queries/s",
            "q/s/mm^2",
            "queries/J",
            "norm-tput vs CPU",
            "energy-eff vs CPU",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: SSAM leads all platforms in area-normalized throughput\n\
         (up to ~2 orders of magnitude over the CPU) and energy efficiency;\n\
         GPU and FPGA land between CPU and SSAM."
    );
    emit_telemetry(&cfg, &sink);
}
