//! **§III-B demonstration** — two different indexing kernels coexisting
//! on SSAM processing units.
//!
//! "Unlike GPU cores, processing units are not restricted to operating in
//! lockstep and multiple different indexing kernels can coexist on each
//! SSAM module."
//!
//! Runs the kd-tree and hierarchical k-means traversal kernels — both
//! real Table II programs using the hardware stack for backtracking — on
//! one PU over the same shard, sweeping the leaf budget, and reports
//! recall versus simulated cycles and DRAM traffic.

use std::sync::Arc;

use ssam_bench::{emit_telemetry, fmt, print_table, ExpConfig};
use ssam_core::device::SsamConfig;
use ssam_core::energy::{effective_power, Activity};
use ssam_core::isa::DRAM_BASE;
use ssam_core::kernels::kmeans_traversal::{build_kmeans_tree_image, kmeans_euclidean};
use ssam_core::kernels::lsh_traversal::{build_lsh_image, lsh_euclidean};
use ssam_core::kernels::traversal::{
    build_tree_image, image_id_order, kdtree_euclidean, TREE_ADDR,
};
use ssam_core::sim::pu::{ProcessingUnit, RunStats};
use ssam_core::telemetry::{self, Phases, QueryRecord, RecordKind, Telemetry, VaultAccount};
use ssam_datasets::PaperDataset;
use ssam_knn::fixed::Fix32;
use ssam_knn::recall::recall_ids;

const VL: usize = 4;
const LEAF: usize = 64;

fn main() {
    // The scratchpad-resident trees bound the shard size; emulate one
    // vault's worth of a GloVe-like dataset.
    let cfg = ExpConfig::from_args(0.0005);
    let bench = cfg.benchmark(PaperDataset::GloVe);
    let store = &bench.train;
    let k = bench.k();
    eprintln!(
        "[on-device-index] {} vectors x {} dims on one PU (VL={VL})",
        store.len(),
        store.dims()
    );

    // Stage both indexes.
    let kd_img = build_tree_image(store, LEAF, VL);
    let kd_order = image_id_order(store, LEAF);
    let kd_kernel = kdtree_euclidean(store.dims(), VL, LEAF);
    let km_img = build_kmeans_tree_image(store, 4, LEAF, VL, 7);
    let km_kernel = kmeans_euclidean(store.dims(), VL, LEAF);
    let bits = 5; // ~2^5 buckets over this shard
    let lsh_img = build_lsh_image(store, bits, VL, 7);
    let lsh_kernel = lsh_euclidean(store.dims(), VL, bits, lsh_img.max_bucket);

    // For tree kernels, `extra` is the root address (s21); for the LSH
    // kernel it is the bucket-table entry count (s15).
    let run = |dram: &Arc<Vec<i32>>,
               spad_image: &[i32],
               kernel: &ssam_core::kernels::Kernel,
               order: &[u32],
               query: &[f32],
               budget: i32,
               root: Option<u32>,
               buckets: Option<usize>|
     -> (Vec<u32>, RunStats) {
        let mut pu = ProcessingUnit::new(VL, Arc::clone(dram));
        pu.chain_pqueue(k.div_ceil(16));
        pu.load_program(kernel.program.clone());
        let mut q: Vec<i32> = query.iter().map(|&x| Fix32::from_f32(x).0).collect();
        q.resize(kernel.layout.vec_words, 0);
        pu.scratchpad_mut().write_block(0, &q).expect("query");
        pu.scratchpad_mut()
            .write_block(TREE_ADDR, spad_image)
            .expect("image");
        pu.set_sreg(20, budget);
        if let Some(root) = root {
            pu.set_sreg(21, root as i32);
        }
        if let Some(b) = buckets {
            pu.set_sreg(15, b as i32);
        }
        pu.set_sreg(1, DRAM_BASE as i32);
        let stats = pu.run(100_000_000).expect("halts");
        let ids = pu
            .pqueue()
            .entries()
            .iter()
            .take(k)
            .map(|e| order[e.id as usize])
            .collect();
        (ids, stats)
    };

    let kd_dram = Arc::new(kd_img.dram_words.clone());
    let km_dram = Arc::new(km_img.dram_words.clone());
    let lsh_dram = Arc::new(lsh_img.dram_words.clone());
    let nq = bench.queries.len().min(20);
    let sink = Telemetry::default();
    let dev_cfg = SsamConfig::default();
    let mut rows = Vec::new();
    for budget in [1i32, 2, 4, 8, 16, 1_000_000] {
        let mut agg = [(0.0f64, RunStats::default()); 3];
        for (qi, q, gt) in bench.iter_queries().take(nq) {
            let _ = qi;
            let (ids, stats) = run(
                &kd_dram,
                &kd_img.spad_words,
                &kd_kernel,
                &kd_order,
                q,
                budget,
                Some(kd_img.root_addr),
                None,
            );
            agg[0].0 += recall_ids(gt, &ids);
            agg[0].1.accumulate(&stats);
            let (ids, stats) = run(
                &km_dram,
                &km_img.spad_words,
                &km_kernel,
                &km_img.id_order,
                q,
                budget,
                Some(km_img.root_addr),
                None,
            );
            agg[1].0 += recall_ids(gt, &ids);
            agg[1].1.accumulate(&stats);
            let (ids, stats) = run(
                &lsh_dram,
                &lsh_img.spad_words,
                &lsh_kernel,
                &lsh_img.id_order,
                q,
                budget,
                None,
                Some(lsh_img.buckets),
            );
            agg[2].0 += recall_ids(gt, &ids);
            agg[2].1.accumulate(&stats);
        }
        for (i, name) in ["kd-tree", "k-means", "LSH"].iter().enumerate() {
            let label = if budget >= 1_000_000 {
                "all".to_string()
            } else {
                budget.to_string()
            };
            let summed = &agg[i].1;
            if cfg.telemetry.is_some() {
                // One checked record per (budget, kernel): a single-PU
                // "device" with its nq runs pipelined, no link or merge
                // phase (the results never leave the module).
                let mut account = VaultAccount::from_stats(
                    0,
                    summed,
                    dev_cfg.hmc.vault_bandwidth,
                    dev_cfg.freq_hz,
                    1,
                );
                let seconds = account.critical_seconds();
                let act = Activity::from_stats(summed);
                account.energy_mj = effective_power(VL, &act) * seconds;
                let compute_bound = telemetry::critical_path(std::slice::from_ref(&account))
                    .map(|(_, _, cb)| cb)
                    .unwrap_or(false);
                sink.record(QueryRecord {
                    seq: 0,
                    kind: RecordKind::Indexed,
                    label: format!("{name}@{label}"),
                    batch: nq,
                    k,
                    pus_per_vault: 1,
                    phases: Phases {
                        stage_seconds: 0.0,
                        simulate_seconds: seconds,
                        link_seconds: 0.0,
                        merge_seconds: 0.0,
                        fault_seconds: 0.0,
                    },
                    faults: ssam_core::telemetry::FaultRecord::default(),
                    seconds,
                    compute_bound,
                    total_cycles: account.cycles,
                    total_bytes: account.bytes,
                    energy_mj: account.energy_mj,
                    vaults: vec![account],
                });
            }
            rows.push(vec![
                label,
                (*name).into(),
                format!("{:.3}", agg[i].0 / nq as f64),
                fmt(agg[i].1.cycles as f64 / nq as f64),
                fmt(agg[i].1.dram.bytes_read as f64 / nq as f64),
            ]);
        }
    }

    println!("\n§III-B — on-accelerator index traversal kernels (one PU, k = {k})");
    print_table(
        cfg.csv,
        &[
            "leaf budget",
            "index kernel",
            "recall",
            "cycles/query",
            "DRAM bytes/query",
        ],
        &rows,
    );
    println!(
        "\nAll three kernels are real Table II programs: the trees descend on\n\
         the scalar datapath with hardware-stack backtracking (PUSH/POP), LSH\n\
         hashes on the vector datapath and probes single-bit perturbations in\n\
         margin order; every bucket scan uses the vector pipeline and the\n\
         hardware priority queue. Recall climbs with the budget while cycles\n\
         and DRAM traffic grow — the Fig. 2 trade-off executing natively near\n\
         memory. (LSH recall saturates at its probe ceiling; tree budgets\n\
         reach exactness.)"
    );
    emit_telemetry(&cfg, &sink);
}
