//! **§III-C ablation** — vector chaining.
//!
//! "We use forwarding paths between pipeline stages to implement chaining
//! of vector operations." (Section III-C.)
//!
//! Runs the identical Euclidean kernel under the default (chained)
//! latency model — where a dependent vector multiply issues back to back —
//! and under an unchained model where every vector multiply exposes its
//! full latency, quantifying what the forwarding paths buy.

use std::sync::Arc;

use ssam_bench::{fmt, print_table, ExpConfig};
use ssam_core::isa::{DRAM_BASE, VECTOR_LENGTHS};
use ssam_core::kernels::linear;
use ssam_core::sim::pu::ProcessingUnit;
use ssam_core::sim::LatencyModel;
use ssam_datasets::PaperDataset;

fn main() {
    let cfg = ExpConfig::from_args(1.0);
    let mut rows = Vec::new();
    for dataset in PaperDataset::ALL {
        let spec = dataset.spec();
        let dims = spec.dims;
        for &vl in &VECTOR_LENGTHS {
            let kernel = linear::euclidean(dims, vl);
            let vw = kernel.layout.vec_words;
            let n = 64usize;
            let words: Arc<Vec<i32>> = Arc::new((0..n * vw).map(|i| (i % 89) as i32).collect());

            let run = |lat: LatencyModel| -> u64 {
                let mut pu = ProcessingUnit::new(vl, Arc::clone(&words));
                pu.set_latency_model(lat);
                pu.load_program(kernel.program.clone());
                pu.scratchpad_mut()
                    .write_block(0, &vec![0; vw])
                    .expect("query");
                pu.set_sreg(1, DRAM_BASE as i32);
                pu.set_sreg(2, DRAM_BASE as i32 + (n * vw * 4) as i32);
                pu.run(100_000_000).expect("runs").cycles
            };

            let chained = run(LatencyModel::default());
            let unchained = run(LatencyModel {
                vmult: 3,
                ..LatencyModel::default()
            });
            rows.push(vec![
                spec.name.clone(),
                format!("SSAM-{vl}"),
                fmt(chained as f64 / n as f64),
                fmt(unchained as f64 / n as f64),
                format!("{:.1}%", 100.0 * (unchained as f64 / chained as f64 - 1.0)),
            ]);
        }
    }

    println!("\n§III-C ablation — vector chaining (Euclidean scan, cycles per vector)");
    print_table(
        cfg.csv,
        &[
            "dataset",
            "design",
            "chained cyc/vec",
            "unchained cyc/vec",
            "chaining saves",
        ],
        &rows,
    );
    println!(
        "\nChaining removes the multiply's exposed latency from every chunk of\n\
         the distance loop — a constant-fraction cycle saving that grows in\n\
         importance exactly where the PU is compute-bound (narrow vectors,\n\
         high dimensionality)."
    );
}
