//! **Table IV** — SSAM accelerator area by module, per vector length,
//! plus the paper's platform-area comparisons of Section V-A.

use ssam_baselines::{CpuPlatform, GpuPlatform};
use ssam_bench::{print_table, ExpConfig};
use ssam_core::area::{hmc_die_area_28nm, module_area};
use ssam_core::isa::VECTOR_LENGTHS;

fn main() {
    let cfg = ExpConfig::from_args(1.0);
    let mut rows = Vec::new();
    for &vl in &VECTOR_LENGTHS {
        let a = module_area(vl);
        rows.push(vec![
            format!("SSAM-{vl}"),
            format!("{:.2}", a.pqueue),
            format!("{:.2}", a.stack),
            format!("{:.2}", a.alus),
            format!("{:.2}", a.scratchpad),
            format!("{:.2}", a.regfiles),
            format!("{:.2}", a.ins_memory),
            format!("{:.2}", a.pipeline),
            format!("{:.2}", a.total()),
        ]);
    }

    println!("\nTable IV — SSAM accelerator area by module (mm^2 at 28 nm)");
    print_table(
        cfg.csv,
        &[
            "design",
            "pqueue",
            "stack",
            "ALUs",
            "scratchpad",
            "reg files",
            "ins mem",
            "pipe/ctrl",
            "total",
        ],
        &rows,
    );

    let cpu = CpuPlatform::xeon_e5_2620().area_mm2_28nm();
    let gpu = GpuPlatform::titan_x().area_mm2_28nm();
    let s2 = module_area(2).total();
    let s16 = module_area(16).total();
    println!("\nSection V-A comparisons (28 nm-normalized):");
    println!(
        "  Xeon E5-2620 die ~{cpu:.0} mm^2  -> SSAM is {:.2}-{:.2}x smaller",
        cpu / s16,
        cpu / s2
    );
    println!(
        "  Titan X die      ~{gpu:.0} mm^2  -> SSAM is {:.2}-{:.2}x smaller",
        gpu / s16,
        gpu / s2
    );
    println!(
        "  HMC logic die    ~{:.1} mm^2 (729 mm^2 at 90 nm, scaled) — about the",
        hmc_die_area_28nm()
    );
    println!("  same or larger than the SSAM accelerator design, as the paper notes.");
}
