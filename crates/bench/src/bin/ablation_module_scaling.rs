//! **§III-A demonstration** — scaling capacity with chained SSAM modules.
//!
//! "Since HMC modules can be composed together, these additional links
//! and SSAM modules allows us to scale up the capacity of the system."
//!
//! Holds the dataset fixed and sweeps the module count: per-module scan
//! time shrinks with the shard, link costs grow with chain depth, and the
//! host reduce stays negligible — the fabric "consist[s] of kNN results
//! which are a fraction of the original dataset size".

use ssam_bench::{fmt, print_table, ExpConfig};
use ssam_core::device::cluster::SsamCluster;
use ssam_core::device::SsamConfig;
use ssam_datasets::PaperDataset;

fn main() {
    let cfg = ExpConfig::from_args(0.004);
    let bench = cfg.benchmark(PaperDataset::GloVe);
    let k = bench.k();
    eprintln!(
        "[module-scaling] {} vectors x {} dims, k = {k}",
        bench.train.len(),
        bench.train.dims()
    );

    let mut rows = Vec::new();
    for modules in [1usize, 2, 4, 8] {
        let mut cluster = SsamCluster::build(SsamConfig::default(), modules, &bench.train);
        let q: Vec<f32> = bench.queries.get(0).to_vec();
        let (ns, t) = cluster.query(&q, k).expect("cluster runs");
        assert_eq!(ns.len(), k);
        rows.push(vec![
            modules.to_string(),
            fmt(t.module_seconds * 1e6),
            fmt((t.broadcast_seconds + t.collect_seconds) * 1e9),
            fmt(t.seconds * 1e6),
            fmt(1.0 / t.seconds),
            fmt(t.energy_mj),
        ]);
    }

    println!("\n§III-A — chained-module scaling (fixed dataset, growing fabric)");
    print_table(
        cfg.csv,
        &[
            "modules",
            "module scan us",
            "link+merge ns",
            "query latency us",
            "queries/s",
            "energy mJ",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: adding modules divides the per-module scan while the\n\
         link fabric (query broadcast + k-tuple collection) stays orders of\n\
         magnitude below the scan time — capacity scales without the external\n\
         links becoming the bottleneck."
    );
}
