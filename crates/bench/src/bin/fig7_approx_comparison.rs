//! **Fig. 7** — area-normalized throughput *versus accuracy* with
//! approximate indexes, SSAM against the CPU, per dataset.
//!
//! "At a 50% accuracy target we observe up to two orders of magnitude
//! throughput improvement for kd-tree, k-means, and HP-MPLSH over CPU
//! baselines."
//!
//! Methodology: the *same* index structure (identical recall) is costed
//! on both platforms. Per query the index reports its measured work —
//! candidates scanned, interior steps, buckets visited — from the real
//! traversal; the CPU model prices that work with its DDR roofline, the
//! SSAM model with simulated kernel cycles and per-vault HMC bandwidth
//! (buckets shard round-robin across vaults).

use ssam_baselines::normalize::area_normalized_throughput;
use ssam_baselines::parallel::{batch_recall, batch_search_single_thread};
use ssam_baselines::CpuPlatform;
use ssam_bench::{emit_telemetry, fmt, print_table, ssam_scan_cost, ExpConfig};
use ssam_core::area::module_area;
use ssam_core::telemetry::{Phases, QueryRecord, RecordKind, Telemetry, VaultAccount};
use ssam_datasets::PaperDataset;
use ssam_hmc::HmcConfig;
use ssam_knn::index::{SearchBudget, SearchIndex};
use ssam_knn::kdtree::{KdForest, KdTreeParams};
use ssam_knn::kmeans_tree::{KMeansTree, KMeansTreeParams};
use ssam_knn::mplsh::{MplshParams, MultiProbeLsh};
use ssam_knn::Metric;

const BUDGETS: [usize; 6] = [1, 4, 16, 32, 64, 128];
const VL: usize = 4;

fn main() {
    let cfg = ExpConfig::from_args(0.01);
    let hmc = HmcConfig::hmc2();
    let cpu = CpuPlatform::xeon_e5_2620();
    let ssam_area = module_area(VL).total();
    let freq = 1.0e9;
    let pus_per_vault = 4.0;
    let sink = Telemetry::default();
    let mut rows = Vec::new();

    for dataset in PaperDataset::ALL {
        let mut bench = cfg.benchmark(dataset);
        if cfg.queries.is_none() && bench.queries.len() > 40 {
            let dims = bench.queries.dims();
            let mut q = ssam_knn::VectorStore::with_capacity(dims, 40);
            for i in 0..40u32 {
                q.push(bench.queries.get(i));
            }
            bench.queries = q;
            bench.ground_truth.ids.truncate(40);
        }
        let dims = bench.train.dims();
        let k = bench.k();
        let cost = ssam_scan_cost(dims, VL);
        eprintln!(
            "[fig7] {}: scan cost {:.1} cyc/vec",
            dataset.name(),
            cost.cycles_per_vector
        );

        let kd = KdForest::build(
            &bench.train,
            Metric::Euclidean,
            KdTreeParams {
                trees: 4,
                leaf_size: 32,
                seed: 7,
            },
        );
        let km = KMeansTree::build(
            &bench.train,
            Metric::Euclidean,
            KMeansTreeParams {
                branching: 16,
                leaf_size: 64,
                max_height: 10,
                kmeans_iters: 6,
                seed: 7,
            },
        );
        let bits = ((bench.train.len() as f64 / 8.0).log2().ceil() as usize).clamp(8, 20);
        let lsh = MultiProbeLsh::build(
            &bench.train,
            Metric::Euclidean,
            MplshParams {
                tables: 8,
                hash_bits: bits,
                seed: 7,
            },
        );
        let indexes: [(&str, &dyn SearchIndex); 3] =
            [("kdtree", &kd), ("kmeans", &km), ("mplsh", &lsh)];

        for (name, index) in indexes {
            for budget in BUDGETS {
                let out = batch_search_single_thread(
                    index,
                    &bench.train,
                    &bench.queries,
                    k,
                    SearchBudget::checks(budget),
                );
                let recall = batch_recall(&out, &bench.ground_truth.ids);
                let nq = out.results.len() as f64;
                let cand = out.stats.distance_evals as f64 / nq;
                let interior = out.stats.interior_steps as f64 / nq;
                let leaves = out.stats.leaves_visited as f64 / nq;

                // CPU: DDR roofline over the candidate stream + traversal.
                let cpu_t = cpu.approx_seconds_per_query(cand, interior, dims);
                let cpu_norm = area_normalized_throughput(1.0 / cpu_t, cpu.area_mm2_28nm());

                // SSAM: buckets spread round-robin over vaults; engaged
                // bandwidth grows with buckets touched. Traversal runs on
                // the scalar datapath at ~6 cycles/step.
                let engaged = leaves.min(hmc.vaults as f64).max(1.0);
                let bytes = cand * cost.bytes_per_vector;
                let mem_t = bytes / (engaged * hmc.vault_bandwidth);
                let comp_t = cand * cost.cycles_per_vector / (engaged * pus_per_vault * freq);
                let trav_t = interior * 6.0 / freq;
                let ssam_t = mem_t.max(comp_t) + trav_t + 2e-7;
                let ssam_norm = area_normalized_throughput(1.0 / ssam_t, ssam_area);

                if cfg.telemetry.is_some() {
                    // No full simulation behind this row, so the record
                    // is a single aggregate account over the engaged
                    // vaults; the scalar traversal rides in the merge
                    // span, the fixed dispatch allowance in the link
                    // span. It still passes every `verify_record` check.
                    let cycles = (cand * cost.cycles_per_vector).round() as u64;
                    let bytes = bytes.round() as u64;
                    let compute_bound = comp_t > mem_t;
                    sink.record(QueryRecord {
                        seq: 0,
                        kind: RecordKind::Modeled,
                        label: format!("{}/{name}@{budget}", dataset.name()),
                        batch: 1,
                        k,
                        pus_per_vault: pus_per_vault as usize,
                        vaults: vec![VaultAccount {
                            vault: 0,
                            cycles,
                            bytes,
                            instructions: 0,
                            pqueue_ops: 0,
                            stack_ops: 0,
                            scratchpad_accesses: 0,
                            mem_seconds: mem_t,
                            comp_seconds: comp_t,
                            compute_bound,
                            energy_mj: 0.0,
                        }],
                        phases: Phases {
                            stage_seconds: 0.0,
                            simulate_seconds: mem_t.max(comp_t),
                            link_seconds: 2e-7,
                            merge_seconds: trav_t,
                            fault_seconds: 0.0,
                        },
                        faults: ssam_core::telemetry::FaultRecord::default(),
                        seconds: ssam_t,
                        compute_bound,
                        total_cycles: cycles,
                        total_bytes: bytes,
                        energy_mj: 0.0,
                    });
                }

                rows.push(vec![
                    dataset.name().into(),
                    name.into(),
                    budget.to_string(),
                    format!("{recall:.3}"),
                    fmt(cpu_norm),
                    fmt(ssam_norm),
                    format!("{:.1}", ssam_norm / cpu_norm),
                ]);
            }
        }
    }

    println!("\nFig. 7 — area-normalized throughput vs accuracy, SSAM-{VL} vs CPU");
    print_table(
        cfg.csv,
        &[
            "dataset",
            "algorithm",
            "budget",
            "recall",
            "CPU q/s/mm^2",
            "SSAM q/s/mm^2",
            "SSAM/CPU",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: ~two orders of magnitude SSAM advantage at the 50%\n\
         recall target, persisting across the accuracy sweep; kd-tree and\n\
         k-means stay distance-calculation-dominated, MPLSH is hash-bound at\n\
         small budgets."
    );
    emit_telemetry(&cfg, &sink);
}
