//! Runs every experiment binary in sequence (paper order), forwarding
//! `--scale` / `--queries` / `--csv`. One command to regenerate the whole
//! evaluation:
//!
//! ```text
//! cargo run -p ssam-bench --release --bin run_all [-- --scale 0.01]
//! ```

use std::process::Command;

/// Paper order: characterization, accelerator tables, comparisons,
//  ablations, cost model.
const EXPERIMENTS: [&str; 16] = [
    "fig2_accuracy_tradeoff",
    "table1_instruction_mix",
    "table3_power",
    "table4_area",
    "fig6_linear_comparison",
    "fig7_approx_comparison",
    "table5_distance_metrics",
    "table6_automata",
    "ablation_priority_queue",
    "ablation_bandwidth",
    "ablation_fixed_point",
    "ablation_batching",
    "ablation_on_device_index",
    "ablation_module_scaling",
    "ablation_chaining",
    "table_tco",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin directory");

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n========================= {name} =========================");
        let path = bin_dir.join(name);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failures.push(name);
        }
    }

    println!("\n=========================================================");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
