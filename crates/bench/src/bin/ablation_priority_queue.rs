//! **§V-B ablation** — hardware versus software priority queue.
//!
//! "To quantify the impact of the priority queue, we simulate the
//! performance of SSAM using a software priority queue instead of
//! leveraging the hardware queue. At a high level, the hardware queue
//! improves performance by up to 9.2% for wider vector processing units."
//!
//! Wider vectors finish each candidate's distance in fewer cycles, so the
//! fixed scalar cost of a software queue insert is a larger share of the
//! loop — exactly why the paper provisions a hardware unit.

use ssam_bench::{print_table, ExpConfig};
use ssam_core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam_core::isa::VECTOR_LENGTHS;
use ssam_datasets::PaperDataset;

fn main() {
    let cfg = ExpConfig::from_args(0.002);
    let bench = cfg.benchmark(PaperDataset::GloVe);
    let k = bench.k();
    let queries: Vec<Vec<f32>> = (0..2u32).map(|i| bench.queries.get(i).to_vec()).collect();
    let dq: Vec<DeviceQuery<'_>> = queries.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
    let mut rows = Vec::new();

    for &vl in &VECTOR_LENGTHS {
        let run = |hw: bool| -> (u64, f64) {
            let mut dev = SsamDevice::new(SsamConfig {
                vector_length: vl,
                use_hw_queue: hw,
                ..SsamConfig::default()
            });
            dev.load_vectors(&bench.train);
            let batch = dev.query_batch(&dq, k).expect("device runs");
            (batch.timing.total_cycles, batch.timing.seconds)
        };
        let (hw_cycles, hw_secs) = run(true);
        let (sw_cycles, sw_secs) = run(false);
        rows.push(vec![
            format!("SSAM-{vl}"),
            hw_cycles.to_string(),
            sw_cycles.to_string(),
            format!(
                "{:.1}%",
                100.0 * (sw_cycles as f64 / hw_cycles as f64 - 1.0)
            ),
            format!("{:.1}%", 100.0 * (sw_secs / hw_secs - 1.0)),
        ]);
    }

    println!("\n§V-B ablation — hardware vs software priority queue (GloVe, k={k})");
    print_table(
        cfg.csv,
        &[
            "design",
            "HW-queue cycles",
            "SW-queue cycles",
            "cycle overhead",
            "time overhead",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: the software queue costs single-digit-percent performance,\n\
         growing with vector width (paper: up to 9.2% at wide vectors)."
    );
}
