//! **Table I** — instruction-mix profiles of the four kNN algorithms on
//! the GloVe dataset.
//!
//! Paper row reference (Pin on an i7-4790K):
//!
//! | Algorithm | AVX/SSE % | Mem reads % | Mem writes % |
//! |-----------|-----------|-------------|--------------|
//! | Linear    | 54.75     | 45.23       | 0.44         |
//! | KD-Tree   | 28.75     | 31.60       | 10.21        |
//! | K-Means   | 51.63     | 44.96       | 1.12         |
//! | MPLSH     | 18.69     | 31.53       | 14.16        |

use ssam_bench::{print_table, ExpConfig};
use ssam_datasets::PaperDataset;
use ssam_knn::index::SearchBudget;
use ssam_knn::kdtree::{KdForest, KdTreeParams};
use ssam_knn::kmeans_tree::{KMeansTree, KMeansTreeParams};
use ssam_knn::linear::LinearSearch;
use ssam_knn::mplsh::{MplshParams, MultiProbeLsh};
use ssam_knn::Metric;
use ssam_profiling::{profile, Family};

fn main() {
    let cfg = ExpConfig::from_args(0.01);
    let mut bench = cfg.benchmark(PaperDataset::GloVe);
    if cfg.queries.is_none() && bench.queries.len() > 40 {
        let dims = bench.queries.dims();
        let mut q = ssam_knn::VectorStore::with_capacity(dims, 40);
        for i in 0..40u32 {
            q.push(bench.queries.get(i));
        }
        bench.queries = q;
    }
    let k = bench.k();
    let budget = SearchBudget::checks(32);

    let linear = LinearSearch::new(Metric::Euclidean);
    let kd = KdForest::build(
        &bench.train,
        Metric::Euclidean,
        KdTreeParams {
            trees: 4,
            leaf_size: 32,
            seed: 7,
        },
    );
    let km = KMeansTree::build(
        &bench.train,
        Metric::Euclidean,
        KMeansTreeParams {
            branching: 16,
            leaf_size: 64,
            max_height: 10,
            kmeans_iters: 6,
            seed: 7,
        },
    );
    let bits = ((bench.train.len() as f64 / 8.0).log2().ceil() as usize).clamp(8, 20);
    let lsh = MultiProbeLsh::build(
        &bench.train,
        Metric::Euclidean,
        MplshParams {
            tables: 8,
            hash_bits: bits,
            seed: 7,
        },
    );

    let mixes = [
        (
            Family::Linear,
            profile(
                Family::Linear,
                &linear,
                &bench.train,
                &bench.queries,
                k,
                SearchBudget::unlimited(),
            ),
        ),
        (
            Family::KdTree,
            profile(Family::KdTree, &kd, &bench.train, &bench.queries, k, budget),
        ),
        (
            Family::KMeans,
            profile(Family::KMeans, &km, &bench.train, &bench.queries, k, budget),
        ),
        (
            Family::Mplsh,
            profile(Family::Mplsh, &lsh, &bench.train, &bench.queries, k, budget),
        ),
    ];
    let paper = [
        (54.75, 45.23, 0.44),
        (28.75, 31.60, 10.21),
        (51.63, 44.96, 1.12),
        (18.69, 31.53, 14.16),
    ];

    let rows: Vec<Vec<String>> = mixes
        .iter()
        .zip(paper)
        .map(|((f, m), p)| {
            vec![
                f.label().into(),
                format!("{:.2}", m.vector_pct),
                format!("{:.2}", m.mem_read_pct),
                format!("{:.2}", m.mem_write_pct),
                format!("{:.2}/{:.2}/{:.2}", p.0, p.1, p.2),
            ]
        })
        .collect();

    println!("\nTable I — instruction mix, GloVe (measured work counts x AVX cost model)");
    print_table(
        cfg.csv,
        &[
            "algorithm",
            "vector %",
            "mem reads %",
            "mem writes %",
            "paper (v/r/w)",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: linear & k-means are vector-heavy (~50% AVX); kd-tree\n\
         and MPLSH skew scalar with an order of magnitude more writes."
    );
}
