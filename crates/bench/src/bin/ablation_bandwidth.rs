//! **§V-B ablation** — how much of the SSAM win is memory bandwidth?
//!
//! "In terms of the enhanced bandwidth, we attribute roughly one order of
//! magnitude run time improvement to the higher internal bandwidth of HMC
//! 2.0. Optimistically, standard DRAM modules provide up to 25 GB/s of
//! memory bandwidth whereas HMC 2.0 provides 320 GB/s."
//!
//! Runs the identical simulated kernel under the HMC vault model and
//! under a standard-DDR bandwidth model, holding compute constant.

use ssam_bench::{fmt, print_table, ssam_scan_cost, ExpConfig};
use ssam_core::isa::VECTOR_LENGTHS;
use ssam_datasets::PaperDataset;
use ssam_hmc::{DdrConfig, HmcConfig};

fn main() {
    let cfg = ExpConfig::from_args(0.01);
    let hmc = HmcConfig::hmc2();
    let ddr = DdrConfig::ddr4_quad_channel();
    let freq = 1.0e9;
    let mut rows = Vec::new();

    for dataset in PaperDataset::ALL {
        let spec = {
            let mut s = dataset.spec();
            s = s.scaled(cfg.scale);
            s
        };
        for &vl in &VECTOR_LENGTHS {
            let cost = ssam_scan_cost(spec.dims, vl);
            let n = spec.train as f64;
            let bytes = n * cost.bytes_per_vector;
            let cycles = n * cost.cycles_per_vector;

            // HMC: shards stream in parallel across 32 vaults; PUs
            // provisioned to saturate each vault controller.
            let pu_demand = cost.bytes_per_vector / (cost.cycles_per_vector / freq);
            let pus = ((hmc.vault_bandwidth / pu_demand).ceil() as usize).clamp(1, 8);
            let hmc_mem = bytes / hmc.internal_bandwidth();
            let hmc_cmp = cycles / (hmc.vaults as f64 * pus as f64 * freq);
            let hmc_t = hmc_mem.max(hmc_cmp);

            // DDR: the same accelerator logic behind one 25 GB/s channel
            // set (compute identical, bandwidth starved).
            let ddr_mem = bytes / ddr.bandwidth;
            let ddr_cmp = cycles / (hmc.vaults as f64 * pus as f64 * freq);
            let ddr_t = ddr_mem.max(ddr_cmp);

            rows.push(vec![
                spec.name.clone(),
                format!("SSAM-{vl}"),
                fmt(1.0 / hmc_t),
                fmt(1.0 / ddr_t),
                format!("{:.1}x", ddr_t / hmc_t),
            ]);
        }
    }

    println!(
        "\n§V-B ablation — HMC (320 GB/s) vs standard DRAM (25 GB/s), scale {}",
        cfg.scale
    );
    print_table(
        cfg.csv,
        &[
            "dataset",
            "design",
            "HMC queries/s",
            "DDR queries/s",
            "HMC speedup",
        ],
        &rows,
    );
    println!(
        "\nPaper shape: the bandwidth gap alone is worth roughly one order of\n\
         magnitude (12.8x at full saturation); narrow-vector designs recover\n\
         less of it because they are compute-bound."
    );
}
