//! # ssam-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md §4
//! for the full index) plus Criterion microbenches over the hot
//! primitives. Every binary accepts:
//!
//! ```text
//! --scale <f64>      dataset scale factor in (0,1]; default varies per
//!                    experiment (cycle-accurate ones default smaller)
//! --full             shorthand for --scale 1.0 (paper cardinalities)
//! --queries <n>      cap the query batch
//! --csv              machine-readable CSV instead of aligned tables
//! --telemetry <path> write the query-scoped telemetry JSONL there and
//!                    print a record summary (supported by the device
//!                    simulation binaries)
//! ```
//!
//! Trends (who wins, crossovers, relative factors) are stable across
//! scales because every platform sees the same dataset; EXPERIMENTS.md
//! records the scale used for each recorded run.

#![forbid(unsafe_code)]

pub mod svg;

use std::sync::Arc;

use ssam_core::device::{DeviceQuery, SsamConfig, SsamDevice};
use ssam_core::isa::DRAM_BASE;
use ssam_core::kernels::linear as kern;
use ssam_core::sim::pu::ProcessingUnit;
use ssam_datasets::{Benchmark, PaperDataset};
use ssam_knn::VectorStore;

/// Parsed command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Dataset scale in (0, 1].
    pub scale: f64,
    /// Optional query-batch cap.
    pub queries: Option<usize>,
    /// Emit CSV.
    pub csv: bool,
    /// Optional path for the telemetry JSONL export.
    pub telemetry: Option<String>,
}

impl ExpConfig {
    /// Parses `std::env::args`, using `default_scale` when `--scale` is
    /// absent.
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    pub fn from_args(default_scale: f64) -> Self {
        let mut cfg = Self {
            scale: default_scale,
            queries: None,
            csv: false,
            telemetry: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    cfg.scale = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a float in (0,1]"));
                }
                "--full" => cfg.scale = 1.0,
                "--queries" => {
                    i += 1;
                    cfg.queries = Some(
                        args.get(i)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| panic!("--queries needs an integer")),
                    );
                }
                "--csv" => cfg.csv = true,
                "--telemetry" => {
                    i += 1;
                    cfg.telemetry = Some(
                        args.get(i)
                            .cloned()
                            .unwrap_or_else(|| panic!("--telemetry needs an output path")),
                    );
                }
                other => {
                    panic!(
                        "unknown argument `{other}` (expected \
                         --scale/--full/--queries/--csv/--telemetry)"
                    )
                }
            }
            i += 1;
        }
        assert!(
            cfg.scale > 0.0 && cfg.scale <= 1.0,
            "scale must be in (0,1]"
        );
        cfg
    }

    /// Loads one paper dataset at the configured scale, applying the
    /// query cap.
    pub fn benchmark(&self, dataset: PaperDataset) -> Benchmark {
        let mut b = Benchmark::paper(dataset, self.scale);
        if let Some(cap) = self.queries {
            if cap < b.queries.len() {
                let dims = b.queries.dims();
                let mut q = VectorStore::with_capacity(dims, cap);
                for i in 0..cap as u32 {
                    q.push(b.queries.get(i));
                }
                b.queries = q;
                b.ground_truth.ids.truncate(cap);
            }
        }
        b
    }
}

/// Finishes a telemetry run: writes the JSONL export to the path given
/// via `--telemetry` (no-op when absent), prints the per-record summary
/// table, and surfaces any accounting-invariant violations the sink
/// retained (debug builds panic at collection time instead).
///
/// # Panics
/// Panics if the JSONL file cannot be written or a violation was
/// retained — a bench run with inconsistent accounts must not pass
/// silently.
pub fn emit_telemetry(cfg: &ExpConfig, sink: &ssam_core::telemetry::Telemetry) {
    use ssam_core::telemetry::Telemetry;
    let Some(path) = &cfg.telemetry else { return };
    sink.write_jsonl(std::path::Path::new(path))
        .unwrap_or_else(|e| panic!("cannot write telemetry JSONL to {path}: {e}"));
    println!();
    println!("telemetry: {} records -> {path}", sink.len());
    print_table(cfg.csv, Telemetry::summary_headers(), &sink.summary_rows());
    let violations = sink.violations();
    assert!(
        violations.is_empty(),
        "telemetry accounting violations: {violations:#?}"
    );
}

/// Prints a row-aligned table (or CSV when `csv` is set).
pub fn print_table(csv: bool, headers: &[&str], rows: &[Vec<String>]) {
    if csv {
        println!("{}", headers.join(","));
        for r in rows {
            println!("{}", r.join(","));
        }
        return;
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

/// Formats a float compactly for table cells.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.3e}")
    }
}

/// Per-candidate SSAM scan costs, measured by simulating the actual
/// kernel over a small synthetic shard. Used to extrapolate device-model
/// timing for approximate-index queries (Fig. 7) without simulating every
/// bucket scan cycle-by-cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanCost {
    /// PU cycles per database vector.
    pub cycles_per_vector: f64,
    /// DRAM bytes per database vector.
    pub bytes_per_vector: f64,
}

/// Measures [`ScanCost`] for the Euclidean kernel at `(dims, vl)`.
pub fn ssam_scan_cost(dims: usize, vl: usize) -> ScanCost {
    let kernel = kern::euclidean(dims, vl);
    let vec_words = kernel.layout.vec_words;
    let n = 64usize;
    let words: Vec<i32> = (0..n * vec_words).map(|i| (i % 97) as i32).collect();
    let mut pu = ProcessingUnit::new(vl, Arc::new(words));
    pu.load_program(kernel.program.clone());
    pu.scratchpad_mut()
        .write_block(0, &vec![0i32; vec_words])
        .expect("query fits");
    pu.set_sreg(1, DRAM_BASE as i32);
    pu.set_sreg(2, DRAM_BASE as i32 + (n * vec_words * 4) as i32);
    let stats = pu.run(50_000_000).expect("kernel runs");
    ScanCost {
        cycles_per_vector: stats.cycles as f64 / n as f64,
        bytes_per_vector: stats.dram.bytes_read as f64 / n as f64,
    }
}

/// Builds a SSAM device of the given vector length preloaded with a float
/// dataset.
pub fn ssam_with(store: &VectorStore, vl: usize) -> SsamDevice {
    let mut dev = SsamDevice::new(SsamConfig {
        vector_length: vl,
        ..SsamConfig::default()
    });
    dev.load_vectors(store);
    dev
}

/// Runs `n` sample queries from a benchmark through the device's batched
/// engine ([`SsamDevice::query_batch`] via `estimate_throughput`) and
/// returns `(queries/s, energy mJ/query)`.
pub fn ssam_linear_estimate(dev: &mut SsamDevice, bench: &Benchmark, n: usize) -> (f64, f64) {
    let n = n.min(bench.queries.len()).max(1);
    let queries: Vec<Vec<f32>> = (0..n as u32)
        .map(|i| bench.queries.get(i).to_vec())
        .collect();
    let dq: Vec<DeviceQuery<'_>> = queries.iter().map(|q| DeviceQuery::Euclidean(q)).collect();
    let est = dev
        .estimate_throughput(&dq, bench.k())
        .expect("device runs");
    (est.queries_per_second, est.energy_mj_per_query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_cost_scales_with_dims() {
        let small = ssam_scan_cost(32, 4);
        let big = ssam_scan_cost(320, 4);
        assert!(big.cycles_per_vector > 8.0 * small.cycles_per_vector);
        assert_eq!(big.bytes_per_vector, 320.0 * 4.0);
    }

    #[test]
    fn wider_vectors_cost_fewer_cycles() {
        let narrow = ssam_scan_cost(128, 2);
        let wide = ssam_scan_cost(128, 16);
        assert!(wide.cycles_per_vector < narrow.cycles_per_vector / 4.0);
    }

    #[test]
    fn fmt_is_compact() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.25), "42.2");
        assert_eq!(fmt(1.5), "1.500");
    }

    #[test]
    fn device_estimate_runs_on_tiny_benchmark() {
        let cfg = ExpConfig {
            scale: 0.0005,
            queries: Some(2),
            csv: false,
            telemetry: None,
        };
        let b = cfg.benchmark(PaperDataset::GloVe);
        let mut dev = ssam_with(&b.train, 4);
        let (qps, mj) = ssam_linear_estimate(&mut dev, &b, 2);
        assert!(qps > 0.0);
        assert!(mj > 0.0);
    }

    #[test]
    fn query_cap_truncates_benchmark() {
        let cfg = ExpConfig {
            scale: 0.0005,
            queries: Some(3),
            csv: false,
            telemetry: None,
        };
        let b = cfg.benchmark(PaperDataset::GloVe);
        assert_eq!(b.queries.len(), 3);
        assert_eq!(b.ground_truth.ids.len(), 3);
    }
}
