//! Minimal dependency-free SVG charts for regenerating the paper's
//! figures as image files (`make_figures` binary).
//!
//! Two chart forms cover the paper's evaluation graphics: log-scale line
//! charts for the throughput-versus-accuracy curves (Figs. 2 and 7), and
//! grouped log-scale bar charts for the platform comparisons (Fig. 6).
//! The implementation is intentionally small: nice-number linear ticks,
//! decade log ticks, a categorical palette, and a legend.

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in data space.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct PlotSpec {
    /// Title above the plot area.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Logarithmic x axis.
    pub log_x: bool,
    /// Logarithmic y axis.
    pub log_y: bool,
    /// Canvas width in px.
    pub width: u32,
    /// Canvas height in px.
    pub height: u32,
}

impl Default for PlotSpec {
    fn default() -> Self {
        Self {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            log_x: false,
            log_y: true,
            width: 720,
            height: 480,
        }
    }
}

/// Paul Tol's "bright" categorical palette (colorblind-safe).
const PALETTE: [&str; 8] = [
    "#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE", "#AA3377", "#BBBBBB", "#222222",
];

const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

/// Nice-number tick positions for a linear axis (round steps of
/// 1/2/5 × 10^k covering `[lo, hi]`).
pub fn linear_ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    if hi <= lo || !lo.is_finite() || !hi.is_finite() {
        return vec![lo];
    }
    let span = hi - lo;
    let raw = span / target.max(2) as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let step = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    } * mag;
    let mut t = (lo / step).ceil() * step;
    let mut out = Vec::new();
    while t <= hi + step * 1e-9 {
        out.push(t);
        t += step;
    }
    out
}

/// Decade tick positions for a log axis over `[lo, hi]` (both > 0).
pub fn log_ticks(lo: f64, hi: f64) -> Vec<f64> {
    let mut out = Vec::new();
    let mut d = 10f64.powf(lo.log10().floor());
    while d <= hi * (1.0 + 1e-9) {
        if d >= lo / (1.0 + 1e-9) {
            out.push(d);
        }
        d *= 10.0;
    }
    if out.is_empty() {
        out.push(lo);
    }
    out
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-2..1e5).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 10.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

struct Scale {
    lo: f64,
    hi: f64,
    log: bool,
    px_lo: f64,
    px_hi: f64,
}

impl Scale {
    fn map(&self, v: f64) -> f64 {
        let (lo, hi, v) = if self.log {
            (
                self.lo.log10(),
                self.hi.log10(),
                v.max(self.lo * 1e-3).log10(),
            )
        } else {
            (self.lo, self.hi, v)
        };
        let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
        self.px_lo + t.clamp(0.0, 1.0) * (self.px_hi - self.px_lo)
    }
}

fn data_bounds(series: &[Series], log: bool, axis_y: bool) -> (f64, f64) {
    let vals = series
        .iter()
        .flat_map(|s| s.points.iter())
        .map(|&(x, y)| if axis_y { y } else { x })
        .filter(|v| v.is_finite() && (!log || *v > 0.0));
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in vals {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() {
        return (if log { 0.1 } else { 0.0 }, 1.0);
    }
    if lo == hi {
        if log {
            return (lo / 10.0, hi * 10.0);
        }
        return (lo - 0.5, hi + 0.5);
    }
    if !log {
        let pad = (hi - lo) * 0.05;
        return (
            (lo - pad)
                .min(0.0)
                .max(if lo >= 0.0 { 0.0 } else { lo - pad }),
            hi + pad,
        );
    }
    (lo, hi)
}

/// Renders a line chart with per-series markers and a legend.
pub fn line_chart(spec: &PlotSpec, series: &[Series]) -> String {
    let w = spec.width as f64;
    let h = spec.height as f64;
    let (x_lo, x_hi) = data_bounds(series, spec.log_x, false);
    let (y_lo, y_hi) = data_bounds(series, spec.log_y, true);
    let sx = Scale {
        lo: x_lo,
        hi: x_hi,
        log: spec.log_x,
        px_lo: MARGIN_L,
        px_hi: w - MARGIN_R,
    };
    let sy = Scale {
        lo: y_lo,
        hi: y_hi,
        log: spec.log_y,
        px_lo: h - MARGIN_B,
        px_hi: MARGIN_T,
    };

    let mut svg = header(spec, w, h);
    svg.push_str(&frame_and_axes(spec, &sx, &sy, w, h));

    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .filter(|(x, y)| {
                x.is_finite()
                    && y.is_finite()
                    && (!spec.log_x || *x > 0.0)
                    && (!spec.log_y || *y > 0.0)
            })
            .map(|&(x, y)| (sx.map(x), sy.map(y)))
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        if pts.len() > 1 {
            let path: String = pts
                .iter()
                .map(|(x, y)| format!("{x:.1},{y:.1}"))
                .collect::<Vec<_>>()
                .join(" ");
            svg.push_str(&format!(
                "<polyline points=\"{path}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n"
            ));
        }
        for (x, y) in &pts {
            svg.push_str(&format!(
                "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"3\" fill=\"{color}\"/>\n"
            ));
        }
        // Legend entry.
        let ly = MARGIN_T + 18.0 * i as f64 + 8.0;
        let lx = w - MARGIN_R + 12.0;
        svg.push_str(&format!(
            "<rect x=\"{lx}\" y=\"{}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\n\
             <text x=\"{}\" y=\"{}\" font-size=\"12\">{}</text>\n",
            ly - 10.0,
            lx + 17.0,
            ly,
            esc(&s.label)
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// Renders a grouped bar chart: one cluster per `group`, one bar per
/// series, log-scale y.
pub fn grouped_bar_chart(
    spec: &PlotSpec,
    groups: &[String],
    series: &[(String, Vec<f64>)],
) -> String {
    let w = spec.width as f64;
    let h = spec.height as f64;
    let vals: Vec<f64> = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().copied().fold(0.0f64, f64::max);
    let (y_lo, y_hi) = if lo.is_finite() && hi > 0.0 {
        (lo / 2.0, hi * 1.5)
    } else {
        (0.1, 1.0)
    };
    let sy = Scale {
        lo: y_lo,
        hi: y_hi,
        log: true,
        px_lo: h - MARGIN_B,
        px_hi: MARGIN_T,
    };

    let mut svg = header(spec, w, h);
    // Y axis (log decades) + frame.
    let sx_dummy = Scale {
        lo: 0.0,
        hi: 1.0,
        log: false,
        px_lo: MARGIN_L,
        px_hi: w - MARGIN_R,
    };
    svg.push_str(&frame_and_axes(
        &PlotSpec {
            log_y: true,
            ..spec.clone()
        },
        &sx_dummy,
        &sy,
        w,
        h,
    ));

    let plot_w = w - MARGIN_L - MARGIN_R;
    let group_w = plot_w / groups.len().max(1) as f64;
    let bar_w = (group_w * 0.8) / series.len().max(1) as f64;
    for (gi, group) in groups.iter().enumerate() {
        let gx = MARGIN_L + gi as f64 * group_w;
        for (si, (label, vals)) in series.iter().enumerate() {
            let v = vals.get(gi).copied().unwrap_or(f64::NAN);
            if !v.is_finite() || v <= 0.0 {
                continue;
            }
            let color = PALETTE[si % PALETTE.len()];
            let x = gx + group_w * 0.1 + si as f64 * bar_w;
            let y = sy.map(v);
            let base = h - MARGIN_B;
            svg.push_str(&format!(
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"{color}\"><title>{}: {v:.3}</title></rect>\n",
                bar_w * 0.9,
                (base - y).max(0.0),
                esc(label),
            ));
        }
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\">{}</text>\n",
            gx + group_w / 2.0,
            h - MARGIN_B + 18.0,
            esc(group)
        ));
    }
    // Legend.
    for (si, (label, _)) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let ly = MARGIN_T + 18.0 * si as f64 + 8.0;
        let lx = w - MARGIN_R + 12.0;
        svg.push_str(&format!(
            "<rect x=\"{lx}\" y=\"{}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\n\
             <text x=\"{}\" y=\"{}\" font-size=\"12\">{}</text>\n",
            ly - 10.0,
            lx + 17.0,
            ly,
            esc(label)
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

fn header(spec: &PlotSpec, w: f64, h: f64) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\">\n\
         <rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n\
         <text x=\"{:.1}\" y=\"22\" font-size=\"15\" text-anchor=\"middle\" font-weight=\"bold\">{}</text>\n",
        w / 2.0,
        esc(&spec.title)
    )
}

fn frame_and_axes(spec: &PlotSpec, sx: &Scale, sy: &Scale, w: f64, h: f64) -> String {
    let mut out = String::new();
    let (left, right, top, bottom) = (MARGIN_L, w - MARGIN_R, MARGIN_T, h - MARGIN_B);
    out.push_str(&format!(
        "<rect x=\"{left}\" y=\"{top}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"none\" stroke=\"#888\"/>\n",
        right - left,
        bottom - top
    ));
    // Y ticks + gridlines.
    let yticks = if spec.log_y {
        log_ticks(sy.lo, sy.hi)
    } else {
        linear_ticks(sy.lo, sy.hi, 6)
    };
    for t in yticks {
        let y = sy.map(t);
        out.push_str(&format!(
            "<line x1=\"{left}\" y1=\"{y:.1}\" x2=\"{right}\" y2=\"{y:.1}\" stroke=\"#ddd\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\">{}</text>\n",
            left - 6.0,
            y + 4.0,
            fmt_tick(t)
        ));
    }
    // X ticks (line charts only — bar charts label groups themselves).
    if sx.hi > sx.lo {
        let xticks = if spec.log_x {
            log_ticks(sx.lo, sx.hi)
        } else {
            linear_ticks(sx.lo, sx.hi, 6)
        };
        for t in xticks {
            let x = sx.map(t);
            out.push_str(&format!(
                "<line x1=\"{x:.1}\" y1=\"{top}\" x2=\"{x:.1}\" y2=\"{bottom}\" stroke=\"#eee\"/>\n\
                 <text x=\"{x:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"middle\">{}</text>\n",
                bottom + 16.0,
                fmt_tick(t)
            ));
        }
    }
    // Axis labels.
    out.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\">{}</text>\n",
        (left + right) / 2.0,
        h - 14.0,
        esc(&spec.x_label)
    ));
    out.push_str(&format!(
        "<text x=\"16\" y=\"{:.1}\" font-size=\"12\" text-anchor=\"middle\" \
         transform=\"rotate(-90 16 {:.1})\">{}</text>\n",
        (top + bottom) / 2.0,
        (top + bottom) / 2.0,
        esc(&spec.y_label)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PlotSpec {
        PlotSpec {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            ..PlotSpec::default()
        }
    }

    #[test]
    fn linear_ticks_are_round_and_cover() {
        let t = linear_ticks(0.0, 1.0, 5);
        assert!(t.contains(&0.0) && t.contains(&1.0));
        assert!(t.len() >= 4 && t.len() <= 8);
        let t = linear_ticks(3.0, 97.0, 5);
        assert!(t.iter().all(|v| (v / 20.0).fract().abs() < 1e-9));
    }

    #[test]
    fn log_ticks_are_decades() {
        assert_eq!(log_ticks(0.5, 2000.0), vec![1.0, 10.0, 100.0, 1000.0]);
        assert_eq!(log_ticks(10.0, 10.0), vec![10.0]);
    }

    #[test]
    fn line_chart_renders_series_and_legend() {
        let s = vec![
            Series {
                label: "a".into(),
                points: vec![(0.1, 10.0), (0.5, 100.0), (0.9, 1000.0)],
            },
            Series {
                label: "b<x>".into(),
                points: vec![(0.1, 5.0), (0.9, 50.0)],
            },
        ];
        let svg = line_chart(&spec(), &s);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 5);
        assert!(svg.contains("b&lt;x&gt;"), "labels must be escaped");
    }

    #[test]
    fn empty_and_degenerate_inputs_do_not_panic() {
        let svg = line_chart(&spec(), &[]);
        assert!(svg.contains("</svg>"));
        let one = vec![Series {
            label: "p".into(),
            points: vec![(1.0, 1.0)],
        }];
        let svg = line_chart(&spec(), &one);
        assert_eq!(svg.matches("<circle").count(), 1);
        assert_eq!(svg.matches("<polyline").count(), 0);
    }

    #[test]
    fn log_axes_drop_nonpositive_points() {
        let s = vec![Series {
            label: "a".into(),
            points: vec![(0.5, 0.0), (0.5, -3.0), (0.5, 7.0)],
        }];
        let svg = line_chart(&spec(), &s);
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    fn bar_chart_renders_groups_and_bars() {
        let groups = vec!["GloVe".to_string(), "GIST".to_string()];
        let series = vec![
            ("CPU".to_string(), vec![1.0, 2.0]),
            ("SSAM".to_string(), vec![100.0, 200.0]),
        ];
        let svg = grouped_bar_chart(&spec(), &groups, &series);
        // 4 bars + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 4 + 2 + 2); // + frame + background
        assert!(svg.contains("GloVe"));
        assert!(svg.contains("SSAM"));
    }

    #[test]
    fn bar_chart_skips_missing_values() {
        let groups = vec!["a".to_string(), "b".to_string()];
        let series = vec![("s".to_string(), vec![5.0])]; // second group missing
        let svg = grouped_bar_chart(&spec(), &groups, &series);
        assert_eq!(svg.matches("<title>").count(), 1);
    }
}
