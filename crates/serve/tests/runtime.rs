//! Deterministic integration tests for the serving runtime: every
//! trigger of the batcher state machine exercised through the real
//! threaded server, plus admission control, shutdown drain, panic
//! isolation, the cluster backend, and telemetry cross-checking.

use std::time::{Duration, Instant};

use ssam_core::device::cluster::SsamCluster;
use ssam_core::device::{SsamConfig, SsamDevice};
use ssam_core::telemetry::Telemetry;
use ssam_knn::binary::BinaryStore;
use ssam_knn::VectorStore;
use ssam_serve::{OwnedQuery, Request, ServeConfig, ServeError, Server};

const DIMS: usize = 8;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

fn float_vec(x: &mut u64) -> Vec<f32> {
    (0..DIMS)
        .map(|_| ((lcg(x) >> 40) as i32 % 1000) as f32 / 500.0)
        .collect()
}

fn float_device(n: usize, seed: u64) -> SsamDevice {
    let mut store = VectorStore::with_capacity(DIMS, n);
    let mut x = seed | 1;
    for _ in 0..n {
        store.push(&float_vec(&mut x));
    }
    let mut dev = SsamDevice::new(SsamConfig::default());
    dev.load_vectors(&store);
    dev
}

/// A long-linger config with one worker: nothing flushes until the
/// trigger under test fires, and scheduling is single-file.
fn slow_config() -> ServeConfig {
    ServeConfig {
        max_batch: 64,
        max_linger: Duration::from_secs(3600),
        workers: 1,
        ..ServeConfig::default()
    }
}

#[test]
fn served_responses_match_serial_queries() {
    let mut reference = float_device(96, 7);
    let server = Server::start(
        float_device(96, 7),
        ServeConfig {
            max_batch: 4,
            max_linger: Duration::from_millis(5),
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();

    let mut x = 99u64;
    let queries: Vec<Vec<f32>> = (0..10).map(|_| float_vec(&mut x)).collect();
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| {
            handle
                .submit(Request::new(OwnedQuery::Euclidean(q.clone()), 5))
                .expect("admitted")
        })
        .collect();
    for (q, t) in queries.iter().zip(tickets) {
        let resp = t.wait().expect("served");
        let serial = reference
            .query(&ssam_core::device::DeviceQuery::Euclidean(q), 5)
            .expect("serial");
        assert_eq!(resp.neighbors, serial.neighbors, "serving changed results");
        assert!(resp.batch_size >= 1);
    }
    let stats = server.shutdown();
    assert_eq!(stats.served, 10);
    assert_eq!(stats.failed, 0);
}

#[test]
fn linger_timeout_flushes_partial_batch() {
    let server = Server::start(
        float_device(48, 3),
        ServeConfig {
            max_batch: 64,
            max_linger: Duration::from_millis(100),
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let mut x = 5u64;
    // Submissions are non-blocking, so all three requests sit queued
    // long before the 100 ms linger bound of the first: one batch of 3.
    let tickets: Vec<_> = (0..3)
        .map(|_| {
            handle
                .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
                .expect("admitted")
        })
        .collect();
    for t in tickets {
        let r = t.wait().expect("served");
        assert_eq!(r.batch_size, 3);
    }
    let stats = server.shutdown();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.batch_hist.get(3), Some(&1));
}

#[test]
fn full_batch_flushes_without_waiting_for_linger() {
    let started = Instant::now();
    let server = Server::start(
        float_device(48, 4),
        ServeConfig {
            max_batch: 3,
            ..slow_config()
        },
    );
    let handle = server.handle();
    let mut x = 11u64;
    let tickets: Vec<_> = (0..3)
        .map(|_| {
            handle
                .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
                .expect("admitted")
        })
        .collect();
    for t in tickets {
        assert_eq!(t.wait().expect("served").batch_size, 3);
    }
    // The linger bound is an hour; only the size trigger can explain a
    // prompt flush.
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "batch waited out the linger despite being full"
    );
    let stats = server.shutdown();
    assert_eq!(stats.batch_hist.get(3), Some(&1));
}

#[test]
fn expired_deadline_rejects_promptly_without_flushing() {
    let started = Instant::now();
    let server = Server::start(float_device(48, 5), slow_config());
    let handle = server.handle();
    let mut x = 13u64;
    // A lone request can only leave the hour-long linger window through
    // its deadline — as a typed rejection, never a hang.
    let err = handle
        .query(
            Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4)
                .with_timeout(Duration::from_millis(50)),
        )
        .expect_err("deadline must reject");
    assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "deadline rejection waited out the linger"
    );
    let stats = server.shutdown();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.served, 0);
}

#[test]
fn default_timeout_applies_when_request_has_none() {
    let server = Server::start(
        float_device(48, 6),
        ServeConfig {
            default_timeout: Some(Duration::from_millis(50)),
            ..slow_config()
        },
    );
    let mut x = 17u64;
    let err = server
        .handle()
        .query(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect_err("server-wide deadline must reject");
    assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err}");
}

#[test]
fn shutdown_drains_queued_requests() {
    let server = Server::start(float_device(48, 8), slow_config());
    let handle = server.handle();
    let mut x = 19u64;
    let tickets: Vec<_> = (0..3)
        .map(|_| {
            handle
                .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
                .expect("admitted")
        })
        .collect();
    // None of the three can flush on its own inside the hour-long
    // linger; shutdown must drain them, not abandon them.
    let stats = server.shutdown();
    assert_eq!(stats.served, 3);
    for t in tickets {
        t.wait().expect("drained requests are served");
    }
    // The handle outlives the server and reports closure.
    let err = handle
        .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect_err("closed");
    assert_eq!(err, ServeError::ShuttingDown);
}

#[test]
fn bounded_queue_rejects_overload_with_typed_error() {
    let server = Server::start(
        float_device(48, 9),
        ServeConfig {
            queue_capacity: 2,
            ..slow_config()
        },
    );
    let handle = server.handle();
    let mut x = 23u64;
    // The worker lingers for an hour, so the first two requests occupy
    // the whole queue; the third must bounce immediately.
    let _t1 = handle
        .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect("admitted");
    let _t2 = handle
        .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect("admitted");
    let err = handle
        .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect_err("overloaded");
    assert_eq!(err, ServeError::Overloaded { capacity: 2 });
    let stats = server.shutdown();
    assert_eq!(stats.rejected_overload, 1);
    assert_eq!(stats.served, 2);
}

#[test]
fn malformed_requests_rejected_at_admission() {
    let server = Server::start(float_device(48, 10), slow_config());
    let handle = server.handle();
    let cases = [
        Request::new(OwnedQuery::Euclidean(vec![0.0; DIMS]), 0),
        Request::new(OwnedQuery::Euclidean(vec![]), 4),
        Request::new(OwnedQuery::Euclidean(vec![0.0; DIMS + 1]), 4),
        Request::new(OwnedQuery::Hamming(vec![0; 2]), 4),
    ];
    for req in cases {
        let err = handle.submit(req.clone()).expect_err("must reject");
        assert!(matches!(err, ServeError::BadRequest(_)), "{req:?}: {err}");
    }
    assert_eq!(server.shutdown().submitted, 0);
}

#[test]
fn binary_device_serves_hamming_and_rejects_floats() {
    let mut store = BinaryStore::new(64);
    let mut x = 31u64;
    for _ in 0..48 {
        store.push(&[(lcg(&mut x) >> 16) as u32, (lcg(&mut x) >> 16) as u32]);
    }
    let mut dev = SsamDevice::new(SsamConfig::default());
    dev.load_binary(&store);
    let mut reference = dev.clone();

    let server = Server::start(
        dev,
        ServeConfig {
            max_linger: Duration::from_millis(5),
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let err = handle
        .submit(Request::new(OwnedQuery::Euclidean(vec![0.0; 2]), 4))
        .expect_err("float query against binary payload");
    assert!(matches!(err, ServeError::BadRequest(_)));

    let code = vec![(lcg(&mut x) >> 16) as u32, (lcg(&mut x) >> 16) as u32];
    let resp = handle
        .query(Request::new(OwnedQuery::Hamming(code.clone()), 6))
        .expect("served");
    let serial = reference
        .query(&ssam_core::device::DeviceQuery::Hamming(&code), 6)
        .expect("serial");
    assert_eq!(resp.neighbors, serial.neighbors);
}

#[test]
fn mixed_k_requests_batch_separately_but_all_serve() {
    let server = Server::start(
        float_device(64, 12),
        ServeConfig {
            max_batch: 8,
            max_linger: Duration::from_millis(20),
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let mut x = 37u64;
    let tickets: Vec<(usize, _)> = (0..6)
        .map(|i| {
            let k = if i % 2 == 0 { 3 } else { 9 };
            let t = handle
                .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), k))
                .expect("admitted");
            (k, t)
        })
        .collect();
    for (k, t) in tickets {
        let r = t.wait().expect("served");
        assert_eq!(r.neighbors.len(), k);
        // k is part of the batch key: a batch never mixes depths.
        assert!(r.batch_size <= 3, "incompatible requests coalesced");
    }
    let stats = server.shutdown();
    assert_eq!(stats.served, 6);
    assert!(stats.batches >= 2);
}

#[test]
fn worker_panic_is_isolated_and_server_recovers() {
    let server = Server::start(
        float_device(48, 14),
        ServeConfig {
            max_batch: 1, // every request is its own batch
            max_linger: Duration::from_millis(1),
            workers: 1,
            panic_on_batch: Some(0),
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let mut x = 41u64;
    let err = handle
        .query(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect_err("injected fault");
    assert_eq!(err, ServeError::WorkerPanicked);
    // The worker recovered on a pristine device clone; the queue is not
    // wedged and subsequent requests serve normally.
    let resp = handle
        .query(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect("server recovered");
    assert_eq!(resp.neighbors.len(), 4);
    let stats = server.shutdown();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.served, 1);
}

#[test]
fn cluster_backend_serves_and_enforces_euclidean_only() {
    let mut store = VectorStore::with_capacity(DIMS, 96);
    let mut x = 43u64;
    for _ in 0..96 {
        store.push(&float_vec(&mut x));
    }
    let cluster = SsamCluster::build(SsamConfig::default(), 2, &store);
    let mut reference = cluster.clone();

    let server = Server::start_cluster(
        cluster,
        ServeConfig {
            max_linger: Duration::from_millis(5),
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let err = handle
        .submit(Request::new(OwnedQuery::Manhattan(vec![0.0; DIMS]), 4))
        .expect_err("cluster is Euclidean-only");
    assert!(matches!(err, ServeError::BadRequest(_)));

    let q = float_vec(&mut x);
    let resp = handle
        .query(Request::new(OwnedQuery::Euclidean(q.clone()), 5))
        .expect("served");
    let serial = reference.query(&q, 5).expect("serial");
    assert_eq!(resp.neighbors, serial.0);
    assert!(matches!(
        resp.account,
        ssam_serve::DeviceAccount::Cluster(_)
    ));
    server.shutdown();
}

#[test]
fn served_batches_record_verified_telemetry() {
    let sink = Telemetry::new();
    let mut dev = float_device(64, 15);
    dev.attach_telemetry(&sink);
    let server = Server::start(
        dev,
        ServeConfig {
            max_batch: 4,
            max_linger: Duration::from_millis(5),
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let mut x = 47u64;
    let tickets: Vec<_> = (0..8)
        .map(|_| {
            handle
                .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 5))
                .expect("admitted")
        })
        .collect();
    for t in tickets {
        t.wait().expect("served");
    }
    server.shutdown();
    // Worker device clones share the sink attached before start: every
    // served query left a self-checked record, and none was retained as
    // a violation.
    assert!(sink.records().len() >= 8, "served queries left no records");
    assert!(
        sink.violations().is_empty(),
        "serve-path accounting violated telemetry invariants: {:?}",
        sink.violations()
    );
}

#[test]
fn panicked_batch_requests_are_reenqueued_once() {
    use ssam_serve::ServeFaults;
    // Four requests share the panicking batch; none of them is the
    // proven culprit (the batch had company), so each gets one retry
    // and the rebuilt batch serves them all.
    let server = Server::start(
        float_device(48, 14),
        ServeConfig {
            max_batch: 4,
            max_linger: Duration::from_secs(3600),
            workers: 1,
            faults: ServeFaults {
                panic_on_batch: Some(0),
                ..ServeFaults::default()
            },
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let mut x = 51u64;
    let tickets: Vec<_> = (0..4)
        .map(|_| {
            handle
                .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
                .expect("admitted")
        })
        .collect();
    for t in tickets {
        let resp = t.wait().expect("re-enqueued after panic, then served");
        assert_eq!(resp.neighbors.len(), 4);
        assert_eq!(resp.coverage, 1.0);
    }
    let stats = server.shutdown();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.retried_panic, 4);
    assert_eq!(stats.served, 4);
    assert_eq!(stats.failed, 0);
}

#[test]
fn legacy_panic_on_batch_field_still_fires() {
    // PR-4 style config: the deprecated top-level knob, no ServeFaults.
    let server = Server::start(
        float_device(48, 14),
        ServeConfig {
            max_batch: 1,
            max_linger: Duration::from_millis(1),
            workers: 1,
            panic_on_batch: Some(0),
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let mut x = 53u64;
    let err = handle
        .query(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect_err("injected fault");
    assert_eq!(err, ServeError::WorkerPanicked);
    let stats = server.shutdown();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.failed, 1);
}

#[test]
fn degraded_coverage_surfaces_after_retry_budget() {
    use ssam_faults::FaultPlan;
    use ssam_serve::ServeFaults;
    use std::sync::Arc;
    // Vault 0 is permanently dead: every execution loses its shard, so
    // coverage is deterministically below 1.0 on the first try and on
    // the retry. With the default min_coverage of 1.0 and the default
    // retry budget of 1, the request retries once and then surfaces as
    // Degraded with the honest coverage fraction.
    let plan = FaultPlan::parse("dead_vaults=0").expect("valid spec");
    let server = Server::start(
        float_device(256, 21),
        ServeConfig {
            max_batch: 1,
            max_linger: Duration::from_millis(1),
            workers: 1,
            faults: ServeFaults {
                plan: Some(Arc::new(plan)),
                ..ServeFaults::default()
            },
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let mut x = 61u64;
    let err = handle
        .query(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect_err("dead vault can never reach full coverage");
    match err {
        ServeError::Degraded { coverage } => {
            assert!(coverage > 0.0 && coverage < 1.0, "coverage = {coverage}");
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.retried_degraded, 1);
    assert_eq!(stats.served, 0);
    assert_eq!(stats.failed, 0);
}

#[test]
fn rate_limited_tenant_bounces_without_occupying_the_queue() {
    use ssam_serve::{QosConfig, TenantId, TenantQos};
    let tenant = TenantId(5);
    let server = Server::start(
        float_device(48, 27),
        ServeConfig {
            qos: QosConfig::default().with_tenant(
                tenant,
                TenantQos {
                    rate: Some(0.001),
                    burst: 2.0,
                    ..TenantQos::default()
                },
            ),
            ..slow_config()
        },
    );
    let handle = server.handle();
    let mut x = 67u64;
    // The bucket starts full: exactly `burst` admissions, then typed
    // rejection naming the tenant — while an unlimited tenant admits
    // freely throughout.
    let mut tickets = Vec::new();
    for _ in 0..2 {
        tickets.push(
            handle
                .submit(
                    Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4).with_tenant(tenant),
                )
                .expect("burst admits"),
        );
    }
    let err = handle
        .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4).with_tenant(tenant))
        .expect_err("bucket empty");
    assert_eq!(err, ServeError::RateLimited { tenant });
    tickets.push(
        handle
            .submit(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
            .expect("unlimited tenant admits"),
    );
    let stats = server.shutdown();
    for t in tickets {
        t.wait().expect("admitted requests drain");
    }
    assert_eq!(stats.rejected_rate_limited, 1);
    assert_eq!(stats.served, 3);
}

#[test]
fn per_tenant_default_timeout_overrides_server_default() {
    use ssam_serve::{QosConfig, TenantId, TenantQos};
    let strict = TenantId(6);
    let server = Server::start(
        float_device(48, 28),
        ServeConfig {
            default_timeout: Some(Duration::from_secs(3600)),
            qos: QosConfig::default().with_tenant(
                strict,
                TenantQos {
                    default_timeout: Some(Duration::from_millis(40)),
                    ..TenantQos::default()
                },
            ),
            ..slow_config()
        },
    );
    let handle = server.handle();
    let mut x = 71u64;
    // The strict tenant's 40 ms budget beats the hour-long server
    // default; inside the hour-long linger only a deadline can end the
    // wait, so a prompt DeadlineExceeded proves the tenant SLO applied.
    let started = Instant::now();
    let err = handle
        .query(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4).with_tenant(strict))
        .expect_err("tenant deadline must fire");
    assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err}");
    assert!(started.elapsed() < Duration::from_secs(60));
    // An explicit request timeout still wins over the tenant default.
    let started = Instant::now();
    let err = handle
        .query(
            Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4)
                .with_tenant(strict)
                .with_timeout(Duration::from_millis(5)),
        )
        .expect_err("request deadline must fire");
    assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err}");
    assert!(started.elapsed() < Duration::from_secs(1));
    server.shutdown();
}

#[test]
fn per_tenant_min_coverage_relaxes_the_global_slo() {
    use ssam_faults::FaultPlan;
    use ssam_serve::{QosConfig, ServeFaults, TenantId, TenantQos};
    use std::sync::Arc;
    // Global SLO demands full coverage; the tolerant tenant opts down to
    // 0.5. Under a dead vault the tolerant tenant serves with honest
    // partial coverage while a default tenant degrades.
    let tolerant = TenantId(7);
    let plan = FaultPlan::parse("dead_vaults=0").expect("valid spec");
    let server = Server::start(
        float_device(256, 21),
        ServeConfig {
            max_batch: 1,
            max_linger: Duration::from_millis(1),
            workers: 1,
            faults: ServeFaults {
                plan: Some(Arc::new(plan)),
                min_coverage: 1.0,
                ..ServeFaults::default()
            },
            qos: QosConfig::default().with_tenant(
                tolerant,
                TenantQos {
                    min_coverage: Some(0.5),
                    ..TenantQos::default()
                },
            ),
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let mut x = 73u64;
    let resp = handle
        .query(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4).with_tenant(tolerant))
        .expect("tolerant tenant accepts partial coverage");
    assert!(resp.coverage >= 0.5 && resp.coverage < 1.0);
    let err = handle
        .query(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect_err("default tenant keeps the strict SLO");
    assert!(matches!(err, ServeError::Degraded { .. }), "{err}");
    let stats = server.shutdown();
    assert_eq!(stats.served, 1);
    assert_eq!(stats.degraded, 1);
}

#[test]
fn relaxed_min_coverage_serves_with_honest_coverage() {
    use ssam_faults::FaultPlan;
    use ssam_serve::ServeFaults;
    use std::sync::Arc;
    // Same dead vault, but the operator accepts partial answers: the
    // response arrives with coverage < 1.0 reported truthfully.
    let plan = FaultPlan::parse("dead_vaults=0").expect("valid spec");
    let server = Server::start(
        float_device(256, 21),
        ServeConfig {
            max_batch: 1,
            max_linger: Duration::from_millis(1),
            workers: 1,
            faults: ServeFaults {
                plan: Some(Arc::new(plan)),
                min_coverage: 0.5,
                ..ServeFaults::default()
            },
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let mut x = 61u64;
    let resp = handle
        .query(Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect("partial coverage accepted");
    assert_eq!(resp.neighbors.len(), 4);
    assert!(
        resp.coverage >= 0.5 && resp.coverage < 1.0,
        "coverage = {}",
        resp.coverage
    );
    let stats = server.shutdown();
    assert_eq!(stats.served, 1);
    assert_eq!(stats.degraded, 0);
}
