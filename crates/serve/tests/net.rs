//! Integration tests for the framed TCP boundary: round-trips over a
//! real socket, every admission error surfacing as its typed remote
//! image, concurrent clients, rate limiting across the wire, and
//! graceful drain on shutdown.

use std::time::Duration;

use ssam_core::device::{SsamConfig, SsamDevice};
use ssam_knn::binary::BinaryStore;
use ssam_knn::VectorStore;
use ssam_serve::net::{ClientError, NetClient, NetServer, RemoteError};
use ssam_serve::{OwnedQuery, QosConfig, Request, ServeConfig, Server, TenantId, TenantQos};

const DIMS: usize = 8;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

fn float_vec(x: &mut u64) -> Vec<f32> {
    (0..DIMS)
        .map(|_| ((lcg(x) >> 40) as i32 % 1000) as f32 / 500.0)
        .collect()
}

fn float_device(n: usize, seed: u64) -> SsamDevice {
    let mut store = VectorStore::with_capacity(DIMS, n);
    let mut x = seed | 1;
    for _ in 0..n {
        store.push(&float_vec(&mut x));
    }
    let mut dev = SsamDevice::new(SsamConfig::default());
    dev.load_vectors(&store);
    dev
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        max_linger: Duration::from_millis(2),
        workers: 2,
        ..ServeConfig::default()
    }
}

#[test]
fn tcp_round_trip_matches_in_process_serving() {
    let mut reference = float_device(96, 7);
    let net = NetServer::bind(
        "127.0.0.1:0",
        Server::start(float_device(96, 7), quick_config()),
    )
    .expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");

    let mut x = 99u64;
    for _ in 0..8 {
        let q = float_vec(&mut x);
        let resp = client
            .query(&Request::new(OwnedQuery::Euclidean(q.clone()), 5))
            .expect("served over TCP");
        let serial = reference
            .query(&ssam_core::device::DeviceQuery::Euclidean(&q), 5)
            .expect("serial");
        assert_eq!(
            resp.neighbors, serial.neighbors,
            "wire transport changed results"
        );
        assert_eq!(resp.coverage, 1.0);
        assert!(resp.batch_size >= 1);
        assert!(resp.queue_seconds >= 0.0 && resp.service_seconds >= 0.0);
    }
    let stats = net.shutdown();
    assert_eq!(stats.served, 8);
    assert_eq!(stats.failed, 0);
}

#[test]
fn hamming_queries_serve_over_the_wire() {
    let mut store = BinaryStore::new(64);
    let mut x = 31u64;
    for _ in 0..48 {
        store.push(&[(lcg(&mut x) >> 16) as u32, (lcg(&mut x) >> 16) as u32]);
    }
    let mut dev = SsamDevice::new(SsamConfig::default());
    dev.load_binary(&store);
    let mut reference = dev.clone();

    let net = NetServer::bind("127.0.0.1:0", Server::start(dev, quick_config())).expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    let code = vec![(lcg(&mut x) >> 16) as u32, (lcg(&mut x) >> 16) as u32];
    let resp = client
        .query(&Request::new(OwnedQuery::Hamming(code.clone()), 6))
        .expect("served");
    let serial = reference
        .query(&ssam_core::device::DeviceQuery::Hamming(&code), 6)
        .expect("serial");
    assert_eq!(resp.neighbors, serial.neighbors);

    // A float query against the binary payload is the server-side
    // BadRequest path, typed across the wire.
    let err = client
        .query(&Request::new(OwnedQuery::Euclidean(vec![0.0; 2]), 4))
        .expect_err("float query against binary payload");
    assert!(
        matches!(err, ClientError::Remote(RemoteError::BadRequest(_))),
        "{err}"
    );
    net.shutdown();
}

#[test]
fn admission_errors_cross_the_wire_typed() {
    let net = NetServer::bind(
        "127.0.0.1:0",
        Server::start(float_device(48, 9), quick_config()),
    )
    .expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");

    // k = 0 → BadRequest.
    let err = client
        .query(&Request::new(OwnedQuery::Euclidean(vec![0.0; DIMS]), 0))
        .expect_err("k = 0");
    assert!(matches!(
        err,
        ClientError::Remote(RemoteError::BadRequest(_))
    ));

    // An immediately-expired deadline → DeadlineExceeded with the
    // overshoot reported.
    let mut x = 13u64;
    let err = client
        .query(
            &Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4)
                .with_timeout(Duration::from_nanos(1)),
        )
        .expect_err("expired deadline");
    match err {
        ClientError::Remote(RemoteError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    net.shutdown();
}

#[test]
fn rate_limit_rejects_over_the_wire() {
    let tenant = TenantId(3);
    let config = ServeConfig {
        qos: QosConfig::default().with_tenant(
            tenant,
            TenantQos {
                rate: Some(0.001), // refills a token every ~17 minutes
                burst: 2.0,
                ..TenantQos::default()
            },
        ),
        ..quick_config()
    };
    let net =
        NetServer::bind("127.0.0.1:0", Server::start(float_device(48, 11), config)).expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    let mut x = 17u64;
    // The bucket starts full at burst = 2: two admissions, then typed
    // rejection naming the throttled tenant.
    for _ in 0..2 {
        client
            .query(&Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4).with_tenant(tenant))
            .expect("burst admits");
    }
    let err = client
        .query(&Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4).with_tenant(tenant))
        .expect_err("bucket empty");
    match err {
        ClientError::Remote(RemoteError::RateLimited { tenant: t }) => assert_eq!(t, tenant),
        other => panic!("expected RateLimited, got {other}"),
    }
    // Another tenant is not throttled by tenant 3's empty bucket.
    client
        .query(&Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect("unlimited tenant unaffected");
    let stats = net.shutdown();
    assert_eq!(stats.rejected_rate_limited, 1);
    assert_eq!(stats.served, 3);
}

#[test]
fn concurrent_clients_all_serve() {
    let net = NetServer::bind(
        "127.0.0.1:0",
        Server::start(float_device(96, 15), quick_config()),
    )
    .expect("bind");
    let addr = net.local_addr();
    let joins: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let mut x = 0x1000 + c as u64;
                (0..6)
                    .map(|_| {
                        client
                            .query(&Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 5))
                            .expect("served")
                            .neighbors
                            .len()
                    })
                    .sum::<usize>()
            })
        })
        .collect();
    for j in joins {
        assert_eq!(j.join().expect("client thread"), 30);
    }
    let stats = net.shutdown();
    assert_eq!(stats.served, 24);
}

#[test]
fn shutdown_drains_in_flight_and_refuses_new_connections() {
    let net = NetServer::bind(
        "127.0.0.1:0",
        Server::start(float_device(48, 21), quick_config()),
    )
    .expect("bind");
    let addr = net.local_addr();
    let mut client = NetClient::connect(addr).expect("connect");
    let mut x = 23u64;
    client
        .query(&Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
        .expect("served before shutdown");
    let stats = net.shutdown();
    assert_eq!(stats.served, 1);
    // The listener is gone: new connections fail or are closed without
    // service (either way, no reply ever arrives for a new query).
    let after = NetClient::connect(addr)
        .and_then(|mut c| {
            c.query(&Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4))
                .map(|_| ())
                .map_err(|_| std::io::Error::other("no service"))
        })
        .is_err();
    assert!(after, "a query was served after shutdown");
}

#[test]
fn malformed_frame_gets_bad_request_not_a_hang() {
    use std::io::{Read, Write};
    let net = NetServer::bind(
        "127.0.0.1:0",
        Server::start(float_device(48, 25), quick_config()),
    )
    .expect("bind");
    let mut raw = std::net::TcpStream::connect(net.local_addr()).expect("connect");
    // A framed payload of garbage: the server must answer with a typed
    // BadRequest frame rather than dropping the connection silently.
    let garbage = [0xFFu8; 9];
    raw.write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&garbage).unwrap();
    let mut header = [0u8; 4];
    raw.read_exact(&mut header).expect("reply header");
    let len = u32::from_le_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    raw.read_exact(&mut payload).expect("reply payload");
    let reply = ssam_serve::net::decode_reply(&payload).expect("decodes");
    assert!(
        matches!(reply, Err(RemoteError::BadRequest(_))),
        "{reply:?}"
    );
    net.shutdown();
}
