//! Serving a mutable store: online writes interleaved with queries,
//! consistency across seals and background compaction, and the framed
//! TCP write path.

use std::time::Duration;

use ssam_core::device::{DeviceMetric, SsamConfig, SsamDevice};
use ssam_knn::VectorStore;
use ssam_serve::net::{ClientError, NetClient, NetServer, RemoteError};
use ssam_serve::{OwnedQuery, Request, ServeConfig, ServeError, Server};
use ssam_store::{ShardedStore, ShardedStoreConfig, Store, StoreConfig};

fn store_config(dims: usize, capacity: usize, fanout: usize) -> StoreConfig {
    let mut c = StoreConfig::new(dims);
    c.memtable_capacity = capacity;
    c.fanout = fanout;
    c.device.fast_path = true;
    c
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        max_linger: Duration::from_millis(1),
        workers: 2,
        ..ServeConfig::default()
    }
}

fn vector(i: usize, dims: usize) -> Vec<f32> {
    (0..dims)
        .map(|d| (((i * 31 + d * 7) % 200) as f32 - 100.0) / 100.0)
        .collect()
}

/// Writes through the handle become visible to queries immediately, and
/// the served top-k over memtable ∪ segments is bit-identical to an
/// immutable device rebuilt from the store's live set — while the
/// maintenance thread compacts in the background.
#[test]
fn served_store_matches_immutable_rebuild_under_churn() {
    let dims = 6;
    let server = Server::start_store(Store::create(store_config(dims, 8, 2)), serve_config());
    let handle = server.handle();

    for round in 0..6 {
        // A churn wave: inserts (some overwriting), a few deletes.
        for i in 0..24 {
            let uid = (round * 16 + i) % 48;
            handle
                .insert(uid as u32, &vector(round * 100 + i, dims))
                .expect("insert accepted");
        }
        for i in 0..4 {
            handle
                .delete(((round * 13 + i * 5) % 48) as u32)
                .expect("delete accepted");
        }

        let store = server.store().expect("store backend");
        let (reference, live) = {
            let st = store.lock().unwrap();
            let live = st.live_set();
            let mut flat = VectorStore::new(dims);
            for (_, v) in &live {
                flat.push(v);
            }
            let mut device = SsamDevice::new(SsamConfig {
                fast_path: true,
                ..SsamConfig::default()
            });
            device.load_vectors(&flat);
            (device, live)
        };
        let mut reference = reference;

        let q = vector(round * 997 + 3, dims);
        let k = 5;
        let served = handle
            .query(Request::new(OwnedQuery::Euclidean(q.clone()), k))
            .expect("served");
        let expect = reference
            .query(&ssam_core::device::DeviceQuery::Euclidean(&q), k)
            .expect("reference query");
        assert_eq!(served.neighbors.len(), expect.neighbors.len());
        for (got, want) in served.neighbors.iter().zip(&expect.neighbors) {
            // Reference ids are positions in the uid-sorted live set.
            assert_eq!(got.id, live[want.id as usize].0, "round {round}");
            assert_eq!(
                got.dist.to_bits(),
                want.dist.to_bits(),
                "round {round}: distance drifted"
            );
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.inserts, 6 * 24);
    assert_eq!(stats.deletes, 6 * 4);
    assert!(stats.served >= 6);
}

/// The background maintenance thread drains compaction debt without any
/// explicit compact calls.
#[test]
fn maintenance_thread_compacts_in_background() {
    let server = Server::start_store(
        Store::create(store_config(4, 4, 2)),
        ServeConfig {
            maintenance_interval: Duration::from_micros(100),
            ..serve_config()
        },
    );
    let handle = server.handle();
    for i in 0..64 {
        handle.insert(i, &vector(i as usize, 4)).expect("insert");
    }
    // 16 seals landed on level 0; give maintenance a moment to merge.
    let store = server.store().expect("store backend");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        {
            let st = store.lock().unwrap();
            if !st.compaction_needed() {
                assert!(st.stats().compactions > 0);
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "maintenance never caught up"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Everything is still served correctly after the merges.
    let r = handle
        .query(Request::new(OwnedQuery::Euclidean(vector(13, 4)), 1))
        .expect("served");
    assert_eq!(r.neighbors[0].id, 13);
    assert_eq!(r.neighbors[0].dist, 0.0);
    server.shutdown();
}

/// Admission rejects what the store cannot serve: cosine queries,
/// binary queries, wrong-length vectors — and writes against an
/// immutable backend.
#[test]
fn admission_rejects_unsupported_store_requests() {
    let server = Server::start_store(Store::create(store_config(4, 8, 2)), serve_config());
    let handle = server.handle();
    handle.insert(0, &vector(0, 4)).expect("insert");

    assert!(handle
        .query(Request::new(OwnedQuery::Cosine(vector(1, 4)), 1))
        .is_err());
    assert!(handle
        .query(Request::new(OwnedQuery::Hamming(vec![1, 2]), 1))
        .is_err());
    assert!(handle.insert(1, &[0.0; 3]).is_err());
    // Manhattan is a linear kernel: accepted.
    assert!(handle
        .query(Request::new(OwnedQuery::Manhattan(vector(2, 4)), 1))
        .is_ok());
    server.shutdown();

    // Immutable backend: writes are a typed BadRequest.
    let mut flat = VectorStore::new(4);
    for i in 0..8 {
        flat.push(&vector(i, 4));
    }
    let mut device = SsamDevice::new(SsamConfig::default());
    device.load_vectors(&flat);
    let server = Server::start(device, serve_config());
    assert!(server.handle().insert(0, &vector(0, 4)).is_err());
    assert!(server.handle().delete(0).is_err());
    server.shutdown();
}

/// Full TCP loop: insert/delete/query frames against a store-backed
/// server, including the typed error for writes to an immutable one.
#[test]
fn tcp_write_path_round_trips() {
    let server = Server::start_store(Store::create(store_config(4, 8, 2)), serve_config());
    let net = NetServer::bind("127.0.0.1:0", server).expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");

    let mut last_seq = 0;
    for i in 0..12u32 {
        let ack = client.insert(i, &vector(i as usize, 4)).expect("insert");
        // Seal decisions consume sequence numbers too, so acks are
        // strictly monotonic but not contiguous.
        assert!(ack.seq > last_seq);
        last_seq = ack.seq;
    }
    client.delete(3).expect("delete");

    let resp = client
        .query(&Request::new(OwnedQuery::Euclidean(vector(7, 4)), 2))
        .expect("served");
    assert_eq!(resp.neighbors[0].id, 7);
    assert_eq!(resp.neighbors[0].dist, 0.0);
    assert!(resp.neighbors.iter().all(|n| n.id != 3));

    // Exact-match query for the deleted uid must not return it.
    let resp = client
        .query(&Request::new(OwnedQuery::Euclidean(vector(3, 4)), 3))
        .expect("served");
    assert!(resp.neighbors.iter().all(|n| n.id != 3));

    let stats = net.shutdown();
    assert_eq!(stats.inserts, 12);
    assert_eq!(stats.deletes, 1);

    // Immutable backend over TCP: write comes back BadRequest.
    let mut flat = VectorStore::new(4);
    for i in 0..8 {
        flat.push(&vector(i, 4));
    }
    let mut device = SsamDevice::new(SsamConfig::default());
    device.load_vectors(&flat);
    let net = NetServer::bind("127.0.0.1:0", Server::start(device, serve_config())).expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");
    match client.insert(0, &vector(0, 4)) {
        Err(ClientError::Remote(RemoteError::BadRequest(_))) => {}
        other => panic!("expected remote BadRequest, got {other:?}"),
    }
    net.shutdown();
}

/// Store queries work for Manhattan through the device path too (the
/// metric is part of the batch key, so mixed-metric load batches
/// separately but serves consistently).
#[test]
fn manhattan_store_queries_match_euclidean_visibility() {
    let server = Server::start_store(Store::create(store_config(4, 4, 2)), serve_config());
    let handle = server.handle();
    for i in 0..20u32 {
        handle.insert(i, &vector(i as usize, 4)).expect("insert");
    }
    handle.delete(11).expect("delete");
    let e = handle
        .query(Request::new(OwnedQuery::Euclidean(vector(11, 4)), 4))
        .expect("served");
    let m = handle
        .query(Request::new(OwnedQuery::Manhattan(vector(11, 4)), 4))
        .expect("served");
    assert!(e.neighbors.iter().all(|n| n.id != 11));
    assert!(m.neighbors.iter().all(|n| n.id != 11));
    server.shutdown();
}

/// A sharded backend behind the server: startup surfaces the recovery
/// report, routed writes carry shard/replica detail, a downed primary
/// fails writes over, a whole shard down is a typed refusal, and after
/// revive + catch-up the write-failover ledger closes.
#[test]
fn sharded_server_routes_writes_and_surfaces_recovery() {
    let cfg = ShardedStoreConfig::new(2, 2, store_config(4, 4, 2));
    let mut seeded = ShardedStore::create(cfg.clone());
    for i in 0..16u32 {
        seeded.insert(i, &vector(i as usize, 4)).expect("seed");
    }
    let (reopened, rec) = ShardedStore::open(cfg, &seeded.wal_images()).expect("open");
    assert!(rec.total.replayed > 0);

    let server = Server::start_sharded_store(reopened, serve_config());
    assert_eq!(server.stats().recovered_records, rec.total.replayed as u64);
    let handle = server.handle();

    let ack = handle
        .insert_routed(20, &vector(20, 4))
        .expect("routed insert");
    assert_eq!(ack.shard, 0);
    assert_eq!(ack.replicas_acked, 2);
    assert!(!ack.failed_over);

    // Kill shard 1's primary (module 2): its writes land on the
    // standby, acked as failed over.
    let st = server.sharded_store().expect("sharded backend");
    st.lock().unwrap().kill_module(2);
    let ack = handle
        .insert_routed(21, &vector(21, 4))
        .expect("failover insert");
    assert_eq!(ack.shard, 1);
    assert!(ack.failed_over);
    assert_eq!(ack.replicas_acked, 1);

    // Reads fail over too: the write is immediately visible.
    let r = handle
        .query(Request::new(OwnedQuery::Euclidean(vector(21, 4)), 1))
        .expect("served");
    assert_eq!(r.neighbors[0].id, 21);
    assert_eq!(r.neighbors[0].dist, 0.0);

    // The standby goes down as well: the whole shard refuses, typed.
    st.lock().unwrap().kill_module(3);
    match handle.insert_routed(23, &vector(23, 4)) {
        Err(ServeError::ShardUnavailable { shard: 1 }) => {}
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }

    // Revive both; the next shard-1 write drains the pending queues
    // and the ledger closes.
    {
        let mut guard = st.lock().unwrap();
        guard.revive_module(2);
        guard.revive_module(3);
    }
    handle
        .insert_routed(25, &vector(25, 4))
        .expect("catch-up insert");
    {
        let guard = st.lock().unwrap();
        assert_eq!(guard.pending_total(), 0);
        guard.check_write_ledger().expect("ledger closes");
    }
    let stats = server.shutdown();
    assert_eq!(stats.rejected_shard_down, 1);
    assert_eq!(stats.inserts, 3);
}

/// Routed write frames over TCP: status-10 acks carry shard + replica
/// detail, the legacy decode path downgrades them transparently, and a
/// whole-shard outage comes back as the typed remote refusal.
#[test]
fn tcp_sharded_write_frames_round_trip() {
    let cfg = ShardedStoreConfig::new(2, 2, store_config(4, 8, 2));
    let server = Server::start_sharded_store(ShardedStore::create(cfg), serve_config());
    let st = server.sharded_store().expect("sharded backend");
    let net = NetServer::bind("127.0.0.1:0", server).expect("bind");
    let mut client = NetClient::connect(net.local_addr()).expect("connect");

    let ack = client.insert_routed(5, &vector(5, 4)).expect("routed");
    assert_eq!(ack.shard, 1);
    assert_eq!(ack.replicas_acked, 2);
    assert!(!ack.failed_over);

    // A legacy client decodes the sharded frame as a plain WriteAck.
    let plain = client.insert(6, &vector(6, 4)).expect("plain decode");
    assert!(plain.seq > ack.seq);

    {
        let mut guard = st.lock().unwrap();
        guard.kill_module(0);
        guard.kill_module(1);
    }
    match client.insert_routed(8, &vector(8, 4)) {
        Err(ClientError::Remote(RemoteError::ShardUnavailable { shard: 0 })) => {}
        other => panic!("expected remote ShardUnavailable, got {other:?}"),
    }
    let stats = net.shutdown();
    assert_eq!(stats.inserts, 2);
    assert_eq!(stats.rejected_shard_down, 1);
}

/// `DeviceMetric` unused-import guard (the reference rebuild uses it via
/// the device query enum); keep the import meaningful.
#[test]
fn store_metric_enum_is_linear_only_for_serving() {
    let mut store = Store::create(store_config(2, 4, 2));
    store.insert(0, &[0.1, 0.2]).unwrap();
    assert!(store.query(&[0.0, 0.0], DeviceMetric::Cosine, 1).is_err());
    assert!(store.query(&[0.0, 0.0], DeviceMetric::Euclidean, 1).is_ok());
}
