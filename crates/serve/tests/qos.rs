//! Property tests for the QoS layer — weighted-fair dequeue (no
//! starvation, bounded unfairness, strict tiers) and deterministic
//! token-bucket admission — plus the end-to-end isolation test: a fault
//! storm confined to tenant A must not move tenant B's tail latency
//! beyond a tested bound.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use ssam_core::device::{DeviceMetric, SsamConfig, SsamDevice};
use ssam_faults::FaultPlan;
use ssam_knn::VectorStore;
use ssam_serve::batcher::{plan, Action, BatchKey, PendingMeta};
use ssam_serve::qos::{refill, FairState, TokenBucket};
use ssam_serve::{
    OwnedQuery, QosConfig, Request, ServeConfig, ServeError, ServeFaults, Server, TenantId,
    TenantQos,
};

fn key(tenant: TenantId) -> BatchKey {
    BatchKey {
        metric: DeviceMetric::Euclidean,
        k: 4,
        hw_queue: false,
        tenant,
    }
}

/// Drives `plan()` like a worker would: every tenant keeps `max_batch`
/// requests backlogged at all times (refilled after each flush), `drain`
/// makes every group ripe, and each flush charges the tenant's fair
/// state. Returns per-tenant flushed-request counts and asserts the
/// scheduler invariants at every step.
fn run_backlogged(weights_tiers: &[(f64, u8)], max_batch: usize, steps: usize) -> Vec<u64> {
    let t0 = Instant::now();
    let qos =
        weights_tiers
            .iter()
            .enumerate()
            .fold(QosConfig::default(), |cfg, (i, &(weight, tier))| {
                cfg.with_tenant(
                    TenantId(i as u32),
                    TenantQos {
                        weight,
                        tier,
                        ..TenantQos::default()
                    },
                )
            });
    let mut fair = FairState::default();
    let mut served = vec![0u64; weights_tiers.len()];
    let min_weight = weights_tiers
        .iter()
        .map(|&(w, _)| w)
        .fold(f64::INFINITY, f64::min);
    let unfairness_bound = max_batch as f64 / min_weight + 1e-6;

    for _ in 0..steps {
        // Snapshot: max_batch pending requests per tenant, all ripe.
        let pending: Vec<PendingMeta> = (0..weights_tiers.len())
            .flat_map(|i| {
                (0..max_batch).map(move |_| PendingMeta {
                    key: key(TenantId(i as u32)),
                    enqueued: t0,
                    deadline: None,
                })
            })
            .collect();
        let decision = plan(
            &pending,
            t0 + Duration::from_millis(1),
            max_batch,
            Duration::from_secs(3600),
            true,
            &qos,
            &fair,
        );
        prop_assert!(decision.expired.is_empty());
        let Action::Flush(indices) = decision.action else {
            panic!("backlogged queue must flush");
        };
        prop_assert_eq!(indices.len(), max_batch);
        let tenant = pending[indices[0]].key.tenant;
        for &i in &indices {
            prop_assert_eq!(pending[i].key.tenant, tenant, "batch mixed tenants");
        }

        // Strict priority: the flushed tenant's tier is the minimum tier
        // with ripe work (every tenant is ripe here).
        let min_tier = weights_tiers.iter().map(|&(_, t)| t).min().unwrap();
        prop_assert_eq!(
            weights_tiers[tenant.0 as usize].1,
            min_tier,
            "a ripe lower-tier group was bypassed"
        );

        fair.charge(tenant, indices.len(), weights_tiers[tenant.0 as usize].0);
        served[tenant.0 as usize] += indices.len() as u64;

        // Bounded unfairness among the continuously backlogged tenants of
        // the serving tier: virtual-service spread ≤ max_batch/min weight.
        let services: Vec<f64> = weights_tiers
            .iter()
            .enumerate()
            .filter(|(_, &(_, t))| t == min_tier)
            .map(|(i, _)| fair.service(TenantId(i as u32)))
            .collect();
        let spread = services.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - services.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        prop_assert!(
            spread <= unfairness_bound,
            "virtual-service spread {spread} exceeds bound {unfairness_bound}"
        );
    }
    served
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same tier, arbitrary weights: nobody starves, service stays
    /// within the documented bound, and flushed requests are
    /// proportional to weight within that slack.
    #[test]
    fn weighted_fair_dequeue_has_no_starvation_and_bounded_unfairness(
        weights in prop::collection::vec(0.25f64..8.0, 2..5),
        max_batch in 1usize..8,
    ) {
        let weights_tiers: Vec<(f64, u8)> = weights.iter().map(|&w| (w, 1)).collect();
        let steps = 60 * weights.len();
        let served = run_backlogged(&weights_tiers, max_batch, steps);
        for (i, &s) in served.iter().enumerate() {
            prop_assert!(s > 0, "tenant {i} starved over {steps} flushes");
        }
        // served_i / weight_i is each tenant's virtual service; the
        // run_backlogged bound already pins the spread, so here check the
        // macroscopic consequence: shares track weights.
        let total: u64 = served.iter().sum();
        let weight_sum: f64 = weights.iter().sum();
        for (i, &s) in served.iter().enumerate() {
            let expected = total as f64 * weights[i] / weight_sum;
            let slack = (max_batch as f64) * (weights[i] / weights.iter().fold(f64::INFINITY, |a, &b| a.min(b))) + max_batch as f64;
            prop_assert!(
                (s as f64 - expected).abs() <= slack,
                "tenant {i}: served {s}, expected ≈{expected:.1} (slack {slack:.1})"
            );
        }
    }

    /// Mixed tiers: strict priority between tiers (asserted every step
    /// inside the driver), and nobody in the top tier starves.
    #[test]
    fn strict_tiers_preempt_and_top_tier_stays_fair(
        weights in prop::collection::vec(0.5f64..4.0, 2..5),
        tiers in prop::collection::vec(0u8..3, 2..5),
        max_batch in 1usize..6,
    ) {
        let n = weights.len().min(tiers.len());
        let weights_tiers: Vec<(f64, u8)> =
            weights[..n].iter().zip(&tiers[..n]).map(|(&w, &t)| (w, t)).collect();
        let served = run_backlogged(&weights_tiers, max_batch, 40 * n);
        let min_tier = weights_tiers.iter().map(|&(_, t)| t).min().unwrap();
        for (i, &s) in served.iter().enumerate() {
            if weights_tiers[i].1 == min_tier {
                prop_assert!(s > 0, "top-tier tenant {i} starved");
            } else {
                // Lower tiers never ran: every snapshot had ripe
                // top-tier work (strict priority is absolute).
                prop_assert_eq!(s, 0);
            }
        }
    }

    /// The pure refill function: splitting an interval refills exactly
    /// as much as taking it whole (no spends in between), and the token
    /// count is always inside [0, max(burst, 1)].
    #[test]
    fn token_refill_is_split_invariant_and_clamped(
        rate in 0.1f64..1000.0,
        burst in 0.0f64..100.0,
        dts in prop::collection::vec(0.0f64..0.5, 1..20),
    ) {
        let mut split = 0.0f64;
        for &dt in &dts {
            split = refill(split, rate, burst, dt);
            prop_assert!((0.0..=burst.max(1.0)).contains(&split));
        }
        let whole = refill(0.0, rate, burst, dts.iter().sum());
        prop_assert!(
            (split - whole).abs() <= 1e-9 * whole.max(1.0),
            "split {split} vs whole {whole}"
        );
    }

    /// The stateful bucket: over any arrival pattern, admissions never
    /// exceed burst + rate·elapsed (+1 for the token in flight), and the
    /// whole trajectory is a deterministic function of the pattern.
    #[test]
    fn token_bucket_is_deterministic_and_rate_bounded(
        rate in 1.0f64..500.0,
        burst in 1.0f64..20.0,
        gaps in prop::collection::vec(0.0f64..0.05, 1..200),
    ) {
        let qos = TenantQos { rate: Some(rate), burst, ..TenantQos::default() };
        let t0 = Instant::now();
        let replay = |qos: &TenantQos| -> Vec<bool> {
            let mut bucket = TokenBucket::new(qos, t0);
            let mut now = t0;
            gaps.iter().map(|&g| {
                now += Duration::from_secs_f64(g);
                bucket.try_admit(qos, now)
            }).collect()
        };
        let first = replay(&qos);
        prop_assert_eq!(&first, &replay(&qos), "identical history, different admissions");
        let admitted = first.iter().filter(|&&a| a).count() as f64;
        let elapsed: f64 = gaps.iter().sum();
        prop_assert!(
            admitted <= burst.max(1.0) + rate * elapsed + 1.0,
            "admitted {admitted} over {elapsed}s at rate {rate} burst {burst}"
        );
    }
}

// ---------------------------------------------------------------------
// Isolation under a per-tenant fault storm
// ---------------------------------------------------------------------

const DIMS: usize = 8;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

fn float_vec(x: &mut u64) -> Vec<f32> {
    (0..DIMS)
        .map(|_| ((lcg(x) >> 40) as i32 % 1000) as f32 / 500.0)
        .collect()
}

fn fast_device(n: usize, seed: u64) -> SsamDevice {
    let mut store = VectorStore::with_capacity(DIMS, n);
    let mut x = seed | 1;
    for _ in 0..n {
        store.push(&float_vec(&mut x));
    }
    let mut dev = SsamDevice::new(SsamConfig {
        fast_path: true,
        ..SsamConfig::default()
    });
    dev.load_vectors(&store);
    dev
}

/// Runs two tenants against one server — A optionally under a confined
/// fault storm — and returns tenant B's sorted serve latencies (ms).
fn two_tenant_run(storm_on_a: bool) -> Vec<f64> {
    const PER_TENANT: usize = 120;
    let a = TenantId(1);
    let b = TenantId(2);
    let faults = if storm_on_a {
        ServeFaults {
            plan: Some(Arc::new(
                FaultPlan::parse("dead_vaults=0").expect("valid spec"),
            )),
            storm_tenants: Some(vec![a]),
            ..ServeFaults::default()
        }
    } else {
        ServeFaults::default()
    };
    let server = Server::start(
        fast_device(256, 33),
        ServeConfig {
            max_batch: 8,
            max_linger: Duration::from_micros(200),
            workers: 2,
            faults,
            // Tenant A keeps the strict global coverage SLO (so the storm
            // really costs retries); B inherits the same default — its
            // batches never see the plan, so it always reaches 1.0.
            qos: QosConfig::default(),
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let mut x = 77u64;
    let tickets: Vec<(TenantId, ssam_serve::Ticket)> = (0..2 * PER_TENANT)
        .map(|i| {
            let tenant = if i % 2 == 0 { a } else { b };
            let t = handle
                .submit(
                    Request::new(OwnedQuery::Euclidean(float_vec(&mut x)), 4).with_tenant(tenant),
                )
                .expect("admitted");
            (tenant, t)
        })
        .collect();
    let mut b_latencies = Vec::new();
    for (tenant, ticket) in tickets {
        match ticket.wait() {
            Ok(resp) => {
                if tenant == b {
                    // The storm never leaks into B's batches: full
                    // coverage, always.
                    assert_eq!(resp.coverage, 1.0, "fault storm leaked into tenant B");
                    b_latencies.push((resp.queue_seconds + resp.service_seconds) * 1e3);
                } else {
                    assert!(
                        !storm_on_a,
                        "tenant A under a dead vault cannot reach full coverage"
                    );
                }
            }
            Err(ServeError::Degraded { coverage }) => {
                assert_eq!(tenant, a, "only the storm tenant may degrade");
                assert!(storm_on_a && coverage < 1.0);
            }
            Err(e) => panic!("unexpected serve error: {e}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.served + stats.degraded, 2 * PER_TENANT as u64);
    assert_eq!(b_latencies.len(), PER_TENANT);
    b_latencies.sort_by(|p, q| p.total_cmp(q));
    b_latencies
}

/// The acceptance bound of this PR: a seeded fault storm confined to
/// tenant A (dead vault → every A batch degrades and burns its retry
/// budget) must leave tenant B's p99 within a tested bound of its
/// storm-free baseline. The bound is deliberately generous — shared
/// workers mean *some* interference — but a QoS regression that lets
/// A's retry storm wedge B (the failure mode this guards) blows past it
/// by orders of magnitude.
#[test]
fn tenant_b_p99_survives_tenant_a_fault_storm() {
    let baseline = two_tenant_run(false);
    let stormy = two_tenant_run(true);
    let p99 = |v: &[f64]| v[((0.99 * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1];
    let (base, storm) = (p99(&baseline), p99(&stormy));
    assert!(
        storm <= base * 5.0 + 100.0,
        "tenant B p99 moved from {base:.2} ms to {storm:.2} ms under tenant A's storm"
    );
}
