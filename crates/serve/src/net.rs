//! Framed TCP protocol boundary in front of a [`Server`] — the
//! network admission edge for multi-tenant serving.
//!
//! The vendored registry has no HTTP stack, so the wire format is a
//! deliberately small std-only protocol: every message is one **frame**,
//! a little-endian `u32` byte length followed by that many payload
//! bytes (capped at [`MAX_FRAME`]). A client sends one request frame
//! and reads one reply frame; requests on one connection are served in
//! order. All queries still flow through the in-process [`Server`] —
//! admission control, token buckets, weighted-fair batching, deadlines,
//! and telemetry are identical for local and remote callers.
//!
//! ## Request frames
//!
//! ```text
//! [0x51 'Q'][tenant u32][k u32][timeout_us u64; u64::MAX = none]
//! [metric u8: 0 euclid | 1 manhattan | 2 cosine | 3 hamming]
//! [count u32][count × f32 (float metrics) | count × u32 (hamming)]
//!
//! [0x49 'I'][uid u32][count u32][count × f32]     (store insert)
//! [0x44 'D'][uid u32]                             (store delete)
//! ```
//!
//! Write frames target a [`Server::start_store`] or
//! [`Server::start_sharded_store`] backend; against an immutable
//! backend they answer with a typed `BadRequest`. A write reply is
//! status `9` carrying the [`ssam_store::WriteAck`] fields (`seq u64`,
//! `sealed u8`, `wal_len u64`) from a single-module store, or status
//! `10` carrying the routed [`ssam_store::ShardWriteAck`] (adds
//! `shard u32`, `replicas_acked u32`, `failed_over u8`) from a sharded
//! one — [`decode_write_reply`] accepts either, so single-module
//! clients work against sharded servers unchanged — or any error
//! status below.
//!
//! ## Reply frame
//!
//! One status byte then status-specific fields. `0` is success:
//! coverage `f64`, batch size `u32`, queue/service/device seconds and
//! energy (`f64` each), neighbor count `u32`, then `(id u32, dist f32)`
//! pairs. Every [`ServeError`] variant has its own status byte and
//! carries its fields (capacity, missed-by, coverage, tenant, message),
//! so remote callers see the same typed admission outcomes as local
//! ones — decoded into [`RemoteError`], which mirrors [`ServeError`]
//! with owned strings (`BadRequest`/`Device` payloads cross the wire as
//! text).
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] stops accepting, lets every in-flight
//! request finish and its reply flush (graceful drain), closes idle
//! connections, then drains the inner [`Server`]'s queue and returns
//! its final [`ServerStats`]. Dropping the handle does the same.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ssam_knn::topk::Neighbor;
use ssam_store::{ShardWriteAck, WriteAck};

use crate::{
    OwnedQuery, Request, Response, ServeError, Server, ServerHandle, ServerStats, TenantId,
};

/// Maximum frame payload size (16 MiB): larger length prefixes are a
/// protocol error, bounding per-connection memory.
pub const MAX_FRAME: usize = 1 << 24;

/// How often blocked connection reads wake to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

const MSG_QUERY: u8 = 0x51; // 'Q'
const MSG_INSERT: u8 = 0x49; // 'I'
const MSG_DELETE: u8 = 0x44; // 'D'

const ST_OK: u8 = 0;
const ST_OVERLOADED: u8 = 1;
const ST_RATE_LIMITED: u8 = 2;
const ST_DEADLINE: u8 = 3;
const ST_SHUTTING_DOWN: u8 = 4;
const ST_BAD_REQUEST: u8 = 5;
const ST_DEVICE: u8 = 6;
const ST_WORKER_PANICKED: u8 = 7;
const ST_DEGRADED: u8 = 8;
const ST_WRITE_OK: u8 = 9;
const ST_WRITE_OK_SHARDED: u8 = 10;
const ST_SHARD_UNAVAILABLE: u8 = 11;

const METRIC_EUCLIDEAN: u8 = 0;
const METRIC_MANHATTAN: u8 = 1;
const METRIC_COSINE: u8 = 2;
const METRIC_HAMMING: u8 = 3;

/// A [`ServeError`] as reconstructed on the client side of the wire.
/// Structurally identical except that `BadRequest` and `Device` carry
/// owned strings (the server renders them into the frame; `&'static
/// str` and the simulator's structured error cannot cross a byte
/// boundary losslessly).
#[derive(Debug, Clone, PartialEq)]
pub enum RemoteError {
    /// Wire image of [`ServeError::Overloaded`].
    Overloaded {
        /// Queue capacity that was exceeded.
        capacity: usize,
    },
    /// Wire image of [`ServeError::RateLimited`].
    RateLimited {
        /// The throttled tenant.
        tenant: TenantId,
    },
    /// Wire image of [`ServeError::DeadlineExceeded`].
    DeadlineExceeded {
        /// How far past the deadline the rejection happened.
        missed_by: Duration,
    },
    /// Wire image of [`ServeError::ShuttingDown`].
    ShuttingDown,
    /// Wire image of [`ServeError::BadRequest`].
    BadRequest(String),
    /// Wire image of [`ServeError::Device`], rendered to text.
    Device(String),
    /// Wire image of [`ServeError::WorkerPanicked`].
    WorkerPanicked,
    /// Wire image of [`ServeError::Degraded`].
    Degraded {
        /// Coverage of the rejected attempt.
        coverage: f64,
    },
    /// Wire image of [`ServeError::ShardUnavailable`].
    ShardUnavailable {
        /// The shard whose whole replica set is down.
        shard: usize,
    },
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Overloaded { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            RemoteError::RateLimited { tenant } => {
                write!(f, "{tenant} exceeded its admission rate")
            }
            RemoteError::DeadlineExceeded { missed_by } => {
                write!(f, "deadline exceeded (missed by {missed_by:?})")
            }
            RemoteError::ShuttingDown => write!(f, "server is shutting down"),
            RemoteError::BadRequest(why) => write!(f, "bad request: {why}"),
            RemoteError::Device(e) => write!(f, "device fault: {e}"),
            RemoteError::WorkerPanicked => write!(f, "worker panicked executing the batch"),
            RemoteError::Degraded { coverage } => {
                write!(f, "result degraded below required coverage ({coverage:.3})")
            }
            RemoteError::ShardUnavailable { shard } => {
                write!(f, "shard {shard}: every replica is down, write refused")
            }
        }
    }
}

impl std::error::Error for RemoteError {}

/// What a [`NetClient`] call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The peer violated the frame protocol.
    Protocol(String),
    /// The server answered with a typed serving error.
    Remote(RemoteError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
            ClientError::Remote(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successfully served query, as seen across the wire. The flattened
/// image of [`Response`] (the device account is reduced to its seconds
/// and energy).
#[derive(Debug, Clone, PartialEq)]
pub struct NetResponse {
    /// Global top-k, best first.
    pub neighbors: Vec<Neighbor>,
    /// Fraction of candidate vectors actually scanned.
    pub coverage: f64,
    /// Size of the device batch this request was coalesced into.
    pub batch_size: usize,
    /// Host wall-clock from admission to batch formation.
    pub queue_seconds: f64,
    /// Host wall-clock executing the device batch.
    pub service_seconds: f64,
    /// Modeled device seconds for this request alone.
    pub device_seconds: f64,
    /// Modeled device energy, millijoules.
    pub energy_mj: f64,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(format!(
                "frame truncated: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.buf.len()
            ));
        };
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 message".to_string())
    }

    fn done(&self) -> Result<(), String> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes", self.buf.len() - self.at))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes one request as a frame payload (without the length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + req.query.payload_bytes());
    out.push(MSG_QUERY);
    out.extend_from_slice(&req.tenant.0.to_le_bytes());
    out.extend_from_slice(&(req.k as u32).to_le_bytes());
    let timeout_us = req.timeout.map_or(u64::MAX, |t| {
        t.as_micros().min(u128::from(u64::MAX - 1)) as u64
    });
    out.extend_from_slice(&timeout_us.to_le_bytes());
    match &req.query {
        OwnedQuery::Euclidean(q) | OwnedQuery::Manhattan(q) | OwnedQuery::Cosine(q) => {
            out.push(match req.query {
                OwnedQuery::Euclidean(_) => METRIC_EUCLIDEAN,
                OwnedQuery::Manhattan(_) => METRIC_MANHATTAN,
                _ => METRIC_COSINE,
            });
            out.extend_from_slice(&(q.len() as u32).to_le_bytes());
            for &x in q {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        OwnedQuery::Hamming(q) => {
            out.push(METRIC_HAMMING);
            out.extend_from_slice(&(q.len() as u32).to_le_bytes());
            for &w in q {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    out
}

impl OwnedQuery {
    fn payload_bytes(&self) -> usize {
        match self {
            OwnedQuery::Euclidean(q) | OwnedQuery::Manhattan(q) | OwnedQuery::Cosine(q) => {
                q.len() * 4
            }
            OwnedQuery::Hamming(q) => q.len() * 4,
        }
    }
}

/// Decodes one request frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let mut c = Cursor::new(payload);
    if c.u8()? != MSG_QUERY {
        return Err("unknown message type".into());
    }
    let tenant = TenantId(c.u32()?);
    let k = c.u32()? as usize;
    let timeout_us = c.u64()?;
    let metric = c.u8()?;
    let count = c.u32()? as usize;
    if count > MAX_FRAME / 4 {
        return Err(format!("query of {count} elements exceeds the frame cap"));
    }
    let query = match metric {
        METRIC_HAMMING => {
            let mut q = Vec::with_capacity(count);
            for _ in 0..count {
                q.push(c.u32()?);
            }
            OwnedQuery::Hamming(q)
        }
        METRIC_EUCLIDEAN | METRIC_MANHATTAN | METRIC_COSINE => {
            let mut q = Vec::with_capacity(count);
            for _ in 0..count {
                q.push(c.f32()?);
            }
            match metric {
                METRIC_EUCLIDEAN => OwnedQuery::Euclidean(q),
                METRIC_MANHATTAN => OwnedQuery::Manhattan(q),
                _ => OwnedQuery::Cosine(q),
            }
        }
        other => return Err(format!("unknown metric code {other}")),
    };
    c.done()?;
    let mut req = Request::new(query, k).with_tenant(tenant);
    if timeout_us != u64::MAX {
        req = req.with_timeout(Duration::from_micros(timeout_us));
    }
    Ok(req)
}

/// Encodes one serve outcome as a reply frame payload. Every
/// [`ServeError`] variant has a wire image.
pub fn encode_reply(reply: &Result<Response, ServeError>) -> Vec<u8> {
    let mut out = Vec::new();
    match reply {
        Ok(r) => {
            out.push(ST_OK);
            out.extend_from_slice(&r.coverage.to_le_bytes());
            out.extend_from_slice(&(r.batch_size as u32).to_le_bytes());
            out.extend_from_slice(&r.queue_seconds.to_le_bytes());
            out.extend_from_slice(&r.service_seconds.to_le_bytes());
            out.extend_from_slice(&r.account.device_seconds().to_le_bytes());
            out.extend_from_slice(&r.account.energy_mj().to_le_bytes());
            out.extend_from_slice(&(r.neighbors.len() as u32).to_le_bytes());
            for n in &r.neighbors {
                out.extend_from_slice(&n.id.to_le_bytes());
                out.extend_from_slice(&n.dist.to_le_bytes());
            }
        }
        Err(e) => put_error(&mut out, e),
    }
    out
}

/// Appends one [`ServeError`]'s status byte and fields — shared by the
/// query and write reply encodings so both surface identical typed
/// errors.
fn put_error(out: &mut Vec<u8>, e: &ServeError) {
    match e {
        ServeError::Overloaded { capacity } => {
            out.push(ST_OVERLOADED);
            out.extend_from_slice(&(*capacity as u64).to_le_bytes());
        }
        ServeError::RateLimited { tenant } => {
            out.push(ST_RATE_LIMITED);
            out.extend_from_slice(&tenant.0.to_le_bytes());
        }
        ServeError::DeadlineExceeded { missed_by } => {
            out.push(ST_DEADLINE);
            out.extend_from_slice(&(missed_by.as_micros() as u64).to_le_bytes());
        }
        ServeError::ShuttingDown => out.push(ST_SHUTTING_DOWN),
        ServeError::BadRequest(why) => {
            out.push(ST_BAD_REQUEST);
            put_string(out, why);
        }
        ServeError::Device(e) => {
            out.push(ST_DEVICE);
            put_string(out, &e.to_string());
        }
        ServeError::WorkerPanicked => out.push(ST_WORKER_PANICKED),
        ServeError::Degraded { coverage } => {
            out.push(ST_DEGRADED);
            out.extend_from_slice(&coverage.to_le_bytes());
        }
        ServeError::ShardUnavailable { shard } => {
            out.push(ST_SHARD_UNAVAILABLE);
            out.extend_from_slice(&(*shard as u32).to_le_bytes());
        }
    }
}

/// Decodes the error whose status byte was already consumed.
fn take_error(status: u8, c: &mut Cursor<'_>) -> Result<RemoteError, String> {
    Ok(match status {
        ST_OVERLOADED => RemoteError::Overloaded {
            capacity: c.u64()? as usize,
        },
        ST_RATE_LIMITED => RemoteError::RateLimited {
            tenant: TenantId(c.u32()?),
        },
        ST_DEADLINE => RemoteError::DeadlineExceeded {
            missed_by: Duration::from_micros(c.u64()?),
        },
        ST_SHUTTING_DOWN => RemoteError::ShuttingDown,
        ST_BAD_REQUEST => RemoteError::BadRequest(c.string()?),
        ST_DEVICE => RemoteError::Device(c.string()?),
        ST_WORKER_PANICKED => RemoteError::WorkerPanicked,
        ST_DEGRADED => RemoteError::Degraded { coverage: c.f64()? },
        ST_SHARD_UNAVAILABLE => RemoteError::ShardUnavailable {
            shard: c.u32()? as usize,
        },
        other => return Err(format!("unknown reply status {other}")),
    })
}

/// Decodes one reply frame payload into the client-side outcome.
pub fn decode_reply(payload: &[u8]) -> Result<Result<NetResponse, RemoteError>, String> {
    let mut c = Cursor::new(payload);
    let status = c.u8()?;
    let reply = match status {
        ST_OK => {
            let coverage = c.f64()?;
            let batch_size = c.u32()? as usize;
            let queue_seconds = c.f64()?;
            let service_seconds = c.f64()?;
            let device_seconds = c.f64()?;
            let energy_mj = c.f64()?;
            let n = c.u32()? as usize;
            if n > MAX_FRAME / 8 {
                return Err(format!("{n} neighbors exceeds the frame cap"));
            }
            let mut neighbors = Vec::with_capacity(n);
            for _ in 0..n {
                let id = c.u32()?;
                let dist = c.f32()?;
                neighbors.push(Neighbor { id, dist });
            }
            Ok(NetResponse {
                neighbors,
                coverage,
                batch_size,
                queue_seconds,
                service_seconds,
                device_seconds,
                energy_mj,
            })
        }
        other => Err(take_error(other, &mut c)?),
    };
    c.done()?;
    Ok(reply)
}

/// One decoded store-write request.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    /// Upsert `uid` with the given vector.
    Insert {
        /// Caller-chosen vector id.
        uid: u32,
        /// The raw vector.
        vector: Vec<f32>,
    },
    /// Tombstone `uid`.
    Delete {
        /// Caller-chosen vector id.
        uid: u32,
    },
}

/// Encodes one insert as a frame payload.
pub fn encode_insert(uid: u32, vector: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + vector.len() * 4);
    out.push(MSG_INSERT);
    out.extend_from_slice(&uid.to_le_bytes());
    out.extend_from_slice(&(vector.len() as u32).to_le_bytes());
    for &x in vector {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Encodes one delete as a frame payload.
pub fn encode_delete(uid: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(5);
    out.push(MSG_DELETE);
    out.extend_from_slice(&uid.to_le_bytes());
    out
}

/// Decodes one write frame payload (insert or delete).
pub fn decode_write(payload: &[u8]) -> Result<WriteOp, String> {
    let mut c = Cursor::new(payload);
    let op = match c.u8()? {
        MSG_INSERT => {
            let uid = c.u32()?;
            let count = c.u32()? as usize;
            if count > MAX_FRAME / 4 {
                return Err(format!("vector of {count} elements exceeds the frame cap"));
            }
            let mut vector = Vec::with_capacity(count);
            for _ in 0..count {
                vector.push(c.f32()?);
            }
            WriteOp::Insert { uid, vector }
        }
        MSG_DELETE => WriteOp::Delete { uid: c.u32()? },
        _ => return Err("unknown message type".into()),
    };
    c.done()?;
    Ok(op)
}

/// Encodes one store-write outcome as a reply frame payload.
pub fn encode_write_reply(reply: &Result<WriteAck, ServeError>) -> Vec<u8> {
    let mut out = Vec::with_capacity(18);
    match reply {
        Ok(ack) => {
            out.push(ST_WRITE_OK);
            out.extend_from_slice(&ack.seq.to_le_bytes());
            out.push(u8::from(ack.sealed));
            out.extend_from_slice(&ack.wal_len.to_le_bytes());
        }
        Err(e) => put_error(&mut out, e),
    }
    out
}

/// Decodes one store-write reply frame payload. Accepts both the plain
/// (`9`) and sharded (`10`) success statuses — a client written for the
/// single-module protocol keeps working against a sharded server, the
/// routing fields are simply dropped.
pub fn decode_write_reply(payload: &[u8]) -> Result<Result<WriteAck, RemoteError>, String> {
    decode_routed_write_reply(payload).map(|r| r.map(|ack| ack.ack()))
}

/// Encodes one sharded-store write outcome: status `10` carrying the
/// full [`ShardWriteAck`] (`seq u64`, `sealed u8`, `wal_len u64`,
/// `shard u32`, `replicas_acked u32`, `failed_over u8`).
pub fn encode_sharded_write_reply(reply: &Result<ShardWriteAck, ServeError>) -> Vec<u8> {
    let mut out = Vec::with_capacity(27);
    match reply {
        Ok(ack) => {
            out.push(ST_WRITE_OK_SHARDED);
            out.extend_from_slice(&ack.seq.to_le_bytes());
            out.push(u8::from(ack.sealed));
            out.extend_from_slice(&ack.wal_len.to_le_bytes());
            out.extend_from_slice(&(ack.shard as u32).to_le_bytes());
            out.extend_from_slice(&(ack.replicas_acked as u32).to_le_bytes());
            out.push(u8::from(ack.failed_over));
        }
        Err(e) => put_error(&mut out, e),
    }
    out
}

fn take_bool(c: &mut Cursor<'_>, what: &str) -> Result<bool, String> {
    match c.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(format!("non-boolean {what} byte {other}")),
    }
}

/// Decodes one write reply into the routed ack, whichever success
/// status the server used (a plain `9` decodes as the trivial routing:
/// shard 0, one replica).
pub fn decode_routed_write_reply(
    payload: &[u8],
) -> Result<Result<ShardWriteAck, RemoteError>, String> {
    let mut c = Cursor::new(payload);
    let status = c.u8()?;
    let reply = match status {
        ST_WRITE_OK => {
            let seq = c.u64()?;
            let sealed = take_bool(&mut c, "sealed")?;
            let wal_len = c.u64()?;
            Ok(ShardWriteAck {
                shard: 0,
                seq,
                sealed,
                wal_len,
                replicas_acked: 1,
                failed_over: false,
            })
        }
        ST_WRITE_OK_SHARDED => {
            let seq = c.u64()?;
            let sealed = take_bool(&mut c, "sealed")?;
            let wal_len = c.u64()?;
            let shard = c.u32()? as usize;
            let replicas_acked = c.u32()? as usize;
            let failed_over = take_bool(&mut c, "failed_over")?;
            Ok(ShardWriteAck {
                shard,
                seq,
                sealed,
                wal_len,
                replicas_acked,
                failed_over,
            })
        }
        other => Err(take_error(other, &mut c)?),
    };
    c.done()?;
    Ok(reply)
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads exactly `buf.len()` bytes, tolerating read-timeout wakeups.
/// Returns `false` if the connection closed cleanly *before the first
/// byte*; mid-frame EOF is an error. `None` as `stop` reads without a
/// shutdown poll (client side).
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: Option<&AtomicBool>,
) -> io::Result<bool> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // A drain-aware poll point: bail only while no frame is
                // in progress, so an in-flight request still completes.
                if got == 0 {
                    if let Some(stop) = stop {
                        if stop.load(Ordering::Relaxed) {
                            return Ok(false);
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn read_frame(stream: &mut TcpStream, stop: Option<&AtomicBool>) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    if !read_exact_polling(stream, &mut header, stop)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    // Header already arrived, so the peer is mid-send: finish the frame
    // regardless of the shutdown flag (graceful drain).
    if !read_exact_polling(stream, &mut payload, None)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed between header and payload",
        ));
    }
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// A [`Server`] exposed over the framed TCP protocol. Bind with
/// [`NetServer::bind`]; stop with [`NetServer::shutdown`] (or drop).
pub struct NetServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    server: Option<Server>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port —
    /// [`NetServer::local_addr`] reports the bound address) and starts
    /// accepting connections into `server`.
    pub fn bind(addr: impl ToSocketAddrs, server: Server) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = server.handle();
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ssam-net-accept".into())
                .spawn(move || accept_loop(&listener, &handle, &stop))?
        };
        Ok(NetServer {
            local,
            stop,
            accept: Some(accept),
            server: Some(server),
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// A handle for in-process submission alongside the network edge.
    pub fn handle(&self) -> ServerHandle {
        self.server.as_ref().expect("server live").handle()
    }

    /// Snapshot of the inner server's lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.server.as_ref().expect("server live").stats()
    }

    /// Graceful shutdown: stops accepting, drains in-flight requests on
    /// every connection (their replies are flushed before the sockets
    /// close), then drains and joins the inner [`Server`], returning
    /// its final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_net();
        self.server.take().expect("server live").shutdown()
    }

    fn stop_net(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        if let Some(accept) = self.accept.take() {
            if let Ok(conns) = accept.join() {
                for c in conns {
                    let _ = c.join();
                }
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_net();
        // Dropping the inner Server performs its own drain + join.
        self.server.take();
    }
}

fn accept_loop(
    listener: &TcpListener,
    handle: &ServerHandle,
    stop: &Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let handle = handle.clone();
        let stop = Arc::clone(stop);
        if let Ok(join) = std::thread::Builder::new()
            .name("ssam-net-conn".into())
            .spawn(move || connection_loop(stream, &handle, &stop))
        {
            conns.push(join);
        }
        // Opportunistically reap finished connections so a long-lived
        // listener does not accumulate unjoined threads.
        conns.retain(|c| !c.is_finished());
    }
    conns
}

fn connection_loop(mut stream: TcpStream, handle: &ServerHandle, stop: &AtomicBool) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame(&mut stream, Some(stop)) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // clean close, drain, or transport error
        };
        let frame = match payload.first() {
            // A sharded backend answers writes with the routed reply
            // frame (status 10); the plain store keeps the original
            // status-9 frame so its wire format is unchanged.
            Some(&MSG_INSERT) | Some(&MSG_DELETE) if handle.backend_is_sharded() => {
                let reply = match decode_write(&payload) {
                    Ok(WriteOp::Insert { uid, vector }) => handle.insert_routed(uid, &vector),
                    Ok(WriteOp::Delete { uid }) => handle.delete_routed(uid),
                    Err(_) => Err(ServeError::BadRequest("malformed write frame")),
                };
                encode_sharded_write_reply(&reply)
            }
            Some(&MSG_INSERT) | Some(&MSG_DELETE) => {
                let reply = match decode_write(&payload) {
                    Ok(WriteOp::Insert { uid, vector }) => handle.insert(uid, &vector),
                    Ok(WriteOp::Delete { uid }) => handle.delete(uid),
                    Err(_) => Err(ServeError::BadRequest("malformed write frame")),
                };
                encode_write_reply(&reply)
            }
            _ => {
                let reply = match decode_request(&payload) {
                    Ok(req) => handle.query(req),
                    Err(_) => Err(ServeError::BadRequest("malformed request frame")),
                };
                encode_reply(&reply)
            }
        };
        if write_frame(&mut stream, &frame).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Blocking client for the framed TCP protocol: one request frame out,
/// one reply frame back, per call. Cheap to create; open several for
/// concurrency.
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects to a [`NetServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient { stream })
    }

    /// Sends one request and blocks for its reply. Serving errors come
    /// back as [`ClientError::Remote`] with the same typed variants a
    /// local caller would see.
    pub fn query(&mut self, req: &Request) -> Result<NetResponse, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream, None)?
            .ok_or_else(|| ClientError::Protocol("server closed before replying".into()))?;
        match decode_reply(&payload) {
            Ok(Ok(resp)) => Ok(resp),
            Ok(Err(remote)) => Err(ClientError::Remote(remote)),
            Err(why) => Err(ClientError::Protocol(why)),
        }
    }

    /// Inserts (or updates) `uid` in the server's mutable store. Against
    /// an immutable backend this comes back as a typed
    /// [`RemoteError::BadRequest`].
    pub fn insert(&mut self, uid: u32, vector: &[f32]) -> Result<WriteAck, ClientError> {
        self.write_op(&encode_insert(uid, vector))
    }

    /// Deletes `uid` from the server's mutable store.
    pub fn delete(&mut self, uid: u32) -> Result<WriteAck, ClientError> {
        self.write_op(&encode_delete(uid))
    }

    fn write_op(&mut self, frame: &[u8]) -> Result<WriteAck, ClientError> {
        self.write_op_routed(frame).map(|ack| ack.ack())
    }

    /// Inserts (or updates) `uid`, returning the full routed
    /// [`ShardWriteAck`] when the server shards its store (a plain
    /// store backend reports the trivial routing).
    pub fn insert_routed(
        &mut self,
        uid: u32,
        vector: &[f32],
    ) -> Result<ShardWriteAck, ClientError> {
        self.write_op_routed(&encode_insert(uid, vector))
    }

    /// Deletes `uid`, returning the full routed [`ShardWriteAck`].
    pub fn delete_routed(&mut self, uid: u32) -> Result<ShardWriteAck, ClientError> {
        self.write_op_routed(&encode_delete(uid))
    }

    fn write_op_routed(&mut self, frame: &[u8]) -> Result<ShardWriteAck, ClientError> {
        write_frame(&mut self.stream, frame)?;
        let payload = read_frame(&mut self.stream, None)?
            .ok_or_else(|| ClientError::Protocol("server closed before replying".into()))?;
        match decode_routed_write_reply(&payload) {
            Ok(Ok(ack)) => Ok(ack),
            Ok(Err(remote)) => Err(ClientError::Remote(remote)),
            Err(why) => Err(ClientError::Protocol(why)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_every_metric() {
        let cases = [
            OwnedQuery::Euclidean(vec![1.5, -2.25, 0.0]),
            OwnedQuery::Manhattan(vec![0.125]),
            OwnedQuery::Cosine(vec![3.0, 4.0]),
            OwnedQuery::Hamming(vec![0xDEAD_BEEF, 0x0123_4567]),
        ];
        for query in cases {
            let req = Request::new(query, 9)
                .with_tenant(TenantId(42))
                .with_timeout(Duration::from_micros(1_234_567));
            let decoded = decode_request(&encode_request(&req)).expect("decodes");
            assert_eq!(decoded, req);
        }
        // No timeout must survive as no timeout (not a huge one).
        let req = Request::new(OwnedQuery::Euclidean(vec![1.0]), 1);
        let decoded = decode_request(&encode_request(&req)).expect("decodes");
        assert_eq!(decoded.timeout, None);
    }

    #[test]
    fn reply_round_trips_every_error_variant() {
        use ssam_core::sim::pu::SimError;
        let cases: Vec<(ServeError, RemoteError)> = vec![
            (
                ServeError::Overloaded { capacity: 7 },
                RemoteError::Overloaded { capacity: 7 },
            ),
            (
                ServeError::RateLimited {
                    tenant: TenantId(3),
                },
                RemoteError::RateLimited {
                    tenant: TenantId(3),
                },
            ),
            (
                ServeError::DeadlineExceeded {
                    missed_by: Duration::from_micros(250),
                },
                RemoteError::DeadlineExceeded {
                    missed_by: Duration::from_micros(250),
                },
            ),
            (ServeError::ShuttingDown, RemoteError::ShuttingDown),
            (
                ServeError::BadRequest("k must be positive"),
                RemoteError::BadRequest("k must be positive".into()),
            ),
            (
                ServeError::Device(SimError::InstructionLimit { limit: 99 }),
                RemoteError::Device(SimError::InstructionLimit { limit: 99 }.to_string()),
            ),
            (ServeError::WorkerPanicked, RemoteError::WorkerPanicked),
            (
                ServeError::Degraded { coverage: 0.75 },
                RemoteError::Degraded { coverage: 0.75 },
            ),
            (
                ServeError::ShardUnavailable { shard: 3 },
                RemoteError::ShardUnavailable { shard: 3 },
            ),
        ];
        for (serve, expect) in cases {
            let frame = encode_reply(&Err(serve.clone()));
            let decoded = decode_reply(&frame).expect("decodes");
            assert_eq!(decoded, Err(expect), "variant {serve:?}");
        }
    }

    #[test]
    fn write_frames_round_trip() {
        let ins = decode_write(&encode_insert(17, &[0.5, -1.5])).expect("decodes");
        assert_eq!(
            ins,
            WriteOp::Insert {
                uid: 17,
                vector: vec![0.5, -1.5],
            }
        );
        let del = decode_write(&encode_delete(99)).expect("decodes");
        assert_eq!(del, WriteOp::Delete { uid: 99 });
    }

    #[test]
    fn write_replies_round_trip_ack_and_errors() {
        let ack = WriteAck {
            seq: 41,
            sealed: true,
            wal_len: 12_345,
        };
        assert_eq!(
            decode_write_reply(&encode_write_reply(&Ok(ack))).expect("decodes"),
            Ok(ack)
        );
        let err = ServeError::BadRequest("server has no mutable store backend");
        assert_eq!(
            decode_write_reply(&encode_write_reply(&Err(err))).expect("decodes"),
            Err(RemoteError::BadRequest(
                "server has no mutable store backend".into()
            ))
        );
        // A write reply with a mangled sealed byte is a protocol error.
        let mut frame = encode_write_reply(&Ok(ack));
        frame[9] = 7;
        assert!(decode_write_reply(&frame).is_err());
    }

    #[test]
    fn sharded_write_replies_round_trip_and_downgrade() {
        let ack = ShardWriteAck {
            shard: 5,
            seq: 77,
            sealed: false,
            wal_len: 4_096,
            replicas_acked: 2,
            failed_over: true,
        };
        let frame = encode_sharded_write_reply(&Ok(ack));
        // The routed decode round-trips every field.
        assert_eq!(decode_routed_write_reply(&frame).expect("decodes"), Ok(ack));
        // A single-module client decodes the same frame, dropping the
        // routing fields.
        assert_eq!(decode_write_reply(&frame).expect("decodes"), Ok(ack.ack()));
        // And a routed client decodes a plain status-9 frame as the
        // trivial routing.
        let plain = encode_write_reply(&Ok(ack.ack()));
        let routed = decode_routed_write_reply(&plain)
            .expect("decodes")
            .expect("ok");
        assert_eq!(routed.shard, 0);
        assert_eq!(routed.replicas_acked, 1);
        assert!(!routed.failed_over);
        assert_eq!(routed.ack(), ack.ack());
        // Typed refusal crosses the wire.
        let refused = encode_sharded_write_reply(&Err(ServeError::ShardUnavailable { shard: 5 }));
        assert_eq!(
            decode_routed_write_reply(&refused).expect("decodes"),
            Err(RemoteError::ShardUnavailable { shard: 5 })
        );
    }

    #[test]
    fn malformed_frames_are_typed_errors_not_panics() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0xFF]).is_err());
        assert!(decode_reply(&[250]).is_err());
        // Truncated query payload.
        let mut frame = encode_request(&Request::new(OwnedQuery::Euclidean(vec![1.0, 2.0]), 3));
        frame.truncate(frame.len() - 2);
        assert!(decode_request(&frame).is_err());
        // Trailing garbage.
        let mut frame = encode_request(&Request::new(OwnedQuery::Euclidean(vec![1.0]), 3));
        frame.push(0);
        assert!(decode_request(&frame).is_err());
    }
}
