//! Per-tenant quality of service: identities, admission policies,
//! deterministic token buckets, and the weighted-fair service state the
//! batcher's [`crate::batcher::plan`] consults when several tenants have
//! ripe work.
//!
//! The model is deliberately small and fully deterministic:
//!
//! * **Token buckets** gate *admission*: a tenant with `rate = Some(r)`
//!   may sustain `r` requests per second with bursts up to `burst`;
//!   beyond that, submissions bounce with
//!   [`crate::ServeError::RateLimited`] instead of occupying queue
//!   capacity another tenant paid for. Refill is the pure function
//!   [`refill`] of elapsed time — no background thread, no jitter.
//! * **Priority tiers** gate *dequeue order*: a ripe batch of a
//!   lower-numbered tier is always selected before any ripe batch of a
//!   higher-numbered one (strict priority between tiers).
//! * **Weights** arbitrate *within* a tier by weighted fair queueing:
//!   each flushed batch charges its tenant `requests / weight` units of
//!   virtual service ([`FairState::charge`]), and the ripe group whose
//!   tenant has the least accumulated service is flushed first. Over any
//!   contended interval every backlogged tenant therefore receives
//!   device batches in proportion to its weight, within one `max_batch`
//!   of slack — the bound the proptests in `tests/qos.rs` pin.
//!
//! Fairness invariants (tested):
//!
//! 1. **No starvation**: a ripe group is flushed after at most
//!    `T − 1` other flushes, where `T` is the number of backlogged
//!    tenants in its tier and no lower tier is backlogged — its service
//!    deficit only grows relative to tenants that keep being served.
//! 2. **Bounded unfairness**: for continuously backlogged tenants `a`,
//!    `b` in one tier, `|service(a) − service(b)|` never exceeds
//!    `max_batch / min(weight_a, weight_b)` virtual-service units.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Identifies one tenant of the serving runtime. Requests carry one
/// ([`crate::Request::tenant`]); it becomes part of the batcher's
/// kernel-compatibility key, so a device batch never mixes tenants and
/// per-batch accounting (fault storms, fairness charges) is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant requests belong to when none is set — the
    /// single-tenant configuration every pre-QoS caller gets.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Admission and scheduling policy for one tenant.
#[derive(Debug, Clone)]
pub struct TenantQos {
    /// Sustained admission rate, requests per second. `None` disables
    /// rate limiting for this tenant.
    pub rate: Option<f64>,
    /// Token-bucket depth: how many requests above the sustained rate a
    /// burst may admit (clamped to ≥ 1 so a full bucket always admits).
    pub burst: f64,
    /// Weighted-fair share within this tenant's tier (> 0). A tenant
    /// with weight 2 receives twice the batches of a weight-1 tenant
    /// when both are backlogged.
    pub weight: f64,
    /// Priority tier; 0 is served before 1, 1 before 2, and so on.
    /// Strict priority: a ripe lower-tier batch always wins.
    pub tier: u8,
    /// Per-tenant coverage SLO overriding
    /// [`crate::ServeFaults::min_coverage`] when set: responses below it
    /// are retried then surfaced as [`crate::ServeError::Degraded`].
    pub min_coverage: Option<f64>,
    /// Sustained *write* admission rate (inserts + deletes per second)
    /// for mutable-store backends, gated by its own token bucket with
    /// the same `burst` depth. `None` (the default) disables write rate
    /// limiting — QoS stays invisible to write-heavy single-tenant use.
    pub write_rate: Option<f64>,
    /// Per-tenant deadline budget applied to requests that carry none
    /// (wins over [`crate::ServeConfig::default_timeout`]; the
    /// request's own timeout wins over both).
    pub default_timeout: Option<Duration>,
}

impl Default for TenantQos {
    fn default() -> Self {
        Self {
            rate: None,
            burst: 1.0,
            weight: 1.0,
            tier: 1,
            min_coverage: None,
            write_rate: None,
            default_timeout: None,
        }
    }
}

/// The per-tenant QoS table, with a default policy for tenants it does
/// not name. The default [`QosConfig`] applies the default policy to
/// everyone — no rate limits, one tier, equal weights — which makes the
/// whole QoS layer invisible to single-tenant callers.
#[derive(Debug, Clone, Default)]
pub struct QosConfig {
    /// Explicit per-tenant policies.
    pub tenants: BTreeMap<TenantId, TenantQos>,
    /// Policy for tenants absent from `tenants`.
    pub default: TenantQos,
}

impl QosConfig {
    /// The policy governing `tenant`.
    pub fn get(&self, tenant: TenantId) -> &TenantQos {
        self.tenants.get(&tenant).unwrap_or(&self.default)
    }

    /// Builder convenience: returns `self` with `tenant` governed by
    /// `qos`.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId, qos: TenantQos) -> Self {
        self.tenants.insert(tenant, qos);
        self
    }
}

/// Pure token-bucket refill: the token count after `dt` seconds of
/// refill at `rate` tokens/second into a bucket of depth `burst`
/// (clamped to ≥ 1), starting from `tokens`. Deterministic — the bucket
/// state is a function of admission history and elapsed time only.
pub fn refill(tokens: f64, rate: f64, burst: f64, dt: f64) -> f64 {
    (tokens + rate * dt.max(0.0)).min(burst.max(1.0))
}

/// One tenant's token bucket. Created full, so a tenant's first `burst`
/// requests always admit.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket as of `now`.
    pub fn new(qos: &TenantQos, now: Instant) -> Self {
        Self {
            tokens: qos.burst.max(1.0),
            last: now,
        }
    }

    /// Refills for the time elapsed since the previous call, then spends
    /// one token if available. `true` admits the request. Tenants with
    /// `rate: None` always admit (and spend nothing).
    pub fn try_admit(&mut self, qos: &TenantQos, now: Instant) -> bool {
        let Some(rate) = qos.rate else { return true };
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = refill(self.tokens, rate, qos.burst, dt);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently in the bucket (as of the last refill).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Renormalization threshold for [`FairState`]: when every tracked
/// tenant's service exceeds this, the minimum is subtracted from all of
/// them. Only service *differences* drive selection, so this is
/// invisible to scheduling; it keeps counters far from the f64 range
/// where increments would be absorbed.
const FAIR_RENORM: f64 = 1e12;

/// Accumulated weighted-fair virtual service per tenant. The batcher
/// charges `requests / weight` per flushed batch and prefers the ripe
/// tenant with the least service; a tenant it has never charged has
/// service 0 (new tenants are served promptly).
#[derive(Debug, Clone, Default)]
pub struct FairState {
    service: BTreeMap<TenantId, f64>,
}

impl FairState {
    /// Virtual service accumulated by `tenant`.
    pub fn service(&self, tenant: TenantId) -> f64 {
        self.service.get(&tenant).copied().unwrap_or(0.0)
    }

    /// Charges `tenant` for a flushed batch of `requests` requests at
    /// fair-share `weight`.
    pub fn charge(&mut self, tenant: TenantId, requests: usize, weight: f64) {
        *self.service.entry(tenant).or_insert(0.0) +=
            requests as f64 / weight.max(f64::MIN_POSITIVE);
        let min = self.service.values().copied().fold(f64::INFINITY, f64::min);
        if min > FAIR_RENORM {
            for v in self.service.values_mut() {
                *v -= min;
            }
        }
    }
}

/// Jain's fairness index over per-tenant allocations: `(Σx)² / (n·Σx²)`,
/// 1.0 when every tenant gets the same normalized allocation, `1/n` when
/// one tenant gets everything. Empty or all-zero input is vacuously
/// fair.
pub fn jain_index(allocations: &[f64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_tenant_always_admits() {
        let qos = TenantQos::default();
        let now = Instant::now();
        let mut bucket = TokenBucket::new(&qos, now);
        for _ in 0..10_000 {
            assert!(bucket.try_admit(&qos, now));
        }
    }

    #[test]
    fn bucket_admits_burst_then_throttles() {
        let qos = TenantQos {
            rate: Some(10.0),
            burst: 3.0,
            ..TenantQos::default()
        };
        let now = Instant::now();
        let mut bucket = TokenBucket::new(&qos, now);
        // Full bucket: exactly `burst` back-to-back admissions.
        assert!(bucket.try_admit(&qos, now));
        assert!(bucket.try_admit(&qos, now));
        assert!(bucket.try_admit(&qos, now));
        assert!(!bucket.try_admit(&qos, now));
        // 100 ms at 10 tokens/s refills one token — exactly one more.
        let later = now + Duration::from_millis(100);
        assert!(bucket.try_admit(&qos, later));
        assert!(!bucket.try_admit(&qos, later));
    }

    #[test]
    fn refill_clamps_to_burst_and_never_goes_negative() {
        assert_eq!(refill(0.0, 100.0, 5.0, 3600.0), 5.0);
        assert_eq!(refill(2.0, 10.0, 5.0, 0.0), 2.0);
        // Negative dt (clock skew) refills nothing rather than draining.
        assert_eq!(refill(2.0, 10.0, 5.0, -1.0), 2.0);
        // Degenerate burst is clamped so a full bucket can still admit.
        assert_eq!(refill(0.0, 10.0, 0.0, 100.0), 1.0);
    }

    #[test]
    fn fair_state_charges_by_inverse_weight() {
        let mut fair = FairState::default();
        fair.charge(TenantId(1), 8, 1.0);
        fair.charge(TenantId(2), 8, 4.0);
        assert_eq!(fair.service(TenantId(1)), 8.0);
        assert_eq!(fair.service(TenantId(2)), 2.0);
        assert_eq!(fair.service(TenantId(3)), 0.0);
    }

    #[test]
    fn fair_state_renormalizes_preserving_differences() {
        let mut fair = FairState::default();
        fair.charge(TenantId(1), 1, 1.0);
        fair.charge(TenantId(2), 5, 1.0);
        // Push both far past the threshold; the second charge trips the
        // renormalization (min > FAIR_RENORM) without erasing the gap.
        fair.charge(TenantId(1), 1, 1e-15);
        fair.charge(TenantId(2), 1, 1e-15);
        let diff = fair.service(TenantId(2)) - fair.service(TenantId(1));
        assert!((diff - 4.0).abs() < 1.0, "diff = {diff}");
        assert!(fair.service(TenantId(1)) < FAIR_RENORM * 2.0);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[3.0, 3.0, 3.0]), 1.0);
        let skewed = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "{skewed}");
        let mild = jain_index(&[1.0, 2.0]);
        assert!(mild > 0.25 && mild < 1.0);
    }

    #[test]
    fn qos_config_falls_back_to_default() {
        let cfg = QosConfig::default().with_tenant(
            TenantId(7),
            TenantQos {
                tier: 0,
                ..TenantQos::default()
            },
        );
        assert_eq!(cfg.get(TenantId(7)).tier, 0);
        assert_eq!(cfg.get(TenantId(8)).tier, 1);
    }
}
