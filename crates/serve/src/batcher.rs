//! The dynamic-batching state machine, factored as a pure decision
//! function over an immutable queue snapshot.
//!
//! Worker threads hold the queue lock, build a [`PendingMeta`] snapshot,
//! and ask [`plan`] what to do. Keeping the decision logic free of
//! threads, clocks, and channels means every trigger — max-size flush,
//! linger-timeout flush, deadline expiry, shutdown drain — is
//! deterministically unit-testable with synthetic `Instant`s; the
//! threaded runtime in [`crate`] only *executes* decisions, it never
//! makes them.
//!
//! ## State machine
//!
//! For the oldest live (non-expired) request's [`BatchKey`]:
//!
//! ```text
//!            ┌──────────── deadline ≤ now ───────────► Expired (reject)
//!            │
//! Queued ────┤  compatible count ≥ max_batch ────────► Flush (full)
//!            │  oldest age ≥ max_linger ─────────────► Flush (linger)
//!            │  draining (shutdown) ─────────────────► Flush (drain)
//!            │
//!            └─ otherwise ───────────────────────────► Wait(wake − now)
//! ```
//!
//! where `wake = min(oldest arrival + max_linger, soonest queued
//! deadline)` — a worker never sleeps past the moment its decision could
//! change. Deadlines are a *rejection* bound, not a flush accelerator:
//! a request whose deadline passes while queued is completed with
//! `DeadlineExceeded` before staging (it never stalls or poisons the
//! batch it would have joined). Configure `max_linger` well below the
//! deadline budgets you hand out.

use std::time::{Duration, Instant};

use ssam_core::device::DeviceMetric;

/// The kernel-compatibility key queries are coalesced under: requests
/// batch together only when the device would stage them through the same
/// kernel, which is determined by the metric, the requested `k` (the
/// software-queue kernels specialize on `k`), and the queue
/// implementation the device is configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Kernel family.
    pub metric: DeviceMetric,
    /// Neighbors requested.
    pub k: usize,
    /// Whether the serving device uses the hardware priority queue
    /// (constant per server, carried for record-keeping).
    pub hw_queue: bool,
}

/// Scheduling-relevant metadata of one queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingMeta {
    /// Kernel-compatibility key.
    pub key: BatchKey,
    /// When the request was admitted.
    pub enqueued: Instant,
    /// Absolute deadline, if the request carries one.
    pub deadline: Option<Instant>,
}

/// What a worker should do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Execute these queue indices now: arrival order, one batch key,
    /// at most `max_batch` of them.
    Flush(Vec<usize>),
    /// Nothing is ripe yet; wait at most this long for arrivals or for
    /// the oldest batch's linger/deadline clock to run out.
    Wait(Duration),
    /// The queue holds no live requests.
    Idle,
}

/// A full scheduling decision over one queue snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Indices whose deadline has passed: complete them with
    /// `DeadlineExceeded` *before* acting — they must never be staged.
    /// When non-empty, re-plan after removal (the action's indices refer
    /// to the same snapshot and would be stale).
    pub expired: Vec<usize>,
    /// What to do with the live requests.
    pub action: Action,
}

/// Decides the next step for a worker looking at queue snapshot
/// `pending` (arrival order) at time `now`. `drain` is the shutdown
/// flag: a draining server flushes immediately rather than lingering.
pub fn plan(
    pending: &[PendingMeta],
    now: Instant,
    max_batch: usize,
    max_linger: Duration,
    drain: bool,
) -> Plan {
    let max_batch = max_batch.max(1);
    let mut expired = Vec::new();
    let mut live: Vec<usize> = Vec::with_capacity(pending.len());
    for (i, p) in pending.iter().enumerate() {
        if p.deadline.is_some_and(|d| d <= now) {
            expired.push(i);
        } else {
            live.push(i);
        }
    }
    let Some(&first) = live.first() else {
        return Plan {
            expired,
            action: Action::Idle,
        };
    };

    // The oldest live request anchors the batch; everything sharing its
    // key (in arrival order, up to the size cap) rides along.
    let key = pending[first].key;
    let members: Vec<usize> = live
        .iter()
        .copied()
        .filter(|&i| pending[i].key == key)
        .take(max_batch)
        .collect();

    let linger_deadline = pending[first].enqueued + max_linger;
    if members.len() >= max_batch || drain || now >= linger_deadline {
        return Plan {
            expired,
            action: Action::Flush(members),
        };
    }

    // Sleep only until the decision could change: the linger clock of
    // the anchored batch, or the soonest queued deadline (so expiring
    // requests are rejected promptly instead of waiting out a flush).
    let mut wake = linger_deadline;
    for &i in &live {
        if let Some(d) = pending[i].deadline {
            wake = wake.min(d);
        }
    }
    Plan {
        expired,
        action: Action::Wait(wake.saturating_duration_since(now)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: usize) -> BatchKey {
        BatchKey {
            metric: DeviceMetric::Euclidean,
            k,
            hw_queue: true,
        }
    }

    fn meta(key_: BatchKey, enqueued: Instant, deadline: Option<Instant>) -> PendingMeta {
        PendingMeta {
            key: key_,
            enqueued,
            deadline,
        }
    }

    #[test]
    fn empty_queue_is_idle() {
        let now = Instant::now();
        let p = plan(&[], now, 8, Duration::from_millis(1), false);
        assert_eq!(p.expired, Vec::<usize>::new());
        assert_eq!(p.action, Action::Idle);
    }

    #[test]
    fn max_size_triggers_immediate_flush() {
        let t0 = Instant::now();
        let pending: Vec<PendingMeta> = (0..4).map(|_| meta(key(5), t0, None)).collect();
        // Linger far in the future: size alone must trigger.
        let p = plan(&pending, t0, 4, Duration::from_secs(3600), false);
        assert_eq!(p.action, Action::Flush(vec![0, 1, 2, 3]));
    }

    #[test]
    fn oversize_queue_flushes_only_max_batch() {
        let t0 = Instant::now();
        let pending: Vec<PendingMeta> = (0..7).map(|_| meta(key(5), t0, None)).collect();
        let p = plan(&pending, t0, 4, Duration::from_secs(3600), false);
        assert_eq!(p.action, Action::Flush(vec![0, 1, 2, 3]));
    }

    #[test]
    fn linger_expiry_flushes_partial_batch() {
        let t0 = Instant::now();
        let linger = Duration::from_millis(2);
        let pending = vec![meta(key(5), t0, None), meta(key(5), t0, None)];
        // Before the linger bound: wait exactly the remainder.
        let p = plan(&pending, t0 + Duration::from_millis(1), 8, linger, false);
        assert_eq!(p.action, Action::Wait(Duration::from_millis(1)));
        // At the bound: flush whatever is there.
        let p = plan(&pending, t0 + linger, 8, linger, false);
        assert_eq!(p.action, Action::Flush(vec![0, 1]));
    }

    #[test]
    fn drain_flushes_without_lingering() {
        let t0 = Instant::now();
        let pending = vec![meta(key(5), t0, None)];
        let p = plan(&pending, t0, 64, Duration::from_secs(3600), true);
        assert_eq!(p.action, Action::Flush(vec![0]));
    }

    #[test]
    fn batches_group_by_key_in_arrival_order() {
        let t0 = Instant::now();
        let a = key(5);
        let b = key(9);
        let pending = vec![
            meta(a, t0, None),
            meta(b, t0, None),
            meta(a, t0, None),
            meta(a, t0, None),
        ];
        // The oldest request anchors key `a`; the key-`b` request is
        // skipped (left for the next round), order preserved.
        let p = plan(&pending, t0, 3, Duration::ZERO, false);
        assert_eq!(p.action, Action::Flush(vec![0, 2, 3]));
    }

    #[test]
    fn expired_requests_are_culled_not_staged() {
        let t0 = Instant::now();
        let now = t0 + Duration::from_millis(5);
        let pending = vec![
            meta(key(5), t0, Some(t0 + Duration::from_millis(1))), // expired
            meta(key(5), t0, None),
            meta(key(5), t0, Some(now)), // deadline == now counts as expired
        ];
        let p = plan(&pending, now, 8, Duration::ZERO, false);
        assert_eq!(p.expired, vec![0, 2]);
        // Linger already elapsed for the survivor.
        assert_eq!(p.action, Action::Flush(vec![1]));
    }

    #[test]
    fn expiry_of_every_request_leaves_idle() {
        let t0 = Instant::now();
        let now = t0 + Duration::from_secs(1);
        let pending = vec![
            meta(key(5), t0, Some(t0 + Duration::from_millis(1))),
            meta(key(9), t0, Some(t0 + Duration::from_millis(2))),
        ];
        let p = plan(&pending, now, 8, Duration::from_secs(3600), false);
        assert_eq!(p.expired, vec![0, 1]);
        assert_eq!(p.action, Action::Idle);
    }

    #[test]
    fn wait_is_bounded_by_soonest_deadline() {
        let t0 = Instant::now();
        let linger = Duration::from_secs(10);
        // A lone request whose deadline lands long before the linger
        // bound: the worker must wake at the deadline to reject it, not
        // sleep out the full linger (the "stalled batch" failure mode).
        let pending = vec![meta(key(5), t0, Some(t0 + Duration::from_millis(3)))];
        let p = plan(&pending, t0, 8, linger, false);
        assert_eq!(p.action, Action::Wait(Duration::from_millis(3)));
        // Deadlines of *other* keys bound the wait too: they are culled
        // promptly even though they are not in the anchored batch.
        let pending = vec![
            meta(key(5), t0, None),
            meta(key(9), t0, Some(t0 + Duration::from_millis(2))),
        ];
        let p = plan(&pending, t0, 8, linger, false);
        assert_eq!(p.action, Action::Wait(Duration::from_millis(2)));
    }

    #[test]
    fn zero_max_batch_is_clamped_to_one() {
        let t0 = Instant::now();
        let pending = vec![meta(key(5), t0, None)];
        let p = plan(&pending, t0, 0, Duration::from_secs(3600), false);
        assert_eq!(p.action, Action::Flush(vec![0]));
    }
}
