//! The dynamic-batching state machine, factored as a pure decision
//! function over an immutable queue snapshot.
//!
//! Worker threads hold the queue lock, build a [`PendingMeta`] snapshot,
//! and ask [`plan`] what to do. Keeping the decision logic free of
//! threads, clocks, and channels means every trigger — max-size flush,
//! linger-timeout flush, deadline expiry, shutdown drain, tenant
//! selection — is deterministically unit-testable with synthetic
//! `Instant`s; the threaded runtime in [`crate`] only *executes*
//! decisions, it never makes them.
//!
//! ## State machine
//!
//! Live (non-expired) requests are grouped by [`BatchKey`] — which
//! includes the tenant, so a device batch never mixes tenants. A group
//! is **ripe** when it is full (`≥ max_batch` members), the server is
//! draining, or its oldest member has waited `max_linger`:
//!
//! ```text
//!            ┌──────────── deadline ≤ now ───────────► Expired (reject)
//!            │
//! Queued ────┤  some group ripe ────────────────────► Flush (selected group)
//!            │
//!            └─ otherwise ───────────────────────────► Wait(wake − now)
//! ```
//!
//! where `wake = min(every group's oldest arrival + max_linger, soonest
//! queued deadline)` — a worker never sleeps past the moment its
//! decision could change. Among *ripe* groups, selection is QoS-driven:
//! strict priority tiers first, then least weighted-fair virtual service
//! ([`FairState`]), then oldest arrival, then snapshot position (a total
//! order, so the decision is deterministic). The caller charges the
//! flushed tenant's [`FairState`] with the batch it took.
//!
//! Deadlines are a *rejection* bound, not a flush accelerator: a request
//! whose deadline passes while queued is completed with
//! `DeadlineExceeded` before staging (it never stalls or poisons the
//! batch it would have joined). Configure `max_linger` well below the
//! deadline budgets you hand out.

use std::time::{Duration, Instant};

use ssam_core::device::DeviceMetric;

use crate::qos::{FairState, QosConfig, TenantId};

/// The kernel-compatibility key queries are coalesced under: requests
/// batch together only when the device would stage them through the same
/// kernel — metric, requested `k` (the software-queue kernels specialize
/// on `k`), queue implementation — *and* the same tenant, so per-batch
/// QoS accounting (fairness charges, per-tenant fault storms) is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Kernel family.
    pub metric: DeviceMetric,
    /// Neighbors requested.
    pub k: usize,
    /// Whether the serving device uses the hardware priority queue
    /// (constant per server, carried for record-keeping).
    pub hw_queue: bool,
    /// The tenant this request belongs to: batches are single-tenant.
    pub tenant: TenantId,
}

/// Scheduling-relevant metadata of one queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingMeta {
    /// Kernel-compatibility key.
    pub key: BatchKey,
    /// When the request was admitted.
    pub enqueued: Instant,
    /// Absolute deadline, if the request carries one.
    pub deadline: Option<Instant>,
}

/// What a worker should do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Execute these queue indices now: arrival order, one batch key
    /// (hence one tenant), at most `max_batch` of them. The caller must
    /// charge the tenant's [`FairState`] for the flush.
    Flush(Vec<usize>),
    /// Nothing is ripe yet; wait at most this long for arrivals or for
    /// some group's linger/deadline clock to run out.
    Wait(Duration),
    /// The queue holds no live requests.
    Idle,
}

/// A full scheduling decision over one queue snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Indices whose deadline has passed: complete them with
    /// `DeadlineExceeded` *before* acting — they must never be staged.
    /// When non-empty, re-plan after removal (the action's indices refer
    /// to the same snapshot and would be stale).
    pub expired: Vec<usize>,
    /// What to do with the live requests.
    pub action: Action,
}

/// Decides the next step for a worker looking at queue snapshot
/// `pending` (arrival order) at time `now`. `drain` is the shutdown
/// flag: a draining server flushes immediately rather than lingering.
/// `qos` supplies tier/weight per tenant and `fair` the accumulated
/// weighted-fair service that arbitrates between ripe tenants; the
/// function is pure over all five inputs.
pub fn plan(
    pending: &[PendingMeta],
    now: Instant,
    max_batch: usize,
    max_linger: Duration,
    drain: bool,
    qos: &QosConfig,
    fair: &FairState,
) -> Plan {
    let max_batch = max_batch.max(1);
    let mut expired = Vec::new();
    // Group live requests by key, groups ordered by first arrival,
    // members in arrival order.
    let mut groups: Vec<(BatchKey, Vec<usize>)> = Vec::new();
    for (i, p) in pending.iter().enumerate() {
        if p.deadline.is_some_and(|d| d <= now) {
            expired.push(i);
            continue;
        }
        match groups.iter_mut().find(|(k, _)| *k == p.key) {
            Some((_, members)) => members.push(i),
            None => groups.push((p.key, vec![i])),
        }
    }
    if groups.is_empty() {
        return Plan {
            expired,
            action: Action::Idle,
        };
    }

    // Ripe groups compete; QoS picks the winner. The comparison key is a
    // total order, so the same snapshot always yields the same decision.
    let mut best: Option<(u8, f64, Instant, usize)> = None;
    for (gi, (key, members)) in groups.iter().enumerate() {
        let oldest = pending[members[0]].enqueued;
        let ripe = members.len() >= max_batch || drain || now >= oldest + max_linger;
        if !ripe {
            continue;
        }
        let tenant_qos = qos.get(key.tenant);
        let cand = (tenant_qos.tier, fair.service(key.tenant), oldest, gi);
        let better = match &best {
            None => true,
            Some(b) => {
                cand.0
                    .cmp(&b.0)
                    .then(cand.1.total_cmp(&b.1))
                    .then(cand.2.cmp(&b.2))
                    .then(cand.3.cmp(&b.3))
                    == std::cmp::Ordering::Less
            }
        };
        if better {
            best = Some(cand);
        }
    }
    if let Some((_, _, _, gi)) = best {
        let members: Vec<usize> = groups[gi].1.iter().copied().take(max_batch).collect();
        return Plan {
            expired,
            action: Action::Flush(members),
        };
    }

    // Sleep only until the decision could change: the soonest linger
    // clock of any group, or the soonest queued deadline (so expiring
    // requests are rejected promptly instead of waiting out a flush).
    let mut wake = groups
        .iter()
        .map(|(_, members)| pending[members[0]].enqueued + max_linger)
        .min()
        .expect("at least one group");
    for (_, members) in &groups {
        for &i in members {
            if let Some(d) = pending[i].deadline {
                wake = wake.min(d);
            }
        }
    }
    Plan {
        expired,
        action: Action::Wait(wake.saturating_duration_since(now)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::TenantQos;

    fn key(k: usize) -> BatchKey {
        BatchKey {
            metric: DeviceMetric::Euclidean,
            k,
            hw_queue: true,
            tenant: TenantId::DEFAULT,
        }
    }

    fn tenant_key(t: u32) -> BatchKey {
        BatchKey {
            tenant: TenantId(t),
            ..key(5)
        }
    }

    fn meta(key_: BatchKey, enqueued: Instant, deadline: Option<Instant>) -> PendingMeta {
        PendingMeta {
            key: key_,
            enqueued,
            deadline,
        }
    }

    fn plan_flat(
        pending: &[PendingMeta],
        now: Instant,
        max_batch: usize,
        max_linger: Duration,
        drain: bool,
    ) -> Plan {
        plan(
            pending,
            now,
            max_batch,
            max_linger,
            drain,
            &QosConfig::default(),
            &FairState::default(),
        )
    }

    #[test]
    fn empty_queue_is_idle() {
        let now = Instant::now();
        let p = plan_flat(&[], now, 8, Duration::from_millis(1), false);
        assert_eq!(p.expired, Vec::<usize>::new());
        assert_eq!(p.action, Action::Idle);
    }

    #[test]
    fn max_size_triggers_immediate_flush() {
        let t0 = Instant::now();
        let pending: Vec<PendingMeta> = (0..4).map(|_| meta(key(5), t0, None)).collect();
        // Linger far in the future: size alone must trigger.
        let p = plan_flat(&pending, t0, 4, Duration::from_secs(3600), false);
        assert_eq!(p.action, Action::Flush(vec![0, 1, 2, 3]));
    }

    #[test]
    fn oversize_queue_flushes_only_max_batch() {
        let t0 = Instant::now();
        let pending: Vec<PendingMeta> = (0..7).map(|_| meta(key(5), t0, None)).collect();
        let p = plan_flat(&pending, t0, 4, Duration::from_secs(3600), false);
        assert_eq!(p.action, Action::Flush(vec![0, 1, 2, 3]));
    }

    #[test]
    fn linger_expiry_flushes_partial_batch() {
        let t0 = Instant::now();
        let linger = Duration::from_millis(2);
        let pending = vec![meta(key(5), t0, None), meta(key(5), t0, None)];
        // Before the linger bound: wait exactly the remainder.
        let p = plan_flat(&pending, t0 + Duration::from_millis(1), 8, linger, false);
        assert_eq!(p.action, Action::Wait(Duration::from_millis(1)));
        // At the bound: flush whatever is there.
        let p = plan_flat(&pending, t0 + linger, 8, linger, false);
        assert_eq!(p.action, Action::Flush(vec![0, 1]));
    }

    #[test]
    fn drain_flushes_without_lingering() {
        let t0 = Instant::now();
        let pending = vec![meta(key(5), t0, None)];
        let p = plan_flat(&pending, t0, 64, Duration::from_secs(3600), true);
        assert_eq!(p.action, Action::Flush(vec![0]));
    }

    #[test]
    fn batches_group_by_key_in_arrival_order() {
        let t0 = Instant::now();
        let a = key(5);
        let b = key(9);
        let pending = vec![
            meta(a, t0, None),
            meta(b, t0, None),
            meta(a, t0, None),
            meta(a, t0, None),
        ];
        // Both groups are ripe (zero linger); the tie breaks to the
        // earlier snapshot position, so key `a` anchors and the key-`b`
        // request is left for the next round, order preserved.
        let p = plan_flat(&pending, t0, 3, Duration::ZERO, false);
        assert_eq!(p.action, Action::Flush(vec![0, 2, 3]));
    }

    #[test]
    fn full_non_oldest_group_flushes_while_oldest_lingers() {
        let t0 = Instant::now();
        let linger = Duration::from_secs(10);
        // One old key-5 request still inside its linger window; three
        // key-9 requests already fill a batch. The full batch must not
        // wait for the unrelated linger clock.
        let pending = vec![
            meta(key(5), t0, None),
            meta(key(9), t0 + Duration::from_millis(1), None),
            meta(key(9), t0 + Duration::from_millis(1), None),
            meta(key(9), t0 + Duration::from_millis(1), None),
        ];
        let p = plan_flat(&pending, t0 + Duration::from_millis(2), 3, linger, false);
        assert_eq!(p.action, Action::Flush(vec![1, 2, 3]));
    }

    #[test]
    fn expired_requests_are_culled_not_staged() {
        let t0 = Instant::now();
        let now = t0 + Duration::from_millis(5);
        let pending = vec![
            meta(key(5), t0, Some(t0 + Duration::from_millis(1))), // expired
            meta(key(5), t0, None),
            meta(key(5), t0, Some(now)), // deadline == now counts as expired
        ];
        let p = plan_flat(&pending, now, 8, Duration::ZERO, false);
        assert_eq!(p.expired, vec![0, 2]);
        // Linger already elapsed for the survivor.
        assert_eq!(p.action, Action::Flush(vec![1]));
    }

    #[test]
    fn expiry_of_every_request_leaves_idle() {
        let t0 = Instant::now();
        let now = t0 + Duration::from_secs(1);
        let pending = vec![
            meta(key(5), t0, Some(t0 + Duration::from_millis(1))),
            meta(key(9), t0, Some(t0 + Duration::from_millis(2))),
        ];
        let p = plan_flat(&pending, now, 8, Duration::from_secs(3600), false);
        assert_eq!(p.expired, vec![0, 1]);
        assert_eq!(p.action, Action::Idle);
    }

    #[test]
    fn wait_is_bounded_by_soonest_deadline() {
        let t0 = Instant::now();
        let linger = Duration::from_secs(10);
        // A lone request whose deadline lands long before the linger
        // bound: the worker must wake at the deadline to reject it, not
        // sleep out the full linger (the "stalled batch" failure mode).
        let pending = vec![meta(key(5), t0, Some(t0 + Duration::from_millis(3)))];
        let p = plan_flat(&pending, t0, 8, linger, false);
        assert_eq!(p.action, Action::Wait(Duration::from_millis(3)));
        // Deadlines of *other* keys bound the wait too: they are culled
        // promptly even though they are not in the winning batch.
        let pending = vec![
            meta(key(5), t0, None),
            meta(key(9), t0, Some(t0 + Duration::from_millis(2))),
        ];
        let p = plan_flat(&pending, t0, 8, linger, false);
        assert_eq!(p.action, Action::Wait(Duration::from_millis(2)));
    }

    #[test]
    fn zero_max_batch_is_clamped_to_one() {
        let t0 = Instant::now();
        let pending = vec![meta(key(5), t0, None)];
        let p = plan_flat(&pending, t0, 0, Duration::from_secs(3600), false);
        assert_eq!(p.action, Action::Flush(vec![0]));
    }

    #[test]
    fn tenants_never_share_a_batch() {
        let t0 = Instant::now();
        let pending = vec![
            meta(tenant_key(1), t0, None),
            meta(tenant_key(2), t0, None),
            meta(tenant_key(1), t0, None),
        ];
        let p = plan_flat(&pending, t0, 8, Duration::ZERO, false);
        // Same metric/k/queue, different tenants: only tenant 1's
        // requests flush together.
        assert_eq!(p.action, Action::Flush(vec![0, 2]));
    }

    #[test]
    fn higher_priority_tier_preempts_ripe_lower_tier() {
        let t0 = Instant::now();
        let qos = QosConfig::default()
            .with_tenant(
                TenantId(1),
                TenantQos {
                    tier: 2,
                    ..TenantQos::default()
                },
            )
            .with_tenant(
                TenantId(2),
                TenantQos {
                    tier: 0,
                    ..TenantQos::default()
                },
            );
        // Tenant 1 arrived first and is ripe, but tenant 2 sits in a
        // strictly higher tier: tier wins over arrival order.
        let pending = vec![
            meta(tenant_key(1), t0, None),
            meta(tenant_key(2), t0 + Duration::from_micros(1), None),
        ];
        let p = plan(
            &pending,
            t0 + Duration::from_millis(1),
            8,
            Duration::ZERO,
            false,
            &qos,
            &FairState::default(),
        );
        assert_eq!(p.action, Action::Flush(vec![1]));
    }

    #[test]
    fn least_served_tenant_wins_within_a_tier() {
        let t0 = Instant::now();
        let qos = QosConfig::default();
        let mut fair = FairState::default();
        // Tenant 1 has already been served heavily; tenant 2 not at all.
        fair.charge(TenantId(1), 16, 1.0);
        let pending = vec![
            meta(tenant_key(1), t0, None),
            meta(tenant_key(2), t0 + Duration::from_micros(1), None),
        ];
        let p = plan(
            &pending,
            t0 + Duration::from_millis(1),
            8,
            Duration::ZERO,
            false,
            &qos,
            &fair,
        );
        assert_eq!(p.action, Action::Flush(vec![1]));
        // With service evened out, arrival order decides again.
        fair.charge(TenantId(2), 16, 1.0);
        let p = plan(
            &pending,
            t0 + Duration::from_millis(1),
            8,
            Duration::ZERO,
            false,
            &qos,
            &fair,
        );
        assert_eq!(p.action, Action::Flush(vec![0]));
    }

    #[test]
    fn weights_scale_fair_service_charges() {
        // Weight enters through FairState::charge: a weight-4 tenant is
        // charged a quarter of the service per request, so after equal
        // batches it still wins selection.
        let mut fair = FairState::default();
        fair.charge(TenantId(1), 8, 1.0);
        fair.charge(TenantId(2), 8, 4.0);
        let t0 = Instant::now();
        let pending = vec![meta(tenant_key(1), t0, None), meta(tenant_key(2), t0, None)];
        let p = plan(
            &pending,
            t0,
            8,
            Duration::ZERO,
            false,
            &QosConfig::default(),
            &fair,
        );
        assert_eq!(p.action, Action::Flush(vec![1]));
    }
}
