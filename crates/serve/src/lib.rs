//! # ssam-serve — online query serving for the SSAM device
//!
//! The device layer executes pre-formed batches
//! ([`SsamDevice::query_batch`]); this crate is the missing path from
//! *many concurrent callers* to those batches. The paper's host already
//! works this way — it "broadcasts the search across SSAM processing
//! units and performs the final set of global top-k reductions" (§III),
//! and near-data kNN accelerators are throughput devices whose
//! utilization hinges on how the host aggregates independent queries
//! into device-sized batches.
//!
//! A [`Server`] owns a pool of worker threads, each holding a clone of
//! the backing [`SsamDevice`] (or [`SsamCluster`]) — clones share the
//! `Arc`-held dataset shards and kernel images, so they are cheap, and
//! each worker's batched executions recycle warm processing units
//! through the device's `reset_state` path. Callers get a cloneable
//! [`ServerHandle`] and submit [`Request`]s:
//!
//! * **Dynamic batching** — concurrently submitted requests that are
//!   kernel-compatible (same metric, `k`, and queue implementation —
//!   [`batcher::BatchKey`]) coalesce into one `query_batch` call under a
//!   dual trigger: a batch flushes when it reaches
//!   [`ServeConfig::max_batch`] *or* when its oldest request has waited
//!   [`ServeConfig::max_linger`].
//! * **Admission control and backpressure** — the submission queue is
//!   bounded ([`ServeConfig::queue_capacity`]); submissions beyond it
//!   are rejected with [`ServeError::Overloaded`] instead of queueing
//!   unboundedly. Malformed requests (zero `k`, empty or wrong-shape
//!   queries) are rejected at admission with [`ServeError::BadRequest`]
//!   before they can reach a worker.
//! * **Deadlines** — a request may carry a deadline budget
//!   ([`Request::timeout`]); if it expires while queued the request is
//!   completed with [`ServeError::DeadlineExceeded`] *before staging* —
//!   it never stalls or joins a device batch.
//! * **Graceful shutdown and panic isolation** — [`Server::shutdown`]
//!   stops admissions, drains every queued request (flushing without
//!   lingering), and joins the workers; dropping the server does the
//!   same. A worker that panics mid-batch completes that batch's
//!   requests with [`ServeError::WorkerPanicked`], discards its possibly
//!   inconsistent device clone for a pristine one, and keeps serving —
//!   the queue is never wedged.
//! * **Multi-tenant QoS** — requests carry a [`TenantId`]
//!   ([`Request::with_tenant`]); [`ServeConfig::qos`] assigns each
//!   tenant an admission rate (deterministic token bucket →
//!   [`ServeError::RateLimited`]), a strict priority tier, a
//!   weighted-fair share arbitrating ripe batches within a tier, and
//!   per-tenant coverage/deadline SLOs. The tenant is part of the
//!   batcher's compatibility key, so device batches never mix tenants
//!   and one tenant's burst or fault storm cannot ride in another's
//!   batch (see [`qos`] for the fairness invariants).
//! * **Network boundary** — [`net::NetServer`] exposes a server over a
//!   std-only length-prefixed TCP frame protocol with a blocking
//!   [`net::NetClient`], typed wire encodings for every [`ServeError`]
//!   variant, and graceful connection drain on shutdown.
//! * **Mutable datasets** — [`Server::start_store`] serves an
//!   [`ssam_store::Store`] instead of an immutable device:
//!   [`ServerHandle::insert`] / [`ServerHandle::delete`] accept online
//!   writes (WAL-first, with automatic memtable seals), queries see a
//!   consistent memtable ∪ segments view with tombstone suppression and
//!   dedup-by-latest-version, and a background maintenance thread runs
//!   leveled compaction between batches, sharing the store with readers.
//!
//! Every served batch still flows through the device's self-checking
//! telemetry: attach a [`ssam_core::telemetry::Telemetry`] sink to the
//! device *before* [`Server::start`] and each worker clone records
//! verified per-query and per-batch accounts into it.
//!
//! ```
//! use ssam_core::device::{SsamConfig, SsamDevice};
//! use ssam_knn::VectorStore;
//! use ssam_serve::{OwnedQuery, Request, ServeConfig, Server};
//!
//! let mut store = VectorStore::new(4);
//! for i in 0..64 {
//!     store.push(&[i as f32, 0.0, 0.0, 0.0]);
//! }
//! let mut device = SsamDevice::new(SsamConfig::default());
//! device.load_vectors(&store);
//!
//! let server = Server::start(device, ServeConfig::default());
//! let handle = server.handle();
//! let response = handle
//!     .query(Request::new(OwnedQuery::Euclidean(vec![7.2, 0.0, 0.0, 0.0]), 3))
//!     .expect("served");
//! assert_eq!(response.neighbors[0].id, 7);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod net;
pub mod qos;

pub use qos::{QosConfig, TenantId, TenantQos};

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ssam_core::device::cluster::{ClusterTiming, SsamCluster};
use ssam_core::device::{BatchTiming, DeviceMetric, DeviceQuery, QueryTiming, SsamDevice};
use ssam_core::sim::pu::SimError;
use ssam_faults::FaultPlan;
use ssam_knn::topk::Neighbor;
use ssam_store::{ShardRecovery, ShardWriteAck, ShardedStore, Store, StoreError, WriteAck};

use crate::batcher::{plan, Action, BatchKey, PendingMeta};
use crate::qos::{FairState, TokenBucket};

/// Fault-injection and fault-tolerance configuration for the serving
/// runtime. [`ServeFaults::default`] injects nothing and degrades
/// nothing — the fault-free fast path.
#[derive(Debug, Clone)]
pub struct ServeFaults {
    /// Deterministic fault plan threaded to every worker's device clone
    /// (each worker samples a decorrelated stream — its index is the
    /// fault-key scope). `None` disables injection entirely.
    pub plan: Option<Arc<FaultPlan>>,
    /// The worker executing the nth batch (0-based, counted across the
    /// server) panics mid-execution — the crash-fault channel of the
    /// plan, kept separate because it exercises the host runtime rather
    /// than the device model.
    pub panic_on_batch: Option<u64>,
    /// Minimum per-request coverage (fraction of candidate vectors
    /// actually scanned). A response below this is retried within the
    /// plan's `serve_retry_budget`, then surfaced as
    /// [`ServeError::Degraded`]. With the default `1.0`, any lost vault
    /// triggers the retry/degrade path; without a plan coverage is
    /// always `1.0` and this never fires. Per-tenant
    /// [`TenantQos::min_coverage`] overrides this for that tenant.
    pub min_coverage: f64,
    /// When set, the fault plan is applied only to batches belonging to
    /// these tenants — a *fault storm confined to a tenant*. Batches are
    /// single-tenant (the tenant is part of the batch key), so the
    /// confinement is exact: other tenants' executions run fault-free.
    /// `None` (default) applies the plan to every tenant.
    pub storm_tenants: Option<Vec<TenantId>>,
}

impl Default for ServeFaults {
    fn default() -> Self {
        Self {
            plan: None,
            panic_on_batch: None,
            min_coverage: 1.0,
            storm_tenants: None,
        }
    }
}

/// Serving-runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a batch as soon as this many kernel-compatible requests are
    /// queued (clamped to ≥ 1; `1` degenerates to serial batch-of-1
    /// serving, the baseline the load generator compares against).
    pub max_batch: usize,
    /// Flush a non-full batch once its oldest request has waited this
    /// long — the latency bound dynamic batching trades against
    /// throughput. Keep it well below the deadline budgets you hand out.
    pub max_linger: Duration,
    /// Bounded submission-queue capacity; submissions beyond it are
    /// rejected with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Worker threads, each owning a clone of the backing device
    /// (clamped to ≥ 1).
    pub workers: usize,
    /// Deadline budget applied to requests that do not carry their own
    /// ([`Request::timeout`] wins when both are set).
    pub default_timeout: Option<Duration>,
    /// Fault injection and tolerance knobs.
    pub faults: ServeFaults,
    /// Per-tenant admission and scheduling policy. The default governs
    /// every tenant with the default [`TenantQos`] — no rate limits, one
    /// tier, equal weights — making QoS invisible to single-tenant use.
    pub qos: QosConfig,
    /// How often the mutable-store maintenance thread polls for owed
    /// compaction work ([`Server::start_store`] only; ignored by the
    /// immutable backends). Each poll runs at most one
    /// [`ssam_store::Store::compact_step`], so queries interleave with
    /// compaction at single-merge granularity.
    pub maintenance_interval: Duration,
    /// Thin back-compat wrapper for [`ServeFaults::panic_on_batch`]
    /// (the hook's original home). [`ServeFaults::panic_on_batch`] wins
    /// when both are set; prefer it in new code.
    #[doc(hidden)]
    pub panic_on_batch: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_linger: Duration::from_millis(1),
            queue_capacity: 1024,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            default_timeout: None,
            faults: ServeFaults::default(),
            qos: QosConfig::default(),
            maintenance_interval: Duration::from_micros(500),
            panic_on_batch: None,
        }
    }
}

impl ServeConfig {
    /// The effective panic-injection batch: the fault config's hook,
    /// falling back to the legacy top-level field.
    fn effective_panic_on_batch(&self) -> Option<u64> {
        self.faults.panic_on_batch.or(self.panic_on_batch)
    }

    /// Per-request retry budget for under-coverage responses (0 without
    /// a fault plan).
    fn degraded_retry_budget(&self) -> u32 {
        self.faults
            .plan
            .as_ref()
            .map_or(0, |p| p.policy.serve_retry_budget)
    }
}

/// An owned query. The device API's [`DeviceQuery`] borrows its payload;
/// serving requests cross thread boundaries and outlive their caller's
/// stack frame, so the runtime owns the payload and reborrows it at
/// staging time ([`OwnedQuery::as_device_query`]).
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedQuery {
    /// Float query for the Euclidean kernel.
    Euclidean(Vec<f32>),
    /// Float query for the Manhattan kernel.
    Manhattan(Vec<f32>),
    /// Float query for the cosine kernel.
    Cosine(Vec<f32>),
    /// Packed binary query for the Hamming kernel.
    Hamming(Vec<u32>),
}

impl OwnedQuery {
    /// The metric this query selects.
    pub fn metric(&self) -> ssam_core::device::DeviceMetric {
        self.as_device_query().metric()
    }

    /// Reborrows as the device API's query type.
    pub fn as_device_query(&self) -> DeviceQuery<'_> {
        match self {
            OwnedQuery::Euclidean(q) => DeviceQuery::Euclidean(q),
            OwnedQuery::Manhattan(q) => DeviceQuery::Manhattan(q),
            OwnedQuery::Cosine(q) => DeviceQuery::Cosine(q),
            OwnedQuery::Hamming(q) => DeviceQuery::Hamming(q),
        }
    }

    fn len(&self) -> usize {
        match self {
            OwnedQuery::Euclidean(q) | OwnedQuery::Manhattan(q) | OwnedQuery::Cosine(q) => q.len(),
            OwnedQuery::Hamming(q) => q.len(),
        }
    }

    fn is_binary(&self) -> bool {
        matches!(self, OwnedQuery::Hamming(_))
    }
}

/// One serving request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The query payload.
    pub query: OwnedQuery,
    /// Neighbors requested.
    pub k: usize,
    /// Optional deadline budget, measured from submission. When it
    /// expires before the request is staged into a device batch, the
    /// request completes with [`ServeError::DeadlineExceeded`].
    pub timeout: Option<Duration>,
    /// The tenant this request belongs to, for admission (token
    /// buckets), scheduling (tiers + weighted-fair dequeue), and SLOs.
    /// Defaults to [`TenantId::DEFAULT`].
    pub tenant: TenantId,
}

impl Request {
    /// A request with no per-request deadline (the server's
    /// [`ServeConfig::default_timeout`] still applies, if set) under the
    /// default tenant.
    pub fn new(query: OwnedQuery, k: usize) -> Self {
        Self {
            query,
            k,
            timeout: None,
            tenant: TenantId::DEFAULT,
        }
    }

    /// Attaches a deadline budget.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Attributes the request to a tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }
}

/// Why a request was not served. Every variant is a *response* — the
/// runtime never hangs a caller and never panics across the API.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue is full (backpressure): retry later
    /// or shed load upstream.
    Overloaded {
        /// The configured queue capacity that was exceeded.
        capacity: usize,
    },
    /// The tenant's token bucket is empty: the tenant exceeded its
    /// configured admission rate ([`TenantQos::rate`]). Unlike
    /// [`ServeError::Overloaded`] this is per-tenant — other tenants'
    /// queue capacity is unaffected.
    RateLimited {
        /// The throttled tenant.
        tenant: TenantId,
    },
    /// The request's deadline passed before it could be staged.
    DeadlineExceeded {
        /// How far past the deadline the rejection happened.
        missed_by: Duration,
    },
    /// The server no longer accepts submissions (it still drains
    /// requests admitted before shutdown began).
    ShuttingDown,
    /// The request is malformed for the loaded dataset and was rejected
    /// at admission.
    BadRequest(&'static str),
    /// The device simulation faulted while executing the batch.
    Device(SimError),
    /// The worker executing this request's batch panicked; the request
    /// was not served (the worker recovered and the server keeps
    /// running).
    WorkerPanicked,
    /// Faults degraded the result below the configured
    /// [`ServeFaults::min_coverage`] even after the retry budget:
    /// `coverage` is the fraction of candidate vectors the best attempt
    /// actually scanned. Callers that can tolerate partial results may
    /// lower `min_coverage` and read [`Response::coverage`] instead.
    Degraded {
        /// Fraction of the dataset covered by the rejected attempt.
        coverage: f64,
    },
    /// A sharded-store write was refused because every replica module
    /// of the target shard is down — nothing could make it durable.
    /// Retry once the outage clears; reads keep serving the surviving
    /// shards meanwhile.
    ShardUnavailable {
        /// The shard whose whole replica set is down.
        shard: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServeError::RateLimited { tenant } => {
                write!(f, "{tenant} exceeded its admission rate")
            }
            ServeError::DeadlineExceeded { missed_by } => {
                write!(f, "deadline exceeded (missed by {missed_by:?})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServeError::Device(e) => write!(f, "device fault: {e}"),
            ServeError::WorkerPanicked => write!(f, "worker panicked executing the batch"),
            ServeError::Degraded { coverage } => {
                write!(f, "result degraded below required coverage ({coverage:.3})")
            }
            ServeError::ShardUnavailable { shard } => {
                write!(f, "shard {shard}: every replica is down, write refused")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Device-side account of a served request, depending on the backend.
#[derive(Debug, Clone)]
pub enum DeviceAccount {
    /// Served by a single-module [`SsamDevice`]: the request's
    /// serial-equivalent query account plus the pipelined account of the
    /// device batch it rode in.
    Device {
        /// Serial-equivalent per-query timing.
        timing: QueryTiming,
        /// The whole device batch's pipelined account.
        batch: BatchTiming,
    },
    /// Served by a [`SsamCluster`]: the per-query cluster account.
    Cluster(ClusterTiming),
    /// Served by a mutable [`ssam_store::Store`]: memtable scan plus one
    /// device query per segment.
    Store {
        /// Slowest segment's simulated device seconds (segments scan in
        /// parallel, like vaults within one device).
        seconds: f64,
        /// Total device energy across all segment queries, millijoules.
        energy_mj: f64,
        /// Segments that executed a device query.
        segments_scanned: usize,
        /// Candidates returned by segments but suppressed as superseded
        /// or tombstoned.
        suppressed: usize,
    },
    /// Served by a [`ssam_store::ShardedStore`]: per-shard scatter plus
    /// an exact global top-k gather.
    Sharded {
        /// Slowest module's simulated device seconds (shards and their
        /// segments scan in parallel).
        seconds: f64,
        /// Total device energy across every module queried, millijoules.
        energy_mj: f64,
        /// Segments that executed a device query, across all modules.
        segments_scanned: usize,
        /// Candidates suppressed as superseded or tombstoned.
        suppressed: usize,
        /// Shards in the topology (covered or not — see
        /// [`Response::coverage`] for what was actually served).
        shards: usize,
    },
}

impl DeviceAccount {
    /// Modeled device seconds for this request alone (serial-equivalent
    /// for the single-module backend, end-to-end for the cluster).
    pub fn device_seconds(&self) -> f64 {
        match self {
            DeviceAccount::Device { timing, .. } => timing.seconds,
            DeviceAccount::Cluster(t) => t.seconds,
            DeviceAccount::Store { seconds, .. } | DeviceAccount::Sharded { seconds, .. } => {
                *seconds
            }
        }
    }

    /// Modeled device energy for this request, millijoules.
    pub fn energy_mj(&self) -> f64 {
        match self {
            DeviceAccount::Device { timing, .. } => timing.energy_mj,
            DeviceAccount::Cluster(t) => t.energy_mj,
            DeviceAccount::Store { energy_mj, .. } | DeviceAccount::Sharded { energy_mj, .. } => {
                *energy_mj
            }
        }
    }
}

/// A served query.
#[derive(Debug, Clone)]
pub struct Response {
    /// Global top-k, best first.
    pub neighbors: Vec<Neighbor>,
    /// Device-side timing/energy account.
    pub account: DeviceAccount,
    /// Size of the device batch this request was coalesced into.
    pub batch_size: usize,
    /// Host wall-clock from admission to batch formation.
    pub queue_seconds: f64,
    /// Host wall-clock executing the device batch (shared by every
    /// request in it).
    pub service_seconds: f64,
    /// Fraction of candidate vectors actually scanned for this request
    /// (`1.0` unless fault injection lost vaults or modules). The
    /// neighbors are exact over this fraction.
    pub coverage: f64,
}

/// Counters describing a server's lifetime so far. Snapshot via
/// [`Server::stats`] or returned by [`Server::shutdown`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests served successfully.
    pub served: u64,
    /// Submissions rejected by backpressure ([`ServeError::Overloaded`]).
    pub rejected_overload: u64,
    /// Submissions rejected by per-tenant token buckets
    /// ([`ServeError::RateLimited`]).
    pub rejected_rate_limited: u64,
    /// Queued requests rejected on deadline expiry.
    pub rejected_deadline: u64,
    /// Requests completed with [`ServeError::Device`] or
    /// [`ServeError::WorkerPanicked`].
    pub failed: u64,
    /// Requests surfaced as [`ServeError::Degraded`] after exhausting
    /// the retry budget.
    pub degraded: u64,
    /// Under-coverage responses retried within the budget (each is one
    /// re-enqueue of one request).
    pub retried_degraded: u64,
    /// Requests re-enqueued after a worker panic instead of being failed
    /// outright (panic-survivor retries).
    pub retried_panic: u64,
    /// Worker panic events survived (each covers one batch).
    pub worker_panics: u64,
    /// Inserts accepted into the mutable store (store backend only).
    pub inserts: u64,
    /// Deletes accepted into the mutable store (store backend only).
    pub deletes: u64,
    /// Write submissions rejected because the target shard's whole
    /// replica set was down ([`ServeError::ShardUnavailable`]).
    pub rejected_shard_down: u64,
    /// WAL records replayed when the backing store was opened from an
    /// existing WAL image (0 for stores created fresh) — the typed
    /// recovery report surfaced from [`ssam_store::Recovery`].
    pub recovered_records: u64,
    /// Bytes truncated at torn WAL tails during that recovery.
    pub recovered_truncated_bytes: u64,
    /// Segments rebuilt (seal + compaction replays) during that
    /// recovery.
    pub recovered_segments: u64,
    /// Device batches executed successfully.
    pub batches: u64,
    /// Histogram of successful device-batch sizes: `batch_hist[s]` is
    /// the number of batches of size `s` (index 0 unused).
    pub batch_hist: Vec<u64>,
}

impl ServerStats {
    /// Mean successful batch size (0 when no batch completed).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.served as f64 / self.batches as f64
    }

    /// Largest successful batch observed.
    pub fn max_batch(&self) -> usize {
        self.batch_hist.iter().rposition(|&n| n > 0).unwrap_or(0)
    }
}

/// One admitted request waiting in the queue.
struct Pending {
    query: OwnedQuery,
    k: usize,
    key: BatchKey,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// Coverage SLO resolved at admission: the tenant's
    /// [`TenantQos::min_coverage`], else [`ServeFaults::min_coverage`].
    min_coverage: f64,
    /// Times this request was re-enqueued after an under-coverage
    /// response (bounded by the plan's `serve_retry_budget`).
    degraded_retries: u32,
    /// Times this request survived a worker panic via re-enqueue
    /// (bounded at 1: a second panic fails it).
    panic_retries: u32,
    tx: mpsc::Sender<Result<Response, ServeError>>,
}

impl Pending {
    fn meta(&self) -> PendingMeta {
        PendingMeta {
            key: self.key,
            enqueued: self.enqueued,
            deadline: self.deadline,
        }
    }
}

struct QueueState {
    pending: VecDeque<Pending>,
    /// `false` once shutdown begins: admissions stop, workers drain.
    open: bool,
    /// Batches handed to workers so far (drives test fault injection).
    batches_started: u64,
    /// Per-tenant admission token buckets, created full on first use.
    buckets: HashMap<TenantId, TokenBucket>,
    /// Per-tenant *write* admission buckets ([`TenantQos::write_rate`]),
    /// created full on first use; store backends only.
    write_buckets: HashMap<TenantId, TokenBucket>,
    /// Weighted-fair virtual service, charged per flushed batch.
    fair: FairState,
    stats: ServerStats,
}

/// Shape of the queries the backend accepts, checked at admission so
/// malformed requests can never panic a worker.
#[derive(Debug, Clone, Copy)]
struct QueryShape {
    len: usize,
    binary: bool,
    hw_queue: bool,
    /// The cluster backend broadcasts float Euclidean queries only.
    euclidean_only: bool,
    /// The mutable store serves the linear float kernels only
    /// (Euclidean / Manhattan) — cosine has no analytic memtable
    /// equivalent and binary payloads are immutable.
    float_linear_only: bool,
}

/// The mutable backend behind a write-capable server: one store module,
/// or a sharded/replicated topology of them.
#[derive(Clone)]
enum StoreBackend {
    Single(Arc<Mutex<Store>>),
    Sharded(Arc<Mutex<ShardedStore>>),
}

struct Shared {
    state: Mutex<QueueState>,
    wake: Condvar,
    config: ServeConfig,
    shape: QueryShape,
    /// The mutable store behind [`Server::start_store`] /
    /// [`Server::start_sharded_store`] backends; the write path
    /// ([`ServerHandle::insert`] / [`ServerHandle::delete`]) and the
    /// maintenance thread go through it.
    store: Option<StoreBackend>,
}

/// Locks the shared store, recovering from poisoning: the store's state
/// transitions are WAL-first and each apply step completes before the
/// lock is released, so a panicked worker cannot leave it torn.
fn lock_store(store: &Mutex<Store>) -> std::sync::MutexGuard<'_, Store> {
    store
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Locks the shared sharded store; the same poisoning argument as
/// [`lock_store`] holds per module, and cross-module bookkeeping
/// (placement sets, pending queues) is updated before release.
fn lock_sharded(store: &Mutex<ShardedStore>) -> std::sync::MutexGuard<'_, ShardedStore> {
    store
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The execution backend a worker owns: a clone of the template device
/// (or cluster), replaced from the template after a panic.
enum Engine {
    Device {
        template: Arc<SsamDevice>,
        live: Box<SsamDevice>,
        /// This worker's fault-key scope, reapplied after recovery (the
        /// template always carries scope 0).
        scope: u64,
    },
    Cluster {
        template: Arc<SsamCluster>,
        live: Box<SsamCluster>,
    },
    /// All workers share one mutable store (writes must be visible to
    /// every reader), so execution serializes on its lock — the store is
    /// the single-writer analogue of a storage engine behind a latch.
    Store { store: Arc<Mutex<Store>> },
    /// Sharded topology: the same shared-authoritative-state argument as
    /// [`Engine::Store`] applies, with failover health and pending
    /// catch-up queues also living under the lock.
    ShardedStore { store: Arc<Mutex<ShardedStore>> },
}

impl Engine {
    /// Attaches or clears the fault plan on the live backend — the
    /// per-batch switch behind [`ServeFaults::storm_tenants`].
    fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        match self {
            Engine::Device { live, .. } => live.set_fault_plan(plan),
            Engine::Cluster { live, .. } => live.set_fault_plan(plan),
            Engine::Store { store } => lock_store(store).set_fault_plan(plan),
            Engine::ShardedStore { store } => lock_sharded(store).set_fault_plan(plan),
        }
    }

    fn recover(&mut self) {
        match self {
            Engine::Device {
                template,
                live,
                scope,
            } => {
                **live = (**template).clone();
                live.set_fault_scope(*scope);
            }
            Engine::Cluster { template, live } => **live = (**template).clone(),
            // The store is shared authoritative state, not a per-worker
            // clone: every apply step completes under the lock before a
            // query can observe it, so there is nothing to roll back.
            Engine::Store { .. } | Engine::ShardedStore { .. } => {}
        }
    }

    /// Executes one coalesced batch. Results are in request order, each
    /// with the fraction of candidate vectors its answer covers.
    fn execute(
        &mut self,
        batch: &[Pending],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbor>, DeviceAccount, f64)>, SimError> {
        match self {
            Engine::Device { live, .. } => {
                let queries: Vec<DeviceQuery<'_>> =
                    batch.iter().map(|p| p.query.as_device_query()).collect();
                let out = live.query_batch(&queries, k)?;
                let batch_timing = out.timing;
                Ok(out
                    .results
                    .into_iter()
                    .map(|r| {
                        let coverage = r.coverage();
                        (
                            r.neighbors,
                            DeviceAccount::Device {
                                timing: r.timing,
                                batch: batch_timing,
                            },
                            coverage,
                        )
                    })
                    .collect())
            }
            Engine::Cluster { live, .. } => {
                let queries: Vec<&[f32]> = batch
                    .iter()
                    .map(|p| match &p.query {
                        OwnedQuery::Euclidean(q) => q.as_slice(),
                        _ => unreachable!("admission rejects non-Euclidean cluster queries"),
                    })
                    .collect();
                let out = live.query_batch(&queries, k)?;
                Ok(out
                    .into_iter()
                    .map(|(neighbors, timing)| {
                        let coverage = timing.coverage();
                        (neighbors, DeviceAccount::Cluster(timing), coverage)
                    })
                    .collect())
            }
            Engine::Store { store } => {
                // One lock acquisition for the whole batch: every member
                // sees the same consistent memtable ∪ segments view, and
                // compaction cannot slide in between members.
                let mut st = lock_store(store);
                let mut out = Vec::with_capacity(batch.len());
                for p in batch {
                    let (q, metric) = match &p.query {
                        OwnedQuery::Euclidean(q) => (q.as_slice(), DeviceMetric::Euclidean),
                        OwnedQuery::Manhattan(q) => (q.as_slice(), DeviceMetric::Manhattan),
                        _ => unreachable!("admission rejects non-linear store queries"),
                    };
                    let r = match st.query(q, metric, k) {
                        Ok(r) => r,
                        Err(StoreError::Device(e)) => return Err(e),
                        Err(e) => unreachable!("admission-checked store query failed: {e}"),
                    };
                    let coverage = r.coverage();
                    out.push((
                        r.neighbors,
                        DeviceAccount::Store {
                            seconds: r.device_seconds,
                            energy_mj: r.energy_mj,
                            segments_scanned: r.segments_scanned,
                            suppressed: r.suppressed,
                        },
                        coverage,
                    ));
                }
                Ok(out)
            }
            Engine::ShardedStore { store } => {
                // Same one-lock-per-batch contract as the single store:
                // every member sees one consistent cross-shard view, and
                // failover health transitions are batch-atomic.
                let mut st = lock_sharded(store);
                let shards = st.shards();
                let mut out = Vec::with_capacity(batch.len());
                for p in batch {
                    let (q, metric) = match &p.query {
                        OwnedQuery::Euclidean(q) => (q.as_slice(), DeviceMetric::Euclidean),
                        OwnedQuery::Manhattan(q) => (q.as_slice(), DeviceMetric::Manhattan),
                        _ => unreachable!("admission rejects non-linear store queries"),
                    };
                    let r = match st.query(q, metric, k) {
                        Ok(r) => r,
                        Err(StoreError::Device(e)) => return Err(e),
                        Err(e) => unreachable!("admission-checked sharded query failed: {e}"),
                    };
                    let coverage = r.coverage();
                    out.push((
                        r.neighbors,
                        DeviceAccount::Sharded {
                            seconds: r.device_seconds,
                            energy_mj: r.energy_mj,
                            segments_scanned: r.segments_scanned,
                            suppressed: r.suppressed,
                            shards,
                        },
                        coverage,
                    ));
                }
                Ok(out)
            }
        }
    }
}

/// The online serving runtime: a dynamic batcher in front of a worker
/// pool over device clones. See the crate docs for the full contract.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Background compaction thread (store backend only).
    maintenance: Option<JoinHandle<()>>,
}

impl Server {
    /// Spawns the worker pool over clones of `device` and starts
    /// serving. Attach a telemetry sink to the device *before* this
    /// call; every worker clone shares it.
    ///
    /// # Panics
    /// Panics if the device has no dataset loaded.
    pub fn start(mut device: SsamDevice, config: ServeConfig) -> Server {
        if let Some(plan) = &config.faults.plan {
            device.set_fault_plan(Some(Arc::clone(plan)));
        }
        let shape = QueryShape {
            len: device
                .query_len()
                .expect("serve: device must have a dataset loaded"),
            binary: device.payload_is_binary().unwrap_or(false),
            hw_queue: device.config().use_hw_queue,
            euclidean_only: false,
            float_linear_only: false,
        };
        let template = Arc::new(device);
        Self::spawn(config, shape, None, move |worker| {
            let mut live = (*template).clone();
            live.set_fault_scope(worker as u64);
            Engine::Device {
                live: Box::new(live),
                template: Arc::clone(&template),
                scope: worker as u64,
            }
        })
    }

    /// Spawns the worker pool over clones of `cluster`. The cluster
    /// backend serves float Euclidean queries only (the cluster
    /// broadcast path); other metrics are rejected at admission.
    ///
    /// # Panics
    /// Panics if the cluster holds no data.
    pub fn start_cluster(mut cluster: SsamCluster, config: ServeConfig) -> Server {
        if let Some(plan) = &config.faults.plan {
            // The cluster scopes fault keys by module index itself
            // (health-aware dispatch and failover live inside it).
            cluster.set_fault_plan(Some(Arc::clone(plan)));
        }
        let shape = QueryShape {
            len: cluster
                .query_len()
                .expect("serve: cluster must have a dataset loaded"),
            binary: false,
            hw_queue: true,
            euclidean_only: true,
            float_linear_only: false,
        };
        let template = Arc::new(cluster);
        Self::spawn(config, shape, None, move |_worker| Engine::Cluster {
            live: Box::new((*template).clone()),
            template: Arc::clone(&template),
        })
    }

    /// Spawns the worker pool over a shared mutable [`Store`] and starts
    /// serving reads *and* writes: queries flow through the usual
    /// batcher, [`ServerHandle::insert`] / [`ServerHandle::delete`]
    /// mutate the store WAL-first, and a maintenance thread polls every
    /// [`ServeConfig::maintenance_interval`] to run owed compactions
    /// one merge at a time, interleaving with query batches on the
    /// store lock. Attach telemetry and load any initial data into the
    /// store *before* this call.
    ///
    /// The store serves float Euclidean / Manhattan queries; cosine and
    /// binary Hamming requests are rejected at admission.
    pub fn start_store(mut store: Store, config: ServeConfig) -> Server {
        if let Some(plan) = &config.faults.plan {
            store.set_fault_plan(Some(Arc::clone(plan)));
        }
        let shape = QueryShape {
            len: store.config().dims,
            binary: false,
            hw_queue: store.config().device.use_hw_queue,
            euclidean_only: false,
            float_linear_only: true,
        };
        let recovery = store.recovery();
        let store = Arc::new(Mutex::new(store));
        let engine_store = Arc::clone(&store);
        let mut server = Self::spawn(
            config,
            shape,
            Some(StoreBackend::Single(Arc::clone(&store))),
            move |_worker| Engine::Store {
                store: Arc::clone(&engine_store),
            },
        );
        if let Some(rec) = recovery {
            let mut st = server.shared.state.lock().expect("serve queue lock");
            st.stats.recovered_records = rec.replayed as u64;
            st.stats.recovered_truncated_bytes = rec.truncated;
            st.stats.recovered_segments = rec.segments_rebuilt as u64;
        }
        server.spawn_maintenance(move || lock_store(&store).compact_step());
        server
    }

    /// Spawns the worker pool over a shared [`ShardedStore`] — the
    /// multi-module mutable backend. Reads scatter-gather across shards
    /// with failover; writes route by uid hash
    /// ([`ServerHandle::insert_routed`] returns the per-shard
    /// [`ShardWriteAck`]; the unrouted [`ServerHandle::insert`] still
    /// works and returns its single-module projection). The maintenance
    /// thread drains owed compactions across every module, one merge
    /// per poll. If the sharded store was recovered via
    /// [`ShardedStore::open`], the aggregate recovery report lands in
    /// [`ServerStats`].
    ///
    /// Query shape and admission rules match [`Server::start_store`]:
    /// float Euclidean / Manhattan only.
    pub fn start_sharded_store(mut store: ShardedStore, config: ServeConfig) -> Server {
        if let Some(plan) = &config.faults.plan {
            store.set_fault_plan(Some(Arc::clone(plan)));
        }
        let shape = QueryShape {
            len: store.config().store.dims,
            binary: false,
            hw_queue: store.config().store.device.use_hw_queue,
            euclidean_only: false,
            float_linear_only: true,
        };
        let recovery: Option<ShardRecovery> = store.recovery().cloned();
        let store = Arc::new(Mutex::new(store));
        let engine_store = Arc::clone(&store);
        let mut server = Self::spawn(
            config,
            shape,
            Some(StoreBackend::Sharded(Arc::clone(&store))),
            move |_worker| Engine::ShardedStore {
                store: Arc::clone(&engine_store),
            },
        );
        if let Some(rec) = recovery {
            let mut st = server.shared.state.lock().expect("serve queue lock");
            st.stats.recovered_records = rec.total.replayed as u64;
            st.stats.recovered_truncated_bytes = rec.total.truncated;
            st.stats.recovered_segments = rec.total.segments_rebuilt as u64;
        }
        server.spawn_maintenance(move || lock_sharded(&store).compact_step());
        server
    }

    /// Starts the background compaction thread shared by the mutable
    /// backends: each poll runs at most one merge via `compact_once`,
    /// sleeping [`ServeConfig::maintenance_interval`] when idle.
    fn spawn_maintenance(&mut self, compact_once: impl FnMut() -> bool + Send + 'static) {
        let shared = Arc::clone(&self.shared);
        let interval = shared.config.maintenance_interval;
        let mut compact_once = compact_once;
        self.maintenance = Some(
            std::thread::Builder::new()
                .name("ssam-serve-maintenance".into())
                .spawn(move || loop {
                    if !shared.state.lock().expect("serve queue lock").open {
                        return;
                    }
                    if !compact_once() {
                        std::thread::sleep(interval);
                    }
                })
                .expect("spawn serve maintenance"),
        );
    }

    fn spawn(
        config: ServeConfig,
        shape: QueryShape,
        store: Option<StoreBackend>,
        make_engine: impl Fn(usize) -> Engine,
    ) -> Server {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                open: true,
                batches_started: 0,
                buckets: HashMap::new(),
                write_buckets: HashMap::new(),
                fair: FairState::default(),
                stats: ServerStats::default(),
            }),
            wake: Condvar::new(),
            config,
            shape,
            store,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let mut engine = make_engine(i);
                std::thread::Builder::new()
                    .name(format!("ssam-serve-{i}"))
                    .spawn(move || worker_loop(&shared, &mut engine))
                    .expect("spawn serve worker")
            })
            .collect();
        Server {
            shared,
            workers: handles,
            maintenance: None,
        }
    }

    /// The shared mutable store behind a [`Server::start_store`]
    /// backend (`None` for the immutable and sharded backends). Lock it
    /// to read lifecycle stats or post telemetry accounts; writes
    /// should go through the handle so they are counted and
    /// admission-checked.
    pub fn store(&self) -> Option<Arc<Mutex<Store>>> {
        match &self.shared.store {
            Some(StoreBackend::Single(s)) => Some(Arc::clone(s)),
            _ => None,
        }
    }

    /// The shared sharded store behind a [`Server::start_sharded_store`]
    /// backend (`None` otherwise). Lock it for drills
    /// ([`ShardedStore::kill_module`]), ledgers, and accounts.
    pub fn sharded_store(&self) -> Option<Arc<Mutex<ShardedStore>>> {
        match &self.shared.store {
            Some(StoreBackend::Sharded(s)) => Some(Arc::clone(s)),
            _ => None,
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.shared
            .state
            .lock()
            .expect("serve queue lock")
            .stats
            .clone()
    }

    /// Stops admissions, drains every queued request (flushing batches
    /// immediately, without lingering), joins the workers, and returns
    /// the final counters. Dropping the server performs the same
    /// shutdown implicitly.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown_and_join();
        self.shared
            .state
            .lock()
            .expect("serve queue lock")
            .stats
            .clone()
    }

    fn begin_shutdown_and_join(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("serve queue lock");
            st.open = false;
        }
        self.shared.wake.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.maintenance.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.begin_shutdown_and_join();
    }
}

/// A cloneable handle for submitting requests to a [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Validates and enqueues one request. On success the returned
    /// [`Ticket`] resolves to the response once a worker serves (or
    /// rejects) it; admission failures are returned immediately.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        let shape = &self.shared.shape;
        if req.k == 0 {
            return Err(ServeError::BadRequest("k must be positive"));
        }
        if req.query.len() == 0 {
            return Err(ServeError::BadRequest("query must be non-empty"));
        }
        if req.query.is_binary() != shape.binary {
            return Err(ServeError::BadRequest(
                "query representation incompatible with the loaded payload",
            ));
        }
        if shape.euclidean_only && !matches!(req.query, OwnedQuery::Euclidean(_)) {
            return Err(ServeError::BadRequest(
                "cluster backend serves Euclidean queries only",
            ));
        }
        if shape.float_linear_only
            && !matches!(
                req.query,
                OwnedQuery::Euclidean(_) | OwnedQuery::Manhattan(_)
            )
        {
            return Err(ServeError::BadRequest(
                "mutable store serves Euclidean/Manhattan queries only",
            ));
        }
        if req.query.len() != shape.len {
            return Err(ServeError::BadRequest(
                "query length mismatches the loaded dataset",
            ));
        }

        let now = Instant::now();
        let tenant_qos = self.shared.config.qos.get(req.tenant);
        let timeout = req
            .timeout
            .or(tenant_qos.default_timeout)
            .or(self.shared.config.default_timeout);
        let min_coverage = tenant_qos
            .min_coverage
            .unwrap_or(self.shared.config.faults.min_coverage);
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            key: BatchKey {
                metric: req.query.metric(),
                k: req.k,
                hw_queue: shape.hw_queue,
                tenant: req.tenant,
            },
            query: req.query,
            k: req.k,
            enqueued: now,
            deadline: timeout.map(|t| now + t),
            min_coverage,
            degraded_retries: 0,
            panic_retries: 0,
            tx,
        };

        {
            let mut st = self.shared.state.lock().expect("serve queue lock");
            if !st.open {
                return Err(ServeError::ShuttingDown);
            }
            if tenant_qos.rate.is_some() {
                let bucket = st
                    .buckets
                    .entry(req.tenant)
                    .or_insert_with(|| TokenBucket::new(tenant_qos, now));
                if !bucket.try_admit(tenant_qos, now) {
                    st.stats.rejected_rate_limited += 1;
                    return Err(ServeError::RateLimited { tenant: req.tenant });
                }
            }
            if st.pending.len() >= self.shared.config.queue_capacity {
                st.stats.rejected_overload += 1;
                return Err(ServeError::Overloaded {
                    capacity: self.shared.config.queue_capacity,
                });
            }
            st.stats.submitted += 1;
            st.pending.push_back(pending);
        }
        self.shared.wake.notify_all();
        Ok(Ticket { rx })
    }

    /// Submits and blocks for the response: `submit(req)?.wait()`.
    pub fn query(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// Inserts (or updates) `uid` in the mutable store behind a
    /// [`Server::start_store`] backend. The write is applied WAL-first
    /// and synchronously: once this returns, every subsequent query
    /// sees it. May trip an automatic memtable seal
    /// ([`WriteAck::sealed`]).
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] without a store backend or on a
    /// wrong-length vector, [`ServeError::ShuttingDown`] once shutdown
    /// began.
    pub fn insert(&self, uid: u32, vector: &[f32]) -> Result<WriteAck, ServeError> {
        self.insert_routed(uid, vector).map(|ack| ack.ack())
    }

    /// Deletes `uid` from the mutable store (blind deletes are
    /// accepted — the tombstone is recorded either way). Synchronous
    /// like [`ServerHandle::insert`].
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] without a store backend,
    /// [`ServeError::ShuttingDown`] once shutdown began.
    pub fn delete(&self, uid: u32) -> Result<WriteAck, ServeError> {
        self.delete_routed(uid).map(|ack| ack.ack())
    }

    /// Inserts (or updates) `uid`, reporting the full routed
    /// [`ShardWriteAck`]: target shard, replicas that applied the write
    /// synchronously, and whether it failed over to a standby replica's
    /// WAL. Against a single-module store backend the ack is the
    /// trivial routing (shard 0, one replica).
    ///
    /// # Errors
    /// As [`ServerHandle::insert`], plus
    /// [`ServeError::ShardUnavailable`] when every replica of the
    /// target shard is down.
    pub fn insert_routed(&self, uid: u32, vector: &[f32]) -> Result<ShardWriteAck, ServeError> {
        let backend = self.writable_store()?;
        if vector.len() != self.shared.shape.len {
            return Err(ServeError::BadRequest(
                "vector length mismatches the store dims",
            ));
        }
        let result = match &backend {
            StoreBackend::Single(s) => lock_store(s)
                .insert(uid, vector)
                .map(single_module_ack)
                .map_err(store_write_error),
            StoreBackend::Sharded(s) => lock_sharded(s)
                .insert(uid, vector)
                .map_err(store_write_error),
        };
        self.count_write(&result, true);
        result
    }

    /// Deletes `uid`, reporting the full routed [`ShardWriteAck`] like
    /// [`ServerHandle::insert_routed`].
    ///
    /// # Errors
    /// As [`ServerHandle::delete`], plus
    /// [`ServeError::ShardUnavailable`] when every replica of the
    /// target shard is down.
    pub fn delete_routed(&self, uid: u32) -> Result<ShardWriteAck, ServeError> {
        let backend = self.writable_store()?;
        let result = match &backend {
            StoreBackend::Single(s) => lock_store(s)
                .delete(uid)
                .map(single_module_ack)
                .map_err(store_write_error),
            StoreBackend::Sharded(s) => lock_sharded(s).delete(uid).map_err(store_write_error),
        };
        self.count_write(&result, false);
        result
    }

    /// Whether writes route across a sharded backend (the network edge
    /// uses this to pick the richer routed write reply frame).
    pub fn backend_is_sharded(&self) -> bool {
        matches!(self.shared.store, Some(StoreBackend::Sharded(_)))
    }

    /// Updates the write counters for one settled write.
    fn count_write(&self, result: &Result<ShardWriteAck, ServeError>, is_insert: bool) {
        let mut st = self.shared.state.lock().expect("serve queue lock");
        match result {
            Ok(_) if is_insert => st.stats.inserts += 1,
            Ok(_) => st.stats.deletes += 1,
            Err(ServeError::ShardUnavailable { .. }) => st.stats.rejected_shard_down += 1,
            Err(_) => {}
        }
    }

    /// The store backend, if this server has one, is still accepting
    /// writes, and the (default-tenant) write-rate bucket admits one
    /// more ([`TenantQos::write_rate`]).
    fn writable_store(&self) -> Result<StoreBackend, ServeError> {
        let Some(backend) = &self.shared.store else {
            return Err(ServeError::BadRequest(
                "server has no mutable store backend",
            ));
        };
        let tenant = TenantId::DEFAULT;
        let qos = self.shared.config.qos.get(tenant);
        let mut st = self.shared.state.lock().expect("serve queue lock");
        if !st.open {
            return Err(ServeError::ShuttingDown);
        }
        if qos.write_rate.is_some() {
            // Writes spend from their own bucket so a write burst cannot
            // starve the tenant's query admission (and vice versa).
            let wqos = TenantQos {
                rate: qos.write_rate,
                ..qos.clone()
            };
            let now = Instant::now();
            let bucket = st
                .write_buckets
                .entry(tenant)
                .or_insert_with(|| TokenBucket::new(&wqos, now));
            if !bucket.try_admit(&wqos, now) {
                st.stats.rejected_rate_limited += 1;
                return Err(ServeError::RateLimited { tenant });
            }
        }
        Ok(backend.clone())
    }
}

/// The routed image of a single-module write: shard 0, one replica, no
/// failover.
fn single_module_ack(ack: WriteAck) -> ShardWriteAck {
    ShardWriteAck {
        shard: 0,
        seq: ack.seq,
        sealed: ack.sealed,
        wal_len: ack.wal_len,
        replicas_acked: 1,
        failed_over: false,
    }
}

/// Maps a store write failure onto the serving error surface.
fn store_write_error(e: StoreError) -> ServeError {
    match e {
        StoreError::DimsMismatch { .. } => {
            ServeError::BadRequest("vector length mismatches the store dims")
        }
        StoreError::Device(e) => ServeError::Device(e),
        StoreError::ShardUnavailable { shard } => ServeError::ShardUnavailable { shard },
        // Writes cannot produce metric/k errors.
        StoreError::UnsupportedMetric | StoreError::ZeroK => {
            ServeError::BadRequest("malformed store write")
        }
    }
}

/// The pending side of one submitted request.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Blocks until the request is served or rejected. Never hangs: a
    /// draining server completes every admitted request before its
    /// workers exit.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Non-blocking poll; `None` while the request is still queued or
    /// executing.
    pub fn try_wait(&self) -> Option<Result<Response, ServeError>> {
        self.rx.try_recv().ok()
    }
}

/// Removes `idx` (ascending, in-range) from the deque, returning the
/// removed requests in their original order.
fn take_indices(q: &mut VecDeque<Pending>, idx: &[usize]) -> Vec<Pending> {
    let mut out: Vec<Pending> = idx
        .iter()
        .rev()
        .map(|&i| q.remove(i).expect("batcher index in range"))
        .collect();
    out.reverse();
    out
}

fn worker_loop(shared: &Shared, engine: &mut Engine) {
    let cfg = &shared.config;
    loop {
        // Decide under the lock (see `batcher` for the state machine).
        let decision: Option<(Vec<Pending>, u64)> = {
            let mut st = shared.state.lock().expect("serve queue lock");
            loop {
                let now = Instant::now();
                let metas: Vec<PendingMeta> = st.pending.iter().map(Pending::meta).collect();
                let drain = !st.open;
                let p = plan(
                    &metas,
                    now,
                    cfg.max_batch,
                    cfg.max_linger,
                    drain,
                    &cfg.qos,
                    &st.fair,
                );

                // Deadline-expired requests are rejected before staging;
                // indices are then stale, so re-plan.
                if !p.expired.is_empty() {
                    let dead = take_indices(&mut st.pending, &p.expired);
                    st.stats.rejected_deadline += dead.len() as u64;
                    for r in dead {
                        let missed =
                            now.saturating_duration_since(r.deadline.expect("expired ⇒ deadline"));
                        let _ =
                            r.tx.send(Err(ServeError::DeadlineExceeded { missed_by: missed }));
                    }
                    continue;
                }

                match p.action {
                    Action::Flush(idx) => {
                        let batch = take_indices(&mut st.pending, &idx);
                        let tenant = batch[0].key.tenant;
                        st.fair
                            .charge(tenant, batch.len(), cfg.qos.get(tenant).weight);
                        let seq = st.batches_started;
                        st.batches_started += 1;
                        if !st.pending.is_empty() {
                            // Leftover work (another key, or overflow past
                            // max_batch): wake a sibling before executing.
                            shared.wake.notify_all();
                        }
                        break Some((batch, seq));
                    }
                    Action::Wait(timeout) => {
                        let (guard, _) = shared
                            .wake
                            .wait_timeout(st, timeout)
                            .expect("serve queue lock");
                        st = guard;
                    }
                    Action::Idle => {
                        if !st.open {
                            break None; // drained and closed: exit
                        }
                        st = shared.wake.wait(st).expect("serve queue lock");
                    }
                }
            }
        };
        let Some((batch, seq)) = decision else { return };
        execute_batch(shared, engine, batch, seq);
    }
}

/// Executes one coalesced batch outside the queue lock and completes
/// every member request — with results, a typed device error, or
/// `WorkerPanicked` if the execution unwound.
fn execute_batch(shared: &Shared, engine: &mut Engine, batch: Vec<Pending>, seq: u64) {
    let k = batch[0].k;
    let n = batch.len();
    // Fault storms confined to specific tenants: batches are
    // single-tenant, so toggling the plan per batch confines injection
    // exactly. (Recovery re-clones the template, which carries the plan,
    // so the toggle is re-applied every batch.)
    if let (Some(storm), Some(plan)) = (
        &shared.config.faults.storm_tenants,
        &shared.config.faults.plan,
    ) {
        let stormy = storm.contains(&batch[0].key.tenant);
        engine.set_fault_plan(stormy.then(|| Arc::clone(plan)));
    }
    let formed = Instant::now();
    let inject = shared.config.effective_panic_on_batch() == Some(seq);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        assert!(!inject, "injected fault (ServeFaults::panic_on_batch)");
        engine.execute(&batch, k)
    }));
    let service_seconds = formed.elapsed().as_secs_f64();

    match outcome {
        Ok(Ok(results)) => {
            let budget = shared.config.degraded_retry_budget();
            let mut served = 0u64;
            let mut degraded = 0u64;
            let mut retry: Vec<Pending> = Vec::new();
            let mut complete: Vec<(Pending, Result<Response, ServeError>)> = Vec::new();
            for (mut p, (neighbors, account, coverage)) in batch.into_iter().zip(results) {
                if coverage < p.min_coverage {
                    if p.degraded_retries < budget {
                        // Under-covered: spend retry budget. A fresh
                        // execution samples fresh (still deterministic)
                        // faults, so lost vaults usually come back.
                        p.degraded_retries += 1;
                        retry.push(p);
                    } else {
                        degraded += 1;
                        complete.push((p, Err(ServeError::Degraded { coverage })));
                    }
                    continue;
                }
                served += 1;
                let queue_seconds = formed.duration_since(p.enqueued).as_secs_f64();
                let response = Response {
                    neighbors,
                    account,
                    batch_size: n,
                    queue_seconds,
                    service_seconds,
                    coverage,
                };
                complete.push((p, Ok(response)));
            }
            {
                let mut st = shared.state.lock().expect("serve queue lock");
                st.stats.served += served;
                st.stats.degraded += degraded;
                st.stats.retried_degraded += retry.len() as u64;
                st.stats.batches += 1;
                if st.stats.batch_hist.len() <= n {
                    st.stats.batch_hist.resize(n + 1, 0);
                }
                st.stats.batch_hist[n] += 1;
                for p in retry {
                    st.pending.push_back(p);
                }
            }
            shared.wake.notify_all();
            for (p, result) in complete {
                let _ = p.tx.send(result);
            }
        }
        Ok(Err(e)) => {
            shared.state.lock().expect("serve queue lock").stats.failed += n as u64;
            for p in batch {
                let _ = p.tx.send(Err(ServeError::Device(e.clone())));
            }
        }
        Err(_) => {
            // The device clone may be mid-mutation; discard it for a
            // pristine copy of the template and keep serving. Requests
            // that merely shared the batch with whatever caused the
            // panic get one solo retry; a singleton batch (or a request
            // that already survived one panic) is the prime suspect and
            // fails outright.
            engine.recover();
            let mut fail: Vec<Pending> = Vec::new();
            let mut retry: Vec<Pending> = Vec::new();
            for mut p in batch {
                if n == 1 || p.panic_retries >= 1 {
                    fail.push(p);
                } else {
                    p.panic_retries += 1;
                    retry.push(p);
                }
            }
            {
                let mut st = shared.state.lock().expect("serve queue lock");
                st.stats.failed += fail.len() as u64;
                st.stats.retried_panic += retry.len() as u64;
                st.stats.worker_panics += 1;
                for p in retry {
                    st.pending.push_back(p);
                }
            }
            shared.wake.notify_all();
            for p in fail {
                let _ = p.tx.send(Err(ServeError::WorkerPanicked));
            }
        }
    }
}
