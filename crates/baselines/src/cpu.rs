//! Analytical Xeon E5-2620 platform model.
//!
//! Constants follow the paper's sources: a six-core Sandy Bridge-EP part
//! (2.0 GHz, 95 W TDP, ~435 mm² at 32 nm per the cited AnandTech die
//! estimate) fed by DDR at the paper's optimistic 25 GB/s. Linear kNN on
//! this machine is memory-bound: the roofline is
//! `max(bytes / bandwidth, ops / peak_ops)` per query.

use crate::normalize::scale_area_to_28nm;
use crate::ScanWorkload;

/// The CPU comparison platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPlatform {
    /// Core count.
    pub cores: usize,
    /// Clock in Hz.
    pub freq_hz: f64,
    /// 32-bit ops per core per cycle (AVX: 8-lane add + 8-lane mul).
    pub ops_per_cycle: f64,
    /// Sustained memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Die area in mm² at its native node.
    pub die_area_mm2: f64,
    /// Native process node in nm.
    pub node_nm: f64,
    /// Dynamic compute power in W ("difference between load and idle").
    pub dynamic_power_w: f64,
}

impl CpuPlatform {
    /// The paper's Xeon E5-2620 configuration.
    pub fn xeon_e5_2620() -> Self {
        Self {
            cores: 6,
            freq_hz: 2.0e9,
            ops_per_cycle: 16.0,
            mem_bandwidth: 25.0e9,
            die_area_mm2: 435.0,
            node_nm: 32.0,
            dynamic_power_w: 60.0,
        }
    }

    /// Peak arithmetic rate, ops/s.
    pub fn peak_ops(&self) -> f64 {
        self.cores as f64 * self.freq_hz * self.ops_per_cycle
    }

    /// Die area normalized to 28 nm.
    pub fn area_mm2_28nm(&self) -> f64 {
        scale_area_to_28nm(self.die_area_mm2, self.node_nm)
    }

    /// Roofline seconds per exact-linear query.
    pub fn linear_seconds_per_query(&self, w: &ScanWorkload) -> f64 {
        let mem = w.bytes_per_query() / self.mem_bandwidth;
        let cmp = w.ops_per_query() / self.peak_ops();
        mem.max(cmp)
    }

    /// Roofline queries/second for exact linear search.
    pub fn linear_throughput(&self, w: &ScanWorkload) -> f64 {
        1.0 / self.linear_seconds_per_query(w)
    }

    /// Queries per joule of dynamic compute energy.
    pub fn linear_queries_per_joule(&self, w: &ScanWorkload) -> f64 {
        self.linear_throughput(w) / self.dynamic_power_w
    }

    /// Seconds per query for an *approximate* index search that evaluates
    /// `candidates` distance calculations and `interior` traversal steps:
    /// the bucket scans are bandwidth-bound, the traversal is latency-
    /// bound at roughly one step per ~20 ns (pointer chase + compare).
    pub fn approx_seconds_per_query(&self, candidates: f64, interior: f64, dims: usize) -> f64 {
        let scan = ScanWorkload::dense(candidates.ceil() as usize, dims);
        self.linear_seconds_per_query(&scan) + interior * 20e-9
    }
}

impl Default for CpuPlatform {
    fn default() -> Self {
        Self::xeon_e5_2620()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_scan_is_memory_bound() {
        let p = CpuPlatform::xeon_e5_2620();
        let w = ScanWorkload::dense(1_000_000, 960);
        let mem = w.bytes_per_query() / p.mem_bandwidth;
        assert!((p.linear_seconds_per_query(&w) - mem).abs() < 1e-12);
    }

    #[test]
    fn gist_full_scale_is_single_digit_qps() {
        // 1M × 960-d floats at 25 GB/s ≈ 6.5 qps — the regime that
        // motivates the accelerator.
        let p = CpuPlatform::xeon_e5_2620();
        let w = ScanWorkload::dense(1_000_000, 960);
        let qps = p.linear_throughput(&w);
        assert!((5.0..8.0).contains(&qps), "qps = {qps}");
    }

    #[test]
    fn area_normalization_shrinks_die() {
        let p = CpuPlatform::xeon_e5_2620();
        assert!(p.area_mm2_28nm() < p.die_area_mm2);
        assert!((p.area_mm2_28nm() - 435.0 * (28.0f64 / 32.0).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn binary_scan_is_32x_faster() {
        let p = CpuPlatform::xeon_e5_2620();
        let dense = p.linear_throughput(&ScanWorkload::dense(100_000, 128));
        let bin = p.linear_throughput(&ScanWorkload::binary(100_000, 128));
        assert!(bin / dense > 20.0);
    }

    #[test]
    fn approx_search_beats_linear_at_small_budgets() {
        let p = CpuPlatform::xeon_e5_2620();
        let full = p.linear_seconds_per_query(&ScanWorkload::dense(1_000_000, 100));
        let approx = p.approx_seconds_per_query(10_000.0, 50.0, 100);
        assert!(approx < full / 10.0);
    }
}
