//! Analytical Kintex-7 platform model.
//!
//! The paper maps the SSAM acceleration logic onto a Xilinx Kintex-7 as a
//! *soft vector core* ("the FPGA in some cases underperforms the GPU since
//! it effectively implements a soft vector core instead of a fixed-
//! function unit"). The model therefore reuses the SSAM kernel's
//! cycles-per-vector cost, run at FPGA fabric frequency with a modest
//! number of replicated soft PUs, behind the board's DDR3 bandwidth.

use crate::normalize::scale_area_to_28nm;
use crate::ScanWorkload;

/// The FPGA comparison platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaPlatform {
    /// Fabric clock after place-and-route, Hz.
    pub freq_hz: f64,
    /// Soft processing units instantiated.
    pub soft_pus: usize,
    /// Board memory bandwidth, bytes/s (DDR3 SODIMM).
    pub mem_bandwidth: f64,
    /// Die area in mm² at the native node (Kintex-7 is 28 nm).
    pub die_area_mm2: f64,
    /// Native node, nm.
    pub node_nm: f64,
    /// Dynamic power in W (Vivado Power Analyzer).
    pub dynamic_power_w: f64,
    /// Soft-PU vector length.
    pub vector_length: usize,
}

impl FpgaPlatform {
    /// The paper's Kintex-7 configuration at a given soft vector length.
    pub fn kintex7(vector_length: usize) -> Self {
        Self {
            freq_hz: 200.0e6,
            soft_pus: 8,
            mem_bandwidth: 12.8e9,
            die_area_mm2: 132.0,
            node_nm: 28.0,
            dynamic_power_w: 8.0,
            vector_length,
        }
    }

    /// Die area at 28 nm.
    pub fn area_mm2_28nm(&self) -> f64 {
        scale_area_to_28nm(self.die_area_mm2, self.node_nm)
    }

    /// Cycles one soft PU spends per database vector for a dense scan
    /// (the SSAM linear-kernel inner loop: 5 chained vector ops + 4 scalar
    /// bookkeeping ops per chunk, plus per-vector reduction/insert
    /// overhead of ~2 ops per lane + ~6).
    pub fn cycles_per_vector(&self, dims: usize) -> f64 {
        let vl = self.vector_length;
        let chunks = dims.div_ceil(vl) as f64;
        9.0 * chunks + 2.0 * vl as f64 + 6.0
    }

    /// Roofline seconds per query for exact linear search.
    pub fn linear_seconds_per_query(&self, w: &ScanWorkload) -> f64 {
        let mem = w.bytes_per_query() / self.mem_bandwidth;
        let cycles = w.vectors as f64 * self.cycles_per_vector(w.dims);
        let cmp = cycles / (self.freq_hz * self.soft_pus as f64);
        mem.max(cmp)
    }

    /// Queries/second for exact linear search.
    pub fn linear_throughput(&self, w: &ScanWorkload) -> f64 {
        1.0 / self.linear_seconds_per_query(w)
    }

    /// Queries per joule of dynamic energy.
    pub fn linear_queries_per_joule(&self, w: &ScanWorkload) -> f64 {
        self.linear_throughput(w) / self.dynamic_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPlatform;
    use crate::gpu::GpuPlatform;

    #[test]
    fn fpga_beats_cpu_but_not_gpu_raw() {
        // Section V-B: "GPUs and the FPGA implementation … exhibit
        // comparable throughput"; the FPGA sometimes underperforms.
        let w = ScanWorkload::dense(1_000_000, 960);
        let f = FpgaPlatform::kintex7(8);
        let c = CpuPlatform::xeon_e5_2620();
        let g = GpuPlatform::titan_x();
        assert!(f.linear_throughput(&w) < g.linear_throughput(&w));
        assert!(f.linear_throughput(&w) < 2.0 * c.linear_throughput(&w));
    }

    #[test]
    fn wider_soft_vectors_reduce_cycles() {
        let f2 = FpgaPlatform::kintex7(2);
        let f16 = FpgaPlatform::kintex7(16);
        assert!(f16.cycles_per_vector(960) < f2.cycles_per_vector(960) / 4.0);
    }

    #[test]
    fn high_dim_scans_are_memory_bound() {
        let f = FpgaPlatform::kintex7(16);
        let w = ScanWorkload::dense(100_000, 4096);
        let mem = w.bytes_per_query() / f.mem_bandwidth;
        assert!((f.linear_seconds_per_query(&w) - mem).abs() / mem < 0.5);
    }

    #[test]
    fn energy_efficiency_beats_cpu() {
        // The FPGA's low dynamic power makes it far more efficient than
        // the CPU even at similar throughput.
        let w = ScanWorkload::dense(1_000_000, 100);
        let f = FpgaPlatform::kintex7(8);
        let c = CpuPlatform::xeon_e5_2620();
        assert!(f.linear_queries_per_joule(&w) > c.linear_queries_per_joule(&w));
    }
}
